//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no network access to a crates.io mirror, so
//! the workspace vendors the small API subset it actually uses:
//! [`Mutex`]/[`MutexGuard`] (non-poisoning `lock()` returning the guard
//! directly), [`RwLock`] with non-poisoning `read()`/`write()`, and
//! [`Condvar`] with `wait_for(&mut guard, timeout)`.
//! Poisoning is deliberately swallowed — a panicking holder behaves like
//! parking_lot, where subsequent `lock()` calls simply proceed.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion primitive. `lock()` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Internally wraps the std guard in an `Option` so [`Condvar::wait_for`]
/// can move it out and back while holding only `&mut MutexGuard`, matching
/// parking_lot's signature. The option is `None` only transiently inside
/// `wait_for`; every user-visible guard holds `Some`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock. Like parking_lot's, `read()`/`write()` never
/// return poison errors; a panicked holder does not wedge the lock.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

/// RAII shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// RAII exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed wait: reports whether the timeout elapsed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`Mutex`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one blocked thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(e) => {
                let (g, res) = e.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the mutex");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(5u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
            assert!(l.try_write().is_none(), "readers must exclude a writer");
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn rwlock_survives_a_panicked_writer() {
        let l = Arc::new(RwLock::new(0u32));
        let l2 = l.clone();
        let _ = thread::spawn(move || {
            let _g = l2.write();
            panic!("poison the rwlock");
        })
        .join();
        *l.write() = 3;
        assert_eq!(*l.read(), 3);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                let res = cv.wait_for(&mut done, Duration::from_secs(5));
                assert!(!res.timed_out(), "missed wakeup");
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
