//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach a crates.io mirror, so the
//! workspace vendors the small harness subset its benches use:
//! `criterion_group!`/`criterion_main!`, `Criterion` with the
//! `sample_size`/`measurement_time`/`warm_up_time` builders,
//! `benchmark_group`, `bench_function`, [`BenchmarkId`], and
//! `Bencher::iter`. Statistics are deliberately simple: after a warm-up
//! period each sample times a batch of iterations, and the harness
//! reports the median, minimum, and maximum per-iteration time.
//!
//! When compiled under `cargo test` (criterion benches are also test
//! targets), `--test` mode runs each benchmark exactly once to check it
//! executes, like upstream criterion.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group, e.g. `pvm/1024KB_32p`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter display.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            full: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { full: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { full: s }
    }
}

/// Passed to the closure given to `bench_function`; drives iteration.
pub struct Bencher<'a> {
    config: &'a Criterion,
    /// Collected per-iteration nanosecond estimates (one per sample).
    samples: Vec<f64>,
    test_mode: bool,
}

impl Bencher<'_> {
    /// Runs the routine repeatedly and records timing samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        // Warm up and estimate the per-iteration cost.
        let warm_until = Instant::now() + self.config.warm_up_time;
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        while Instant::now() < warm_until {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        // Split the measurement budget into `sample_size` samples.
        let budget_ns = self.config.measurement_time.as_nanos() as f64;
        let samples = self.config.sample_size.max(1);
        let iters_per_sample = ((budget_ns / samples as f64) / per_iter.max(1.0))
            .ceil()
            .max(1.0) as u64;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark and prints its summary line.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(
            self.criterion,
            &format!("{}/{}", self.name, id.full),
            &mut f,
        );
        self
    }

    /// Ends the group (upstream-compatibility no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(criterion: &Criterion, label: &str, f: &mut F) {
    let mut b = Bencher {
        config: criterion,
        samples: Vec::new(),
        test_mode: criterion.test_mode,
    };
    f(&mut b);
    if criterion.test_mode {
        println!("test {label} ... ok (bench smoke)");
        return;
    }
    if b.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    b.samples.sort_by(|a, c| a.total_cmp(c));
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let max = b.samples[b.samples.len() - 1];
    println!(
        "{label:<48} median {} (min {}, max {})",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// The harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            // `cargo test` runs bench executables with `--test`;
            // `cargo bench` passes `--bench`.
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up period per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Criterion {
        run_one(self, name, &mut f);
        self
    }
}

/// Declares a group function binding a config to its target benchmarks.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_id_formats() {
        assert_eq!(BenchmarkId::new("pvm", "8KB_1p").full, "pvm/8KB_1p");
    }

    #[test]
    fn smoke_run_counts_iterations() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        c.test_mode = false;
        let mut group = c.benchmark_group("g");
        let mut ran = 0u64;
        group.bench_function("count", |b| b.iter(|| ran += 1));
        group.finish();
        assert!(ran > 0);
    }
}
