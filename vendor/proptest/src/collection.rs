//! Collection strategies: `vec(element, size)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Anything that can describe the size of a generated collection.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Generates `Vec`s of values from `element`, sized within `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_respect_range() {
        let strat = vec(0u8..10, 2..5);
        let mut rng = TestRng::from_seed(9);
        for _ in 0..100 {
            let v = strat.new_value(&mut rng);
            assert!((2..5).contains(&v.len()), "len {}", v.len());
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
