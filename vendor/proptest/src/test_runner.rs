//! Deterministic RNG, configuration, and case-failure plumbing.

use std::fmt;

/// FNV-1a hash, used to derive a per-test seed from the test's path.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Configuration accepted by `proptest!`'s `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case failed.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion inside the property body failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic RNG handed to strategies (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant for test-input generation.
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_seed(42);
        let mut b = TestRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_seed(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..50 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn fnv_differs_on_names() {
        assert_ne!(fnv1a(b"mod::test_a"), fnv1a(b"mod::test_b"));
    }
}
