//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach a crates.io mirror, so the
//! workspace vendors the subset of proptest it uses: the [`proptest!`]
//! macro, `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`, range and
//! tuple strategies, `any::<T>()`, `Just`, `prop_map`, and
//! `collection::vec`.
//!
//! Differences from upstream, by design:
//! - **No shrinking.** A failing case reports the exact generated
//!   inputs (which are deterministic per test name and case index)
//!   instead of a minimized counterexample.
//! - **Deterministic seeding.** Case `i` of test `t` always sees the
//!   same inputs, derived from a hash of the test's module path and
//!   name. There is no environment-variable seed override and no
//!   regression-file persistence (existing `.proptest-regressions`
//!   files are ignored).

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The top-level harness macro: expands each `fn name(arg in strategy)`
/// item into a `#[test]` (the `#[test]` attribute is written by the
/// caller, as with upstream proptest) that runs `config.cases`
/// deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_inner {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let seed = $crate::test_runner::fnv1a(
                    concat!(module_path!(), "::", stringify!($name)).as_bytes(),
                );
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::from_seed(
                        seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(&$strat, &mut rng);
                    )+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg),+
                    );
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(err) = outcome {
                        panic!(
                            "proptest case {}/{} of {} failed: {}\n  inputs: {}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            err,
                            inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// Weighted (or unweighted) choice between strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a proptest body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)*)
        );
    }};
}
