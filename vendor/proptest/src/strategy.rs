//! Value-generation strategies: ranges, tuples, `Just`, `any`, `prop_map`
//! and weighted unions. No value trees, no shrinking — a strategy simply
//! produces one value per case from the deterministic RNG.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A source of generated values.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// Weighted choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: Debug> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u64 = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { options, total }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, strat) in &self.options {
            if pick < *w as u64 {
                return strat.new_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight accounting covered the total")
    }
}

/// Integers drawn uniformly from primitive ranges.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width u64 inclusive range.
                    return rng.next_u64() as $t;
                }
                (start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `any::<T>()`: the full value domain of a primitive type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Debug + Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($n,)+) = self;
                ($($n.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let v = (3u8..9).new_value(&mut rng);
            assert!((3..9).contains(&v));
            let w = (3u8..=9).new_value(&mut rng);
            assert!((3..=9).contains(&w));
        }
    }

    #[test]
    fn map_and_tuples_compose() {
        let strat = (0u8..4, 10u32..20).prop_map(|(a, b)| a as u32 + b);
        let mut rng = TestRng::from_seed(2);
        for _ in 0..100 {
            let v = strat.new_value(&mut rng);
            assert!((10..24).contains(&v));
        }
    }

    #[test]
    fn union_respects_weights() {
        let strat = crate::prop_oneof![
            1 => Just(0u8),
            3 => Just(1u8),
        ];
        let mut rng = TestRng::from_seed(3);
        let mut counts = [0u32; 2];
        for _ in 0..1000 {
            counts[strat.new_value(&mut rng) as usize] += 1;
        }
        assert!(
            counts[1] > counts[0],
            "weighted arm should dominate: {counts:?}"
        );
    }

    #[test]
    fn just_clones() {
        let strat = Just(vec![1, 2, 3]);
        let mut rng = TestRng::from_seed(4);
        assert_eq!(strat.new_value(&mut rng), vec![1, 2, 3]);
    }
}
