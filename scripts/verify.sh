#!/usr/bin/env bash
# Tier-1 verification wrapper for this workspace.
#
# Runs the full check sequence from .claude/skills/verify/SKILL.md:
# release build, test suite, format gate, clippy gate, doc gate
# (rustdoc warnings are errors), the fast-path liveness probe, the
# writeback-pipeline smoke (clustering must cut pushOut requests >=4x
# and the daemon must shrink demand evict stalls), the async-upcall
# smoke (the completion engine must beat the synchronous baseline),
# the pressure smoke (the watchdog must bound hung-upcall stalls with
# zero data loss and the OOM killer must reclaim exactly one victim),
# the large-page smoke (buddy runs plus 2 MiB promotion must cut
# faults >=5x on a dense scan and win simulated time), the read-ahead
# smoke (clustering must amortize pullIn upcalls), the mapper-fault
# smoke (retries must heal transient faults with zero client errors),
# the telemetry smoke (the knob must be free when off — bit-identical
# sim clocks — and cost <=5% wall when on, with pvmtop attributing a
# seeded hot-cache/sick-mapper scenario), the policy-matrix smoke
# (every built-in replacement policy races the three ablation_policies
# scenarios with per-combo determinism self-checks and byte-verified
# workloads), the pvmtop render smoke, the
# release-mode concurrency stress, and the tracing
# bit-identity check (Table 5 regenerated with CHORUS_TRACE=1 must
# match the committed reports/table5.txt byte for byte — the
# determinism rule: no trace call may advance the cost-model clock).
#
# Every ablation smoke tees its --json output to a stable
# BENCH_<name>.json at the repo root; the committed copies are the
# reference artifacts, and the final step runs scripts/bench_diff.py
# fresh-vs-committed: deterministic (sim-clock / fault-counter) drift
# fails the run, wall-clock drift is warn-only.
#
# Usage: scripts/verify.sh            (from the repo root or anywhere)

set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n==> %s\n' "$*"; }

# The smokes below tee fresh --json output over the committed
# BENCH_<name>.json references, so snapshot the committed copies first;
# the drift report at the end compares fresh against snapshot.
tmp=$(mktemp)
refdir=$(mktemp -d)
trap 'rm -f "$tmp"; rm -rf "$refdir"' EXIT
cp BENCH_*.json "$refdir"/ 2>/dev/null || true

step "cargo build --release"
cargo build --release

step "cargo test -q"
cargo test -q

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo doc --no-deps (warnings are errors)"
# Only the chorus crates: the vendored third-party members are not
# held to this repo's documentation standard.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps \
  -p chorus-hal -p chorus-gmi -p chorus-pvm -p chorus-shadow \
  -p chorus-nucleus -p chorus-mix -p chorus-rtmm -p chorus-bench \
  -p chorus-vm

step "scale_faults --quick: fast path alive, parallel driver engages"
cargo run --release -q -p chorus-bench --bin scale_faults -- --json --quick |
  tee BENCH_scale_faults.json |
  python3 -c '
import json, sys
out = json.load(sys.stdin)
rows = [r for r in out["rows"]
        if r["workload"] == "resident-read" and r["fast_path"]]
assert rows, "no fast_path resident-read rows"
assert all(r["fast_path_hits"] > 0 for r in rows), rows
hard = [r for r in out["hard_rows"] if r["parallel_faults"]]
assert hard, "no knob-on hard-fault rows"
assert all(r["stripe_acqs"] > 0 and r["pull_ins"] > 0 for r in hard), hard
gate = out["hard_fault_gate"]
print("ok: fast_path_hits > 0, striped hard faults engage; speedup gate %s (%s)"
      % ("asserted %.2fx" % gate["min_speedup"] if gate["asserted"] else "skipped",
         gate["reason"]))
'

step "scale_faults --threads 4: hard-fault scaling smoke (warn-only)"
# Wall-clock scaling depends on the machine; the bench gates its own
# >=2x assert on available hardware threads, so a failure here is
# surfaced but does not fail the verify run.
cargo run --release -q -p chorus-bench --bin scale_faults -- --quick --threads 4 ||
  echo "WARN: scale_faults --threads 4 failed (machine-dependent scaling)"

step "ablation_writeback --quick: clustering amortizes, daemon unblocks"
cargo run --release -q -p chorus-bench --bin ablation_writeback -- --json --quick |
  tee BENCH_writeback.json |
  python3 -c '
import json, sys
rows = json.load(sys.stdin)["rows"]
def row(cluster, daemon):
    return next(r for r in rows if r["cluster"] == cluster and r["daemon"] == daemon)
base = row(1, False)
clustered = row(8, False)
daemon = row(8, True)
assert clustered["pushout_upcalls"] * 4 <= base["pushout_upcalls"], (base, clustered)
assert daemon["evict_stalls"] < base["evict_stalls"], (base, daemon)
assert daemon["evict_stall_p99_ns"] < base["evict_stall_p99_ns"], (base, daemon)
print("ok: pushOut upcalls %d -> %d (>=4x), evict-stall p99 %d -> %d ns"
      % (base["pushout_upcalls"], clustered["pushout_upcalls"],
         base["evict_stall_p99_ns"], daemon["evict_stall_p99_ns"]))
'

step "ablation_async_upcalls --quick: engine beats sync baseline"
# The bench asserts internally that engine-on improves end-to-end sim
# time and demand-fault p99 over the synchronous baseline, and that
# the completion scheduler is bit-identical across re-runs.
cargo run --release -q -p chorus-bench --bin ablation_async_upcalls -- --json --quick |
  tee BENCH_async_upcalls.json |
  python3 -c '
import json, sys
rows = json.load(sys.stdin)["rows"]
sync = next(r for r in rows if not r["engine"])
best = min((r for r in rows if r["engine"]), key=lambda r: r["sim_ms"])
assert best["sim_ms"] < sync["sim_ms"], (sync, best)
assert best["async_deliveries"] == best["async_submits"] > 0, best
print("ok: engine-on sim time %.1f ms vs sync %.1f ms"
      % (best["sim_ms"], sync["sim_ms"]))
'

step "ablation_pressure --quick: watchdog bounds hung-upcall stalls"
# The bench asserts internally that no configuration loses data, that
# the watchdog cuts the hung-reply stall by >=100x, that the OOM killer
# reclaims exactly one victim with the survivor bit-intact, and that
# the whole layer is deterministic across re-runs.
cargo run --release -q -p chorus-bench --bin ablation_pressure -- --json --quick |
  tee BENCH_pressure.json |
  python3 -c '
import json, sys
out = json.load(sys.stdin)
rows = out["rows"]
assert all(r["lost_pages"] == 0 for r in rows), rows
bare = next(r for r in rows if r["hang"] and not r["watchdog"])
dog = next(r for r in rows if r["hang"] and r["watchdog"] and not r["backpressure"])
bp = next(r for r in rows if r["backpressure"])
assert dog["sim_ms"] * 100 < bare["sim_ms"], (bare, dog)
assert dog["watchdog_cancels"] >= 1 and dog["suspected_mappers"] >= 1, dog
assert bp["throttle_stalls"] >= 1, bp
oom = out["oom"]
assert oom["oom_kills"] == 1 and oom["victim_reported"] and oom["survivor_intact"], oom
print("ok: hung-reply stall %.0f ms -> %.1f ms, %d throttle stalls, 1 OOM kill"
      % (bare["sim_ms"], dog["sim_ms"], bp["throttle_stalls"]))
'

step "ablation_largepages --quick: buddy runs + promotion cut faults"
# The bench asserts internally that large pages cut faults >=5x on a
# dense scan, win simulated time, leave the machinery untouched with
# the knobs off, and are bit-identical across re-runs.
cargo run --release -q -p chorus-bench --bin ablation_largepages -- --json --quick |
  tee BENCH_largepages.json |
  python3 -c '
import json, sys
out = json.load(sys.stdin)
rows = out["rows"]
off = next(r for r in rows if not r["large_pages"])
on = next(r for r in rows if r["large_pages"])
assert off["faults"] >= 5 * max(on["faults"], 1), (off, on)
assert on["sim_ms"] < off["sim_ms"], (off, on)
assert on["run_fallbacks"] == 0, on
assert on["large_tlb_hits"] > 0, on
print("ok: faults %d -> %d (%.0fx), sim %.1f -> %.1f ms"
      % (off["faults"], on["faults"], out["fault_reduction"],
         off["sim_ms"], on["sim_ms"]))
'

step "ablation_readahead: clustering amortizes pullIn upcalls"
cargo run --release -q -p chorus-bench --bin ablation_readahead -- --json |
  tee BENCH_readahead.json |
  python3 -c '
import json, sys
rows = json.load(sys.stdin)["rows"]
base = next(r for r in rows if r["cluster"] == 1)
clustered = next(r for r in rows if r["cluster"] == 8)
assert clustered["pull_ins"] * 8 == base["pull_ins"], (base, clustered)
assert clustered["sim_ms"] < base["sim_ms"], (base, clustered)
print("ok: pullIn upcalls %d -> %d, sim %.1f -> %.1f ms"
      % (base["pull_ins"], clustered["pull_ins"],
         base["sim_ms"], clustered["sim_ms"]))
'

step "ablation_policies --quick: every replacement policy raced"
# The bench asserts internally that every combination re-runs
# bit-identically (per-combo determinism self-check on the writeback
# scenario), that a config which never names the policy section is
# bit-identical to an explicit clock+doubling selection, and that each
# workload's bytes survive every policy (no dirty-page loss).
cargo run --release -q -p chorus-bench --bin ablation_policies -- --json --quick |
  tee BENCH_policies.json |
  python3 -c '
import json, sys
out = json.load(sys.stdin)
rows = out["rows"]
kinds = {"clock", "lru", "wsclock", "arc", "external"}
for scenario in ("scale", "writeback", "pressure"):
    have = {r["replacement"] for r in rows if r["scenario"] == scenario}
    assert have >= kinds, (scenario, have)
assert all(r["victims"] >= r["evictions"] > 0 for r in rows), \
    "an eviction bypassed the policy engine"
ext = [r for r in rows if r["replacement"] == "external"]
assert ext and all(r["external_batches"] > 0 for r in ext), ext
best = min((r for r in rows if r["scenario"] == "pressure"),
           key=lambda r: r["faults"])
print("ok: %d rows, every eviction policy-driven; hot/cold winner %s (%d faults)"
      % (len(rows), best["replacement"], best["faults"]))
'

step "ablation_mapper_faults: retries heal transient faults"
cargo run --release -q -p chorus-bench --bin ablation_mapper_faults -- --json |
  tee BENCH_mapper_faults.json |
  python3 -c '
import json, sys
rows = json.load(sys.stdin)["rows"]
hot = [r for r in rows if r["fault_per_mille"] == 200]
no_retry = next(r for r in hot if r["policy"] == "no_retry")
retry = next(r for r in hot if r["policy"] == "default")
assert retry["client_errors"] == 0 and retry["mapper_retries"] > 0, retry
assert no_retry["client_errors"] > 0, no_retry
print("ok: client errors %d -> 0 with retries (%d kernel retries)"
      % (no_retry["client_errors"], retry["mapper_retries"]))
'

step "ablation_telemetry --quick: knob free when off, <=5% wall when on"
# The bench asserts internally that the simulated clocks are
# bit-identical with the knob off and on, that the wall overhead stays
# within 5%, and that pvmtop ranks the seeded hot cache first and flags
# the dead mapper Quarantined.
cargo run --release -q -p chorus-bench --bin ablation_telemetry -- --json --quick |
  tee BENCH_telemetry.json |
  python3 -c '
import json, sys
out = json.load(sys.stdin)
assert out["sim_identical"], out
assert out["overhead_ok"], out
assert out["hot_cache_first"] and out["sick_quarantined"], out
print("ok: wall overhead %+.2f%%, hot cache first, sick mapper quarantined"
      % ((out["overhead_ratio"] - 1) * 100))
'

step "pvmtop: snapshot renders and self-checks"
cargo run --release -q -p chorus-bench --bin pvmtop -- --json |
  python3 -c '
import json, sys
out = json.load(sys.stdin)
assert out["hot_cache_first"] and out["sick_quarantined"], out
assert out["top_caches"][0]["faults"] >= out["top_caches"][-1]["faults"], out
print("ok: %d caches, %d mappers, hottest first" % (out["caches"], out["mappers"]))
'

step "release-mode concurrent_faults stress"
cargo test --release -q -p chorus-pvm --test concurrent_faults

step "parallel_faults knob-on sweep (warn-only)"
# CHORUS_PARALLEL_FAULTS=1 flips the default of the parallel_faults
# knob, sweeping the existing suites through the striped driver and
# the landing-frame fillUp protocol without editing any config literal.
if CHORUS_PARALLEL_FAULTS=1 cargo test --release -q -p chorus-pvm \
     --test concurrent_faults --test paging --test large_pages &&
   CHORUS_PARALLEL_FAULTS=1 cargo test --release -q -p chorus-vm \
     --test mapper_faults; then
  echo "ok: suites pass with parallel_faults on"
else
  echo "WARN: parallel_faults knob-on sweep failed"
fi

step "tracing bit-identity: table5 with CHORUS_TRACE=1 vs committed report"
CHORUS_TRACE=1 cargo run --release -q -p chorus-bench --bin table5 > "$tmp"
diff -u reports/table5.txt "$tmp" ||
  { echo "FAIL: table5 output with tracing on differs from reports/table5.txt"; exit 1; }
echo "ok"

step "bench drift vs committed references (sim/fault fields gate)"
# The deterministic fields — simulated clocks, fault and upcall
# counters — must match the committed references bit for bit; any
# drift there is a behaviour change and fails the run (regenerate and
# commit the references when the change is intended). Wall-clock
# fields and their derivatives move with the machine and stay
# warn-only. A missing reference just means the bench is new this
# cycle.
drift=0
for f in BENCH_*.json; do
  if [ -f "$refdir/$f" ]; then
    python3 scripts/bench_diff.py "$refdir/$f" "$f" || drift=1
  else
    echo "  $f: no committed reference (new bench)"
  fi
done
if [ "$drift" -ne 0 ]; then
  echo "FAIL: deterministic bench fields drifted from the committed references"
  exit 1
fi

printf '\nverify: all checks passed\n'
