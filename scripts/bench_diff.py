#!/usr/bin/env python3
"""Compare two BENCH_<name>.json artifacts field by field.

The ablation benches emit one flat JSON object with scalar headline
fields plus a "rows" array of per-configuration objects (see
scripts/verify.sh, which tees each smoke's --json output to the repo
root). This script diffs two such files — typically a committed
reference against a fresh run — and prints the per-field deltas:

    scripts/bench_diff.py BENCH_largepages.json /tmp/fresh.json

Fields split into two classes:

* **Gating** — simulated clocks, fault/eviction/upcall counters and
  every other product of the deterministic cost model. The workloads
  are seedless and the determinism rule forbids observability from
  advancing the clock, so any drift here is a behaviour change; the
  exit status is 1 and verify.sh fails.
* **Warn-only** — wall-clock times and their derivatives (throughputs,
  speedups, lock contention, machine core counts). These move with the
  host; they are reported but never fail the run.

Rows are matched positionally after checking that their identifying
fields (non-numeric, non-warn) agree; a shape mismatch is an error,
not a silent skip.

Stdlib only — no third-party imports.
"""

import json
import sys

# Substrings that mark a field as machine-dependent (wall-clock time or
# anything derived from it). Matched case-insensitively against the
# final key segment.
WARN_PATTERNS = (
    "wall",
    "fps",
    "per_sec",
    "speedup",
    "contended",
    "contention",
    "overhead",
    "cores",
    "reason",
    "asserted",
)


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def is_warn_field(key):
    k = key.lower()
    return any(p in k for p in WARN_PATTERNS)


def fmt(v):
    if isinstance(v, float):
        return f"{v:.3f}"
    return str(v)


def sink(path, key, gating, warns):
    """The list a difference at `path` (final segment `key`) lands in."""
    return warns if is_warn_field(key) else gating


def diff_scalar(path, key, a, b, gating, warns):
    out = sink(path, key, gating, warns)
    if is_number(a) and is_number(b):
        if a == b:
            return
        delta = b - a
        if a != 0:
            rel = f" ({delta / a:+.1%})"
        else:
            rel = ""
        out.append(f"  {path}: {fmt(a)} -> {fmt(b)} [{delta:+g}{rel}]")
    elif a != b:
        out.append(f"  {path}: {a!r} -> {b!r}")


def row_identity(row):
    """The fields that name a configuration row: non-numeric,
    non-machine-dependent scalars (lists of numbers — e.g. per-rep
    wall throughputs — are measurements, not identity)."""
    return {
        k: v
        for k, v in row.items()
        if not is_number(v) and not isinstance(v, list) and not is_warn_field(k)
    }


def diff_obj(prefix, a, b, gating, warns):
    for key in a:
        if key not in b:
            gating.append(f"  {prefix}{key}: only in first file")
    for key in b:
        if key not in a:
            gating.append(f"  {prefix}{key}: only in second file")
    for key, va in a.items():
        if key not in b:
            continue
        vb = b[key]
        path = f"{prefix}{key}"
        if isinstance(va, list) and isinstance(vb, list):
            if len(va) != len(vb):
                sys.exit(f"error: {path} length differs: {len(va)} vs {len(vb)}")
            for i, (ra, rb) in enumerate(zip(va, vb)):
                if isinstance(ra, dict) and isinstance(rb, dict):
                    ida, idb = row_identity(ra), row_identity(rb)
                    if ida != idb:
                        sys.exit(
                            f"error: {path}[{i}] identifies different "
                            f"configurations: {ida} vs {idb}"
                        )
                    label = "/".join(fmt(v) for v in ida.values()) or str(i)
                    diff_obj(f"{path}[{label}].", ra, rb, gating, warns)
                else:
                    diff_scalar(f"{path}[{i}]", key, ra, rb, gating, warns)
        elif isinstance(va, dict) and isinstance(vb, dict):
            diff_obj(f"{path}.", va, vb, gating, warns)
        else:
            diff_scalar(path, key, va, vb, gating, warns)


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} <reference.json> <candidate.json>")
    try:
        with open(sys.argv[1]) as f:
            a = json.load(f)
        with open(sys.argv[2]) as f:
            b = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        # A truncated reference (e.g. a bench that died mid-tee on a
        # previous run) should read as a warning, not a traceback.
        sys.exit(f"warning: unreadable bench json, skipping diff: {e}")
    if a.get("bench") != b.get("bench"):
        sys.exit(
            f"error: different benches: "
            f"{a.get('bench')!r} vs {b.get('bench')!r}"
        )
    gating = []
    warns = []
    diff_obj("", a, b, gating, warns)
    name = a.get("bench", "?")
    if not gating and not warns:
        print(f"{name}: identical")
        return
    if warns:
        print(f"{name}: {len(warns)} wall-clock field(s) differ (warn-only)")
        for line in warns:
            print(line)
    if gating:
        print(f"{name}: {len(gating)} deterministic field(s) differ")
        for line in gating:
            print(line)
        sys.exit(1)


if __name__ == "__main__":
    main()
