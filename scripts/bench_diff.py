#!/usr/bin/env python3
"""Compare two BENCH_<name>.json artifacts field by field.

The ablation benches emit one flat JSON object with scalar headline
fields plus a "rows" array of per-configuration objects (see
scripts/verify.sh, which tees each smoke's --json output to the repo
root). This script diffs two such files — typically a committed
reference against a fresh run — and prints the per-field deltas:

    scripts/bench_diff.py BENCH_largepages.json /tmp/fresh.json

Rows are matched positionally after checking that their identifying
(non-numeric) fields agree; a shape mismatch is an error, not a
silent skip. Exit status is 1 when any numeric field differs, so the
script doubles as a regression tripwire in shell pipelines.

Stdlib only — no third-party imports.
"""

import json
import sys


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def fmt(v):
    if isinstance(v, float):
        return f"{v:.3f}"
    return str(v)


def diff_scalar(path, a, b, changes):
    if is_number(a) and is_number(b):
        if a == b:
            return
        delta = b - a
        if a != 0:
            rel = f" ({delta / a:+.1%})"
        else:
            rel = ""
        changes.append(f"  {path}: {fmt(a)} -> {fmt(b)} [{delta:+g}{rel}]")
    elif a != b:
        changes.append(f"  {path}: {a!r} -> {b!r}")


def row_identity(row):
    """The non-numeric fields that name a configuration row."""
    return {k: v for k, v in row.items() if not is_number(v)}


def diff_obj(prefix, a, b, changes):
    for key in a:
        if key not in b:
            changes.append(f"  {prefix}{key}: only in first file")
    for key in b:
        if key not in a:
            changes.append(f"  {prefix}{key}: only in second file")
    for key, va in a.items():
        if key not in b:
            continue
        vb = b[key]
        path = f"{prefix}{key}"
        if isinstance(va, list) and isinstance(vb, list):
            if len(va) != len(vb):
                sys.exit(f"error: {path} length differs: {len(va)} vs {len(vb)}")
            for i, (ra, rb) in enumerate(zip(va, vb)):
                if isinstance(ra, dict) and isinstance(rb, dict):
                    ida, idb = row_identity(ra), row_identity(rb)
                    if ida != idb:
                        sys.exit(
                            f"error: {path}[{i}] identifies different "
                            f"configurations: {ida} vs {idb}"
                        )
                    label = "/".join(fmt(v) for v in ida.values()) or str(i)
                    diff_obj(f"{path}[{label}].", ra, rb, changes)
                else:
                    diff_scalar(f"{path}[{i}]", ra, rb, changes)
        elif isinstance(va, dict) and isinstance(vb, dict):
            diff_obj(f"{path}.", va, vb, changes)
        else:
            diff_scalar(path, va, vb, changes)


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} <reference.json> <candidate.json>")
    try:
        with open(sys.argv[1]) as f:
            a = json.load(f)
        with open(sys.argv[2]) as f:
            b = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        # A truncated reference (e.g. a bench that died mid-tee on a
        # previous run) should read as a warning, not a traceback.
        sys.exit(f"warning: unreadable bench json, skipping diff: {e}")
    if a.get("bench") != b.get("bench"):
        sys.exit(
            f"error: different benches: "
            f"{a.get('bench')!r} vs {b.get('bench')!r}"
        )
    changes = []
    diff_obj("", a, b, changes)
    name = a.get("bench", "?")
    if not changes:
        print(f"{name}: identical")
        return
    print(f"{name}: {len(changes)} field(s) differ")
    for line in changes:
        print(line)
    sys.exit(1)


if __name__ == "__main__":
    main()
