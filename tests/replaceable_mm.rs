//! The paper's "replaceable unit" claim (§5.2): "The MM implementation
//! is the only difference between these Nucleus versions. All the other
//! Nucleus components, which access memory management facilities via
//! the GMI, are unaffected."
//!
//! This test runs the *entire* upper stack — Nucleus (segment manager,
//! segment caching, rgn* ops, transit-segment IPC) and Chorus/MIX
//! (fork/exec/exit/wait/pipes) — over both memory managers, asserting
//! identical observable behaviour. The stack is written once, generic
//! over `Gmi`; only the constructor below differs.

use chorus_gmi::Gmi;
use chorus_hal::{CostParams, PageGeometry};
use chorus_mix::{ProcessManager, ProgramStore};
use chorus_nucleus::{MemMapper, Nucleus, NucleusSegmentManager, PortName, SwapMapper};
use chorus_pvm::{Pvm, PvmConfig, PvmOptions};
use chorus_shadow::{ShadowOptions, ShadowVm};
use chorus_vm::gmi::VirtAddr;
use std::sync::Arc;
use std::time::Duration;

const PS: u64 = 256;

fn stack<G: Gmi>(
    gmi: Arc<G>,
    seg_mgr: Arc<NucleusSegmentManager>,
    files: Arc<MemMapper>,
) -> ProcessManager<G> {
    let nucleus = Arc::new(Nucleus::new(gmi, seg_mgr, 8));
    let store = Arc::new(ProgramStore::new(files, PS));
    store.register("sh", b"shell-text", b"shell-data");
    store.register(
        "worker",
        &vec![0xAAu8; (2 * PS) as usize],
        &vec![0xBBu8; PS as usize],
    );
    ProcessManager::new(nucleus, store)
}

fn managers() -> (Arc<NucleusSegmentManager>, Arc<MemMapper>) {
    let seg_mgr = Arc::new(NucleusSegmentManager::new());
    let files = Arc::new(MemMapper::new(PortName(1)));
    let swap = Arc::new(SwapMapper::new(PortName(2)));
    seg_mgr.register_mapper(PortName(1), files.clone());
    seg_mgr.register_mapper(PortName(2), swap);
    seg_mgr.set_default_mapper(PortName(2));
    (seg_mgr, files)
}

/// The scripted workload, written once for any `Gmi`.
fn unix_workload<G: Gmi>(pm: &ProcessManager<G>) -> Vec<Vec<u8>> {
    let mut observations = Vec::new();
    let mut observe = |buf: &[u8]| observations.push(buf.to_vec());

    let shell = pm.spawn("sh").unwrap();
    let mut buf = vec![0u8; 10];
    pm.read_mem(shell, pm.data_base(), &mut buf).unwrap();
    observe(&buf); // Initialized data.

    // Fork + COW isolation.
    pm.write_mem(shell, pm.heap_base(), b"heap-state").unwrap();
    let child = pm.fork(shell).unwrap();
    pm.write_mem(child, pm.heap_base(), b"child-own!").unwrap();
    pm.read_mem(shell, pm.heap_base(), &mut buf).unwrap();
    observe(&buf); // Parent unaffected.
    pm.read_mem(child, pm.heap_base(), &mut buf).unwrap();
    observe(&buf); // Child's own.

    // exec replaces the image.
    pm.exec(child, "worker").unwrap();
    pm.read_mem(child, pm.text_base(), &mut buf).unwrap();
    observe(&buf);
    pm.read_mem(child, pm.data_base(), &mut buf).unwrap();
    observe(&buf);

    // Pipe a message child -> shell through the transit segment.
    let pipe = pm.pipe();
    pm.write_mem(child, pm.heap_base(), &vec![0x5A; (2 * PS) as usize])
        .unwrap();
    pm.pipe_write(child, pipe, pm.heap_base(), 2 * PS).unwrap();
    pm.exit(child, 7).unwrap();
    observe(&[pm.wait(shell).unwrap().1 as u8]);
    let n = pm
        .pipe_read(shell, pipe, pm.heap_base(), 8 * PS, Duration::from_secs(1))
        .unwrap();
    let mut msg = vec![0u8; n as usize];
    pm.read_mem(shell, pm.heap_base(), &mut msg).unwrap();
    observe(&msg);

    // A fork-exit storm.
    for i in 0..5u8 {
        let c = pm.fork(shell).unwrap();
        pm.write_mem(c, pm.data_base(), &[i]).unwrap();
        pm.exit(c, i as i32).unwrap();
        observe(&[pm.wait(shell).unwrap().1 as u8]);
    }
    pm.read_mem(shell, pm.data_base(), &mut buf).unwrap();
    observe(&buf); // Shell data never perturbed by children.

    observations
}

#[test]
fn nucleus_and_mix_behave_identically_over_both_memory_managers() {
    // PVM stack.
    let (seg_mgr, files) = managers();
    let pvm = Arc::new(Pvm::new(
        PvmOptions {
            geometry: PageGeometry::new(PS),
            frames: 1024,
            cost: CostParams::zero(),
            config: PvmConfig::builder()
                .check_invariants(true)
                .build()
                .expect("valid config"),
            ..PvmOptions::default()
        },
        seg_mgr.clone(),
    ));
    let pm = stack(pvm, seg_mgr, files);
    let pvm_obs = unix_workload(&pm);

    // Shadow stack: same code, different manager.
    let (seg_mgr, files) = managers();
    let shadow = Arc::new(ShadowVm::new(
        ShadowOptions {
            geometry: PageGeometry::new(PS),
            frames: 4096,
            cost: CostParams::zero(),
            collapse_chains: true,
        },
        seg_mgr.clone(),
    ));
    let pm = stack(shadow, seg_mgr, files);
    let shadow_obs = unix_workload(&pm);

    assert_eq!(pvm_obs.len(), shadow_obs.len());
    for (i, (a, b)) in pvm_obs.iter().zip(&shadow_obs).enumerate() {
        assert_eq!(a, b, "observation {i} diverged between memory managers");
    }
}

#[test]
fn minimal_rt_mm_runs_the_same_workload() {
    // The paper's third implementation (§5.2): the minimal real-time MM
    // copies eagerly and never pages, yet the identical Nucleus + MIX
    // stack must observe the same results.
    let (seg_mgr, files) = managers();
    let rt = Arc::new(chorus_rtmm::MinimalMm::new(
        chorus_rtmm::MinimalOptions {
            geometry: PageGeometry::new(PS),
            frames: 4096,
            cost: CostParams::zero(),
        },
        seg_mgr.clone(),
    ));
    let pm = stack(rt, seg_mgr, files);
    let rt_obs = unix_workload(&pm);

    let (seg_mgr, files) = managers();
    let pvm = Arc::new(Pvm::new(
        PvmOptions {
            geometry: PageGeometry::new(PS),
            frames: 1024,
            cost: CostParams::zero(),
            config: PvmConfig::builder()
                .check_invariants(true)
                .build()
                .expect("valid config"),
            ..PvmOptions::default()
        },
        seg_mgr.clone(),
    ));
    let pm = stack(pvm, seg_mgr, files);
    assert_eq!(rt_obs, unix_workload(&pm));
}

#[test]
fn mmu_backends_behave_identically_under_the_full_stack() {
    let mut results = Vec::new();
    for mmu in [chorus_pvm::MmuChoice::Soft, chorus_pvm::MmuChoice::TwoLevel] {
        let (seg_mgr, files) = managers();
        let pvm = Arc::new(Pvm::new(
            PvmOptions {
                geometry: PageGeometry::new(PS),
                frames: 1024,
                cost: CostParams::zero(),
                mmu,
                config: PvmConfig::builder()
                    .check_invariants(true)
                    .build()
                    .expect("valid config"),
            },
            seg_mgr.clone(),
        ));
        let pm = stack(pvm, seg_mgr, files);
        results.push(unix_workload(&pm));
    }
    assert_eq!(results[0], results[1]);
}

#[test]
fn workload_survives_memory_pressure_on_the_pvm() {
    // The same workload with a pool far below the working set: pageout,
    // lazy swap binding and re-pull must be transparent.
    let (seg_mgr, files) = managers();
    let pvm = Arc::new(Pvm::new(
        PvmOptions {
            geometry: PageGeometry::new(PS),
            frames: 4,
            cost: CostParams::zero(),
            config: PvmConfig::builder()
                .check_invariants(true)
                .build()
                .expect("valid config"),
            ..PvmOptions::default()
        },
        seg_mgr.clone(),
    ));
    let pm = stack(pvm.clone(), seg_mgr, files);
    let pressured = unix_workload(&pm);
    assert!(pvm.stats().evictions > 0, "pressure must actually evict");

    // Reference run with ample memory.
    let (seg_mgr, files) = managers();
    let roomy = Arc::new(Pvm::new(
        PvmOptions {
            geometry: PageGeometry::new(PS),
            frames: 1024,
            cost: CostParams::zero(),
            config: PvmConfig::builder()
                .check_invariants(true)
                .build()
                .expect("valid config"),
            ..PvmOptions::default()
        },
        seg_mgr.clone(),
    ));
    let pm = stack(roomy, seg_mgr, files);
    assert_eq!(pressured, unix_workload(&pm));
    let _ = VirtAddr(0); // Imported for symmetry with sibling tests.
}
