//! The paper's "replaceable unit" claim (§5.2): "The MM implementation
//! is the only difference between these Nucleus versions. All the other
//! Nucleus components, which access memory management facilities via
//! the GMI, are unaffected."
//!
//! This test runs the *entire* upper stack — Nucleus (segment manager,
//! segment caching, rgn* ops, transit-segment IPC) and Chorus/MIX
//! (fork/exec/exit/wait/pipes) — over both memory managers, asserting
//! identical observable behaviour. The stack is written once, generic
//! over `Gmi`; only the constructor below differs.

use chorus_gmi::{Gmi, Prot, RetryPolicy, SyncShim};
use chorus_hal::{CostParams, PageGeometry};
use chorus_mix::{ProcessManager, ProgramStore};
use chorus_nucleus::{
    FaultPlan, FaultyMapper, MemMapper, Nucleus, NucleusSegmentManager, PortName, SwapMapper,
};
use chorus_pvm::{Pvm, PvmConfig, PvmOptions, ReadaheadKind, ReplacementKind};
use chorus_shadow::{ShadowOptions, ShadowVm};
use chorus_vm::gmi::VirtAddr;
use std::sync::Arc;
use std::time::Duration;

const PS: u64 = 256;

fn stack<G: Gmi>(
    gmi: Arc<G>,
    seg_mgr: Arc<NucleusSegmentManager>,
    files: Arc<MemMapper>,
) -> ProcessManager<G> {
    let nucleus = Arc::new(Nucleus::new(gmi, seg_mgr, 8));
    let store = Arc::new(ProgramStore::new(files, PS));
    store.register("sh", b"shell-text", b"shell-data");
    store.register(
        "worker",
        &vec![0xAAu8; (2 * PS) as usize],
        &vec![0xBBu8; PS as usize],
    );
    ProcessManager::new(nucleus, store)
}

fn managers() -> (Arc<NucleusSegmentManager>, Arc<MemMapper>) {
    let seg_mgr = Arc::new(NucleusSegmentManager::new());
    let files = Arc::new(MemMapper::new(PortName(1)));
    let swap = Arc::new(SwapMapper::new(PortName(2)));
    seg_mgr.register_mapper(PortName(1), files.clone());
    seg_mgr.register_mapper(PortName(2), swap);
    seg_mgr.set_default_mapper(PortName(2));
    (seg_mgr, files)
}

/// The scripted workload, written once for any `Gmi`.
fn unix_workload<G: Gmi>(pm: &ProcessManager<G>) -> Vec<Vec<u8>> {
    let mut observations = Vec::new();
    let mut observe = |buf: &[u8]| observations.push(buf.to_vec());

    let shell = pm.spawn("sh").unwrap();
    let mut buf = vec![0u8; 10];
    pm.read_mem(shell, pm.data_base(), &mut buf).unwrap();
    observe(&buf); // Initialized data.

    // Fork + COW isolation.
    pm.write_mem(shell, pm.heap_base(), b"heap-state").unwrap();
    let child = pm.fork(shell).unwrap();
    pm.write_mem(child, pm.heap_base(), b"child-own!").unwrap();
    pm.read_mem(shell, pm.heap_base(), &mut buf).unwrap();
    observe(&buf); // Parent unaffected.
    pm.read_mem(child, pm.heap_base(), &mut buf).unwrap();
    observe(&buf); // Child's own.

    // exec replaces the image.
    pm.exec(child, "worker").unwrap();
    pm.read_mem(child, pm.text_base(), &mut buf).unwrap();
    observe(&buf);
    pm.read_mem(child, pm.data_base(), &mut buf).unwrap();
    observe(&buf);

    // Pipe a message child -> shell through the transit segment.
    let pipe = pm.pipe();
    pm.write_mem(child, pm.heap_base(), &vec![0x5A; (2 * PS) as usize])
        .unwrap();
    pm.pipe_write(child, pipe, pm.heap_base(), 2 * PS).unwrap();
    pm.exit(child, 7).unwrap();
    observe(&[pm.wait(shell).unwrap().1 as u8]);
    let n = pm
        .pipe_read(shell, pipe, pm.heap_base(), 8 * PS, Duration::from_secs(1))
        .unwrap();
    let mut msg = vec![0u8; n as usize];
    pm.read_mem(shell, pm.heap_base(), &mut msg).unwrap();
    observe(&msg);

    // A fork-exit storm.
    for i in 0..5u8 {
        let c = pm.fork(shell).unwrap();
        pm.write_mem(c, pm.data_base(), &[i]).unwrap();
        pm.exit(c, i as i32).unwrap();
        observe(&[pm.wait(shell).unwrap().1 as u8]);
    }
    pm.read_mem(shell, pm.data_base(), &mut buf).unwrap();
    observe(&buf); // Shell data never perturbed by children.

    observations
}

#[test]
fn nucleus_and_mix_behave_identically_over_both_memory_managers() {
    // PVM stack.
    let (seg_mgr, files) = managers();
    let pvm = Arc::new(Pvm::new(
        PvmOptions {
            geometry: PageGeometry::new(PS),
            frames: 1024,
            cost: CostParams::zero(),
            config: PvmConfig::builder()
                .paging(|p| p.check_invariants(true))
                .build()
                .expect("valid config"),
            ..PvmOptions::default()
        },
        SyncShim::wrap(seg_mgr.clone()),
    ));
    let pm = stack(pvm, seg_mgr, files);
    let pvm_obs = unix_workload(&pm);

    // Shadow stack: same code, different manager.
    let (seg_mgr, files) = managers();
    let shadow = Arc::new(ShadowVm::new(
        ShadowOptions {
            geometry: PageGeometry::new(PS),
            frames: 4096,
            cost: CostParams::zero(),
            collapse_chains: true,
        },
        SyncShim::wrap(seg_mgr.clone()),
    ));
    let pm = stack(shadow, seg_mgr, files);
    let shadow_obs = unix_workload(&pm);

    assert_eq!(pvm_obs.len(), shadow_obs.len());
    for (i, (a, b)) in pvm_obs.iter().zip(&shadow_obs).enumerate() {
        assert_eq!(a, b, "observation {i} diverged between memory managers");
    }
}

#[test]
fn minimal_rt_mm_runs_the_same_workload() {
    // The paper's third implementation (§5.2): the minimal real-time MM
    // copies eagerly and never pages, yet the identical Nucleus + MIX
    // stack must observe the same results.
    let (seg_mgr, files) = managers();
    let rt = Arc::new(chorus_rtmm::MinimalMm::new(
        chorus_rtmm::MinimalOptions {
            geometry: PageGeometry::new(PS),
            frames: 4096,
            cost: CostParams::zero(),
        },
        SyncShim::wrap(seg_mgr.clone()),
    ));
    let pm = stack(rt, seg_mgr, files);
    let rt_obs = unix_workload(&pm);

    let (seg_mgr, files) = managers();
    let pvm = Arc::new(Pvm::new(
        PvmOptions {
            geometry: PageGeometry::new(PS),
            frames: 1024,
            cost: CostParams::zero(),
            config: PvmConfig::builder()
                .paging(|p| p.check_invariants(true))
                .build()
                .expect("valid config"),
            ..PvmOptions::default()
        },
        SyncShim::wrap(seg_mgr.clone()),
    ));
    let pm = stack(pvm, seg_mgr, files);
    assert_eq!(rt_obs, unix_workload(&pm));
}

#[test]
fn mmu_backends_behave_identically_under_the_full_stack() {
    let mut results = Vec::new();
    for mmu in [chorus_pvm::MmuChoice::Soft, chorus_pvm::MmuChoice::TwoLevel] {
        let (seg_mgr, files) = managers();
        let pvm = Arc::new(Pvm::new(
            PvmOptions {
                geometry: PageGeometry::new(PS),
                frames: 1024,
                cost: CostParams::zero(),
                mmu,
                config: PvmConfig::builder()
                    .paging(|p| p.check_invariants(true))
                    .build()
                    .expect("valid config"),
            },
            SyncShim::wrap(seg_mgr.clone()),
        ));
        let pm = stack(pvm, seg_mgr, files);
        results.push(unix_workload(&pm));
    }
    assert_eq!(results[0], results[1]);
}

#[test]
fn workload_survives_memory_pressure_on_the_pvm() {
    // The same workload with a pool far below the working set: pageout,
    // lazy swap binding and re-pull must be transparent.
    let (seg_mgr, files) = managers();
    let pvm = Arc::new(Pvm::new(
        PvmOptions {
            geometry: PageGeometry::new(PS),
            frames: 4,
            cost: CostParams::zero(),
            config: PvmConfig::builder()
                .paging(|p| p.check_invariants(true))
                .build()
                .expect("valid config"),
            ..PvmOptions::default()
        },
        SyncShim::wrap(seg_mgr.clone()),
    ));
    let pm = stack(pvm.clone(), seg_mgr, files);
    let pressured = unix_workload(&pm);
    assert!(pvm.stats().evictions > 0, "pressure must actually evict");

    // Reference run with ample memory.
    let (seg_mgr, files) = managers();
    let roomy = Arc::new(Pvm::new(
        PvmOptions {
            geometry: PageGeometry::new(PS),
            frames: 1024,
            cost: CostParams::zero(),
            config: PvmConfig::builder()
                .paging(|p| p.check_invariants(true))
                .build()
                .expect("valid config"),
            ..PvmOptions::default()
        },
        SyncShim::wrap(seg_mgr.clone()),
    ));
    let pm = stack(roomy, seg_mgr, files);
    assert_eq!(pressured, unix_workload(&pm));
}

// ===== replaceable policies: the same claim one layer down ==================
//
// §5.2's replaceable-unit argument applies inside the PVM too: the
// replacement and readahead policies are trait objects behind
// `PolicyConfig`, and swapping them may change *performance* but never
// observable behaviour. These tests race every built-in policy through
// the identical Nucleus + MIX stack.

/// A PVM squeezed far below the working set, with the given policies.
fn pressured_pvm(
    seg_mgr: Arc<NucleusSegmentManager>,
    replacement: ReplacementKind,
    readahead: ReadaheadKind,
) -> Arc<Pvm> {
    Arc::new(Pvm::new(
        PvmOptions {
            geometry: PageGeometry::new(PS),
            frames: 4,
            cost: CostParams::zero(),
            config: PvmConfig::builder()
                .paging(|p| p.check_invariants(true))
                .policy(|p| p.replacement(replacement).readahead(readahead))
                .build()
                .expect("valid config"),
            ..PvmOptions::default()
        },
        SyncShim::wrap(seg_mgr),
    ))
}

#[test]
fn every_replacement_policy_preserves_workload_behaviour_under_pressure() {
    // Roomy reference with the default (clock/doubling) policies.
    let (seg_mgr, files) = managers();
    let roomy = Arc::new(Pvm::new(
        PvmOptions {
            geometry: PageGeometry::new(PS),
            frames: 1024,
            cost: CostParams::zero(),
            config: PvmConfig::builder()
                .paging(|p| p.check_invariants(true))
                .build()
                .expect("valid config"),
            ..PvmOptions::default()
        },
        SyncShim::wrap(seg_mgr.clone()),
    ));
    let pm = stack(roomy, seg_mgr, files);
    let reference = unix_workload(&pm);

    // Every replacement policy, plus the fifo readahead baseline.
    let mut combos: Vec<(ReplacementKind, ReadaheadKind)> = ReplacementKind::ALL
        .into_iter()
        .map(|r| (r, ReadaheadKind::Doubling))
        .collect();
    combos.push((ReplacementKind::Clock, ReadaheadKind::Fifo));

    for (replacement, readahead) in combos {
        let label = format!("{}/{}", replacement.label(), readahead.label());
        let (seg_mgr, files) = managers();
        let pvm = pressured_pvm(seg_mgr.clone(), replacement, readahead);
        let pm = stack(pvm.clone(), seg_mgr, files);
        assert_eq!(unix_workload(&pm), reference, "{label} diverged");

        let stats = pvm.stats();
        assert!(stats.evictions > 0, "{label}: pressure must actually evict");
        assert!(
            stats.policy_victim_requests > 0 && stats.policy_victims >= stats.evictions,
            "{label}: victim selection bypassed the policy engine: {stats:?}"
        );
        if replacement == ReplacementKind::External {
            assert!(
                stats.policy_external_batches > 0,
                "{label}: external policy never consulted the manager: {stats:?}"
            );
        } else {
            assert_eq!(
                stats.policy_external_batches, 0,
                "{label}: kernel-resident policy issued victimAdvice upcalls"
            );
        }
    }
}

/// A tiny deterministic PRNG for the differential fault workload (the
/// mapper's own fault schedule uses its independent seeded RNG).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

#[test]
fn no_policy_loses_dirty_pages_under_mapper_faults() {
    // Cross-policy differential: the same seeded workload over faulty
    // mappers, once per replacement policy. Different policies evict
    // different pages — so the pageout/re-pull traffic, and hence the
    // points where faults strike, differ completely — yet every policy
    // must end with zero dirty-page loss: the bytes each run leaves on
    // the backing segments equal the oracle, and therefore each other.
    const SEG_PAGES: u64 = 4;
    const SEG_SIZE: usize = (PS * SEG_PAGES) as usize;
    const N_SEGS: usize = 3;
    const OPS: usize = 40;

    let healable = |seed: u64| FaultPlan {
        seed,
        transient_per_mille: 150,
        permanent_per_mille: 0,
        delay_per_mille: 100,
        delay_ns: 20_000,
        truncate_per_mille: 100,
        crash_at_op: Some(seed % 17 + 3),
        hang_at_op: None,
    };

    for seed in 0..3u64 {
        let mut images: Vec<(&'static str, Vec<Vec<u8>>)> = Vec::new();
        for replacement in ReplacementKind::ALL {
            let seg_mgr = Arc::new(NucleusSegmentManager::new());
            let files = Arc::new(MemMapper::new(PortName(1)));
            let faulty_files = Arc::new(FaultyMapper::new(files.clone(), healable(seed)));
            let swap = Arc::new(SwapMapper::new(PortName(2)));
            let faulty_swap = Arc::new(FaultyMapper::new(swap, healable(!seed)));
            seg_mgr.register_mapper(PortName(1), faulty_files.clone());
            seg_mgr.register_mapper(PortName(2), faulty_swap.clone());
            seg_mgr.set_default_mapper(PortName(2));
            let mut config = PvmConfig::builder()
                .paging(|p| p.check_invariants(true))
                .policy(|p| p.replacement(replacement))
                .build()
                .expect("valid config");
            // Generous enough that the ~250‰ per-attempt fault rate
            // cannot plausibly exhaust it (0.25^10 ≈ 1e-6 per upcall).
            config.retry = RetryPolicy {
                max_attempts: 10,
                ..RetryPolicy::default()
            };
            let pvm = Arc::new(Pvm::new(
                PvmOptions {
                    geometry: PageGeometry::new(PS),
                    frames: 8,
                    cost: CostParams::zero(),
                    config,
                    ..PvmOptions::default()
                },
                SyncShim::wrap(seg_mgr.clone()),
            ));
            faulty_files.attach_clock(pvm.cost_model());
            faulty_swap.attach_clock(pvm.cost_model());

            // File-backed segments plus a byte oracle. The working set
            // (12 pages) overflows the 8-frame pool, so the policies
            // actually steer pageout traffic through the faulty mapper.
            let ctx = pvm.context_create().unwrap();
            let mut oracle = Vec::new();
            let mut caps = Vec::new();
            let mut caches = Vec::new();
            for i in 0..N_SEGS {
                let init: Vec<u8> = (0..SEG_SIZE)
                    .map(|k| (k as u8).wrapping_mul(7).wrapping_add(i as u8))
                    .collect();
                let cap = files.create_segment(&init);
                let seg = seg_mgr.segment_for(cap);
                let cache = pvm.cache_create(Some(seg)).unwrap();
                let base = 0x10_0000 * (i as u64 + 1);
                pvm.region_create(ctx, VirtAddr(base), SEG_SIZE as u64, Prot::RW, cache, 0)
                    .unwrap();
                oracle.push(init);
                caps.push(cap);
                caches.push(cache);
            }
            let mut rng = Lcg(seed.wrapping_mul(2).wrapping_add(1));
            for _ in 0..OPS {
                let i = (rng.next() as usize) % N_SEGS;
                let off = (rng.next() as usize) % (SEG_SIZE - 32);
                let len = 1 + (rng.next() as usize) % 31;
                let base = 0x10_0000 * (i as u64 + 1);
                if rng.next().is_multiple_of(3) {
                    let byte = rng.next() as u8;
                    let data: Vec<u8> = (0..len).map(|k| byte.wrapping_add(k as u8)).collect();
                    pvm.vm_write(ctx, VirtAddr(base + off as u64), &data)
                        .unwrap_or_else(|e| {
                            panic!("{} seed={seed}: write failed: {e}", replacement.label())
                        });
                    oracle[i][off..off + len].copy_from_slice(&data);
                } else {
                    let mut buf = vec![0u8; len];
                    pvm.vm_read(ctx, VirtAddr(base + off as u64), &mut buf)
                        .unwrap_or_else(|e| {
                            panic!("{} seed={seed}: read failed: {e}", replacement.label())
                        });
                    assert_eq!(
                        buf,
                        &oracle[i][off..off + len],
                        "{} seed={seed} diverged from oracle",
                        replacement.label()
                    );
                }
            }

            // Flush every cache through the still-faulty mapper and
            // read back the *segment's* bytes: zero dirty-page loss
            // means the backing store, not just the page cache, holds
            // exactly the oracle.
            let mut final_images = Vec::new();
            for (i, (&cap, &cache)) in caps.iter().zip(&caches).enumerate() {
                pvm.cache_sync(cache, 0, SEG_SIZE as u64)
                    .unwrap_or_else(|e| {
                        panic!("{} seed={seed}: sync failed: {e}", replacement.label())
                    });
                let bytes = files.segment_data(cap);
                assert_eq!(
                    bytes,
                    oracle[i],
                    "{} seed={seed}: segment {i} lost dirty bytes",
                    replacement.label()
                );
                final_images.push(bytes);
            }
            let stats = pvm.stats();
            assert_eq!(
                stats.quarantined_caches,
                0,
                "{} seed={seed}",
                replacement.label()
            );
            assert!(
                stats.evictions > 0,
                "{} seed={seed}: no pressure, the policies were never exercised",
                replacement.label()
            );
            pvm.check_invariants();
            images.push((replacement.label(), final_images));
        }

        // The differential closure: every policy left identical file
        // bytes, however differently it routed the pages there.
        let (first_label, first) = &images[0];
        for (label, image) in &images[1..] {
            assert_eq!(
                image, first,
                "seed={seed}: {label} and {first_label} left different file bytes"
            );
        }
    }
}
