//! Distributed shared memory coherence over the GMI (§3.3.3), using the
//! `chorus_nucleus::dsm` single-writer/multiple-reader manager with real
//! PVM sites.

use chorus_gmi::{Gmi, Prot, SegmentId, SyncShim, VirtAddr};
use chorus_hal::{CostParams, PageGeometry};
use chorus_nucleus::{DsmDirectory, DsmSiteManager};
use chorus_pvm::{Pvm, PvmConfig, PvmOptions};
use chorus_vm::gmi::CtxId;
use std::sync::Arc;

const PS: u64 = 256;
const BASE: u64 = 0x4000_0000;

struct Site {
    pvm: Arc<Pvm>,
    ctx: CtxId,
}

fn build(sites: usize, pages: u64) -> (Arc<DsmDirectory>, Vec<Site>) {
    let dir = DsmDirectory::new(PS, (pages * PS) as usize);
    let mut built = Vec::new();
    let mut registered = Vec::new();
    for site in 0..sites {
        let mgr = Arc::new(DsmSiteManager::new(site, dir.clone()));
        let pvm = Arc::new(Pvm::new(
            PvmOptions {
                geometry: PageGeometry::new(PS),
                frames: 64,
                cost: CostParams::zero(),
                config: PvmConfig::builder()
                    .paging(|p| p.check_invariants(true))
                    .build()
                    .expect("valid config"),
                ..PvmOptions::default()
            },
            SyncShim::wrap(mgr),
        ));
        let cache = pvm.cache_create(Some(SegmentId(1))).unwrap();
        let ctx = pvm.context_create().unwrap();
        pvm.region_create(ctx, VirtAddr(BASE), pages * PS, Prot::RW, cache, 0)
            .unwrap();
        registered.push((pvm.clone(), cache));
        built.push(Site { pvm, ctx });
    }
    dir.register_sites(registered);
    (dir, built)
}

fn read_u64(s: &Site, addr: u64) -> u64 {
    let mut b = [0u8; 8];
    s.pvm.vm_read(s.ctx, VirtAddr(addr), &mut b).unwrap();
    u64::from_le_bytes(b)
}

fn write_u64(s: &Site, addr: u64, v: u64) {
    s.pvm
        .vm_write(s.ctx, VirtAddr(addr), &v.to_le_bytes())
        .unwrap();
}

#[test]
fn writes_propagate_between_two_sites() {
    let (_dir, sites) = build(2, 4);
    write_u64(&sites[0], BASE, 41);
    assert_eq!(
        read_u64(&sites[1], BASE),
        41,
        "reader sees the writer's value"
    );
    write_u64(&sites[1], BASE, 42);
    assert_eq!(read_u64(&sites[0], BASE), 42, "old reader copy invalidated");
}

#[test]
fn alternating_counter_is_sequentially_consistent() {
    let (dir, sites) = build(2, 4);
    write_u64(&sites[0], BASE, 0);
    for i in 0..20 {
        let s = &sites[i % 2];
        let v = read_u64(s, BASE);
        write_u64(s, BASE, v + 1);
    }
    assert_eq!(read_u64(&sites[0], BASE), 20);
    assert_eq!(read_u64(&sites[1], BASE), 20);
    let stats = dir.stats();
    assert!(stats.invalidations > 0, "{stats:?}");
    assert!(stats.demotions > 0, "{stats:?}");
}

#[test]
fn independent_pages_do_not_interfere() {
    let (dir, sites) = build(3, 4);
    // Each site owns its own page; no cross-invalidation needed after
    // the initial grants.
    for (i, s) in sites.iter().enumerate() {
        write_u64(s, BASE + i as u64 * PS, 1000 + i as u64);
    }
    let grants_after_setup = dir.stats().write_grants;
    for round in 0..5u64 {
        for (i, s) in sites.iter().enumerate() {
            let addr = BASE + i as u64 * PS;
            assert_eq!(read_u64(s, addr), 1000 + i as u64 + round);
            write_u64(s, addr, 1000 + i as u64 + round + 1);
        }
    }
    assert_eq!(
        dir.stats().write_grants,
        grants_after_setup,
        "page owners keep writing without new grants"
    );
    // Cross reads still see the freshest values.
    assert_eq!(read_u64(&sites[0], BASE + PS), 1006);
    assert_eq!(read_u64(&sites[2], BASE), 1005);
}

#[test]
fn three_site_broadcast_read_after_write() {
    let (dir, sites) = build(3, 2);
    write_u64(&sites[1], BASE + 8, 0xFEED);
    for s in &sites {
        assert_eq!(read_u64(s, BASE + 8), 0xFEED);
    }
    // A new write invalidates both other replicas.
    let inv_before = dir.stats().invalidations;
    write_u64(&sites[2], BASE + 8, 0xBEEF);
    assert!(
        dir.stats().invalidations >= inv_before + 2,
        "{:?}",
        dir.stats()
    );
    for s in &sites {
        assert_eq!(read_u64(s, BASE + 8), 0xBEEF);
    }
}
