//! Differential model testing: random operation sequences are applied
//! both to a memory manager under test and to a trivially-correct oracle
//! that tracks the logical bytes of every cache. After every step the
//! full logical contents must agree.
//!
//! The same harness runs against the PVM (history objects) and — once a
//! second `Gmi` implementation is in scope — against the Mach-style
//! shadow baseline, which also makes the two implementations
//! behaviourally equivalent by transitivity. Frame pools are kept small
//! so page replacement, lazy swap binding and stub re-pointing all fire
//! during the random walks.

use chorus_gmi::testing::MemSegmentManager;
use chorus_gmi::{CacheId, CopyMode, Gmi, SyncShim};
use chorus_hal::{CostParams, PageGeometry};
use chorus_pvm::trace::{Resolution, TraceEvent};
use chorus_pvm::{Pvm, PvmConfig, PvmOptions, TraceConfig};
use proptest::prelude::*;
use std::sync::Arc;

const PS: u64 = 64;
const PAGES: u64 = 6;
const SIZE: usize = (PS * PAGES) as usize;
const MAX_CACHES: usize = 6;

#[derive(Clone, Debug)]
enum Op {
    Create,
    Destroy {
        idx: usize,
    },
    Write {
        idx: usize,
        off: u16,
        len: u8,
        seed: u8,
    },
    CopyHistory {
        src: usize,
        dst: usize,
        src_page: u8,
        dst_page: u8,
        pages: u8,
        cor: bool,
    },
    CopyPerPage {
        src: usize,
        dst: usize,
        src_page: u8,
        dst_page: u8,
        pages: u8,
    },
    CopyEager {
        src: usize,
        dst: usize,
        src_off: u16,
        dst_off: u16,
        len: u8,
    },
    Move {
        src: usize,
        dst: usize,
        src_page: u8,
        dst_page: u8,
        pages: u8,
    },
    Sync {
        idx: usize,
    },
    Flush {
        idx: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::Create),
        1 => (0..MAX_CACHES).prop_map(|idx| Op::Destroy { idx }),
        6 => (0..MAX_CACHES, 0..SIZE as u16, 1..64u8, any::<u8>())
            .prop_map(|(idx, off, len, seed)| Op::Write { idx, off, len, seed }),
        3 => (0..MAX_CACHES, 0..MAX_CACHES, 0..PAGES as u8, 0..PAGES as u8, 1..=PAGES as u8, any::<bool>())
            .prop_map(|(src, dst, src_page, dst_page, pages, cor)| Op::CopyHistory {
                src, dst, src_page, dst_page, pages, cor
            }),
        3 => (0..MAX_CACHES, 0..MAX_CACHES, 0..PAGES as u8, 0..PAGES as u8, 1..=PAGES as u8)
            .prop_map(|(src, dst, src_page, dst_page, pages)| Op::CopyPerPage {
                src, dst, src_page, dst_page, pages
            }),
        2 => (0..MAX_CACHES, 0..MAX_CACHES, 0..SIZE as u16, 0..SIZE as u16, 1..96u8)
            .prop_map(|(src, dst, src_off, dst_off, len)| Op::CopyEager {
                src, dst, src_off, dst_off, len
            }),
        2 => (0..MAX_CACHES, 0..MAX_CACHES, 0..PAGES as u8, 0..PAGES as u8, 1..=PAGES as u8)
            .prop_map(|(src, dst, src_page, dst_page, pages)| Op::Move {
                src, dst, src_page, dst_page, pages
            }),
        1 => (0..MAX_CACHES).prop_map(|idx| Op::Sync { idx }),
        1 => (0..MAX_CACHES).prop_map(|idx| Op::Flush { idx }),
    ]
}

/// The oracle: plain byte arrays plus an "undefined" mask (move leaves
/// its source undefined, so those bytes are exempt from comparison).
struct Model {
    caches: Vec<Option<(Vec<u8>, Vec<bool>)>>,
}

impl Model {
    fn new() -> Model {
        Model { caches: Vec::new() }
    }

    fn live(&self, idx: usize) -> Option<usize> {
        // Map a raw index onto the idx-th live slot, wrapping.
        let live: Vec<usize> = self
            .caches
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_some())
            .map(|(i, _)| i)
            .collect();
        if live.is_empty() {
            None
        } else {
            Some(live[idx % live.len()])
        }
    }
}

fn clamp_range(off: u64, len: u64) -> (u64, u64) {
    let off = off.min(SIZE as u64 - 1);
    let len = len.min(SIZE as u64 - off).max(1);
    (off, len)
}

fn clamp_pages(page: u8, pages: u8) -> (u64, u64) {
    let page = (page as u64).min(PAGES - 1);
    let pages = (pages as u64).min(PAGES - page).max(1);
    (page * PS, pages * PS)
}

fn run_differential<G: Gmi>(gmi: &G, ops: &[Op]) {
    run_differential_with(gmi, ops, |_| {});
}

/// Like [`run_differential`], calling `before_op(index)` before every
/// operation — the hook for sprinkling mapper faults into the walk.
fn run_differential_with<G: Gmi>(gmi: &G, ops: &[Op], mut before_op: impl FnMut(usize)) {
    let mut model = Model::new();
    let mut ids: Vec<Option<CacheId>> = Vec::new();

    for (op_index, op) in ops.iter().enumerate() {
        before_op(op_index);
        match op.clone() {
            Op::Create => {
                if model.caches.iter().filter(|c| c.is_some()).count() >= MAX_CACHES {
                    continue;
                }
                let id = gmi.cache_create(None).unwrap();
                model
                    .caches
                    .push(Some((vec![0u8; SIZE], vec![false; SIZE])));
                ids.push(Some(id));
            }
            Op::Destroy { idx } => {
                let Some(i) = model.live(idx) else { continue };
                gmi.cache_destroy(ids[i].take().unwrap()).unwrap();
                model.caches[i] = None;
            }
            Op::Write {
                idx,
                off,
                len,
                seed,
            } => {
                let Some(i) = model.live(idx) else { continue };
                let (off, len) = clamp_range(off as u64, len as u64);
                let data: Vec<u8> = (0..len)
                    .map(|k| seed.wrapping_add(k as u8).wrapping_mul(31))
                    .collect();
                gmi.cache_write(ids[i].unwrap(), off, &data).unwrap();
                let (bytes, undef) = model.caches[i].as_mut().unwrap();
                bytes[off as usize..(off + len) as usize].copy_from_slice(&data);
                undef[off as usize..(off + len) as usize].fill(false);
            }
            Op::CopyHistory {
                src,
                dst,
                src_page,
                dst_page,
                pages,
                cor,
            } => {
                let (Some(s), Some(d)) = (model.live(src), model.live(dst.wrapping_add(1))) else {
                    continue;
                };
                if s == d {
                    continue;
                }
                let (so, mut sz) = clamp_pages(src_page, pages);
                let (dof, dsz) = clamp_pages(dst_page, pages);
                sz = sz.min(dsz);
                let mode = if cor {
                    CopyMode::HistoryCor
                } else {
                    CopyMode::HistoryCow
                };
                gmi.cache_copy_with(ids[s].unwrap(), so, ids[d].unwrap(), dof, sz, mode)
                    .unwrap();
                model_copy(&mut model, s, d, so, dof, sz);
            }
            Op::CopyPerPage {
                src,
                dst,
                src_page,
                dst_page,
                pages,
            } => {
                let (Some(s), Some(d)) = (model.live(src), model.live(dst.wrapping_add(1))) else {
                    continue;
                };
                if s == d {
                    continue;
                }
                let (so, mut sz) = clamp_pages(src_page, pages);
                let (dof, dsz) = clamp_pages(dst_page, pages);
                sz = sz.min(dsz);
                gmi.cache_copy_with(
                    ids[s].unwrap(),
                    so,
                    ids[d].unwrap(),
                    dof,
                    sz,
                    CopyMode::PerPage,
                )
                .unwrap();
                model_copy(&mut model, s, d, so, dof, sz);
            }
            Op::CopyEager {
                src,
                dst,
                src_off,
                dst_off,
                len,
            } => {
                let (Some(s), Some(d)) = (model.live(src), model.live(dst.wrapping_add(1))) else {
                    continue;
                };
                if s == d {
                    continue;
                }
                let (so, mut sz) = clamp_range(src_off as u64, len as u64);
                let (dof, dsz) = clamp_range(dst_off as u64, len as u64);
                sz = sz.min(dsz);
                gmi.cache_copy_with(
                    ids[s].unwrap(),
                    so,
                    ids[d].unwrap(),
                    dof,
                    sz,
                    CopyMode::Eager,
                )
                .unwrap();
                model_copy(&mut model, s, d, so, dof, sz);
            }
            Op::Move {
                src,
                dst,
                src_page,
                dst_page,
                pages,
            } => {
                let (Some(s), Some(d)) = (model.live(src), model.live(dst.wrapping_add(1))) else {
                    continue;
                };
                if s == d {
                    continue;
                }
                let (so, mut sz) = clamp_pages(src_page, pages);
                let (dof, dsz) = clamp_pages(dst_page, pages);
                sz = sz.min(dsz);
                gmi.cache_move(ids[s].unwrap(), so, ids[d].unwrap(), dof, sz)
                    .unwrap();
                model_copy(&mut model, s, d, so, dof, sz);
                // The source fragment becomes undefined.
                let (_, undef) = model.caches[s].as_mut().unwrap();
                undef[so as usize..(so + sz) as usize].fill(true);
            }
            Op::Sync { idx } => {
                let Some(i) = model.live(idx) else { continue };
                gmi.cache_sync(ids[i].unwrap(), 0, SIZE as u64).unwrap();
            }
            Op::Flush { idx } => {
                let Some(i) = model.live(idx) else { continue };
                gmi.cache_flush(ids[i].unwrap(), 0, SIZE as u64).unwrap();
            }
        }

        // Full-state comparison after every operation.
        for (i, entry) in model.caches.iter().enumerate() {
            let Some((bytes, undef)) = entry else {
                continue;
            };
            let mut got = vec![0u8; SIZE];
            gmi.cache_read(ids[i].unwrap(), 0, &mut got).unwrap();
            for k in 0..SIZE {
                if !undef[k] {
                    assert_eq!(
                        got[k], bytes[k],
                        "cache #{i} byte {k} diverged after {op:?}"
                    );
                }
            }
        }
    }
}

fn model_copy(model: &mut Model, s: usize, d: usize, so: u64, dof: u64, sz: u64) {
    let (src_bytes, src_undef) = model.caches[s].as_ref().unwrap().clone();
    let (bytes, undef) = model.caches[d].as_mut().unwrap();
    bytes[dof as usize..(dof + sz) as usize]
        .copy_from_slice(&src_bytes[so as usize..(so + sz) as usize]);
    undef[dof as usize..(dof + sz) as usize]
        .copy_from_slice(&src_undef[so as usize..(so + sz) as usize]);
}

fn pvm_under_test(frames: u32) -> Arc<Pvm> {
    pvm_with_manager(frames).0
}

fn pvm_with_manager(frames: u32) -> (Arc<Pvm>, Arc<MemSegmentManager>) {
    let mgr = Arc::new(MemSegmentManager::new());
    let pvm = Arc::new(Pvm::new(
        PvmOptions {
            geometry: PageGeometry::new(PS),
            frames,
            cost: CostParams::zero(),
            config: PvmConfig::builder()
                .paging(|p| p.check_invariants(true))
                .telemetry(|t| {
                    t.trace(TraceConfig {
                        enabled: true,
                        ..TraceConfig::default()
                    })
                })
                .build()
                .expect("valid config"),
            ..PvmOptions::default()
        },
        SyncShim::wrap(mgr.clone()),
    ));
    (pvm, mgr)
}

fn shadow_under_test(frames: u32) -> Arc<chorus_shadow::ShadowVm> {
    let mgr = Arc::new(MemSegmentManager::new());
    Arc::new(chorus_shadow::ShadowVm::new(
        chorus_shadow::ShadowOptions {
            geometry: PageGeometry::new(PS),
            frames,
            cost: CostParams::zero(),
            collapse_chains: true,
        },
        SyncShim::wrap(mgr),
    ))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    #[test]
    fn pvm_matches_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let pvm = pvm_under_test(256);
        run_differential(&*pvm, &ops);
        pvm.check_invariants();
    }

    #[test]
    fn pvm_matches_model_under_memory_pressure(ops in proptest::collection::vec(op_strategy(), 1..50)) {
        // A pool smaller than one cache's full size: constant eviction.
        let pvm = pvm_under_test(16);
        run_differential(&*pvm, &ops);
        pvm.check_invariants();
    }

    /// The Mach-style baseline must agree with the same oracle — and
    /// hence, by transitivity, with the PVM: the two deferred-copy
    /// algorithms are behaviourally equivalent (only their structure and
    /// costs differ). The baseline has no page replacement, so the frame
    /// pool is sized to the working set.
    #[test]
    fn shadow_matches_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let vm = shadow_under_test(4096);
        run_differential(&*vm, &ops);
    }

    /// Transient mapper faults sprinkled through the walk must be healed
    /// by the retry policy without perturbing a single logical byte:
    /// fault-untouched caches — and, since single transient faults always
    /// heal, *every* cache — still matches the oracle after every op.
    #[test]
    fn pvm_matches_model_under_transient_faults(
        ops in proptest::collection::vec(op_strategy(), 1..50),
        every in 1..5usize,
    ) {
        let (pvm, mgr) = pvm_with_manager(16);
        run_differential_with(&*pvm, &ops, |i| {
            if i % every == 0 {
                mgr.fail_next_pull();
            }
        });
        pvm.check_invariants();
    }
}

/// Regression: exact shrunk case from an earlier divergence (runs
/// against both managers).
#[test]
fn regression_eager_perpage_history_pvm() {
    let vm = pvm_under_test(256);
    regression_ops_1(&*vm);
    vm.check_invariants();
}

#[test]
fn shadow_regression_eager_perpage_history() {
    let vm = shadow_under_test(4096);
    regression_ops_1(&*vm);
}

fn regression_ops_1<G: Gmi>(vm: &G) {
    let ops = vec![
        Op::Create,
        Op::Create,
        Op::CopyEager {
            src: 1,
            dst: 5,
            src_off: 0,
            dst_off: 300,
            len: 21,
        },
        Op::CopyPerPage {
            src: 0,
            dst: 0,
            src_page: 5,
            dst_page: 1,
            pages: 1,
        },
        Op::CopyHistory {
            src: 1,
            dst: 1,
            src_page: 1,
            dst_page: 0,
            pages: 1,
            cor: false,
        },
        Op::Write {
            idx: 0,
            off: 284,
            len: 37,
            seed: 0,
        },
        Op::Create,
        Op::Create,
        Op::Create,
        Op::Write {
            idx: 1,
            off: 63,
            len: 2,
            seed: 0,
        },
    ];
    run_differential(vm, &ops);
}

/// Regression: zombie-merge chain leaving a dangling history pointer.
#[test]
fn regression_merge_dangling_history_pvm() {
    let vm = pvm_under_test(256);
    let ops = vec![
        Op::Create,
        Op::Create,
        Op::Create,
        Op::Create,
        Op::CopyHistory {
            src: 5,
            dst: 2,
            src_page: 0,
            dst_page: 0,
            pages: 1,
            cor: false,
        },
        Op::CopyHistory {
            src: 1,
            dst: 1,
            src_page: 2,
            dst_page: 0,
            pages: 1,
            cor: false,
        },
        Op::Destroy { idx: 5 },
        Op::CopyHistory {
            src: 2,
            dst: 3,
            src_page: 0,
            dst_page: 1,
            pages: 1,
            cor: false,
        },
        Op::Destroy { idx: 4 },
    ];
    run_differential(&*vm, &ops);
    vm.check_invariants();
}

// ----- trace/counter invariants -------------------------------------------

/// Counts drained trace events matching `pred`.
fn count_events(
    records: &[chorus_pvm::trace::TraceRecord],
    pred: impl Fn(&TraceEvent) -> bool,
) -> u64 {
    records.iter().filter(|r| pred(&r.event)).count() as u64
}

/// A deterministic faulting workload: regions, demand-zero touches,
/// deferred copies with forced real copies, under memory pressure so
/// evictions and pull-ins fire.
fn faulting_workload(pvm: &Pvm) {
    use chorus_gmi::{Access, Prot, VirtAddr};
    let base = VirtAddr(0x10_0000);
    let cpy_base = VirtAddr(0x80_0000);
    let ctx = pvm.context_create().expect("ctx");
    let src = pvm.cache_create(None).expect("src");
    pvm.region_create(ctx, base, PAGES * PS, Prot::RW, src, 0)
        .expect("region");
    for p in 0..PAGES {
        pvm.vm_write(ctx, VirtAddr(base.0 + p * PS), &[p as u8])
            .expect("touch");
    }
    let cpy = pvm.cache_create(None).expect("cpy");
    pvm.cache_copy(src, 0, cpy, 0, PAGES * PS).expect("copy");
    pvm.region_create(ctx, cpy_base, PAGES * PS, Prot::RW, cpy, 0)
        .expect("cpy region");
    for p in 0..PAGES {
        pvm.vm_write(ctx, VirtAddr(base.0 + p * PS), &[0xC0])
            .expect("dirty src");
    }
    let mut b = [0u8; 1];
    for p in 0..PAGES {
        pvm.vm_read(ctx, VirtAddr(cpy_base.0 + p * PS), &mut b)
            .expect("read copy");
    }
    // Re-fault already-mapped pages: soft faults through the fast path.
    for _ in 0..4 {
        for p in 0..PAGES {
            pvm.handle_fault(ctx, VirtAddr(cpy_base.0 + p * PS), Access::Read)
                .expect("soft fault");
        }
    }
    pvm.context_destroy(ctx).expect("ctx destroy");
}

/// Every counter with a paired trace point must agree exactly with the
/// drained event stream, and the fault histogram must have one sample
/// per completed fault.
#[test]
fn trace_events_agree_with_counters() {
    let (pvm, _mgr) = pvm_with_manager(8); // tiny pool: force eviction
    faulting_workload(&pvm);
    let tracer = pvm.tracer();
    assert_eq!(tracer.dropped(), 0, "ring overflow would skew the counts");
    let records = tracer.drain();
    let stats = pvm.stats();

    let enters = count_events(&records, |e| matches!(e, TraceEvent::FaultEnter { .. }));
    let exits = count_events(&records, |e| matches!(e, TraceEvent::FaultExit { .. }));
    let failed = count_events(&records, |e| {
        matches!(
            e,
            TraceEvent::FaultExit {
                resolution: Resolution::Failed,
                ..
            }
        )
    });
    assert_eq!(enters, exits, "unbalanced fault enter/exit");
    assert_eq!(failed, 0, "workload must not fail any fault");
    // A fast hit IS a handled fault: the snapshot folds them together,
    // and so does the trace (one enter/exit pair either way).
    assert_eq!(enters, stats.faults, "trace vs counter fault totals");

    let fast_hits = count_events(&records, |e| matches!(e, TraceEvent::FastPathHit { .. }));
    assert_eq!(fast_hits, stats.fast_path_hits);
    assert!(fast_hits > 0, "soft-fault loop should hit the fast path");
    let fallbacks = count_events(&records, |e| {
        matches!(e, TraceEvent::FastPathFallback { .. })
    });
    assert_eq!(fallbacks, stats.fast_path_fallbacks);

    // Per-resolution exits never exceed their counters (zero-fill and
    // cow-copy counters also count non-fault paths like cache_write).
    let zero_fill_exits = count_events(&records, |e| {
        matches!(
            e,
            TraceEvent::FaultExit {
                resolution: Resolution::ZeroFill,
                ..
            }
        )
    });
    assert!(zero_fill_exits <= stats.zero_fills);
    assert!(zero_fill_exits > 0, "demand-zero touches must zero-fill");

    // Paired instants: these bump and trace at the same site.
    let evictions = count_events(&records, |e| matches!(e, TraceEvent::Eviction { .. }));
    assert_eq!(evictions, stats.evictions);
    assert!(evictions > 0, "8-frame pool must evict");
    let pushes = count_events(&records, |e| matches!(e, TraceEvent::HistoryPush { .. }));
    assert_eq!(pushes, stats.history_pushes);
    let waits = count_events(&records, |e| matches!(e, TraceEvent::StubWait { .. }));
    assert_eq!(waits, stats.stub_waits);

    // One histogram sample per completed fault.
    let hist = tracer.histogram(chorus_pvm::trace::Phase::FaultTotal);
    assert_eq!(hist.count(), exits, "fault histogram samples");

    // pullIn upcalls: one Ok end per counted pull.
    let pull_ok = count_events(&records, |e| {
        matches!(
            e,
            TraceEvent::UpcallEnd {
                kind: chorus_pvm::trace::UpcallKind::PullIn,
                outcome: chorus_pvm::trace::UpcallOutcome::Ok,
                ..
            }
        )
    });
    assert_eq!(pull_ok, stats.pull_ins);
}

/// `PvmStats::delta` across a live workload: the delta of two snapshots
/// equals the counters of the second run alone.
#[test]
fn snapshot_delta_isolates_second_run() {
    let (pvm, _mgr) = pvm_with_manager(64);
    faulting_workload(&pvm);
    let before = pvm.stats();
    faulting_workload(&pvm);
    let after = pvm.stats();
    let delta = after.delta(&before);
    assert_eq!(delta.faults, after.faults - before.faults);
    assert!(delta.faults > 0, "second run must fault");
    assert_eq!(delta.zero_fills, after.zero_fills - before.zero_fills);
    assert_eq!(delta.evictions, after.evictions - before.evictions);
    // Field-wise saturating subtraction: deltas never underflow.
    let nonsense = before.delta(&after);
    assert_eq!(nonsense.faults, 0);
}
