//! Cross-crate fault-injection suite: the PVM driving the real Nucleus
//! segment manager over a [`FaultyMapper`].
//!
//! Mappers are independent actors (§5.1.1), so the memory manager must
//! treat every mapper reply as unreliable. These tests inject the full
//! failure taxonomy — transient errors, permanent death, slow replies,
//! truncated replies, crash-once — and assert the recovery protocol:
//! transient faults heal invisibly through retry, permanent faults
//! quarantine exactly the affected caches, blocked faulters always wake
//! with an error rather than deadlocking, and a failed pageout never
//! loses a dirty page that a later successful retry can write back.

use chorus_gmi::{Gmi, GmiError, Prot, RetryPolicy, SyncShim, VirtAddr};
use chorus_hal::{CostParams, PageGeometry};
use chorus_nucleus::{
    FaultPlan, FaultyMapper, MemMapper, NucleusSegmentManager, PortName, SwapMapper,
};
use chorus_pvm::trace::{TraceEvent, UpcallOutcome};
use chorus_pvm::{Pvm, PvmConfig, PvmOptions, TraceConfig};
use proptest::prelude::*;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

const PS: u64 = 256;
const SEG_PAGES: u64 = 4;
const SEG_SIZE: usize = (PS * SEG_PAGES) as usize;

/// The full stack: PVM → NucleusSegmentManager → FaultyMapper(files) /
/// FaultyMapper(swap).
struct FaultStack {
    pvm: Arc<Pvm>,
    seg_mgr: Arc<NucleusSegmentManager>,
    files: Arc<MemMapper>,
    faulty_files: Arc<FaultyMapper>,
    swap: Arc<SwapMapper>,
    faulty_swap: Arc<FaultyMapper>,
}

fn stack(
    frames: u32,
    file_plan: FaultPlan,
    swap_plan: FaultPlan,
    tweak: impl FnOnce(&mut PvmConfig),
) -> FaultStack {
    let seg_mgr = Arc::new(NucleusSegmentManager::new());
    let files = Arc::new(MemMapper::new(PortName(1)));
    let faulty_files = Arc::new(FaultyMapper::new(files.clone(), file_plan));
    let swap = Arc::new(SwapMapper::new(PortName(2)));
    let faulty_swap = Arc::new(FaultyMapper::new(swap.clone(), swap_plan));
    seg_mgr.register_mapper(PortName(1), faulty_files.clone());
    seg_mgr.register_mapper(PortName(2), faulty_swap.clone());
    seg_mgr.set_default_mapper(PortName(2));
    // The whole fault-injection suite runs traced: recovery must be
    // byte-identical with observability on.
    let mut config = PvmConfig::builder()
        .paging(|p| p.check_invariants(true))
        .telemetry(|t| {
            t.trace(TraceConfig {
                enabled: true,
                ..TraceConfig::default()
            })
        })
        .build()
        .expect("valid config");
    tweak(&mut config);
    let pvm = Arc::new(Pvm::new(
        PvmOptions {
            geometry: PageGeometry::new(PS),
            frames,
            cost: CostParams::zero(),
            config,
            ..PvmOptions::default()
        },
        SyncShim::wrap(seg_mgr.clone()),
    ));
    faulty_files.attach_clock(pvm.cost_model());
    faulty_swap.attach_clock(pvm.cost_model());
    faulty_files.attach_tracer(pvm.tracer());
    faulty_swap.attach_tracer(pvm.tracer());
    FaultStack {
        pvm,
        seg_mgr,
        files,
        faulty_files,
        swap,
        faulty_swap,
    }
}

/// A tiny deterministic PRNG for workload scheduling (the mapper's own
/// fault schedule uses its independent seeded RNG).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

/// Runs a deterministic read/write workload over `n_segs` file-backed
/// segments under memory pressure, maintaining a byte oracle. Every
/// operation must succeed (the plan is expected to be heal-able), and
/// the final contents seen through the PVM must equal the oracle.
fn healing_workload(stack: &FaultStack, seed: u64, n_segs: usize, ops: usize) {
    let pvm = &stack.pvm;
    let mut oracle = Vec::new();
    let mut ctxs = Vec::new();
    let ctx = pvm.context_create().unwrap();
    for i in 0..n_segs {
        let init: Vec<u8> = (0..SEG_SIZE)
            .map(|k| (k as u8).wrapping_mul(7).wrapping_add(i as u8))
            .collect();
        let cap = stack.files.create_segment(&init);
        let seg = stack.seg_mgr.segment_for(cap);
        let cache = pvm.cache_create(Some(seg)).unwrap();
        let base = 0x10_0000 * (i as u64 + 1);
        pvm.region_create(ctx, VirtAddr(base), SEG_SIZE as u64, Prot::RW, cache, 0)
            .unwrap();
        oracle.push(init);
        ctxs.push(base);
    }
    let mut rng = Lcg(seed.wrapping_mul(2).wrapping_add(1));
    for _ in 0..ops {
        let i = (rng.next() as usize) % n_segs;
        let off = (rng.next() as usize) % (SEG_SIZE - 32);
        let len = 1 + (rng.next() as usize) % 31;
        let base = ctxs[i];
        if rng.next().is_multiple_of(3) {
            let byte = rng.next() as u8;
            let data: Vec<u8> = (0..len).map(|k| byte.wrapping_add(k as u8)).collect();
            pvm.vm_write(ctx, VirtAddr(base + off as u64), &data)
                .unwrap_or_else(|e| panic!("write seed={seed} off={off} len={len}: {e}"));
            oracle[i][off..off + len].copy_from_slice(&data);
        } else {
            let mut buf = vec![0u8; len];
            pvm.vm_read(ctx, VirtAddr(base + off as u64), &mut buf)
                .unwrap_or_else(|e| panic!("read seed={seed} off={off} len={len}: {e}"));
            assert_eq!(buf, &oracle[i][off..off + len], "seed={seed} diverged");
        }
    }
    // Full final comparison of every segment.
    for (i, base) in ctxs.iter().enumerate() {
        let mut got = vec![0u8; SEG_SIZE];
        pvm.vm_read(ctx, VirtAddr(*base), &mut got)
            .unwrap_or_else(|e| panic!("final read seed={seed} seg={i}: {e}"));
        assert_eq!(got, oracle[i], "seed={seed} segment {i} diverged");
    }
    pvm.check_invariants();
}

/// A plan mixing every heal-able fault kind, scheduled by `seed`.
fn healable_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        transient_per_mille: 150,
        permanent_per_mille: 0,
        delay_per_mille: 100,
        delay_ns: 20_000,
        truncate_per_mille: 100,
        crash_at_op: Some(seed % 17 + 3),
        hang_at_op: None,
    }
}

/// Retry policy generous enough that the ~250‰ effective per-attempt
/// fault rate of [`healable_plan`] cannot plausibly exhaust it
/// (0.25^10 ≈ 1e-6 per upcall; the schedule is deterministic, so the
/// seeds below are verified once and stay verified).
fn generous_retry(config: &mut PvmConfig) {
    config.retry = RetryPolicy {
        max_attempts: 10,
        ..RetryPolicy::default()
    };
}

#[test]
fn thirty_two_seeds_of_transient_faults_all_heal() {
    let mut total_retries = 0u64;
    let mut total_faults = 0usize;
    for seed in 0..32u64 {
        let s = stack(8, healable_plan(seed), healable_plan(!seed), generous_retry);
        healing_workload(&s, seed, 3, 40);
        total_retries += s.pvm.stats().mapper_retries;
        total_faults += s.faulty_files.take_log().len() + s.faulty_swap.take_log().len();
        assert_eq!(s.pvm.stats().quarantined_caches, 0, "seed={seed}");
    }
    assert!(
        total_faults > 100,
        "plans injected too little: {total_faults}"
    );
    assert!(total_retries > 50, "retries never fired: {total_retries}");
}

#[test]
fn permanent_failure_quarantines_only_the_affected_cache() {
    // File mapper dies permanently on its first operation; a second
    // clean mapper on another port is untouched.
    let dead_plan = FaultPlan {
        permanent_per_mille: 1000,
        ..FaultPlan::quiet(3)
    };
    let s = stack(16, dead_plan, FaultPlan::quiet(0), |_| {});
    let clean = Arc::new(MemMapper::new(PortName(7)));
    s.seg_mgr.register_mapper(PortName(7), clean.clone());

    let pvm = &s.pvm;
    let ctx = pvm.context_create().unwrap();
    let bad_init = vec![0xAA; SEG_SIZE];
    let good_init: Vec<u8> = (0..SEG_SIZE).map(|k| k as u8).collect();
    let bad_seg = s.seg_mgr.segment_for(s.files.create_segment(&bad_init));
    let good_seg = s.seg_mgr.segment_for(clean.create_segment(&good_init));
    let bad_cache = pvm.cache_create(Some(bad_seg)).unwrap();
    let good_cache = pvm.cache_create(Some(good_seg)).unwrap();
    pvm.region_create(
        ctx,
        VirtAddr(0x10_0000),
        SEG_SIZE as u64,
        Prot::RW,
        bad_cache,
        0,
    )
    .unwrap();
    pvm.region_create(
        ctx,
        VirtAddr(0x20_0000),
        SEG_SIZE as u64,
        Prot::RW,
        good_cache,
        0,
    )
    .unwrap();

    let mut buf = [0u8; 16];
    // First touch: the permanent failure surfaces as MapperUnavailable.
    let err = pvm.vm_read(ctx, VirtAddr(0x10_0000), &mut buf).unwrap_err();
    assert!(matches!(err, GmiError::MapperUnavailable { .. }), "{err}");
    // Thereafter the cache answers with its quarantine error.
    let err = pvm.vm_read(ctx, VirtAddr(0x10_0000), &mut buf).unwrap_err();
    assert!(matches!(err, GmiError::CachePoisoned(_)), "{err}");
    let err = pvm.cache_read(bad_cache, 0, &mut buf).unwrap_err();
    assert!(matches!(err, GmiError::CachePoisoned(_)), "{err}");
    assert_eq!(pvm.stats().quarantined_caches, 1);

    // The innocent cache is fully functional and correct.
    let mut got = vec![0u8; SEG_SIZE];
    pvm.vm_read(ctx, VirtAddr(0x20_0000), &mut got).unwrap();
    assert_eq!(got, good_init);

    // Recovery path: after the mapper "restarts", a *fresh* cache on the
    // same segment works again — quarantine is per-cache, not global.
    s.faulty_files.set_plan(FaultPlan::quiet(0));
    let fresh = pvm.cache_create(Some(bad_seg)).unwrap();
    pvm.cache_read(fresh, 0, &mut got).unwrap();
    assert_eq!(got, bad_init);
    pvm.check_invariants();
}

#[test]
fn concurrent_faulters_all_unblock_with_errors_not_deadlock() {
    // Every pull fails transiently and the policy gives up quickly: all
    // four faulters of the same page must return an error within the
    // watchdog window — none may deadlock on the cleared sync stub.
    let all_fail = FaultPlan {
        transient_per_mille: 1000,
        ..FaultPlan::quiet(11)
    };
    let s = stack(16, all_fail, FaultPlan::quiet(0), |c| {
        c.retry = RetryPolicy {
            max_attempts: 2,
            initial_backoff_ns: 1_000,
            ..RetryPolicy::default()
        };
    });
    let pvm = &s.pvm;
    let ctx = pvm.context_create().unwrap();
    let init = vec![0x42; SEG_SIZE];
    let seg = s.seg_mgr.segment_for(s.files.create_segment(&init));
    let cache = pvm.cache_create(Some(seg)).unwrap();
    pvm.region_create(ctx, VirtAddr(0), SEG_SIZE as u64, Prot::RW, cache, 0)
        .unwrap();

    let (tx, rx) = mpsc::channel();
    for _ in 0..4 {
        let pvm = Arc::clone(pvm);
        let tx = tx.clone();
        std::thread::spawn(move || {
            let mut buf = [0u8; 8];
            let res = pvm.vm_read(ctx, VirtAddr(16), &mut buf);
            tx.send(res).unwrap();
        });
    }
    drop(tx);
    for _ in 0..4 {
        let res = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("faulter deadlocked");
        let err = res.expect_err("pull cannot succeed under this plan");
        assert!(
            matches!(
                err,
                GmiError::SegmentIo { .. } | GmiError::MapperTimeout { .. }
            ),
            "{err}"
        );
    }
    // The sync stubs were cleaned up: once the mapper heals, the very
    // same page is pulled successfully.
    s.faulty_files.set_plan(FaultPlan::quiet(0));
    let mut buf = [0u8; 8];
    pvm.vm_read(ctx, VirtAddr(16), &mut buf).unwrap();
    assert_eq!(buf, [0x42; 8]);
    pvm.check_invariants();
}

#[test]
fn slow_mapper_times_out_against_the_simulated_deadline() {
    // Each attempt burns 0.6 simulated seconds then fails transiently;
    // the 1-second deadline trips on the second attempt.
    let slow = FaultPlan {
        transient_per_mille: 1000,
        delay_per_mille: 1000,
        delay_ns: 600_000_000,
        ..FaultPlan::quiet(5)
    };
    let s = stack(16, slow, FaultPlan::quiet(0), |_| {});
    let pvm = &s.pvm;
    let ctx = pvm.context_create().unwrap();
    let seg = s
        .seg_mgr
        .segment_for(s.files.create_segment(&vec![1; SEG_SIZE]));
    let cache = pvm.cache_create(Some(seg)).unwrap();
    pvm.region_create(ctx, VirtAddr(0), SEG_SIZE as u64, Prot::RW, cache, 0)
        .unwrap();
    let mut buf = [0u8; 4];
    let err = pvm.vm_read(ctx, VirtAddr(0), &mut buf).unwrap_err();
    assert!(matches!(err, GmiError::MapperTimeout { .. }), "{err}");
    assert!(pvm.stats().mapper_timeouts >= 1);
    // Timeouts are transient: the cache is NOT quarantined.
    assert_eq!(pvm.stats().quarantined_caches, 0);
    s.faulty_files.set_plan(FaultPlan::quiet(0));
    pvm.vm_read(ctx, VirtAddr(0), &mut buf).unwrap();
    assert_eq!(buf, [1; 4]);
}

#[test]
fn failed_pageout_never_loses_a_dirty_page() {
    // The swap mapper rejects every write; a pageout forced by memory
    // pressure fails, the triggering fault returns the error, and the
    // dirty page stays dirty in memory. After the mapper heals, the
    // retried pageout writes the page back and nothing is lost.
    let bad_swap = FaultPlan {
        transient_per_mille: 1000,
        ..FaultPlan::quiet(9)
    };
    let s = stack(4, FaultPlan::quiet(0), bad_swap, |c| {
        c.retry = RetryPolicy::no_retry();
    });
    let pvm = &s.pvm;
    let ctx = pvm.context_create().unwrap();
    let cache = pvm.cache_create(None).unwrap();
    let pages = 8u64;
    pvm.region_create(ctx, VirtAddr(0x10_0000), pages * PS, Prot::RW, cache, 0)
        .unwrap();

    // Dirty pages page-by-page until a pageout is forced and fails.
    let mut oracle = vec![Vec::new(); pages as usize];
    let mut failed = 0u64;
    for p in 0..pages {
        let data: Vec<u8> = (0..PS).map(|k| (p as u8) ^ (k as u8)).collect();
        match pvm.vm_write(ctx, VirtAddr(0x10_0000 + p * PS), &data) {
            Ok(()) => oracle[p as usize] = data,
            Err(e) => {
                assert!(e.is_transient(), "{e}");
                failed += 1;
            }
        }
    }
    assert!(failed > 0, "pressure never forced a failing pageout");
    assert_eq!(s.swap.swapped_out_bytes(), 0, "no write may have landed");

    // Heal the swap mapper; re-run the failed writes.
    s.faulty_swap.set_plan(FaultPlan::quiet(0));
    for p in 0..pages {
        if oracle[p as usize].is_empty() {
            let data: Vec<u8> = (0..PS).map(|k| (p as u8) ^ (k as u8)).collect();
            pvm.vm_write(ctx, VirtAddr(0x10_0000 + p * PS), &data)
                .unwrap();
            oracle[p as usize] = data;
        }
    }
    assert!(
        s.swap.swapped_out_bytes() > 0,
        "retried pageout must reach the swap mapper"
    );
    // Every page — including those whose earlier pageout failed — holds
    // exactly its oracle bytes.
    for p in 0..pages {
        let mut got = vec![0u8; PS as usize];
        pvm.vm_read(ctx, VirtAddr(0x10_0000 + p * PS), &mut got)
            .unwrap();
        assert_eq!(got, oracle[p as usize], "page {p} lost data");
    }
    pvm.check_invariants();
}

#[test]
fn emergency_pageout_rescues_fill_up_when_replacement_is_off() {
    // Page replacement disabled, two frames, three pages wanted: the
    // third pull's fillUp cannot allocate — failing it would strand the
    // pull, so the emergency pass trades the clean working set for
    // progress.
    let s = stack(2, FaultPlan::quiet(0), FaultPlan::quiet(0), |c| {
        c.enable_pageout = false;
        c.emergency_pageout = true;
    });
    let pvm = &s.pvm;
    let ctx = pvm.context_create().unwrap();
    let init: Vec<u8> = (0..SEG_SIZE).map(|k| k as u8).collect();
    let seg = s.seg_mgr.segment_for(s.files.create_segment(&init));
    let cache = pvm.cache_create(Some(seg)).unwrap();
    pvm.region_create(ctx, VirtAddr(0), SEG_SIZE as u64, Prot::READ, cache, 0)
        .unwrap();
    let mut buf = [0u8; 4];
    for p in 0..3u64 {
        pvm.vm_read(ctx, VirtAddr(p * PS), &mut buf).unwrap();
        assert_eq!(buf[0], (p * PS) as u8);
    }
    assert!(pvm.stats().emergency_pageouts >= 1);
    pvm.check_invariants();
}

#[test]
fn clustered_pull_clamps_at_segment_end() {
    // Regression: a fully-backed cache owns *every* offset, so an
    // unclamped 8-page cluster faulting at page 0 of a 4-page segment
    // would pull past the segment end — wasted mapper I/O and frames
    // full of sparse zeroes. With the clamp the run stops at the
    // segment's known length.
    let s = stack(16, FaultPlan::quiet(0), FaultPlan::quiet(0), |c| {
        c.pull_cluster_pages = 8;
    });
    let pvm = &s.pvm;
    let ctx = pvm.context_create().unwrap();
    let init: Vec<u8> = (0..SEG_SIZE).map(|k| k as u8).collect();
    let seg = s.seg_mgr.segment_for(s.files.create_segment(&init));
    let cache = pvm.cache_create(Some(seg)).unwrap();
    // The region is twice the segment, so offsets past the segment end
    // are addressable (and owned, the cache being fully backed).
    pvm.region_create(ctx, VirtAddr(0), 2 * SEG_SIZE as u64, Prot::READ, cache, 0)
        .unwrap();
    let mut buf = [0u8; 4];
    pvm.vm_read(ctx, VirtAddr(0), &mut buf).unwrap();
    assert_eq!(buf[0], 0);
    assert_eq!(pvm.stats().pull_ins, 1);
    // The last in-segment page rode along in the clamped cluster...
    pvm.vm_read(ctx, VirtAddr(3 * PS), &mut buf).unwrap();
    assert_eq!(
        pvm.stats().pull_ins,
        1,
        "page 3 must already be resident from the clustered pull"
    );
    // ...but the first page past the segment end did not.
    pvm.vm_read(ctx, VirtAddr(4 * PS), &mut buf).unwrap();
    assert_eq!(
        pvm.stats().pull_ins,
        2,
        "the cluster must stop at the segment end"
    );
    assert_eq!(buf, [0u8; 4], "data past the segment end is sparse zeroes");
    pvm.check_invariants();
}

#[test]
fn clustered_pull_stops_at_resident_pages() {
    // Regression: a cluster extending over an already-resident page (or
    // an in-transit stub) must stop rather than re-pull it.
    let s = stack(16, FaultPlan::quiet(0), FaultPlan::quiet(0), |c| {
        c.pull_cluster_pages = 8;
    });
    let pvm = &s.pvm;
    let ctx = pvm.context_create().unwrap();
    let init: Vec<u8> = (0..SEG_SIZE).map(|k| k as u8).collect();
    let seg = s.seg_mgr.segment_for(s.files.create_segment(&init));
    let cache = pvm.cache_create(Some(seg)).unwrap();
    pvm.region_create(ctx, VirtAddr(0), SEG_SIZE as u64, Prot::READ, cache, 0)
        .unwrap();
    let mut buf = [0u8; 4];
    // First fault at page 2: pulls pages 2..4 (clamped at segment end).
    pvm.vm_read(ctx, VirtAddr(2 * PS), &mut buf).unwrap();
    assert_eq!(pvm.stats().pull_ins, 1);
    // Fault at page 0: the cluster must stop at resident page 2.
    pvm.vm_read(ctx, VirtAddr(0), &mut buf).unwrap();
    assert_eq!(pvm.stats().pull_ins, 2);
    // Everything is now resident; no pull may fire again, and every
    // byte matches the segment.
    let mut got = vec![0u8; SEG_SIZE];
    pvm.vm_read(ctx, VirtAddr(0), &mut got).unwrap();
    assert_eq!(got, init);
    assert_eq!(pvm.stats().pull_ins, 2, "re-pulled a resident page");
    pvm.check_invariants();
}

#[test]
fn batched_writeback_faults_never_lose_dirty_pages() {
    // The full healing workload with clustering and the writeback
    // daemon on, under transient/truncate/crash fault sprinkling on
    // *writes* as well as reads: batched copyBacks fail mid-run, get
    // split and retried page by page, and the byte oracle proves no
    // dirty page is ever lost. Truncated writes land half the batch
    // before dying, so the idempotent-rewrite path is exercised too.
    let mut batches = 0u64;
    let mut splits = 0u64;
    for seed in 0..12u64 {
        let plan = FaultPlan {
            seed,
            transient_per_mille: 150,
            permanent_per_mille: 0,
            delay_per_mille: 0,
            delay_ns: 0,
            truncate_per_mille: 150,
            crash_at_op: Some(seed % 13 + 2),
            hang_at_op: None,
        };
        let s = stack(
            8,
            plan,
            FaultPlan {
                seed: !seed,
                ..plan
            },
            |c| {
                generous_retry(c);
                c.push_cluster_pages = 4;
                c.writeback_daemon = true;
                c.writeback_low_frames = 2;
                c.writeback_high_frames = 4;
            },
        );
        healing_workload(&s, seed, 3, 40);
        let stats = s.pvm.stats();
        batches += stats.push_out_batches;
        splits += stats.push_batch_splits;
        assert_eq!(stats.quarantined_caches, 0, "seed={seed}");
    }
    assert!(batches > 0, "clustered pushOut never fired");
    assert!(
        splits > 0,
        "no batch ever failed and split: faults too weak"
    );
}

#[test]
fn batched_pushout_permanent_death_quarantines_without_data_loss_elsewhere() {
    // The file mapper dies permanently right before a batched sync
    // pushOut: the split pass aborts on the first page, nothing partial
    // lands on the segment, the cache is quarantined exactly once, and
    // an unrelated cache on a clean mapper is untouched.
    let s = stack(16, FaultPlan::quiet(0), FaultPlan::quiet(0), |c| {
        c.push_cluster_pages = 4;
    });
    let clean = Arc::new(MemMapper::new(PortName(7)));
    s.seg_mgr.register_mapper(PortName(7), clean.clone());
    let pvm = &s.pvm;
    let ctx = pvm.context_create().unwrap();
    let init = vec![0x11u8; SEG_SIZE];
    let cap = s.files.create_segment(&init);
    let seg = s.seg_mgr.segment_for(cap);
    let cache = pvm.cache_create(Some(seg)).unwrap();
    pvm.region_create(
        ctx,
        VirtAddr(0x10_0000),
        SEG_SIZE as u64,
        Prot::RW,
        cache,
        0,
    )
    .unwrap();
    let good_init: Vec<u8> = (0..SEG_SIZE).map(|k| k as u8).collect();
    let good_seg = s.seg_mgr.segment_for(clean.create_segment(&good_init));
    let good_cache = pvm.cache_create(Some(good_seg)).unwrap();
    pvm.region_create(
        ctx,
        VirtAddr(0x20_0000),
        SEG_SIZE as u64,
        Prot::RW,
        good_cache,
        0,
    )
    .unwrap();

    // Dirty all four pages while the mapper is healthy...
    for p in 0..SEG_PAGES {
        let data: Vec<u8> = (0..PS).map(|k| (p as u8) ^ (k as u8)).collect();
        pvm.vm_write(ctx, VirtAddr(0x10_0000 + p * PS), &data)
            .unwrap();
    }
    // ...then it dies, and the sync's 4-page batch fails, splits, and
    // aborts on the first per-page push.
    s.faulty_files.set_plan(FaultPlan {
        permanent_per_mille: 1000,
        ..FaultPlan::quiet(21)
    });
    let err = pvm.cache_sync(cache, 0, SEG_SIZE as u64).unwrap_err();
    assert!(matches!(err, GmiError::MapperUnavailable { .. }), "{err}");
    assert!(
        pvm.stats().push_batch_splits >= 1,
        "the multi-page batch must have split on failure"
    );
    assert_eq!(pvm.stats().quarantined_caches, 1);
    assert_eq!(
        s.files.segment_data(cap),
        init,
        "no partial write may land on the segment"
    );

    // The innocent cache on the clean mapper still works end to end.
    let tag: Vec<u8> = (0..PS).map(|k| 0xA5 ^ (k as u8)).collect();
    pvm.vm_write(ctx, VirtAddr(0x20_0000), &tag).unwrap();
    let mut got = vec![0u8; PS as usize];
    pvm.vm_read(ctx, VirtAddr(0x20_0000), &mut got).unwrap();
    assert_eq!(got, tag);
    pvm.check_invariants();
}

#[test]
fn adaptive_readahead_ramps_on_sequential_streams() {
    // A strictly sequential read over a long segment with adaptive
    // readahead: each miss landing where the previous cluster ended
    // doubles the window, so the pull count grows logarithmically, and
    // the ramp counters record the progression. A random re-access
    // resets the window (no ramp counters move for it).
    let long_pages = 32u64;
    let init: Vec<u8> = (0..long_pages * PS).map(|k| (k % 251) as u8).collect();
    let s = stack(64, FaultPlan::quiet(0), FaultPlan::quiet(0), |c| {
        c.pull_cluster_pages = 1;
        c.readahead_adaptive = true;
        c.readahead_max_pages = 8;
    });
    let pvm = &s.pvm;
    let ctx = pvm.context_create().unwrap();
    let seg = s.seg_mgr.segment_for(s.files.create_segment(&init));
    let cache = pvm.cache_create(Some(seg)).unwrap();
    pvm.region_create(ctx, VirtAddr(0), long_pages * PS, Prot::READ, cache, 0)
        .unwrap();
    let mut buf = [0u8; 4];
    for p in 0..long_pages {
        pvm.vm_read(ctx, VirtAddr(p * PS), &mut buf).unwrap();
        assert_eq!(buf[0], ((p * PS) % 251) as u8, "page {p}");
    }
    let stats = pvm.stats();
    // Windows 1,2,4,8,8,... cover 32 pages in 7 pulls; without
    // adaptation it would take 32.
    assert!(
        stats.pull_ins <= 8,
        "sequential stream did not ramp: {} pulls",
        stats.pull_ins
    );
    assert!(stats.readahead_hits >= 4, "{:?}", stats.readahead_hits);
    assert!(stats.readahead_ramps >= 3, "{:?}", stats.readahead_ramps);
    pvm.check_invariants();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// Any seed, any heal-able fault mix: the stack stays oracle-exact.
    #[test]
    fn random_fault_schedules_agree_with_oracle(
        seed in any::<u64>(),
        transient in 0..150u32,
        truncate in 0..100u32,
        crash_at in 0..24u64,
    ) {
        let plan = FaultPlan {
            seed,
            transient_per_mille: transient,
            permanent_per_mille: 0,
            delay_per_mille: 80,
            delay_ns: 10_000,
            truncate_per_mille: truncate,
            crash_at_op: Some(crash_at),
            hang_at_op: None,
        };
        let s = stack(8, plan, FaultPlan { seed: !seed, ..plan }, generous_retry);
        healing_workload(&s, seed, 2, 30);
    }
}

// ----- trace correlation ---------------------------------------------------

/// Under an injected-fault plan, the trace stream must account for
/// every counted retry, timeout, quarantine and injected fault: each
/// `mapper_retries` increment has a matching `UpcallEnd{retries}`
/// record, and every fault the mapper logged appears as a
/// `mapper.inject` instant on the same timeline.
#[test]
fn injected_faults_and_retries_appear_in_the_trace() {
    let s = stack(8, healable_plan(9), healable_plan(!9), generous_retry);
    healing_workload(&s, 9, 3, 40);

    let tracer = s.pvm.tracer();
    assert_eq!(tracer.dropped(), 0, "ring overflow would skew the counts");
    let records = tracer.drain();
    let stats = s.pvm.stats();

    let injected_logged = s.faulty_files.take_log().len() + s.faulty_swap.take_log().len();
    let injected_traced = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::MapperFaultInjected { .. }))
        .count();
    assert_eq!(injected_traced, injected_logged);
    assert!(injected_traced > 0, "plan injected nothing");

    let retries_traced: u64 = records
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::UpcallEnd { retries, .. } => Some(retries),
            _ => None,
        })
        .sum();
    assert_eq!(retries_traced, stats.mapper_retries);
    assert!(retries_traced > 0, "retries never fired");

    let timeouts_traced = records
        .iter()
        .filter(|r| {
            matches!(
                r.event,
                TraceEvent::UpcallEnd {
                    outcome: UpcallOutcome::Timeout,
                    ..
                }
            )
        })
        .count() as u64;
    assert_eq!(timeouts_traced, stats.mapper_timeouts);

    let quarantines_traced = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::Quarantine { .. }))
        .count() as u64;
    assert_eq!(quarantines_traced, stats.quarantined_caches);

    // Every upcall begins and ends exactly once.
    let starts = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::UpcallStart { .. }))
        .count();
    let ends = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::UpcallEnd { .. }))
        .count();
    assert_eq!(starts, ends, "unbalanced upcall start/end");

    // Successful pulls: one Ok pullIn end per counted pull_in.
    let pull_ok = records
        .iter()
        .filter(|r| {
            matches!(
                r.event,
                TraceEvent::UpcallEnd {
                    kind: chorus_pvm::trace::UpcallKind::PullIn,
                    outcome: UpcallOutcome::Ok,
                    ..
                }
            )
        })
        .count() as u64;
    assert_eq!(pull_ok, stats.pull_ins);
}

// ----- asynchronous upcall engine ------------------------------------------

/// Async knobs used by the engine fault tests: clustered pulls feed the
/// tail-split path and the laundering daemon feeds fire-and-collect
/// pushes, all through the completion scheduler.
fn async_knobs(c: &mut PvmConfig) {
    c.pull_cluster_pages = 4;
    c.readahead_max_pages = 8;
    c.push_cluster_pages = 4;
    c.writeback_daemon = true;
    c.writeback_low_frames = 2;
    c.writeback_high_frames = 4;
    c.async_upcalls = true;
    c.max_inflight_upcalls = 4;
}

#[test]
fn async_upcalls_heal_faults_without_dirty_page_loss() {
    // The healing workload under the completion engine with transient,
    // truncating and crash-once faults on both mappers: the byte oracle
    // proves no dirty page is lost while completions are in flight, and
    // draining retires every submission exactly once.
    for seed in 0..8u64 {
        let s = stack(8, healable_plan(seed), healable_plan(!seed), |c| {
            generous_retry(c);
            async_knobs(c);
        });
        healing_workload(&s, seed, 3, 40);
        s.pvm.drain_upcalls();
        let stats = s.pvm.stats();
        assert!(stats.async_submits > 0, "engine never engaged, seed={seed}");
        assert_eq!(
            stats.async_deliveries, stats.async_submits,
            "in-flight completion leaked, seed={seed}"
        );
        assert_eq!(stats.quarantined_caches, 0, "seed={seed}");
        s.pvm.check_invariants();
    }
}

/// Builds the OOO stack: real sun3 costs (the completion scheduler
/// orders by due time, which is degenerate under zero costs), an
/// anonymous working set and a laundering daemon that gathers one
/// 8-page batch and one single-page batch in the same pass.
fn ooo_stack() -> FaultStack {
    let seg_mgr = Arc::new(NucleusSegmentManager::new());
    let files = Arc::new(MemMapper::new(PortName(1)));
    let faulty_files = Arc::new(FaultyMapper::new(files.clone(), FaultPlan::quiet(0)));
    let swap = Arc::new(SwapMapper::new(PortName(2)));
    let faulty_swap = Arc::new(FaultyMapper::new(swap.clone(), FaultPlan::quiet(0)));
    seg_mgr.register_mapper(PortName(1), faulty_files.clone());
    seg_mgr.register_mapper(PortName(2), faulty_swap.clone());
    seg_mgr.set_default_mapper(PortName(2));
    let config = PvmConfig::builder()
        .paging(|p| p.check_invariants(true).push_cluster_pages(8))
        .r#async(|a| a.async_upcalls(true).max_inflight_upcalls(4))
        .pressure(|pr| {
            pr.writeback_daemon(true)
                .writeback_low_frames(4)
                .writeback_high_frames(6)
        })
        .build()
        .expect("valid config");
    let pvm = Arc::new(Pvm::new(
        PvmOptions {
            geometry: PageGeometry::new(PS),
            frames: 12,
            cost: CostParams::sun3(),
            config,
            ..PvmOptions::default()
        },
        SyncShim::wrap(seg_mgr.clone()),
    ));
    faulty_files.attach_clock(pvm.cost_model());
    faulty_swap.attach_clock(pvm.cost_model());
    FaultStack {
        pvm,
        seg_mgr,
        files,
        faulty_files,
        swap,
        faulty_swap,
    }
}

/// Dirties an 8-page contiguous run plus one disjoint page on an
/// anonymous cache, then triggers one laundering pass. The pass
/// submits the 8-page push first (long service time) and the 1-page
/// push second (short service time): the second, higher-id request
/// completes first. Returns (final sim time, stats).
fn ooo_run(s: &FaultStack) -> (u64, chorus_pvm::PvmStats) {
    let pvm = &s.pvm;
    let ctx = pvm.context_create().unwrap();
    let cache = pvm.cache_create(None).unwrap();
    let pages = 16u64;
    pvm.region_create(ctx, VirtAddr(0x10_0000), pages * PS, Prot::RW, cache, 0)
        .unwrap();
    // Pages 0..8 form the batched run; page 10 is its own run.
    for p in (0..8).chain([10u64]) {
        let data: Vec<u8> = (0..PS).map(|k| (p as u8) ^ (k as u8)).collect();
        pvm.vm_write(ctx, VirtAddr(0x10_0000 + p * PS), &data)
            .unwrap();
    }
    // 9 of 12 frames used: the next hard fault enters below the low
    // watermark and runs the laundering pass that submits both pushes.
    let mut buf = [0u8; 4];
    pvm.vm_read(ctx, VirtAddr(0x10_0000 + 11 * PS), &mut buf)
        .unwrap();
    pvm.drain_upcalls();
    pvm.check_invariants();
    (pvm.cost_model().now().nanos(), pvm.stats())
}

#[test]
fn async_completions_deliver_out_of_order_and_deterministically() {
    let s = ooo_stack();
    let (t1, stats1) = ooo_run(&s);
    assert!(stats1.async_submits >= 2, "{stats1:?}");
    assert_eq!(stats1.async_deliveries, stats1.async_submits);
    assert!(
        stats1.async_out_of_order >= 1,
        "the short push never overtook the long batch: {stats1:?}"
    );
    // No dirty page was lost across the out-of-order deliveries.
    assert_eq!(s.swap.swapped_out_bytes(), 9 * PS, "{stats1:?}");

    // Bit-identical repeat: same stack build, same workload, same
    // simulated clock and the same counter table.
    let (t2, stats2) = ooo_run(&ooo_stack());
    assert_eq!(t1, t2, "simulated time diverged across identical runs");
    assert_eq!(stats1, stats2, "counters diverged across identical runs");
}

// ===== memory-pressure survival: watchdog, backpressure, OOM killer =====

/// One simulated hour: the horizon a hung (timed-out) asynchronous
/// upcall parks at when nobody cancels it.
const HOUR: u64 = 3_600_000_000_000;

/// A plan whose only fault is a hang: from upcall number `at` on, the
/// mapper wedges and every reply is a transient-looking `MapperTimeout`.
fn hang_plan(at: u64) -> FaultPlan {
    FaultPlan {
        seed: 1,
        transient_per_mille: 0,
        permanent_per_mille: 0,
        delay_per_mille: 0,
        delay_ns: 0,
        truncate_per_mille: 0,
        crash_at_op: None,
        hang_at_op: Some(at),
    }
}

/// The pressure-suite knobs: clustered async pulls without the
/// writeback daemon (so the only engine traffic is what the test
/// drives), readahead capped at the cluster size to keep pull
/// boundaries fixed.
fn pressure_knobs(c: &mut PvmConfig) {
    async_knobs(c);
    c.writeback_daemon = false;
    c.readahead_max_pages = 4;
}

fn file_region(
    s: &FaultStack,
    pages: u64,
    base: u64,
) -> (chorus_gmi::CtxId, chorus_gmi::CacheId, Vec<u8>) {
    let init: Vec<u8> = (0..pages * PS)
        .map(|k| (k as u8).wrapping_mul(7).wrapping_add(3))
        .collect();
    let cap = s.files.create_segment(&init);
    let seg = s.seg_mgr.segment_for(cap);
    let cache = s.pvm.cache_create(Some(seg)).unwrap();
    let ctx = s.pvm.context_create().unwrap();
    s.pvm
        .region_create(ctx, VirtAddr(base), pages * PS, Prot::RW, cache, 0)
        .unwrap();
    (ctx, cache, init)
}

#[test]
fn watchdog_cancels_hung_pull_and_degrades_the_segment_to_sync() {
    let s = stack(16, hang_plan(0), FaultPlan::quiet(2), |c| {
        pressure_knobs(c);
        c.upcall_watchdog = true;
        c.suspect_after_timeouts = 1;
        c.quarantine_after_timeouts = 10;
    });
    let pvm = &s.pvm;
    let init: Vec<u8> = (0..SEG_SIZE)
        .map(|k| (k as u8).wrapping_mul(7).wrapping_add(3))
        .collect();
    let cap = s.files.create_segment(&init);
    let seg = s.seg_mgr.segment_for(cap);
    let cache = pvm.cache_create(Some(seg)).unwrap();
    let ctx = pvm.context_create().unwrap();
    let base = 0x10_0000u64;
    pvm.region_create(ctx, VirtAddr(base), SEG_SIZE as u64, Prot::RW, cache, 0)
        .unwrap();

    // First fault: the clustered pull splits, the async tail wedges in
    // the hung mapper and parks in flight, the sync head times out
    // against the retry deadline and surfaces a transient error.
    let mut byte = [0u8; 1];
    let err = pvm.vm_read(ctx, VirtAddr(base), &mut byte).unwrap_err();
    assert!(matches!(err, GmiError::MapperTimeout { .. }), "{err}");
    assert!(s.faulty_files.is_wedged());

    // Heal the mapper, then let the watchdog rule on the parked pull:
    // it is cancelled at its deadline (about a simulated second), not
    // at the hung-reply horizon, and the segment becomes Suspected.
    s.faulty_files.set_plan(FaultPlan::quiet(2));
    pvm.drain_upcalls();
    let stats = pvm.stats();
    assert_eq!(stats.watchdog_cancels, 1, "{stats:?}");
    assert_eq!(stats.suspected_mappers, 1, "{stats:?}");
    assert_eq!(stats.quarantined_caches, 0, "{stats:?}");
    let t = pvm.cost_model().now().nanos();
    assert!(t < HOUR, "watchdog waited for the hung reply: {t} ns");

    // A Suspected segment degrades to the synchronous path, which is
    // slower but correct: the full content reads back.
    let mut got = vec![0u8; SEG_SIZE];
    pvm.vm_read(ctx, VirtAddr(base), &mut got).unwrap();
    assert_eq!(got, init);

    // No dirty page is lost across the recovery: overwrite the whole
    // segment and push it back through the degraded path.
    let new: Vec<u8> = (0..SEG_SIZE)
        .map(|k| (k as u8).wrapping_mul(13).wrapping_add(5))
        .collect();
    pvm.vm_write(ctx, VirtAddr(base), &new).unwrap();
    pvm.cache_sync(cache, 0, SEG_SIZE as u64).unwrap();
    assert_eq!(s.files.segment_data(cap), new, "dirty pages lost");
    pvm.check_invariants();
}

#[test]
fn watchdog_bounds_the_stall_where_the_bare_engine_waits_an_hour() {
    // Identical stacks, identical workload, one knob: with the watchdog
    // the hung pull is cancelled at its retry deadline; without it the
    // forced delivery must ride out the full hung-reply horizon.
    let run = |watchdog: bool| {
        let s = stack(16, hang_plan(0), FaultPlan::quiet(2), |c| {
            pressure_knobs(c);
            c.upcall_watchdog = watchdog;
        });
        let (ctx, _cache, _init) = file_region(&s, SEG_PAGES, 0x10_0000);
        let mut byte = [0u8; 1];
        let err = s
            .pvm
            .vm_read(ctx, VirtAddr(0x10_0000), &mut byte)
            .unwrap_err();
        assert!(err.is_transient(), "{err}");
        s.pvm.drain_upcalls();
        s.pvm.check_invariants();
        (s.pvm.cost_model().now().nanos(), s.pvm.stats())
    };
    let (t_on, stats_on) = run(true);
    let (t_off, stats_off) = run(false);
    assert!(t_on < HOUR, "watchdog run stalled: {t_on} ns");
    assert!(t_off >= HOUR, "bare run finished early: {t_off} ns");
    assert_eq!(stats_on.watchdog_cancels, 1, "{stats_on:?}");
    assert_eq!(stats_off.watchdog_cancels, 0, "{stats_off:?}");

    // The watchdog path is bit-deterministic.
    let (t_on2, stats_on2) = run(true);
    assert_eq!(t_on, t_on2, "simulated time diverged");
    assert_eq!(stats_on, stats_on2, "counters diverged");
}

#[test]
fn repeated_hangs_escalate_from_suspected_to_quarantine() {
    let s = stack(16, hang_plan(0), FaultPlan::quiet(2), |c| {
        pressure_knobs(c);
        c.upcall_watchdog = true;
        c.suspect_after_timeouts = 1;
        c.quarantine_after_timeouts = 1;
    });
    let pvm = &s.pvm;
    let (ctx, _cache, init) = file_region(&s, SEG_PAGES, 0x10_0000);
    let mut byte = [0u8; 1];
    let err = pvm
        .vm_read(ctx, VirtAddr(0x10_0000), &mut byte)
        .unwrap_err();
    assert!(err.is_transient(), "{err}");

    // The watchdog cancellation both suspects the segment and, at the
    // quarantine threshold, poisons the cache.
    pvm.drain_upcalls();
    let err = pvm
        .vm_read(ctx, VirtAddr(0x10_0000), &mut byte)
        .unwrap_err();
    assert!(matches!(err, GmiError::CachePoisoned(_)), "{err}");
    let stats = pvm.stats();
    assert_eq!(stats.watchdog_cancels, 1, "{stats:?}");
    assert_eq!(stats.suspected_mappers, 1, "{stats:?}");
    assert_eq!(stats.quarantined_caches, 1, "{stats:?}");

    // The quarantine is cache-level, the suspicion segment-level: a
    // fresh cache on the healed mapper works through the degraded
    // synchronous path.
    s.faulty_files.set_plan(FaultPlan::quiet(2));
    let cap2 = s.files.create_segment(&init);
    let seg2 = s.seg_mgr.segment_for(cap2);
    let cache2 = pvm.cache_create(Some(seg2)).unwrap();
    pvm.region_create(
        ctx,
        VirtAddr(0x20_0000),
        SEG_SIZE as u64,
        Prot::RW,
        cache2,
        0,
    )
    .unwrap();
    let mut got = vec![0u8; SEG_SIZE];
    pvm.vm_read(ctx, VirtAddr(0x20_0000), &mut got).unwrap();
    assert_eq!(got, init);
    assert!(pvm.cost_model().now().nanos() < HOUR);
    pvm.check_invariants();
}

#[test]
fn quarantine_mid_flight_fails_coalesced_pending_pulls() {
    // Regression: a cache quarantined while one of its pulls is in
    // flight must fail the coalesced pulls queued behind that request
    // (clearing their stubs) rather than drop them, or a faulter on the
    // queued range sleeps on a stub that will never be filled.
    let s = stack(16, hang_plan(0), FaultPlan::quiet(2), |c| {
        pressure_knobs(c);
        c.max_inflight_upcalls = 1;
    });
    let pvm = &s.pvm;
    let (ctx, _cache, _init) = file_region(&s, 8, 0x10_0000);
    let base = 0x10_0000u64;

    // Fault page 0: the async tail (pages 1..4) wedges and parks in
    // flight; the sync head times out.
    let mut byte = [0u8; 1];
    let err = pvm.vm_read(ctx, VirtAddr(base), &mut byte).unwrap_err();
    assert!(err.is_transient(), "{err}");

    // The mapper now fails permanently (set_plan also un-wedges it).
    s.faulty_files.set_plan(FaultPlan {
        permanent_per_mille: 1000,
        ..FaultPlan::quiet(3)
    });

    // Fault page 4: its tail (pages 5..8) queues behind the parked
    // request (in-flight cap 1); the sync head's permanent failure
    // quarantines the cache mid-flight.
    let err = pvm
        .vm_read(ctx, VirtAddr(base + 4 * PS), &mut byte)
        .unwrap_err();
    assert!(!err.is_transient(), "{err}");

    // A faulter on the queued tail range observes the quarantine
    // promptly instead of sleeping behind the hung request.
    let err = pvm
        .vm_read(ctx, VirtAddr(base + 5 * PS), &mut byte)
        .unwrap_err();
    assert!(matches!(err, GmiError::CachePoisoned(_)), "{err}");
    let t = pvm.cost_model().now().nanos();
    assert!(t < HOUR, "faulter waited on the hung reply: {t} ns");
    let stats = pvm.stats();
    assert_eq!(stats.async_pending_failed, 1, "{stats:?}");
    assert_eq!(stats.quarantined_caches, 1, "{stats:?}");

    pvm.drain_upcalls();
    pvm.check_invariants();
}

#[test]
fn backpressure_throttles_faulters_at_the_pending_pull_bound() {
    let s = stack(16, hang_plan(0), FaultPlan::quiet(2), |c| {
        pressure_knobs(c);
        c.max_inflight_upcalls = 1;
        c.max_pending_pulls = 1;
        c.upcall_watchdog = true;
        c.suspect_after_timeouts = 10;
        c.quarantine_after_timeouts = 10;
    });
    let pvm = &s.pvm;
    let (ctx, _cache, init) = file_region(&s, 12, 0x10_0000);
    let base = 0x10_0000u64;
    let mut byte = [0u8; 1];

    // Saturate: one parked in-flight pull (pages 1..4), one pending
    // pull queued behind it (pages 5..8).
    let err = pvm.vm_read(ctx, VirtAddr(base), &mut byte).unwrap_err();
    assert!(err.is_transient(), "{err}");
    let err = pvm
        .vm_read(ctx, VirtAddr(base + 4 * PS), &mut byte)
        .unwrap_err();
    assert!(err.is_transient(), "{err}");

    // The third faulter hits the bound: it is throttled, and the stall
    // force-delivers (cancels) the parked request to drain the queue
    // forward rather than merely sleeping.
    let err = pvm
        .vm_read(ctx, VirtAddr(base + 8 * PS), &mut byte)
        .unwrap_err();
    assert!(err.is_transient(), "{err}");
    let stats = pvm.stats();
    assert_eq!(stats.throttle_stalls, 1, "{stats:?}");
    assert_eq!(stats.watchdog_cancels, 1, "{stats:?}");
    let t = pvm.cost_model().now().nanos();
    assert!(
        t < HOUR,
        "throttled faulter waited for the hung reply: {t} ns"
    );

    // Heal; the drained pipeline recovers and every byte reads back.
    s.faulty_files.set_plan(FaultPlan::quiet(2));
    pvm.drain_upcalls();
    let mut got = vec![0u8; (12 * PS) as usize];
    pvm.vm_read(ctx, VirtAddr(base), &mut got).unwrap();
    assert_eq!(got, init);
    assert!(pvm.cost_model().now().nanos() < HOUR);
    pvm.check_invariants();
}

#[test]
fn emergency_reserve_fences_ordinary_allocations_but_feeds_fill_up() {
    let s = stack(4, FaultPlan::quiet(1), FaultPlan::quiet(2), |c| {
        c.emergency_reserve_frames = 2;
    });
    let pvm = &s.pvm;
    let ctx = pvm.context_create().unwrap();
    let cache = pvm.cache_create(None).unwrap();
    pvm.region_create(ctx, VirtAddr(0x10_0000), 8 * PS, Prot::RW, cache, 0)
        .unwrap();
    // Ordinary (zero-fill) allocations never dip below the reserve:
    // page replacement runs early and squeezes the anonymous working
    // set into the unreserved frames.
    for p in 0..8u64 {
        pvm.vm_write(ctx, VirtAddr(0x10_0000 + p * PS), &[p as u8])
            .unwrap();
    }
    assert_eq!(
        pvm.free_frames(),
        2,
        "ordinary allocations breached the reserve"
    );

    // Reclaim-critical work -- `fillUp` landing pulled data -- may draw
    // from the reserve, closing the regress where freeing frames itself
    // needs a frame.
    let init: Vec<u8> = (0..PS as usize).map(|k| (k as u8) ^ 0x5A).collect();
    let cap = s.files.create_segment(&init);
    let seg = s.seg_mgr.segment_for(cap);
    let cache_f = pvm.cache_create(Some(seg)).unwrap();
    pvm.region_create(ctx, VirtAddr(0x20_0000), PS, Prot::READ, cache_f, 0)
        .unwrap();
    let mut got = vec![0u8; PS as usize];
    pvm.vm_read(ctx, VirtAddr(0x20_0000), &mut got).unwrap();
    assert_eq!(got, init);
    let stats = pvm.stats();
    assert!(stats.reserve_grants >= 1, "{stats:?}");
    assert!(pvm.free_frames() < 2, "fillUp did not use the reserve");
    pvm.check_invariants();
}

/// The OOM scenario: every frame pinned by two contexts (the victim
/// with six locked dirty pages, the survivor with two), then a third
/// context faults. Reclaim can make no progress, so the killer must
/// reclaim exactly one context -- the largest footprint.
fn oom_scenario() -> (u64, chorus_pvm::PvmStats, Vec<u8>) {
    let s = stack(8, FaultPlan::quiet(1), FaultPlan::quiet(2), |c| {
        c.oom_killer = true;
    });
    let pvm = &s.pvm;
    let ctx1 = pvm.context_create().unwrap();
    let cache1 = pvm.cache_create(None).unwrap();
    let r1 = pvm
        .region_create(ctx1, VirtAddr(0x10_0000), 6 * PS, Prot::RW, cache1, 0)
        .unwrap();
    pvm.region_lock_in_memory(r1).unwrap();

    let ctx2 = pvm.context_create().unwrap();
    let cache2 = pvm.cache_create(None).unwrap();
    let r2 = pvm
        .region_create(ctx2, VirtAddr(0x20_0000), 2 * PS, Prot::RW, cache2, 0)
        .unwrap();
    let keep: Vec<u8> = (0..2 * PS as usize)
        .map(|k| (k as u8).wrapping_mul(31).wrapping_add(7))
        .collect();
    pvm.vm_write(ctx2, VirtAddr(0x20_0000), &keep).unwrap();
    pvm.region_lock_in_memory(r2).unwrap();
    assert_eq!(pvm.free_frames(), 0, "setup must exhaust the pool");

    // Third context: a file-backed read needs a frame.
    let init: Vec<u8> = (0..PS as usize).map(|k| (k as u8) ^ 0x5A).collect();
    let cap = s.files.create_segment(&init);
    let seg = s.seg_mgr.segment_for(cap);
    let cache3 = pvm.cache_create(Some(seg)).unwrap();
    let ctx3 = pvm.context_create().unwrap();
    pvm.region_create(ctx3, VirtAddr(0x30_0000), PS, Prot::READ, cache3, 0)
        .unwrap();
    let mut got = vec![0u8; PS as usize];
    pvm.vm_read(ctx3, VirtAddr(0x30_0000), &mut got).unwrap();
    assert_eq!(got, init, "the fault that triggered the kill must complete");

    // The victim's handle reports the kill, not a bare missing context.
    let err = pvm
        .vm_read(ctx1, VirtAddr(0x10_0000), &mut [0u8; 1])
        .unwrap_err();
    assert!(
        matches!(err, GmiError::ContextKilled(id) if id == ctx1),
        "{err}"
    );

    // Differential check: the survivor's locked pages are untouched.
    let mut back = vec![0u8; keep.len()];
    pvm.vm_read(ctx2, VirtAddr(0x20_0000), &mut back).unwrap();
    assert_eq!(back, keep, "survivor's pages corrupted by the kill");
    let st = pvm.region_status(r2).unwrap();
    assert!(st.locked);
    assert_eq!(st.resident_pages, 2);
    pvm.check_invariants();
    (pvm.cost_model().now().nanos(), pvm.stats(), back)
}

#[test]
fn oom_killer_reclaims_exactly_one_deterministic_victim() {
    let (t1, stats1, back1) = oom_scenario();
    assert_eq!(stats1.oom_kills, 1, "{stats1:?}");
    // Bit-identical repeat: same victim, same clock, same counters.
    let (t2, stats2, back2) = oom_scenario();
    assert_eq!(t1, t2, "simulated time diverged across identical runs");
    assert_eq!(stats1, stats2, "counters diverged across identical runs");
    assert_eq!(back1, back2);
}
