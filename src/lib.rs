//! Facade crate for the Chorus GMI/PVM reproduction.
//!
//! Re-exports the public API of every workspace crate so examples and
//! downstream users can depend on a single crate. See the README for the
//! architecture and DESIGN.md for the paper-to-module map.

pub use chorus_gmi as gmi;
pub use chorus_hal as hal;
pub use chorus_mix as mix;
pub use chorus_nucleus as nucleus;
pub use chorus_pvm as pvm;
pub use chorus_rtmm as rtmm;
pub use chorus_shadow as shadow;
