//! The minimal real-time MM must pass the generic GMI conformance
//! suite: the paper's replaceability claim made executable.

use chorus_gmi::conformance::{self, Fixture};
use chorus_gmi::testing::MemSegmentManager;
use chorus_hal::{CostParams, PageGeometry};
use chorus_rtmm::{MinimalMm, MinimalOptions};
use std::sync::Arc;

#[test]
fn minimal_mm_passes_gmi_conformance() {
    conformance::run(|| {
        let mgr = Arc::new(MemSegmentManager::new());
        let gmi = Arc::new(MinimalMm::new(
            MinimalOptions {
                geometry: PageGeometry::new(256),
                frames: 512,
                cost: CostParams::zero(),
            },
            mgr.clone(),
        ));
        Fixture { gmi, mgr }
    });
}
