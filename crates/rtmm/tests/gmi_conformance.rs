//! The minimal real-time MM must pass the generic GMI conformance
//! suite: the paper's replaceability claim made executable — through
//! both v2 front ends (the sync-shim adapter over a v1 manager, and a
//! native [`chorus_gmi::SegmentManagerV2`]).

use chorus_gmi::conformance::{self, Fixture, V2Mode};
use chorus_gmi::testing::{MemSegmentManager, MemSegmentManagerV2};
use chorus_gmi::{SegmentManager, SegmentManagerV2, SyncShim};
use chorus_hal::{CostParams, PageGeometry};
use chorus_rtmm::{MinimalMm, MinimalOptions};
use std::sync::Arc;

fn options() -> MinimalOptions {
    MinimalOptions {
        geometry: PageGeometry::new(256),
        frames: 512,
        cost: CostParams::zero(),
    }
}

#[test]
fn minimal_mm_passes_gmi_conformance_both_v2_modes() {
    conformance::run_v2(|mode| {
        let mgr = Arc::new(MemSegmentManager::new());
        let gmi = Arc::new(match mode {
            // The v1 manager attaches through the SyncShim bridge.
            V2Mode::Shim => MinimalMm::new(options(), SyncShim::wrap(mgr.clone())),
            // The minimal manager has no completion engine; "native"
            // means a first-class v2 implementation, still synchronous.
            V2Mode::NativeAsync => {
                MinimalMm::new(options(), Arc::new(MemSegmentManagerV2::new(mgr.clone())))
            }
        });
        Fixture { gmi, mgr }
    });
}

/// The deprecated v1 entry points stay covered through an explicitly
/// constructed [`SyncShim`]: the adapter must forward every request
/// kind faithfully (the shim is permanent API for out-of-tree v1
/// mappers, not a leftover).
#[test]
fn sync_shim_adapter_passes_gmi_conformance() {
    conformance::run(|| {
        let mgr = Arc::new(MemSegmentManager::new());
        let v1: Arc<dyn SegmentManager> = mgr.clone();
        let shim: Arc<dyn SegmentManagerV2> = Arc::new(SyncShim::new(v1));
        let gmi = Arc::new(MinimalMm::new(options(), shim));
        Fixture { gmi, mgr }
    });
}
