//! The minimal GMI implementation for embedded real-time systems.
//!
//! §5.2 of the paper lists three implementations of the GMI in the
//! Chorus Nucleus: the PVM, "a minimal implementation, suited for
//! embedded real-time systems and small hardware configurations", and
//! the Nucleus-simulator one. This crate is the minimal one:
//!
//! - memory is **fully resident**: faults allocate immediately and
//!   nothing is ever paged out, so `lockInMemory` is trivially satisfied
//!   and access latencies are bounded (the real-time property);
//! - copies are **eager** — no history objects, no per-page stubs, no
//!   deferred anything: every `cache.copy` materializes destination
//!   pages at once (deterministic cost, the real-time trade-off);
//! - segments work through the typed v2 upcall interface
//!   ([`SegmentManagerV2`](chorus_gmi::SegmentManagerV2), with v1
//!   managers adapted via [`SyncShim`](chorus_gmi::SyncShim)): mapped
//!   files are pulled in on first touch and `sync` / `flush` push dirty
//!   data back, so the same kernel layers run unchanged (the
//!   replaceability property of §5.2).
//!
//! Everything above the GMI — the Nucleus, Chorus/MIX, the benches —
//! runs on this manager without modification; the
//! `tests/replaceable_mm.rs` suite in the workspace root holds it to
//! the same observable behaviour as the PVM.

mod mm;

pub use mm::{MinimalMm, MinimalOptions, MinimalStats};
