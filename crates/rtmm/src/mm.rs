//! The minimal memory manager proper.

use chorus_gmi::{
    Access, CacheId, CacheIo, CopyMode, CtxId, Gmi, GmiError, PageGeometry, Prot, PullRequest,
    PushRequest, RegionId, RegionStatus, Result, SegmentId, SegmentManagerV2, VirtAddr,
};
use chorus_hal::{
    Arena, CostModel, CostParams, FrameNo, Id, Mmu, MmuCtx, OpKind, PhysicalMemory, SoftMmu,
};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Construction options.
#[derive(Clone, Debug)]
pub struct MinimalOptions {
    /// Page geometry.
    pub geometry: PageGeometry,
    /// Physical frames (all memory there is: no backing swap).
    pub frames: u32,
    /// Per-operation simulated costs.
    pub cost: CostParams,
}

impl Default for MinimalOptions {
    fn default() -> MinimalOptions {
        MinimalOptions {
            geometry: PageGeometry::sun3(),
            frames: 256,
            cost: CostParams::zero(),
        }
    }
}

/// Event counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MinimalStats {
    /// Faults handled (allocation or pull, never COW).
    pub faults: u64,
    /// Zero-filled pages.
    pub zero_fills: u64,
    /// Pages pulled from segments.
    pub pull_ins: u64,
    /// Pages pushed to segments.
    pub push_outs: u64,
    /// Pages copied eagerly by `cache.copy`.
    pub eager_copied_pages: u64,
}

struct RtPage {
    frame: FrameNo,
    dirty: bool,
}

#[derive(Default)]
struct RtCache {
    segment: Option<SegmentId>,
    fully_backed: bool,
    pages: BTreeMap<u64, RtPage>,
    mapped_regions: u32,
}

struct RtRegion {
    ctx: Id<RtContext>,
    addr: VirtAddr,
    size: u64,
    prot: Prot,
    cache: Id<RtCache>,
    offset: u64,
    locked: bool,
}

struct RtContext {
    mmu_ctx: MmuCtx,
    regions: Vec<Id<RtRegion>>,
}

struct RtState {
    geom: PageGeometry,
    phys: PhysicalMemory,
    mmu: Box<dyn Mmu>,
    caches: Arena<RtCache>,
    regions: Arena<RtRegion>,
    contexts: Arena<RtContext>,
    stats: MinimalStats,
}

/// The minimal, fully-resident, eager-copy memory manager.
pub struct MinimalMm {
    state: Mutex<RtState>,
    seg_mgr: Arc<dyn SegmentManagerV2>,
    model: Arc<CostModel>,
}

fn pub_cache(k: Id<RtCache>) -> CacheId {
    CacheId::pack(k.index(), k.generation())
}

fn cache_key(id: CacheId) -> Id<RtCache> {
    let (i, g) = id.unpack();
    Id::from_raw_parts(i, g)
}

fn pub_ctx(k: Id<RtContext>) -> CtxId {
    CtxId::pack(k.index(), k.generation())
}

fn ctx_key(id: CtxId) -> Id<RtContext> {
    let (i, g) = id.unpack();
    Id::from_raw_parts(i, g)
}

fn pub_region(k: Id<RtRegion>) -> RegionId {
    RegionId::pack(k.index(), k.generation())
}

fn region_key(id: RegionId) -> Id<RtRegion> {
    let (i, g) = id.unpack();
    Id::from_raw_parts(i, g)
}

impl MinimalMm {
    /// Creates the manager over a typed v2 segment manager
    /// ([`SegmentManagerV2`]), the native request interface. v1
    /// managers attach through `SyncShim::wrap`.
    pub fn new(options: MinimalOptions, seg_mgr: Arc<dyn SegmentManagerV2>) -> MinimalMm {
        let model = Arc::new(CostModel::new(options.cost.clone()));
        let phys = PhysicalMemory::new(options.geometry, options.frames, model.clone());
        let mmu: Box<dyn Mmu> = Box::new(SoftMmu::new(options.geometry, model.clone()));
        MinimalMm {
            state: Mutex::new(RtState {
                geom: options.geometry,
                phys,
                mmu,
                caches: Arena::new(),
                regions: Arena::new(),
                contexts: Arena::new(),
                stats: MinimalStats::default(),
            }),
            seg_mgr,
            model,
        }
    }

    /// The shared cost model.
    pub fn cost_model(&self) -> Arc<CostModel> {
        self.model.clone()
    }

    /// Event counters.
    pub fn stats(&self) -> MinimalStats {
        self.state.lock().stats
    }

    /// Ensures (cache, page_off) is resident, pulling from the segment
    /// or zero-filling. Runs the upcall without the state lock.
    fn ensure_resident(&self, cache: Id<RtCache>, page_off: u64) -> Result<()> {
        let (need_pull, segment) = {
            let s = self.state.lock();
            let c = s
                .caches
                .get(cache)
                .ok_or(GmiError::NoSuchCache(pub_cache(cache)))?;
            if c.pages.contains_key(&page_off) {
                return Ok(());
            }
            (c.fully_backed, c.segment)
        };
        if need_pull {
            let segment = segment.expect("fully backed without segment");
            let ps = self.state.lock().geom.page_size();
            self.seg_mgr.submit_pull(
                self,
                &PullRequest {
                    cache: pub_cache(cache),
                    segment,
                    offset: page_off,
                    size: ps,
                    access: Access::Read,
                },
            )?;
            let mut s = self.state.lock();
            s.stats.pull_ins += 1;
            s.model_io(1);
            if !s
                .caches
                .get(cache)
                .map(|c| c.pages.contains_key(&page_off))
                .unwrap_or(false)
            {
                return Err(GmiError::SegmentIo {
                    segment,
                    cause: "pullIn returned without fillUp".into(),
                    transient: true,
                });
            }
            Ok(())
        } else {
            let mut s = self.state.lock();
            if s.caches
                .get(cache)
                .map(|c| c.pages.contains_key(&page_off))
                .unwrap_or(false)
            {
                return Ok(());
            }
            let frame = s.phys.alloc().ok_or(GmiError::OutOfMemory)?;
            s.phys.zero(frame);
            s.stats.zero_fills += 1;
            let c = s
                .caches
                .get_mut(cache)
                .ok_or(GmiError::NoSuchCache(pub_cache(cache)))?;
            c.pages.insert(
                page_off,
                RtPage {
                    frame,
                    dirty: false,
                },
            );
            Ok(())
        }
    }
}

impl RtState {
    fn ps(&self) -> u64 {
        self.geom.page_size()
    }

    fn model_io(&self, pages: u64) {
        self.phys.cost_model().charge(OpKind::IpcOp);
        self.phys
            .cost_model()
            .charge_n(OpKind::SegmentIoPage, pages);
    }

    fn cache(&self, k: Id<RtCache>) -> Result<&RtCache> {
        self.caches
            .get(k)
            .ok_or(GmiError::NoSuchCache(pub_cache(k)))
    }

    fn find_region(&self, ctx: Id<RtContext>, va: VirtAddr) -> Result<Id<RtRegion>> {
        let c = self
            .contexts
            .get(ctx)
            .ok_or(GmiError::NoSuchContext(pub_ctx(ctx)))?;
        c.regions
            .iter()
            .copied()
            .find(|&r| {
                self.regions
                    .get(r)
                    .map(|rd| va >= rd.addr && va.0 < rd.addr.0 + rd.size)
                    .unwrap_or(false)
            })
            .ok_or(GmiError::SegmentationFault {
                ctx: pub_ctx(ctx),
                va,
                access: Access::Read,
            })
    }
}

impl CacheIo for MinimalMm {
    fn fill_up(&self, cache: CacheId, offset: u64, data: &[u8]) -> Result<()> {
        let key = cache_key(cache);
        let mut s = self.state.lock();
        let ps = s.ps();
        let mut cur = 0u64;
        while cur < data.len() as u64 {
            let page_off = offset + cur;
            let n = ps.min(data.len() as u64 - cur);
            if !s.cache(key)?.pages.contains_key(&page_off) {
                let frame = s.phys.alloc().ok_or(GmiError::OutOfMemory)?;
                s.phys.zero(frame);
                s.phys
                    .write(frame, 0, &data[cur as usize..(cur + n) as usize]);
                s.caches.get_mut(key).expect("checked above").pages.insert(
                    page_off,
                    RtPage {
                        frame,
                        dirty: false,
                    },
                );
            }
            cur += n;
        }
        Ok(())
    }

    fn copy_back(&self, cache: CacheId, offset: u64, buf: &mut [u8]) -> Result<()> {
        let key = cache_key(cache);
        let s = self.state.lock();
        let ps = s.ps();
        let mut cur = 0u64;
        while cur < buf.len() as u64 {
            let o = offset + cur;
            let page_off = s.geom.round_down(o);
            let in_page = (page_off + ps - o).min(buf.len() as u64 - cur);
            let page = s
                .cache(key)?
                .pages
                .get(&page_off)
                .ok_or(GmiError::OutOfRange {
                    offset: page_off,
                    size: ps,
                    what: "copyBack",
                })?;
            s.phys.read(
                page.frame,
                o - page_off,
                &mut buf[cur as usize..(cur + in_page) as usize],
            );
            cur += in_page;
        }
        Ok(())
    }

    fn move_back(&self, cache: CacheId, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.copy_back(cache, offset, buf)
    }
}

impl Gmi for MinimalMm {
    fn cache_create(&self, segment: Option<SegmentId>) -> Result<CacheId> {
        let mut s = self.state.lock();
        s.phys.cost_model().charge(OpKind::ObjectCreate);
        Ok(pub_cache(s.caches.insert(RtCache {
            segment,
            fully_backed: segment.is_some(),
            ..RtCache::default()
        })))
    }

    fn cache_destroy(&self, cache: CacheId) -> Result<()> {
        let key = cache_key(cache);
        // Write dirty permanent data back first.
        self.cache_sync(cache, 0, u64::MAX)?;
        let mut s = self.state.lock();
        let c = s.caches.get(key).ok_or(GmiError::NoSuchCache(cache))?;
        if c.mapped_regions > 0 {
            return Err(GmiError::InvalidArgument("destroying a mapped cache"));
        }
        let pages = s.caches.remove(key).expect("checked above").pages;
        for (_, p) in pages {
            s.phys.release(p.frame);
        }
        Ok(())
    }

    fn cache_copy_with(
        &self,
        src: CacheId,
        src_offset: u64,
        dst: CacheId,
        dst_offset: u64,
        size: u64,
        _mode: CopyMode,
    ) -> Result<()> {
        // The minimal MM copies eagerly whatever the hint: deterministic
        // cost, no deferred machinery (real-time trade-off).
        if size == 0 {
            return Ok(());
        }
        if src == dst {
            let (a, b) = (src_offset, src_offset + size);
            let (c, d) = (dst_offset, dst_offset + size);
            if a < d && c < b {
                return Err(GmiError::InvalidArgument("overlapping eager copy"));
            }
        }
        let mut buf = vec![0u8; size as usize];
        self.cache_read(src, src_offset, &mut buf)?;
        self.cache_write(dst, dst_offset, &buf)?;
        let pages = {
            let s = self.state.lock();
            s.geom.pages_for(size)
        };
        self.state.lock().stats.eager_copied_pages += pages;
        Ok(())
    }

    fn cache_move(
        &self,
        src: CacheId,
        src_offset: u64,
        dst: CacheId,
        dst_offset: u64,
        size: u64,
    ) -> Result<()> {
        self.cache_copy_with(src, src_offset, dst, dst_offset, size, CopyMode::Eager)
    }

    fn cache_read(&self, cache: CacheId, offset: u64, buf: &mut [u8]) -> Result<()> {
        let key = cache_key(cache);
        let (ps, geom) = {
            let s = self.state.lock();
            (s.ps(), s.geom)
        };
        let mut cur = 0u64;
        while cur < buf.len() as u64 {
            let o = offset + cur;
            let page_off = geom.round_down(o);
            let in_page = (page_off + ps - o).min(buf.len() as u64 - cur);
            // Only materialize pages that exist somewhere; absent
            // anonymous pages read as zeroes without allocating.
            let resident_or_backed = {
                let s = self.state.lock();
                let c = s.cache(key)?;
                c.pages.contains_key(&page_off) || c.fully_backed
            };
            if resident_or_backed {
                self.ensure_resident(key, page_off)?;
                let s = self.state.lock();
                let page = &s.cache(key)?.pages[&page_off];
                s.phys.read(
                    page.frame,
                    o - page_off,
                    &mut buf[cur as usize..(cur + in_page) as usize],
                );
            } else {
                buf[cur as usize..(cur + in_page) as usize].fill(0);
            }
            cur += in_page;
        }
        Ok(())
    }

    fn cache_write(&self, cache: CacheId, offset: u64, data: &[u8]) -> Result<()> {
        let key = cache_key(cache);
        let (ps, geom) = {
            let s = self.state.lock();
            (s.ps(), s.geom)
        };
        let mut cur = 0u64;
        while cur < data.len() as u64 {
            let o = offset + cur;
            let page_off = geom.round_down(o);
            let in_page = (page_off + ps - o).min(data.len() as u64 - cur);
            self.ensure_resident(key, page_off)?;
            let mut s = self.state.lock();
            let page = s
                .caches
                .get_mut(key)
                .ok_or(GmiError::NoSuchCache(cache))?
                .pages
                .get_mut(&page_off)
                .expect("just ensured");
            page.dirty = true;
            let frame = page.frame;
            s.phys.write(
                frame,
                o - page_off,
                &data[cur as usize..(cur + in_page) as usize],
            );
            s.phys.cost_model().charge(OpKind::BcopyPage);
            cur += in_page;
        }
        Ok(())
    }

    fn context_create(&self) -> Result<CtxId> {
        let mut s = self.state.lock();
        let mmu_ctx = s.mmu.ctx_create();
        Ok(pub_ctx(s.contexts.insert(RtContext {
            mmu_ctx,
            regions: Vec::new(),
        })))
    }

    fn context_destroy(&self, ctx: CtxId) -> Result<()> {
        let key = ctx_key(ctx);
        let regions = {
            let s = self.state.lock();
            s.contexts
                .get(key)
                .ok_or(GmiError::NoSuchContext(ctx))?
                .regions
                .clone()
        };
        for r in regions {
            let _ = self.region_unlock(pub_region(r));
            self.region_destroy(pub_region(r))?;
        }
        let mut s = self.state.lock();
        let c = s.contexts.remove(key).ok_or(GmiError::NoSuchContext(ctx))?;
        s.mmu.ctx_destroy(c.mmu_ctx);
        Ok(())
    }

    fn context_switch(&self, ctx: CtxId) -> Result<()> {
        let mut s = self.state.lock();
        let mmu_ctx = s
            .contexts
            .get(ctx_key(ctx))
            .ok_or(GmiError::NoSuchContext(ctx))?
            .mmu_ctx;
        s.mmu.switch(mmu_ctx);
        Ok(())
    }

    fn region_list(&self, ctx: CtxId) -> Result<Vec<(RegionId, RegionStatus)>> {
        let s = self.state.lock();
        let c = s
            .contexts
            .get(ctx_key(ctx))
            .ok_or(GmiError::NoSuchContext(ctx))?;
        c.regions
            .iter()
            .map(|&r| {
                let rd = s.regions.get(r).expect("dead region listed");
                Ok((pub_region(r), status_of(&s, rd)))
            })
            .collect()
    }

    fn find_region(&self, ctx: CtxId, va: VirtAddr) -> Result<RegionId> {
        let s = self.state.lock();
        s.find_region(ctx_key(ctx), va).map(pub_region)
    }

    fn region_create(
        &self,
        ctx: CtxId,
        addr: VirtAddr,
        size: u64,
        prot: Prot,
        cache: CacheId,
        offset: u64,
    ) -> Result<RegionId> {
        let mut s = self.state.lock();
        for (v, what) in [
            (addr.0, "region address"),
            (size, "region size"),
            (offset, "offset"),
        ] {
            if !s.geom.is_aligned(v) {
                return Err(GmiError::Unaligned { value: v, what });
            }
        }
        if size == 0 {
            return Err(GmiError::InvalidArgument("zero-size region"));
        }
        let ckey = cache_key(cache);
        s.cache(ckey)?;
        let ctx_k = ctx_key(ctx);
        let overlap = {
            let c = s.contexts.get(ctx_k).ok_or(GmiError::NoSuchContext(ctx))?;
            c.regions.iter().any(|&r| {
                s.regions
                    .get(r)
                    .map(|rd| rd.addr.0 < addr.0 + size && addr.0 < rd.addr.0 + rd.size)
                    .unwrap_or(false)
            })
        };
        if overlap {
            return Err(GmiError::RegionOverlap { ctx, addr, size });
        }
        let key = s.regions.insert(RtRegion {
            ctx: ctx_k,
            addr,
            size,
            prot,
            cache: ckey,
            offset,
            locked: false,
        });
        s.contexts
            .get_mut(ctx_k)
            .expect("ctx vanished")
            .regions
            .push(key);
        s.caches
            .get_mut(ckey)
            .expect("cache vanished")
            .mapped_regions += 1;
        s.phys.cost_model().charge(OpKind::RegionCreate);
        Ok(pub_region(key))
    }

    fn region_split(&self, region: RegionId, offset: u64) -> Result<RegionId> {
        let mut s = self.state.lock();
        if !s.geom.is_aligned(offset) {
            return Err(GmiError::Unaligned {
                value: offset,
                what: "split offset",
            });
        }
        let key = region_key(region);
        let (ctx, addr, size, prot, cache, base_off, locked) = {
            let r = s.regions.get(key).ok_or(GmiError::NoSuchRegion(region))?;
            (r.ctx, r.addr, r.size, r.prot, r.cache, r.offset, r.locked)
        };
        if offset == 0 || offset >= size {
            return Err(GmiError::OutOfRange {
                offset,
                size: 0,
                what: "region split",
            });
        }
        let upper = s.regions.insert(RtRegion {
            ctx,
            addr: VirtAddr(addr.0 + offset),
            size: size - offset,
            prot,
            cache,
            offset: base_off + offset,
            locked,
        });
        s.regions.get_mut(key).expect("region vanished").size = offset;
        s.contexts
            .get_mut(ctx)
            .expect("dead ctx")
            .regions
            .push(upper);
        s.caches.get_mut(cache).expect("dead cache").mapped_regions += 1;
        Ok(pub_region(upper))
    }

    fn region_set_protection(&self, region: RegionId, prot: Prot) -> Result<()> {
        let mut s = self.state.lock();
        let key = region_key(region);
        let (ctx, addr, size) = {
            let r = s
                .regions
                .get_mut(key)
                .ok_or(GmiError::NoSuchRegion(region))?;
            r.prot = prot;
            (r.ctx, r.addr, r.size)
        };
        let mmu_ctx = s.contexts.get(ctx).expect("dead ctx").mmu_ctx;
        let (lo, hi) = (s.geom.vpn(addr), s.geom.vpn(VirtAddr(addr.0 + size - 1)));
        let mut vpn = lo;
        while vpn <= hi {
            s.mmu.protect(mmu_ctx, vpn, prot);
            vpn = vpn.next();
        }
        Ok(())
    }

    fn region_lock_in_memory(&self, region: RegionId) -> Result<()> {
        // Everything is always resident: materialize the whole region.
        let (ctx, addr, size) = {
            let s = self.state.lock();
            let r = s
                .regions
                .get(region_key(region))
                .ok_or(GmiError::NoSuchRegion(region))?;
            (pub_ctx(r.ctx), r.addr, r.size)
        };
        let ps = self.geometry().page_size();
        for i in 0..size / ps {
            self.handle_fault(ctx, VirtAddr(addr.0 + i * ps), Access::Read)?;
        }
        let mut s = self.state.lock();
        s.regions
            .get_mut(region_key(region))
            .expect("region vanished")
            .locked = true;
        Ok(())
    }

    fn region_unlock(&self, region: RegionId) -> Result<()> {
        let mut s = self.state.lock();
        if let Some(r) = s.regions.get_mut(region_key(region)) {
            r.locked = false;
            Ok(())
        } else {
            Err(GmiError::NoSuchRegion(region))
        }
    }

    fn region_status(&self, region: RegionId) -> Result<RegionStatus> {
        let s = self.state.lock();
        let r = s
            .regions
            .get(region_key(region))
            .ok_or(GmiError::NoSuchRegion(region))?;
        Ok(status_of(&s, r))
    }

    fn region_destroy(&self, region: RegionId) -> Result<()> {
        let mut s = self.state.lock();
        let key = region_key(region);
        let (ctx, addr, size, cache, locked) = {
            let r = s.regions.get(key).ok_or(GmiError::NoSuchRegion(region))?;
            (r.ctx, r.addr, r.size, r.cache, r.locked)
        };
        if locked {
            return Err(GmiError::Locked);
        }
        let mmu_ctx = s.contexts.get(ctx).expect("dead ctx").mmu_ctx;
        let (lo, hi) = (s.geom.vpn(addr), s.geom.vpn(VirtAddr(addr.0 + size - 1)));
        let mut vpn = lo;
        while vpn <= hi {
            s.mmu.unmap(mmu_ctx, vpn);
            vpn = vpn.next();
        }
        s.phys
            .cost_model()
            .charge_n(OpKind::VaInvalidatePage, s.geom.pages_for(size));
        s.regions.remove(key);
        if let Some(c) = s.contexts.get_mut(ctx) {
            c.regions.retain(|&r| r != key);
        }
        s.caches.get_mut(cache).expect("dead cache").mapped_regions -= 1;
        s.phys.cost_model().charge(OpKind::RegionDestroy);
        Ok(())
    }

    fn cache_flush(&self, cache: CacheId, offset: u64, size: u64) -> Result<()> {
        self.cache_sync(cache, offset, size)?;
        let key = cache_key(cache);
        let mut s = self.state.lock();
        let end = offset.saturating_add(size);
        let offsets: Vec<u64> = s
            .cache(key)?
            .pages
            .range(offset..end)
            .map(|(&o, _)| o)
            .collect();
        // Flushing is only meaningful for backed caches; anonymous data
        // has nowhere to go and stays (fully-resident semantics).
        if s.cache(key)?.fully_backed {
            for o in offsets {
                let page = s
                    .caches
                    .get_mut(key)
                    .expect("checked")
                    .pages
                    .remove(&o)
                    .expect("listed");
                s.phys.release(page.frame);
            }
        }
        Ok(())
    }

    fn cache_sync(&self, cache: CacheId, offset: u64, size: u64) -> Result<()> {
        let key = cache_key(cache);
        loop {
            let (segment, dirty_off, ps) = {
                let s = self.state.lock();
                let c = match s.caches.get(key) {
                    Some(c) => c,
                    None => return Err(GmiError::NoSuchCache(cache)),
                };
                let end = offset.saturating_add(size);
                let dirty = c
                    .pages
                    .range(offset..end)
                    .find(|(_, p)| p.dirty)
                    .map(|(&o, _)| o);
                match (dirty, c.segment) {
                    (None, _) => return Ok(()),
                    (Some(_), None) => return Ok(()), // Anonymous: nothing to sync to.
                    (Some(o), Some(seg)) => (seg, o, s.ps()),
                }
            };
            self.seg_mgr.submit_push(
                self,
                &PushRequest {
                    cache,
                    segment,
                    offset: dirty_off,
                    size: ps,
                },
            )?;
            let mut s = self.state.lock();
            s.stats.push_outs += 1;
            s.model_io(1);
            if let Some(c) = s.caches.get_mut(key) {
                if let Some(p) = c.pages.get_mut(&dirty_off) {
                    p.dirty = false;
                }
            }
        }
    }

    fn cache_invalidate(&self, cache: CacheId, offset: u64, size: u64) -> Result<()> {
        let key = cache_key(cache);
        let mut s = self.state.lock();
        let end = offset.saturating_add(size);
        let offsets: Vec<u64> = s
            .cache(key)?
            .pages
            .range(offset..end)
            .map(|(&o, _)| o)
            .collect();
        for o in offsets {
            let page = s
                .caches
                .get_mut(key)
                .expect("checked")
                .pages
                .remove(&o)
                .expect("listed");
            s.phys.release(page.frame);
        }
        Ok(())
    }

    fn cache_set_protection(&self, _c: CacheId, _o: u64, _s: u64, _p: Prot) -> Result<()> {
        Err(GmiError::Unsupported("minimal MM has no coherence control"))
    }

    fn cache_lock_in_memory(&self, cache: CacheId, offset: u64, size: u64) -> Result<()> {
        // Pull everything resident; it stays (no pageout exists).
        let ps = self.geometry().page_size();
        let base = {
            let s = self.state.lock();
            s.geom.round_down(offset)
        };
        for k in 0..size.div_ceil(ps) {
            self.ensure_resident(cache_key(cache), base + k * ps)?;
        }
        Ok(())
    }

    fn cache_unlock(&self, _cache: CacheId, _offset: u64, _size: u64) -> Result<()> {
        Ok(())
    }

    fn handle_fault(&self, ctx: CtxId, va: VirtAddr, access: Access) -> Result<()> {
        let ctx_k = ctx_key(ctx);
        let (cache, page_off, vpn, prot, mmu_ctx) = {
            let mut s = self.state.lock();
            s.stats.faults += 1;
            s.phys.cost_model().charge(OpKind::FaultEntry);
            let reg = s
                .find_region(ctx_k, va)
                .map_err(|_| GmiError::SegmentationFault { ctx, va, access })?;
            let r = s.regions.get(reg).expect("found region");
            if !r.prot.allows(access, false) {
                return Err(GmiError::ProtectionViolation { ctx, va, access });
            }
            let off = s.geom.round_down(r.offset + (va.0 - r.addr.0));
            let mmu_ctx = s.contexts.get(ctx_k).expect("dead ctx").mmu_ctx;
            (r.cache, off, s.geom.vpn(va), r.prot, mmu_ctx)
        };
        self.ensure_resident(cache, page_off)?;
        let mut s = self.state.lock();
        let page = &mut s
            .caches
            .get_mut(cache)
            .ok_or(GmiError::NoSuchCache(pub_cache(cache)))?
            .pages;
        let entry = page.get_mut(&page_off).expect("just ensured");
        // Writable mappings mark the page dirty eagerly (no write faults
        // later: bounded latency).
        if prot.contains(Prot::WRITE) {
            entry.dirty = true;
        }
        let frame = entry.frame;
        s.mmu.map(mmu_ctx, vpn, frame, prot);
        Ok(())
    }

    fn vm_read(&self, ctx: CtxId, va: VirtAddr, buf: &mut [u8]) -> Result<()> {
        self.vm_access(
            ctx,
            va,
            Access::Read,
            buf.len(),
            |s, pa, range, b: &mut &mut [u8]| {
                s.phys.read_phys(pa, &mut b[range]);
            },
            buf,
        )
    }

    fn vm_write(&self, ctx: CtxId, va: VirtAddr, data: &[u8]) -> Result<()> {
        self.vm_access(
            ctx,
            va,
            Access::Write,
            data.len(),
            |s, pa, range, d: &mut &[u8]| {
                s.phys.write_phys(pa, &d[range]);
            },
            data,
        )
    }

    fn geometry(&self) -> PageGeometry {
        self.state.lock().geom
    }

    fn cache_resident_pages(&self, cache: CacheId) -> Result<u64> {
        let s = self.state.lock();
        Ok(s.cache(cache_key(cache))?.pages.len() as u64)
    }
}

impl MinimalMm {
    fn vm_access<B>(
        &self,
        ctx: CtxId,
        va: VirtAddr,
        access: Access,
        len: usize,
        apply: impl Fn(&mut RtState, chorus_hal::PhysAddr, core::ops::Range<usize>, &mut B),
        mut buf: B,
    ) -> Result<()> {
        let key = ctx_key(ctx);
        let ps = self.geometry().page_size();
        let mut cur = 0u64;
        while cur < len as u64 {
            let addr = VirtAddr(va.0 + cur);
            let n = (ps - addr.0 % ps).min(len as u64 - cur) as usize;
            loop {
                let mut s = self.state.lock();
                let mmu_ctx = s
                    .contexts
                    .get(key)
                    .ok_or(GmiError::NoSuchContext(ctx))?
                    .mmu_ctx;
                match s.mmu.translate(mmu_ctx, addr, access, false) {
                    Ok(pa) => {
                        apply(&mut s, pa, cur as usize..cur as usize + n, &mut buf);
                        break;
                    }
                    Err(_) => {
                        drop(s);
                        self.handle_fault(ctx, addr, access)?;
                    }
                }
            }
            cur += n as u64;
        }
        Ok(())
    }
}

fn status_of(s: &RtState, r: &RtRegion) -> RegionStatus {
    let resident = s
        .caches
        .get(r.cache)
        .map(|c| c.pages.range(r.offset..r.offset + r.size).count() as u64)
        .unwrap_or(0);
    RegionStatus {
        addr: r.addr,
        size: r.size,
        prot: r.prot,
        cache: pub_cache(r.cache),
        offset: r.offset,
        locked: r.locked,
        resident_pages: resident,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chorus_gmi::testing::MemSegmentManager;

    const PS: u64 = 256;

    fn mm(frames: u32) -> (MinimalMm, Arc<MemSegmentManager>) {
        let mgr = Arc::new(MemSegmentManager::new());
        (
            MinimalMm::new(
                MinimalOptions {
                    geometry: PageGeometry::new(PS),
                    frames,
                    cost: CostParams::zero(),
                },
                chorus_gmi::SyncShim::wrap(mgr.clone()),
            ),
            mgr,
        )
    }

    #[test]
    fn zero_fill_and_roundtrip() {
        let (mm, _) = mm(16);
        let ctx = mm.context_create().unwrap();
        let cache = mm.cache_create(None).unwrap();
        mm.region_create(ctx, VirtAddr(0x1000), 4 * PS, Prot::RW, cache, 0)
            .unwrap();
        let mut buf = vec![1u8; 8];
        mm.vm_read(ctx, VirtAddr(0x1000), &mut buf).unwrap();
        assert_eq!(buf, vec![0; 8]);
        mm.vm_write(ctx, VirtAddr(0x1000 + 100), b"rt data")
            .unwrap();
        let mut got = vec![0u8; 7];
        mm.vm_read(ctx, VirtAddr(0x1000 + 100), &mut got).unwrap();
        assert_eq!(&got, b"rt data");
    }

    #[test]
    fn eager_copy_isolates_immediately() {
        let (mm, _) = mm(32);
        let a = mm.cache_create(None).unwrap();
        mm.cache_write(a, 0, &[7u8; 512]).unwrap();
        let b = mm.cache_create(None).unwrap();
        mm.cache_copy(a, 0, b, 0, 2 * PS).unwrap();
        assert!(
            mm.stats().eager_copied_pages >= 2,
            "no deferral in the minimal MM"
        );
        mm.cache_write(a, 0, &[9u8; 4]).unwrap();
        let mut buf = vec![0u8; 4];
        mm.cache_read(b, 0, &mut buf).unwrap();
        assert_eq!(buf, vec![7u8; 4]);
    }

    #[test]
    fn mapped_segment_pull_and_sync() {
        let (mm, mgr) = mm(16);
        let seg = mgr.create_segment(&[0x42u8; 512]);
        let cache = mm.cache_create(Some(seg)).unwrap();
        let ctx = mm.context_create().unwrap();
        mm.region_create(ctx, VirtAddr(0), 2 * PS, Prot::RW, cache, 0)
            .unwrap();
        let mut buf = vec![0u8; 4];
        mm.vm_read(ctx, VirtAddr(PS), &mut buf).unwrap();
        assert_eq!(buf, vec![0x42; 4]);
        mm.vm_write(ctx, VirtAddr(0), b"sync me").unwrap();
        mm.cache_sync(cache, 0, 2 * PS).unwrap();
        assert_eq!(&mgr.segment_data(seg)[..7], b"sync me");
    }

    #[test]
    fn out_of_memory_is_immediate() {
        let (mm, _) = mm(2);
        let cache = mm.cache_create(None).unwrap();
        mm.cache_write(cache, 0, &[1]).unwrap();
        mm.cache_write(cache, PS, &[2]).unwrap();
        assert_eq!(
            mm.cache_write(cache, 2 * PS, &[3]).unwrap_err(),
            GmiError::OutOfMemory
        );
    }

    #[test]
    fn lock_in_memory_is_trivial() {
        let (mm, _) = mm(8);
        let ctx = mm.context_create().unwrap();
        let cache = mm.cache_create(None).unwrap();
        let r = mm
            .region_create(ctx, VirtAddr(0), 2 * PS, Prot::RW, cache, 0)
            .unwrap();
        mm.region_lock_in_memory(r).unwrap();
        assert_eq!(mm.region_status(r).unwrap().resident_pages, 2);
        assert!(mm.region_status(r).unwrap().locked);
        assert!(matches!(mm.region_destroy(r), Err(GmiError::Locked)));
        mm.region_unlock(r).unwrap();
        mm.region_destroy(r).unwrap();
    }

    #[test]
    fn copy_hints_are_ignored_uniformly() {
        let (mm, _) = mm(64);
        let a = mm.cache_create(None).unwrap();
        mm.cache_write(a, 0, &[3u8; 256]).unwrap();
        for mode in [
            CopyMode::Auto,
            CopyMode::HistoryCow,
            CopyMode::PerPage,
            CopyMode::HistoryCor,
        ] {
            let b = mm.cache_create(None).unwrap();
            mm.cache_copy_with(a, 0, b, 0, PS, mode).unwrap();
            let mut buf = vec![0u8; 4];
            mm.cache_read(b, 0, &mut buf).unwrap();
            assert_eq!(buf, vec![3u8; 4], "{mode:?}");
            mm.cache_destroy(b).unwrap();
        }
    }
}
