//! Current-version resolution: the upward walk of the history tree.
//!
//! "Each cache contains the current version of its own pages. Pages not
//! present in some cache (cache misses) are found by looking upwards
//! (towards the root) in the tree" (§4.2.1). The walk also follows
//! per-virtual-page stub pointers (§4.3) and triggers `pullIn` for owned
//! but swapped-out data.

use crate::descriptors::{CowSource, Slot};
use crate::keys::{CacheKey, PageKey};
use crate::state::{blocked, done, Attempt, Blocked, Outcome, PvmState};
use crate::stats::Counter;
use crate::trace::TraceEvent;
use chorus_gmi::GmiError;
use chorus_hal::{Access, OpKind};

/// The resolved current version of a (cache, offset) datum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Version {
    /// A resident page holds the value (it may belong to the queried
    /// cache itself or to an ancestor / stub source).
    Page(PageKey),
    /// No cache on the path and no segment holds the value: the logical
    /// content is zeroes.
    Zero,
}

impl PvmState {
    /// Resolves the current logical version of offset `off` of `cache`.
    ///
    /// May request a `pullIn` (placing the synchronization stub first) or
    /// a wait on an in-transit page.
    pub fn resolve_version(
        &mut self,
        cache: CacheKey,
        off: u64,
        access: Access,
    ) -> Attempt<Version> {
        let mut depth = 0u32;
        let result = self.resolve_version_walk(cache, off, access, &mut depth);
        // Record the root-ward walk depth when the walk concluded (a
        // blocked walk re-runs and re-reports after the pull/wait).
        if let Ok(Outcome::Done(_)) = result {
            self.trace.event(|| TraceEvent::HistoryWalk {
                cache: cache.index(),
                offset: off,
                depth,
            });
        }
        result
    }

    fn resolve_version_walk(
        &mut self,
        cache: CacheKey,
        off: u64,
        access: Access,
        depth: &mut u32,
    ) -> Attempt<Version> {
        let mut x = cache;
        let mut o = off;
        // Cycle guard: a correct history tree is acyclic; bound the walk.
        let mut steps = self.caches.len() + 2;
        loop {
            if steps == 0 {
                panic!("history tree cycle detected at {x:?}+{o:#x}");
            }
            steps -= 1;
            self.charge(OpKind::HistoryOp);
            // The walk may land in a quarantined ancestor whose segment
            // data is unreachable; fail cleanly rather than pulling.
            self.check_not_poisoned(x)?;
            match self.slot(x, o) {
                Some(Slot::Present(p)) => return done(Version::Page(p)),
                Some(Slot::Sync) => return blocked(Blocked::WaitStub),
                Some(Slot::Cow(CowSource::Page(p))) => {
                    debug_assert!(self.pages.contains(p), "stub points at dead page");
                    return done(Version::Page(p));
                }
                Some(Slot::Cow(CowSource::Loc(c2, o2))) => {
                    *depth += 1;
                    x = c2;
                    o = o2;
                }
                Some(Slot::Cow(CowSource::Zero)) => return done(Version::Zero),
                None => {
                    let desc = self.cache(x)?;
                    if desc.owns(o) {
                        // Owned but not resident: the data lives on the
                        // segment. Place the synchronization page stub
                        // and ask for a pull (§4.1.2); with clustering
                        // enabled, adjacent owned-non-resident pages ride
                        // along under their own stubs (read-ahead).
                        let segment = desc.segment.ok_or(GmiError::InvalidArgument(
                            "owned page with neither residence nor segment",
                        ))?;
                        let ps = self.ps();
                        let window = self.pull_window(x, o)?;
                        let mut pages = 1u64;
                        while pages < window {
                            let next = o + pages * ps;
                            let desc = self.cache(x)?;
                            // Clamp at segment end: a fully-backed cache
                            // owns *every* offset, but the mapper has no
                            // data past the segment's known length, and a
                            // run crossing it would come back truncated.
                            if let Some(len) = desc.seg_len {
                                if next + ps > len {
                                    break;
                                }
                            }
                            // Stop at resident pages, in-transit stubs and
                            // COW stubs (all indexed in `entries`): pulling
                            // them again would be redundant mapper I/O.
                            if !desc.owns(next) || desc.entries.contains(&next) {
                                break;
                            }
                            pages += 1;
                        }
                        if self.config.readahead_adaptive {
                            let granted = window;
                            let d = self.cache_mut(x)?;
                            d.ra_window = granted;
                            d.ra_next = o + pages * ps;
                        }
                        // A synchronous pull covering exactly one
                        // large-aligned full run gets a contiguous
                        // pre-zeroed frame run reserved up front, so the
                        // delivered pages land physically contiguous and
                        // the run can be promoted. Async pulls skip this:
                        // completions interleave and the window may be
                        // re-split by coalescing.
                        if self.config.large_pages
                            && self.config.buddy_runs
                            && !self.config.async_upcalls
                            && pages == self.geom.large_factor()
                            && self.geom.is_large_aligned(o)
                        {
                            self.reserve_pull_run(x, o);
                        }
                        for k in 0..pages {
                            self.set_slot(x, o + k * ps, Slot::Sync);
                        }
                        return blocked(Blocked::PullIn {
                            cache: x,
                            segment,
                            offset: o,
                            size: pages * ps,
                            access,
                        });
                    }
                    match desc.parent_at(o) {
                        Some(frag) => {
                            *depth += 1;
                            o = frag.to_parent(o);
                            x = frag.parent;
                        }
                        None => return done(Version::Zero),
                    }
                }
            }
        }
    }

    /// The pull cluster window (in pages) for a miss of `cache` at
    /// `off`. Static `pull_cluster_pages` unless adaptive readahead is
    /// on; then the configured [`ReadaheadPolicy`] decides from the
    /// cache's stream state (the default `DoublingWindow` doubles the
    /// window up to `readahead_max_pages` when a miss lands exactly
    /// where the previous clustered pull ended, and resets to the
    /// static base otherwise).
    ///
    /// [`ReadaheadPolicy`]: crate::policy::ReadaheadPolicy
    fn pull_window(&mut self, cache: CacheKey, off: u64) -> chorus_gmi::Result<u64> {
        if !self.config.readahead_adaptive {
            return Ok(self.config.pull_cluster_pages);
        }
        let base = self.config.pull_cluster_pages.max(1);
        let cap = self.config.readahead_max_pages.max(base);
        let (window, next) = {
            let d = self.cache(cache)?;
            (d.ra_window, d.ra_next)
        };
        let dec = self.policy.readahead.window(&crate::policy::RaInput {
            offset: off,
            base,
            cap,
            window,
            next,
        });
        if dec.hit {
            self.stats.bump(Counter::ReadaheadHits);
            self.dim_cache(cache, crate::telemetry::DimCounter::ReadaheadHits, 1);
        }
        if dec.ramped {
            self.stats.bump(Counter::ReadaheadRamps);
        }
        Ok(dec.pages)
    }

    /// True if the fragment policy of `cache` at `off` is
    /// copy-on-reference (materialize a private page on first access).
    pub fn is_cor_at(&self, cache: CacheKey, off: u64) -> bool {
        self.caches
            .get(cache)
            .and_then(|c| c.parent_at(off))
            .map(|f| f.cor)
            .unwrap_or(false)
    }
}
