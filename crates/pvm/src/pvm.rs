//! The public [`Pvm`] type: locking, the blocked-action driver, and the
//! [`Gmi`] trait implementation.
//!
//! Locking discipline: all state lives behind one mutex. Attempts run
//! under the lock and never sleep; when an attempt must wait (a page in
//! transit) or perform an upcall (`pullIn`, `pushOut`, `segmentCreate`,
//! `getWriteAccess`), it returns a [`Blocked`] action which the driver
//! performs with the lock *released*, then retries the attempt. This is
//! exactly the paper's synchronization-page-stub protocol (§4.1.2):
//! concurrent accesses to an in-transit fragment sleep until the transfer
//! completes.

use crate::config::PvmConfig;
use crate::descriptors::Slot;
use crate::domains::DomainLock;
use crate::engine::{CompletionRecord, PendingPull};
use crate::keys::{
    cache_key, ctx_key, pub_cache, pub_ctx, pub_region, region_key, CacheKey, CtxKey,
};
use crate::pvmtop::PvmTop;
use crate::state::{Attempt, Blocked, Outcome, PushOrigin, PvmState};
use crate::stats::{Counter, PvmStats, StatsRegistry};
use crate::telemetry::{Dim, DimCounter, Telemetry, TelemetrySample};
use crate::trace::{Phase, Resolution, TraceEvent, Tracer, UpcallKind, UpcallOutcome};
use chorus_gmi::{
    Access, CacheId, CacheIo, CopyMode, CtxId, Gmi, GmiError, PageGeometry, Prot, PullRequest,
    PushRequest, RegionId, RegionStatus, Result, SegmentId, SegmentManagerV2, VirtAddr,
};
use chorus_hal::{
    fx_hash_one, CostModel, CostParams, FrameStore, Mmu, PhysicalMemory, SoftMmu, TwoLevelMmu,
};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

thread_local! {
    /// Set while this thread holds a per-cache fault stripe. A mapper
    /// that re-enters the GMI and faults again (on any cache) must not
    /// take a second stripe — one stripe per thread keeps the stripe
    /// tier trivially acyclic — so nested faults fall through to the
    /// classic unstriped driver.
    static HOLDS_STRIPE: core::cell::Cell<bool> = const { core::cell::Cell::new(false) };
}

/// Which MMU back-end to instantiate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MmuChoice {
    /// Hash-table page tables (Sun-3-like).
    #[default]
    Soft,
    /// Explicit two-level page tables (PMMU/i386-like).
    TwoLevel,
}

/// Construction options for a [`Pvm`].
#[derive(Clone, Debug)]
pub struct PvmOptions {
    /// Page geometry (defaults to the paper's 8 KB pages).
    pub geometry: PageGeometry,
    /// Number of physical page frames to simulate.
    pub frames: u32,
    /// Per-operation simulated costs.
    pub cost: CostParams,
    /// MMU back-end.
    pub mmu: MmuChoice,
    /// PVM tunables.
    pub config: PvmConfig,
}

impl Default for PvmOptions {
    fn default() -> PvmOptions {
        PvmOptions {
            geometry: PageGeometry::sun3(),
            frames: 1024,
            cost: CostParams::zero(),
            mmu: MmuChoice::Soft,
            config: PvmConfig::default(),
        }
    }
}

/// The Paged Virtual memory Manager.
pub struct Pvm {
    /// The state lock domain (see [`crate::domains`] for the lock-order
    /// discipline). With `parallel_faults` off this is the classic big
    /// mutex in a counting wrapper; with it on it is one domain among
    /// the stripes, the physical tier and the translation tier.
    state: DomainLock<PvmState>,
    stub_cv: Condvar,
    seg_mgr: Arc<dyn SegmentManagerV2>,
    model: Arc<CostModel>,
    /// Page geometry, copied out so `geometry()` never takes the lock.
    geom: PageGeometry,
    /// The resident translation cache, shared with the locked state:
    /// `handle_fault` consults it *before* the mutex, the state updates
    /// it at every mapping install/revoke.
    fast: Arc<crate::fastpath::TranslationCache>,
    /// The counter registry, shared with the state, the translation
    /// cache and the global map; snapshots never take the lock.
    stats: Arc<StatsRegistry>,
    /// The event tracer (see [`crate::trace`]), shared with the state.
    trace: Arc<Tracer>,
    /// The dimensional telemetry registry (see [`crate::telemetry`]),
    /// shared with the state and the translation cache; table reads
    /// never take the state lock.
    telemetry: Arc<Telemetry>,
    /// Reentrancy guard for the watermark laundering pass: a laundering
    /// push that re-enters the driver (e.g. a mapper calling back into
    /// the GMI) must not start a second pass.
    laundering: AtomicBool,
    /// Reentrancy guard for draining the engine's pending pulls:
    /// executing a pending pull re-enters the driver through `fillUp`
    /// and must not start a nested drain.
    pumping: AtomicBool,
    /// Whether the parallel hard-fault machinery is engaged:
    /// `config.parallel_faults` and not `config.async_upcalls` (the
    /// completion engine is its own source of concurrency and keeps the
    /// classic driver). Immutable after construction.
    parallel: bool,
    /// Per-cache fault stripes (outermost lock tier of the parallel
    /// driver), hashed by cache key exactly like the global-map shards.
    /// Empty unless `parallel` is set. Plain mutexes — acquisition and
    /// contention are counted manually so the per-cache telemetry can
    /// ride the same bump.
    stripes: Box<[Mutex<()>]>,
    /// `stripes.len() - 1` (stripe count is a power of two).
    stripe_mask: u64,
    /// The lock-free frame byte plane, shared with the physical tier:
    /// the parallel `fillUp` writes pulled bytes into *landing frames*
    /// through it without holding any domain lock.
    store: Arc<FrameStore>,
}

impl Pvm {
    /// Creates a PVM over a v2 segment manager
    /// ([`chorus_gmi::SegmentManagerV2`]) — the native front of the
    /// asynchronous upcall engine. Classic synchronous (v1) managers
    /// attach through [`chorus_gmi::SyncShim::wrap`], the only
    /// remaining v1 bridge.
    pub fn new(options: PvmOptions, seg_mgr: Arc<dyn SegmentManagerV2>) -> Pvm {
        let model = Arc::new(CostModel::new(options.cost.clone()));
        // With large pages on, the promotion threshold becomes the
        // geometry's large factor so the HAL tiers (buddy runs, large
        // TLB level) agree with the PVM on the run size.
        let geometry = if options.config.large_pages {
            options
                .geometry
                .with_large_factor(options.config.promote_threshold_pages)
        } else {
            options.geometry
        };
        let phys = PhysicalMemory::new(geometry, options.frames, model.clone());
        let store = phys.store();
        let mmu: Box<dyn Mmu> = match options.mmu {
            MmuChoice::Soft => Box::new(SoftMmu::new(geometry, model.clone())),
            MmuChoice::TwoLevel => Box::new(TwoLevelMmu::new(geometry, model.clone())),
        };
        // The completion engine is its own source of concurrency and
        // keeps the classic driver; the knob is inert (not invalid)
        // with the engine on.
        let parallel = options.config.parallel_faults && !options.config.async_upcalls;
        let n_stripes = if parallel {
            options.config.global_map_shards.next_power_of_two().max(1)
        } else {
            0
        };
        let state = PvmState::new(geometry, phys, mmu, model.clone(), options.config);
        let fast = state.fast.clone();
        let stats = state.stats.clone();
        let trace = state.trace.clone();
        let telemetry = state.telemetry.clone();
        Pvm {
            state: DomainLock::new(
                state,
                stats.clone(),
                Counter::StateLockAcqs,
                Counter::StateLockContended,
            ),
            stub_cv: Condvar::new(),
            seg_mgr,
            model,
            geom: geometry,
            fast,
            stats,
            trace,
            telemetry,
            laundering: AtomicBool::new(false),
            pumping: AtomicBool::new(false),
            parallel,
            stripes: (0..n_stripes).map(|_| Mutex::new(())).collect(),
            stripe_mask: n_stripes.saturating_sub(1) as u64,
            store,
        }
    }

    /// The shared cost model (simulated clock + operation counts).
    pub fn cost_model(&self) -> Arc<CostModel> {
        self.model.clone()
    }

    /// Snapshot of the PVM event counters. Every counter — including
    /// the lock-free fast-path and shard-contention cells — lives in
    /// one atomic registry, so this never takes the state lock.
    pub fn stats(&self) -> PvmStats {
        self.stats.snapshot()
    }

    /// The live counter registry shared by every counting site.
    pub fn stats_registry(&self) -> Arc<StatsRegistry> {
        self.stats.clone()
    }

    /// The event tracer (disabled unless `PvmConfig::trace` enables it).
    pub fn tracer(&self) -> Arc<Tracer> {
        self.trace.clone()
    }

    /// The dimensional telemetry registry (inert unless
    /// `PvmConfig::telemetry` enables it). Table reads never take the
    /// state lock.
    pub fn telemetry(&self) -> Arc<Telemetry> {
        self.telemetry.clone()
    }

    /// Copies out the recorded sim-time gauge series, oldest first
    /// (empty unless `PvmConfig::telemetry` is on).
    pub fn telemetry_series(&self) -> Vec<TelemetrySample> {
        self.state.lock().series.samples()
    }

    /// Takes a gauge sample of the live state right now (not appended
    /// to the series; works with telemetry off).
    pub fn sample_now(&self) -> TelemetrySample {
        self.state.lock().live_sample()
    }

    /// The `pvmtop` introspection snapshot: top caches by fault/dirty
    /// heat, per-mapper health, per-phase latency percentiles, and the
    /// live gauges — one consistent picture under one lock acquisition.
    pub fn top(&self) -> PvmTop {
        crate::pvmtop::snapshot(&self.state.lock())
    }

    /// Resets the PVM event counters, the tracer's rings and
    /// histograms, and the telemetry tables and gauge series (the cost
    /// model has its own reset).
    pub fn reset_stats(&self) {
        self.stats.reset();
        self.trace.reset();
        self.telemetry.reset();
        let mut guard = self.state.lock();
        guard.series.clear();
        guard.next_sample_ns = 0;
    }

    /// Number of live cache descriptors (including zombies and working
    /// objects) — used by tests and the ablation benches.
    pub fn cache_count(&self) -> usize {
        self.state.lock().caches.len()
    }

    /// Number of resident pages across all caches.
    pub fn resident_page_count(&self) -> usize {
        self.state.lock().pages.len()
    }

    /// Number of free physical frames.
    pub fn free_frames(&self) -> u32 {
        self.state.lock().phys.lock().free_frames()
    }

    /// Physical memory statistics.
    pub fn mem_stats(&self) -> chorus_hal::MemStats {
        self.state.lock().phys.lock().stats()
    }

    /// Hit/miss statistics of the MMU's large-page TLB, if the backing
    /// MMU has a large level (`None` otherwise).
    pub fn large_tlb_stats(&self) -> Option<chorus_hal::TlbStats> {
        self.state.lock().mmu.lock().large_tlb_stats()
    }

    /// Number of currently installed large mappings.
    pub fn large_mapping_count(&self) -> usize {
        self.state.lock().large_maps.len()
    }

    /// Runs the structural invariant checker (also run automatically when
    /// `PvmConfig::check_invariants` is set).
    ///
    /// # Panics
    ///
    /// Panics on any violated invariant.
    pub fn check_invariants(&self) {
        self.state.lock().check_invariants();
    }

    // ----- the blocked-action driver ---------------------------------------

    pub(crate) fn state_for_dump(&self) -> parking_lot::MutexGuard<'_, PvmState> {
        self.state.lock()
    }

    pub(crate) fn run_pub<T>(&self, attempt: impl FnMut(&mut PvmState) -> Attempt<T>) -> Result<T> {
        self.run(attempt)
    }

    fn run<T>(&self, mut attempt: impl FnMut(&mut PvmState) -> Attempt<T>) -> Result<T> {
        let mut guard = self.state.lock();
        guard = self.pump_completions(guard);
        if guard.watchdog_sweep() > 0 {
            // Cancelled pulls cleared their stubs and freed in-flight
            // slots: wake sleepers so they re-fault, and feed queued
            // pending pulls into the freed slots.
            self.stub_cv.notify_all();
            guard = self.drain_pending(guard);
        }
        guard = self.maybe_launder(guard);
        // The deterministic gauge sampler rides every driver entry:
        // reads the simulated clock, never advances it.
        guard.maybe_sample();
        loop {
            match attempt(&mut guard)? {
                Outcome::Done(v) => {
                    if guard.config.check_invariants {
                        guard.check_invariants();
                    }
                    drop(guard);
                    // Wake anyone whose wait condition we may have
                    // satisfied (stub resolution, promotion, cleaning).
                    self.stub_cv.notify_all();
                    return Ok(v);
                }
                Outcome::Blocked(action) => {
                    guard = self.perform(guard, action)?;
                }
            }
        }
    }

    /// The deterministic "writeback daemon": when the watermark config
    /// is on and free frames fell below the low watermark, launder
    /// (clean + evict) pages until the high watermark is reached, so the
    /// operation about to run — and the demand faults after it — find
    /// free or clean frames instead of stalling on a synchronous
    /// `pushOut`. Runs inline at every driver entry rather than on a
    /// free-running thread, so the same operation sequence always
    /// launders at the same simulated instants (the determinism rule).
    /// Laundering failures are swallowed: the daemon must never fail the
    /// operation that happened to trigger it (the pages simply stay
    /// dirty and the synchronous emergency path still applies).
    fn maybe_launder<'a>(
        &'a self,
        guard: parking_lot::MutexGuard<'a, PvmState>,
    ) -> parking_lot::MutexGuard<'a, PvmState> {
        let low = guard.config.writeback_low_frames;
        if !guard.config.writeback_daemon || low == 0 || guard.phys.lock().free_frames() >= low {
            return guard;
        }
        if self.laundering.swap(true, Ordering::Acquire) {
            return guard;
        }
        let high = guard.config.writeback_high_frames.max(low);
        let mut guard = guard;
        guard.stats.bump(Counter::LaunderPasses);
        loop {
            match guard.launder_attempt(high) {
                Ok(Outcome::Done(())) => break,
                Ok(Outcome::Blocked(action)) => match self.perform(guard, action) {
                    Ok(g) => guard = g,
                    Err(_) => {
                        guard = self.state.lock();
                        break;
                    }
                },
                Err(_) => break,
            }
        }
        self.laundering.store(false, Ordering::Release);
        guard
    }

    /// Drives one mapper upcall under the retry policy: transient
    /// failures are re-driven up to `max_attempts` times with exponential
    /// backoff charged to the simulated clock, bounded by the per-upcall
    /// deadline (also in simulated time, so injected mapper delays count
    /// against it). Returns the final result and the number of retries
    /// performed. Must be called with the state lock released.
    fn upcall_with_retry(
        &self,
        segment: SegmentId,
        policy: chorus_gmi::RetryPolicy,
        mut upcall: impl FnMut() -> Result<()>,
    ) -> (Result<()>, u64) {
        let start = self.model.now().nanos();
        let past_deadline = |model: &CostModel| {
            policy.deadline_ns > 0
                && model.now().nanos().saturating_sub(start) >= policy.deadline_ns
        };
        let mut retries = 0u64;
        let result = loop {
            match upcall() {
                Ok(()) => break Ok(()),
                Err(e) if e.is_transient() => {
                    if past_deadline(&self.model) {
                        break Err(GmiError::MapperTimeout { segment });
                    }
                    if retries + 1 >= u64::from(policy.attempts()) {
                        break Err(e);
                    }
                    retries += 1;
                    self.model.charge(chorus_hal::OpKind::MapperRetry);
                    self.model.advance_ns(policy.backoff_ns(retries as u32));
                    if past_deadline(&self.model) {
                        break Err(GmiError::MapperTimeout { segment });
                    }
                }
                Err(e) => break Err(e),
            }
        };
        (result, retries)
    }

    // ----- the asynchronous upcall engine -----------------------------------

    /// Delivers every completion already due at the current simulated
    /// time (their service windows were covered by intervening work, so
    /// the deferred charges only count), then feeds pending pulls into
    /// freed in-flight slots. Runs at every driver entry; a no-op with
    /// the engine off.
    fn pump_completions<'a>(
        &'a self,
        mut guard: parking_lot::MutexGuard<'a, PvmState>,
    ) -> parking_lot::MutexGuard<'a, PvmState> {
        if !guard.config.async_upcalls {
            return guard;
        }
        loop {
            let now = guard.model.now().nanos();
            let Some((due, id, rec)) = guard.engine.queue.pop_due(now) else {
                break;
            };
            guard.apply_completion(due, id, rec);
        }
        self.drain_pending(guard)
    }

    /// Force-delivers the earliest in-flight completion, advancing the
    /// simulated clock to its due time — a stub waiter or frame-starved
    /// allocation modelling a block until the transfer lands. Returns
    /// whether any progress was made (a delivery, or a pending pull
    /// submitted into a free slot).
    fn engine_force_one<'a>(
        &'a self,
        mut guard: parking_lot::MutexGuard<'a, PvmState>,
        stall: bool,
    ) -> (parking_lot::MutexGuard<'a, PvmState>, bool) {
        if let Some((due, id, rec)) = guard.engine.queue.pop_earliest() {
            if stall {
                guard.stats.bump(Counter::AsyncInflightStalls);
            }
            if guard.config.upcall_watchdog && rec.deadline_ns < due {
                // The waiter would block until a due time past the
                // request's deadline (a hung reply). The unified wake
                // path: advance only to the deadline and cancel, so
                // the waiter observes the timeout and re-faults
                // instead of waiting out a reply that never comes.
                let now = guard.model.now().nanos();
                if rec.deadline_ns > now {
                    guard.model.advance_ns(rec.deadline_ns - now);
                }
                guard.cancel_completion(id, rec);
            } else {
                guard.apply_completion(due, id, rec);
            }
            guard = self.drain_pending(guard);
            return (guard, true);
        }
        let before = guard.engine.pending_pulls.len();
        guard = self.drain_pending(guard);
        let progressed = guard.engine.pending_pulls.len() < before;
        (guard, progressed)
    }

    /// Submits queued over-cap pulls while in-flight slots are free.
    /// Guarded against reentry: executing a pull re-enters the driver
    /// through `fillUp`, which pumps again.
    fn drain_pending<'a>(
        &'a self,
        mut guard: parking_lot::MutexGuard<'a, PvmState>,
    ) -> parking_lot::MutexGuard<'a, PvmState> {
        if guard.engine.pending_pulls.is_empty() || self.pumping.swap(true, Ordering::Acquire) {
            return guard;
        }
        let cap = guard.config.max_inflight_upcalls.max(1);
        while let Some(p) = guard.engine.take_submittable_pending(cap) {
            guard = self.submit_async_pull(guard, p);
        }
        self.pumping.store(false, Ordering::Release);
        guard
    }

    /// Routes a readahead tail pull into the engine: submitted when the
    /// mapper has a free in-flight slot, queued (coalescing with an
    /// adjacent pending pull) otherwise.
    fn queue_async_pull<'a>(
        &'a self,
        mut guard: parking_lot::MutexGuard<'a, PvmState>,
        pull: PendingPull,
    ) -> parking_lot::MutexGuard<'a, PvmState> {
        let cap = guard
            .engine
            .cap_for(pull.segment, guard.config.max_inflight_upcalls.max(1));
        if guard.engine.pending_pulls.is_empty() && guard.engine.inflight_for(pull.segment) < cap {
            return self.submit_async_pull(guard, pull);
        }
        if guard.engine.queue_pending_pull(pull) {
            guard.stats.bump(Counter::AsyncCoalesced);
        }
        guard
    }

    /// Submits one asynchronous pull: registers it in the in-flight
    /// table, runs the mapper protocol eagerly with the lock released
    /// (retries and backoff charge the clock as they would inline), and
    /// schedules the completion at `now + modelled service time`. The
    /// deferred bookkeeping — charges, stub clearing, quarantine — runs
    /// at delivery.
    fn submit_async_pull<'a>(
        &'a self,
        mut guard: parking_lot::MutexGuard<'a, PvmState>,
        pull: PendingPull,
    ) -> parking_lot::MutexGuard<'a, PvmState> {
        let id = guard.engine.register(pull.segment);
        let inflight = guard.engine.inflight();
        guard.stats.bump(Counter::AsyncSubmits);
        guard.trace.event(|| TraceEvent::UpcallSubmit {
            kind: UpcallKind::PullIn,
            segment: pull.segment.0,
            offset: pull.offset,
            size: pull.size,
            inflight,
        });
        let policy = guard.config.retry;
        let service = guard.upcall_service_ns(pull.size / guard.ps());
        let deadline_ns = request_deadline(guard.model.now().nanos(), &policy);
        drop(guard);
        let req = PullRequest {
            cache: pub_cache(pull.cache),
            segment: pull.segment,
            offset: pull.offset,
            size: pull.size,
            access: pull.access,
        };
        let (result, retries) = self.upcall_with_retry(pull.segment, policy, || {
            self.seg_mgr.submit_pull(self, &req)
        });
        let mut guard = self.state.lock();
        // A protocol-level timeout means the reply is not coming on its
        // own: park the record at the hung-reply horizon instead of the
        // modelled service time, so the watchdog (or a forced delivery)
        // decides its fate.
        let service = if matches!(result, Err(GmiError::MapperTimeout { .. })) {
            crate::engine::HUNG_REPLY_NS
        } else {
            service
        };
        let due = guard.model.now().nanos() + service;
        guard.engine.queue.insert(
            due,
            id,
            CompletionRecord {
                kind: UpcallKind::PullIn,
                cache: pull.cache,
                segment: pull.segment,
                offset: pull.offset,
                size: pull.size,
                pages: Vec::new(),
                result,
                retries,
                deadline_ns,
            },
        );
        guard
    }

    /// Submits one asynchronous laundering push. The pages stay
    /// `cleaning` (write-protected) until the completion delivers, so
    /// the bytes the mapper read at submit time cannot be re-dirtied
    /// under it; on a failed completion they keep their dirty bits and
    /// the next laundering pass re-drives them — no dirty data is lost.
    #[allow(clippy::too_many_arguments)]
    fn submit_async_push<'a>(
        &'a self,
        mut guard: parking_lot::MutexGuard<'a, PvmState>,
        cache: crate::keys::CacheKey,
        segment: SegmentId,
        offset: u64,
        size: u64,
        pages: Vec<crate::keys::PageKey>,
    ) -> parking_lot::MutexGuard<'a, PvmState> {
        let id = guard.engine.register(segment);
        let inflight = guard.engine.inflight();
        guard.stats.bump(Counter::AsyncSubmits);
        guard.trace.event(|| TraceEvent::UpcallSubmit {
            kind: UpcallKind::PushOut,
            segment: segment.0,
            offset,
            size,
            inflight,
        });
        let policy = guard.config.retry;
        let service = guard.upcall_service_ns(pages.len() as u64);
        let deadline_ns = request_deadline(guard.model.now().nanos(), &policy);
        drop(guard);
        let req = PushRequest {
            cache: pub_cache(cache),
            segment,
            offset,
            size,
        };
        // Same batch discipline as the synchronous path: a multi-page
        // run gets one shot (a failed batch keeps every page dirty for
        // the next pass rather than re-driving N-page transfers).
        let (result, retries) = if pages.len() == 1 {
            self.upcall_with_retry(segment, policy, || self.seg_mgr.submit_push(self, &req))
        } else {
            (self.seg_mgr.submit_push(self, &req), 0)
        };
        let mut guard = self.state.lock();
        // As with pulls: a timed-out push parks at the hung-reply
        // horizon (its pages stay `cleaning` until cancelled or forced,
        // then keep their dirty bits — no modified data is lost).
        let service = if matches!(result, Err(GmiError::MapperTimeout { .. })) {
            crate::engine::HUNG_REPLY_NS
        } else {
            service
        };
        let due = guard.model.now().nanos() + service;
        guard.engine.queue.insert(
            due,
            id,
            CompletionRecord {
                kind: UpcallKind::PushOut,
                cache,
                segment,
                offset,
                size,
                pages,
                result,
                retries,
                deadline_ns,
            },
        );
        guard
    }

    /// Force-delivers every outstanding asynchronous completion (and
    /// submits queued pending pulls), advancing the simulated clock as
    /// each transfer lands. Deterministic `(due, id)` order. Call at
    /// the end of a measurement window so the tables include all
    /// in-flight work; a no-op with the engine off or idle.
    pub fn drain_upcalls(&self) {
        loop {
            let guard = self.state.lock();
            if !guard.config.async_upcalls {
                return;
            }
            let (guard, progressed) = self.engine_force_one(guard, false);
            drop(guard);
            self.stub_cv.notify_all();
            if !progressed {
                return;
            }
        }
    }

    /// Performs a blocked action, re-acquiring the lock afterwards.
    fn perform<'a>(
        &'a self,
        mut guard: parking_lot::MutexGuard<'a, PvmState>,
        action: Blocked,
    ) -> Result<parking_lot::MutexGuard<'a, PvmState>> {
        match action {
            Blocked::WaitStub => {
                // The stub may belong to an in-flight asynchronous
                // upcall, whose completion no other thread will deliver:
                // force the earliest one (advancing the clock to its due
                // time — this thread is blocked on the transfer) before
                // considering a sleep.
                if guard.config.async_upcalls {
                    let (g, progressed) = self.engine_force_one(guard, true);
                    guard = g;
                    if progressed {
                        return Ok(guard);
                    }
                }
                // Bounded wait: progress is re-checked on every wakeup,
                // and the timeout guards against lost notifications.
                let t0 = self.trace.phase_start();
                let span = self.trace.span("stub.sleep");
                let _ = self.stub_cv.wait_for(&mut guard, Duration::from_millis(50));
                drop(span);
                self.trace.phase_end(Phase::StubWait, t0);
                self.trace.event(|| TraceEvent::StubWake);
                Ok(guard)
            }
            Blocked::Throttled => {
                // Backpressure: the pending-pull queue is at its bound.
                // Force-deliver the earliest completion — freeing an
                // in-flight slot feeds a pending pull forward — so the
                // stall drains the queue instead of merely sleeping.
                guard.stats.bump(Counter::ThrottleStalls);
                let pending = guard.engine.pending_pulls.len() as u64;
                guard.trace.event(|| TraceEvent::Throttled { pending });
                let (mut guard, progressed) = self.engine_force_one(guard, true);
                if !progressed {
                    // Another thread is mid-submit on the outstanding
                    // request: yield briefly and retry.
                    let _ = self.stub_cv.wait_for(&mut guard, Duration::from_millis(5));
                }
                Ok(guard)
            }
            Blocked::AwaitCompletion => {
                // Frame allocation is starved but the engine owes work
                // whose delivery can free frames; force it, then retry.
                let (guard, progressed) = self.engine_force_one(guard, true);
                if progressed {
                    return Ok(guard);
                }
                // Another thread is mid-execution on the outstanding
                // request: yield briefly and retry.
                let mut guard = guard;
                let _ = self.stub_cv.wait_for(&mut guard, Duration::from_millis(5));
                Ok(guard)
            }
            Blocked::PullIn {
                cache,
                segment,
                offset,
                mut size,
                access,
            } => {
                // With the engine on, a clustered pull splits: the
                // faulting head page stays synchronous (the faulter
                // needs it now), the readahead tail becomes a
                // fire-and-collect asynchronous pull. The tail pages'
                // sync stubs are already placed; they clear at the
                // completion's delivery (or when `fillUp` lands data).
                let ps = guard.ps();
                // A Suspected mapper gets no asynchronous tail: the
                // whole clustered pull degrades to the synchronous path
                // until a successful delivery clears the suspicion.
                if guard.config.async_upcalls && size > ps && !guard.engine.is_suspected(segment) {
                    guard = self.queue_async_pull(
                        guard,
                        PendingPull {
                            cache,
                            segment,
                            offset: offset + ps,
                            size: size - ps,
                            access,
                        },
                    );
                    size = ps;
                }
                let policy = guard.config.retry;
                drop(guard);
                let t0 = self.trace.phase_start();
                self.trace.event(|| TraceEvent::UpcallStart {
                    kind: UpcallKind::PullIn,
                    segment: segment.0,
                    offset,
                    size,
                });
                let req = PullRequest {
                    cache: pub_cache(cache),
                    segment,
                    offset,
                    size,
                    access,
                };
                let (res, retries) = self
                    .upcall_with_retry(segment, policy, || self.seg_mgr.submit_pull(self, &req));
                self.trace.event(|| TraceEvent::UpcallEnd {
                    kind: UpcallKind::PullIn,
                    outcome: upcall_outcome(&res),
                    retries,
                });
                self.trace.phase_end(Phase::PullIn, t0);
                let mut guard = self.state.lock();
                guard.stats.add(Counter::MapperRetries, retries);
                guard.dim_mapper(segment, DimCounter::Retries, retries);
                let ps = guard.ps();
                // Clear any stub of the pulled range the mapper left
                // unfilled — on failure this is also the waiter cleanup:
                // every faulter asleep on one of these stubs wakes,
                // retries, and reports its own error instead of hanging.
                let mut cur = offset;
                while cur < offset + size {
                    if guard.is_sync_stub(cache, cur) {
                        guard.clear_slot(cache, cur);
                    }
                    cur += ps;
                }
                // Return any contiguous-run frames the mapper did not
                // fill (short delivery or failure) to the buddy pool.
                guard.release_reservations(cache, offset, size);
                match res {
                    Ok(()) => {
                        guard.stats.bump(Counter::PullIns);
                        guard.dim_io(cache, segment, DimCounter::PullIns, 1);
                        // One mapper round trip plus per-page transfer.
                        guard.charge(chorus_hal::OpKind::IpcOp);
                        guard.charge_n(chorus_hal::OpKind::SegmentIoPage, size / ps);
                        if !matches!(
                            guard.gmap.get(cache, offset),
                            Some(crate::descriptors::Slot::Present(_))
                        ) && guard.caches.contains(cache)
                        {
                            // The mapper never delivered the faulting page.
                            drop(guard);
                            self.stub_cv.notify_all();
                            return Err(GmiError::SegmentIo {
                                segment,
                                cause: "pullIn returned without fillUp".into(),
                                transient: true,
                            });
                        }
                        Ok(guard)
                    }
                    Err(e) => {
                        if matches!(e, GmiError::MapperTimeout { .. }) {
                            guard.stats.bump(Counter::MapperTimeouts);
                            guard.dim_mapper(segment, DimCounter::Timeouts, 1);
                        }
                        if !e.is_transient() {
                            guard.quarantine_cache(cache);
                        }
                        drop(guard);
                        self.stub_cv.notify_all();
                        Err(e)
                    }
                }
            }
            Blocked::PushOut {
                cache,
                segment,
                offset,
                size,
                pages,
                origin,
            } => {
                // Daemon-origin laundering pushes are the engine's other
                // async source: nothing waits on them, so they become
                // fire-and-collect when the mapper has a free in-flight
                // slot (at the cap they degrade to the synchronous path
                // below, never to unbounded queueing of dirty runs).
                if guard.config.async_upcalls && origin == PushOrigin::Daemon {
                    let cap = guard
                        .engine
                        .cap_for(segment, guard.config.max_inflight_upcalls.max(1));
                    if guard.engine.inflight_for(segment) < cap {
                        return Ok(
                            self.submit_async_push(guard, cache, segment, offset, size, pages)
                        );
                    }
                }
                let policy = guard.config.retry;
                drop(guard);
                let ps = self.geom.page_size();
                // A demand-origin push is the faulting thread stalling on
                // a dirty eviction — the latency the writeback daemon
                // exists to remove; record it in its own histogram.
                let stall0 = if origin == PushOrigin::Demand {
                    self.trace.phase_start()
                } else {
                    None
                };
                let t0 = self.trace.phase_start();
                self.trace.event(|| TraceEvent::UpcallStart {
                    kind: UpcallKind::PushOut,
                    segment: segment.0,
                    offset,
                    size,
                });
                let (res, retries) = if pages.len() == 1 {
                    self.upcall_with_retry(segment, policy, || {
                        self.seg_mgr.submit_push(
                            self,
                            &PushRequest {
                                cache: pub_cache(cache),
                                segment,
                                offset,
                                size,
                            },
                        )
                    })
                } else {
                    // A multi-page batch gets one shot: on any failure we
                    // fall back to per-page pushes, each with its own full
                    // retry budget, rather than re-driving N-page transfers
                    // against a mapper that already dropped one.
                    (
                        self.seg_mgr.submit_push(
                            self,
                            &PushRequest {
                                cache: pub_cache(cache),
                                segment,
                                offset,
                                size,
                            },
                        ),
                        0,
                    )
                };
                self.trace.event(|| TraceEvent::UpcallEnd {
                    kind: UpcallKind::PushOut,
                    outcome: upcall_outcome(&res),
                    retries,
                });
                self.trace.phase_end(Phase::PushOut, t0);
                let mut guard = self.state.lock();
                guard.stats.add(Counter::MapperRetries, retries);
                guard.dim_mapper(segment, DimCounter::Retries, retries);
                if res.is_ok() {
                    // One mapper round trip for the whole run, plus the
                    // per-page transfer — the request-count amortization
                    // that makes clustering pay.
                    guard.charge(chorus_hal::OpKind::IpcOp);
                    guard.charge_n(chorus_hal::OpKind::SegmentIoPage, size / ps);
                    guard.stats.bump(Counter::PushOutBatches);
                    guard.dim_io(cache, segment, DimCounter::PushOuts, pages.len() as u64);
                    for &p in &pages {
                        guard.finish_clean(p, true);
                    }
                    guard.grow_seg_len(cache, offset + size);
                    self.trace.phase_end(Phase::EvictStall, stall0);
                    return Ok(guard);
                }
                let first_err = res.unwrap_err();
                if matches!(first_err, GmiError::MapperTimeout { .. }) {
                    guard.stats.bump(Counter::MapperTimeouts);
                    guard.dim_mapper(segment, DimCounter::Timeouts, 1);
                }
                if pages.len() == 1 {
                    // On failure the page keeps its dirty bit (`success:
                    // false`), so no modified data is lost: a later retry
                    // of the clean can still write it back.
                    guard.finish_clean(pages[0], false);
                    if !first_err.is_transient() {
                        guard.quarantine_cache(cache);
                    }
                    drop(guard);
                    self.stub_cv.notify_all();
                    self.trace.phase_end(Phase::EvictStall, stall0);
                    return Err(first_err);
                }
                // A multi-page batch failed (wholly, or part-way with a
                // truncated reply): split into per-page pushes, each with
                // its own retry budget, so one bad page cannot lose the
                // dirty data of its neighbours. Pages that died while the
                // lock was released (e.g. a concurrent invalidate) have
                // nothing left to write and are skipped.
                guard.stats.bump(Counter::PushBatchSplits);
                drop(guard);
                let mut outcomes: Vec<Option<Result<()>>> = Vec::with_capacity(pages.len());
                let mut retries_total = 0u64;
                let mut dead_mapper = false;
                for (i, &p) in pages.iter().enumerate() {
                    if dead_mapper {
                        outcomes.push(Some(Err(GmiError::SegmentIo {
                            segment,
                            cause: "batched pushOut aborted after permanent mapper failure".into(),
                            transient: true,
                        })));
                        continue;
                    }
                    if !self.state.lock().pages.contains(p) {
                        outcomes.push(None);
                        continue;
                    }
                    let off_i = offset + i as u64 * ps;
                    let (r, rt) = self.upcall_with_retry(segment, policy, || {
                        self.seg_mgr.submit_push(
                            self,
                            &PushRequest {
                                cache: pub_cache(cache),
                                segment,
                                offset: off_i,
                                size: ps,
                            },
                        )
                    });
                    retries_total += rt;
                    if r.as_ref().err().map(|e| !e.is_transient()).unwrap_or(false) {
                        dead_mapper = true;
                    }
                    outcomes.push(Some(r));
                }
                let mut guard = self.state.lock();
                guard.stats.add(Counter::MapperRetries, retries_total);
                guard.dim_mapper(segment, DimCounter::Retries, retries_total);
                let mut err: Option<GmiError> = None;
                let mut quarantine = false;
                for (i, (&p, r)) in pages.iter().zip(outcomes).enumerate() {
                    match r {
                        None => {}
                        Some(Ok(())) => {
                            guard.charge(chorus_hal::OpKind::IpcOp);
                            guard.charge_n(chorus_hal::OpKind::SegmentIoPage, 1);
                            guard.dim_io(cache, segment, DimCounter::PushOuts, 1);
                            guard.finish_clean(p, true);
                            guard.grow_seg_len(cache, offset + (i as u64 + 1) * ps);
                        }
                        Some(Err(e)) => {
                            guard.finish_clean(p, false);
                            if matches!(e, GmiError::MapperTimeout { .. }) {
                                guard.stats.bump(Counter::MapperTimeouts);
                                guard.dim_mapper(segment, DimCounter::Timeouts, 1);
                            }
                            if !e.is_transient() {
                                quarantine = true;
                            }
                            if err.is_none() {
                                err = Some(e);
                            }
                        }
                    }
                }
                if quarantine {
                    guard.quarantine_cache(cache);
                }
                self.trace.phase_end(Phase::EvictStall, stall0);
                match err {
                    None => Ok(guard),
                    Some(e) => {
                        drop(guard);
                        self.stub_cv.notify_all();
                        Err(e)
                    }
                }
            }
            Blocked::VictimAdvice { pages, idents } => {
                guard.stats.bump(Counter::PolicyExternalBatches);
                if pages.is_empty() {
                    guard.approve_external_victims(&[]);
                    return Ok(guard);
                }
                // Candidates are live here: selection returned this
                // action under the lock we still hold. They may die
                // while the advice round trip runs below;
                // `approve_external_victims` re-filters on return.
                let cache = guard.page(pages[0]).cache;
                if guard.config.async_upcalls {
                    // Fire-and-collect, like a laundering push: the
                    // mapper answers eagerly, the approval bookkeeping
                    // waits for the completion's due time. Selection
                    // falls back to the internal clock meanwhile, so
                    // allocation never stalls on the advisor.
                    let segment = ADVICE_SEGMENT;
                    let id = guard.engine.register(segment);
                    let inflight = guard.engine.inflight();
                    guard.stats.bump(Counter::AsyncSubmits);
                    guard.trace.event(|| TraceEvent::UpcallSubmit {
                        kind: UpcallKind::VictimAdvice,
                        segment: segment.0,
                        offset: 0,
                        size: 0,
                        inflight,
                    });
                    let policy = guard.config.retry;
                    let service = guard.upcall_service_ns(idents.len() as u64);
                    let deadline_ns = request_deadline(guard.model.now().nanos(), &policy);
                    drop(guard);
                    let verdicts = self.seg_mgr.advise_victims(&idents);
                    let approved = approved_victims(&pages, &verdicts);
                    let mut guard = self.state.lock();
                    let due = guard.model.now().nanos() + service;
                    guard.engine.queue.insert(
                        due,
                        id,
                        CompletionRecord {
                            kind: UpcallKind::VictimAdvice,
                            cache,
                            segment,
                            offset: 0,
                            size: 0,
                            pages: approved,
                            result: Ok(()),
                            retries: 0,
                            deadline_ns,
                        },
                    );
                    return Ok(guard);
                }
                drop(guard);
                let t0 = self.trace.phase_start();
                self.trace.event(|| TraceEvent::UpcallStart {
                    kind: UpcallKind::VictimAdvice,
                    segment: ADVICE_SEGMENT.0,
                    offset: 0,
                    size: idents.len() as u64,
                });
                let verdicts = self.seg_mgr.advise_victims(&idents);
                self.trace.event(|| TraceEvent::UpcallEnd {
                    kind: UpcallKind::VictimAdvice,
                    outcome: UpcallOutcome::Ok,
                    retries: 0,
                });
                self.trace.phase_end(Phase::PushOut, t0);
                let approved = approved_victims(&pages, &verdicts);
                let mut guard = self.state.lock();
                // One advisory round trip on the wire.
                guard.charge(chorus_hal::OpKind::IpcOp);
                guard.approve_external_victims(&approved);
                Ok(guard)
            }
            Blocked::NeedSegment { cache } => {
                drop(guard);
                let segment = self.seg_mgr.create_segment_v2(pub_cache(cache));
                let seg_len = self.seg_mgr.segment_len(segment);
                let mut guard = self.state.lock();
                if let Ok(c) = guard.cache_mut(cache) {
                    if c.segment.is_none() {
                        c.segment = Some(segment);
                        c.seg_len = seg_len;
                    }
                }
                Ok(guard)
            }
            Blocked::GetWriteAccess {
                cache: _,
                segment,
                offset,
                size,
                page,
            } => {
                let policy = guard.config.retry;
                drop(guard);
                let t0 = self.trace.phase_start();
                self.trace.event(|| TraceEvent::UpcallStart {
                    kind: UpcallKind::GetWriteAccess,
                    segment: segment.0,
                    offset,
                    size,
                });
                let (res, retries) = self.upcall_with_retry(segment, policy, || {
                    self.seg_mgr.acquire_write_access(segment, offset, size)
                });
                self.trace.event(|| TraceEvent::UpcallEnd {
                    kind: UpcallKind::GetWriteAccess,
                    outcome: upcall_outcome(&res),
                    retries,
                });
                self.trace.phase_end(Phase::GetWriteAccess, t0);
                let mut guard = self.state.lock();
                // Each retry is its own upcall on the wire.
                guard.stats.add(Counter::WriteAccessUpcalls, 1 + retries);
                guard.stats.add(Counter::MapperRetries, retries);
                guard.dim_mapper(segment, DimCounter::Retries, retries);
                match res {
                    Ok(()) => {
                        if guard.pages.contains(page) {
                            guard.page_mut(page).seg_write_ok = true;
                        }
                        Ok(guard)
                    }
                    Err(e) => {
                        // A write-access denial is a coherence decision,
                        // not a mapper death: no quarantine.
                        if matches!(e, GmiError::MapperTimeout { .. }) {
                            guard.stats.bump(Counter::MapperTimeouts);
                            guard.dim_mapper(segment, DimCounter::Timeouts, 1);
                        }
                        Err(e)
                    }
                }
            }
        }
    }
}

// ----- CacheIo: the non-faulting Table 4 data-transfer downcalls ---------

impl CacheIo for Pvm {
    fn fill_up(&self, cache: CacheId, offset: u64, data: &[u8]) -> Result<()> {
        let key = cache_key(cache);
        let ps = {
            let guard = self.state.lock();
            guard.cache(key)?;
            guard.ps()
        };
        // Pages already landed by this delivery are pinned until the
        // whole delivery completes: the evictions that later pages'
        // frame allocations trigger must not take earlier pages of the
        // same window (a clustered pull would eat its own head and the
        // faulter would see "pullIn returned without fillUp"). The
        // last — and in the unclustered case only — page needs no pin:
        // nothing fills after it. Pins are dropped on every exit path.
        let mut pinned: Vec<crate::keys::PageKey> = Vec::new();
        let mut cur = 0u64;
        let result = loop {
            if cur >= data.len() as u64 {
                break Ok(());
            }
            let page_off = offset + cur;
            debug_assert!(
                page_off.is_multiple_of(ps),
                "fillUp chunks must start page-aligned"
            );
            let n = ps.min(data.len() as u64 - cur);
            let chunk = &data[cur as usize..(cur + n) as usize];
            // Parallel driver: land the bytes through the lock-free
            // frame plane, holding the state lock only to claim and
            // then publish the landing frame. When the claim would
            // block (frame pool dry), fall back to the classic
            // blocked-action driver, which knows how to evict.
            let landed = if self.parallel && self.fill_one_parallel(key, page_off, chunk)? {
                true
            } else {
                match self.run(|s| s.fill_up_page_attempt(key, page_off, chunk)) {
                    Ok(()) => true,
                    Err(e) => break Err(e),
                }
            };
            self.stub_cv.notify_all();
            cur += n;
            if landed && cur < data.len() as u64 {
                let mut guard = self.state.lock();
                if let Some(p) = guard.pin_resident(key, page_off) {
                    pinned.push(p);
                }
            }
        };
        if !pinned.is_empty() {
            let mut guard = self.state.lock();
            guard.unpin_pages(&pinned);
            drop(guard);
            self.stub_cv.notify_all();
        }
        result
    }

    fn copy_back(&self, cache: CacheId, offset: u64, buf: &mut [u8]) -> Result<()> {
        let key = cache_key(cache);
        let guard = self.state.lock();
        guard.copy_back_locked(key, offset, buf)
    }

    fn copy_back_run(&self, cache: CacheId, offset: u64, buf: &mut [u8]) -> Result<u64> {
        let key = cache_key(cache);
        let guard = self.state.lock();
        guard.copy_back_run_locked(key, offset, buf)
    }

    fn move_back(&self, cache: CacheId, offset: u64, buf: &mut [u8]) -> Result<()> {
        let key = cache_key(cache);
        let mut guard = self.state.lock();
        guard.copy_back_locked(key, offset, buf)?;
        // Remove the fragment from the cache, releasing the frames.
        let ps = guard.ps();
        let mut cur = 0u64;
        while cur < buf.len() as u64 {
            let o = offset + cur;
            if let Some(Slot::Present(p)) = guard.slot(key, o) {
                if guard.page(p).stubs.is_empty() && guard.page(p).lock_count == 0 {
                    guard.free_page(p, crate::state::StubsTo::AlreadyHandled, true);
                }
            }
            cur += ps;
        }
        drop(guard);
        self.stub_cv.notify_all();
        Ok(())
    }
}

impl PvmState {
    /// One attempt of delivering one page of `fillUp` data.
    pub(crate) fn fill_up_page_attempt(
        &mut self,
        cache: crate::keys::CacheKey,
        page_off: u64,
        chunk: &[u8],
    ) -> Attempt<()> {
        if self.caches.get(cache).is_none() {
            // The cache died while the pull was in flight; drop the data.
            if self.gmap.get(cache, page_off) == Some(Slot::Sync) {
                self.gmap.remove(cache, page_off);
            }
            return crate::state::done(());
        }
        match self.slot(cache, page_off) {
            Some(Slot::Present(p)) => {
                // Data already resident (e.g. a concurrent fill): refresh
                // the bytes only if the page is clean.
                if !self.page(p).dirty {
                    let frame = self.page(p).frame;
                    let mut full = vec![0u8; self.ps() as usize];
                    full[..chunk.len()].copy_from_slice(chunk);
                    self.phys.lock().write(frame, 0, &full);
                }
                crate::state::done(())
            }
            _ => {
                // A frame reserved for this pull window is consumed in
                // place: it is part of a contiguous pre-zeroed run, so
                // only the payload bytes need writing and the later
                // promotion check sees consecutive frame numbers.
                if let Some(frame) = self.reserved_frames.remove(&(cache, page_off)) {
                    self.phys.lock().write(frame, 0, chunk);
                    if let Some(Slot::Cow(src)) = self.slot(cache, page_off) {
                        self.unthread_cow_stub(cache, page_off, src);
                    }
                    let writable = !self.has_history_covering(cache, page_off);
                    self.create_page(cache, page_off, frame, writable, false);
                    return crate::state::done(());
                }
                // Failing this allocation would strand the pulled data
                // and error the recovery; this is reclaim-critical work,
                // so it may draw from the emergency reserve, and it
                // degrades through an emergency eviction pass before
                // giving up.
                let alloc = match self.alloc_frame_reserved() {
                    Err(GmiError::OutOfMemory)
                        if self.config.emergency_pageout && self.emergency_evict() > 0 =>
                    {
                        self.alloc_frame_reserved()
                    }
                    other => other,
                };
                let frame = match alloc? {
                    Outcome::Done(f) => f,
                    Outcome::Blocked(b) => return crate::state::blocked(b),
                };
                // Partial trailing chunks are zero-padded.
                self.phys.lock().zero(frame);
                self.phys.lock().write(frame, 0, chunk);
                if let Some(Slot::Cow(src)) = self.slot(cache, page_off) {
                    self.unthread_cow_stub(cache, page_off, src);
                }
                let writable = !self.has_history_covering(cache, page_off);
                self.create_page(cache, page_off, frame, writable, false);
                crate::state::done(())
            }
        }
    }

    /// Non-faulting read of resident data (`copyBack`).
    pub(crate) fn copy_back_locked(
        &self,
        cache: crate::keys::CacheKey,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<()> {
        self.cache(cache)?;
        let ps = self.ps();
        let mut cur = 0u64;
        while cur < buf.len() as u64 {
            let o = offset + cur;
            let page_off = self.geom.round_down(o);
            let in_page = (page_off + ps - o).min(buf.len() as u64 - cur);
            match self.gmap.get(cache, page_off) {
                Some(Slot::Present(p)) => {
                    let frame = self.page(p).frame;
                    self.phys.lock().read(
                        frame,
                        o - page_off,
                        &mut buf[cur as usize..(cur + in_page) as usize],
                    );
                }
                _ => {
                    return Err(GmiError::OutOfRange {
                        offset: page_off,
                        size: ps,
                        what: "copyBack of non-resident data",
                    })
                }
            }
            cur += in_page;
        }
        Ok(())
    }

    /// Reads the longest fully-resident page-aligned prefix of
    /// `[offset, offset + buf.len())` into `buf`, returning its length
    /// in bytes. A batched `pushOut` uses this so a page that vanished
    /// mid-run (writeback racing an invalidate) shortens the reply
    /// instead of failing the whole batch.
    pub(crate) fn copy_back_run_locked(
        &self,
        cache: crate::keys::CacheKey,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<u64> {
        self.cache(cache)?;
        let ps = self.ps();
        let mut cur = 0u64;
        while cur < buf.len() as u64 {
            let o = offset + cur;
            let page_off = self.geom.round_down(o);
            let in_page = (page_off + ps - o).min(buf.len() as u64 - cur);
            match self.gmap.get(cache, page_off) {
                Some(Slot::Present(p)) => {
                    let frame = self.page(p).frame;
                    self.phys.lock().read(
                        frame,
                        o - page_off,
                        &mut buf[cur as usize..(cur + in_page) as usize],
                    );
                }
                _ if cur == 0 => {
                    return Err(GmiError::OutOfRange {
                        offset: page_off,
                        size: ps,
                        what: "copyBack of non-resident data",
                    })
                }
                _ => break,
            }
            cur += in_page;
        }
        Ok(cur)
    }

    /// Grows a cache's known segment length after a `pushOut` extended
    /// the segment to `end`. An unknown length stays unknown (it only
    /// disables the readahead clamp, never a pull).
    pub(crate) fn grow_seg_len(&mut self, cache: crate::keys::CacheKey, end: u64) {
        if let Some(c) = self.caches.get_mut(cache) {
            if let Some(len) = c.seg_len {
                if end > len {
                    c.seg_len = Some(end);
                }
            }
        }
    }
}

// ----- the GMI itself ------------------------------------------------------

impl Gmi for Pvm {
    fn cache_create(&self, segment: Option<SegmentId>) -> Result<CacheId> {
        // Ask the manager for the segment's length before taking the
        // lock; it clamps clustered pulls at segment end (`None` just
        // disables the clamp).
        let seg_len = segment.and_then(|s| self.seg_mgr.segment_len(s));
        let mut guard = self.state.lock();
        let key = guard.cache_create_locked(segment);
        if seg_len.is_some() {
            if let Ok(c) = guard.cache_mut(key) {
                c.seg_len = seg_len;
            }
        }
        Ok(pub_cache(key))
    }

    fn cache_destroy(&self, cache: CacheId) -> Result<()> {
        let key = cache_key(cache);
        self.run(|s| s.cache_destroy_attempt(key))
    }

    fn cache_copy_with(
        &self,
        src: CacheId,
        src_offset: u64,
        dst: CacheId,
        dst_offset: u64,
        size: u64,
        mode: CopyMode,
    ) -> Result<()> {
        let (s, d) = (cache_key(src), cache_key(dst));
        let mut progress = 0u64;
        self.run(|st| {
            st.cache_copy_attempt(s, src_offset, d, dst_offset, size, mode, &mut progress)
        })
    }

    fn cache_move(
        &self,
        src: CacheId,
        src_offset: u64,
        dst: CacheId,
        dst_offset: u64,
        size: u64,
    ) -> Result<()> {
        let (s, d) = (cache_key(src), cache_key(dst));
        let mut progress = 0u64;
        self.run(|st| st.cache_move_attempt(s, src_offset, d, dst_offset, size, &mut progress))
    }

    fn cache_read(&self, cache: CacheId, offset: u64, buf: &mut [u8]) -> Result<()> {
        let key = cache_key(cache);
        let mut progress = 0u64;
        self.run(|s| s.cache_read_attempt(key, offset, buf, &mut progress))
    }

    fn cache_write(&self, cache: CacheId, offset: u64, data: &[u8]) -> Result<()> {
        let key = cache_key(cache);
        let mut progress = 0u64;
        self.run(|s| s.cache_write_attempt(key, offset, data, &mut progress))
    }

    fn context_create(&self) -> Result<CtxId> {
        let mut guard = self.state.lock();
        Ok(pub_ctx(guard.context_create_locked()))
    }

    fn context_destroy(&self, ctx: CtxId) -> Result<()> {
        let mut guard = self.state.lock();
        guard.context_destroy_locked(ctx_key(ctx))
    }

    fn context_switch(&self, ctx: CtxId) -> Result<()> {
        let mut guard = self.state.lock();
        guard.context_switch_locked(ctx_key(ctx))
    }

    fn region_list(&self, ctx: CtxId) -> Result<Vec<(RegionId, RegionStatus)>> {
        let guard = self.state.lock();
        let desc = guard.ctx(ctx_key(ctx))?;
        desc.regions
            .iter()
            .map(|&r| Ok((pub_region(r), guard.region_status_locked(r)?)))
            .collect()
    }

    fn find_region(&self, ctx: CtxId, va: VirtAddr) -> Result<RegionId> {
        let guard = self.state.lock();
        guard.find_region(ctx_key(ctx), va).map(pub_region)
    }

    fn region_create(
        &self,
        ctx: CtxId,
        addr: VirtAddr,
        size: u64,
        prot: Prot,
        cache: CacheId,
        offset: u64,
    ) -> Result<RegionId> {
        let mut guard = self.state.lock();
        guard
            .region_create_locked(ctx_key(ctx), addr, size, prot, cache_key(cache), offset)
            .map(pub_region)
    }

    fn region_split(&self, region: RegionId, offset: u64) -> Result<RegionId> {
        let mut guard = self.state.lock();
        guard
            .region_split_locked(region_key(region), offset)
            .map(pub_region)
    }

    fn region_set_protection(&self, region: RegionId, prot: Prot) -> Result<()> {
        let mut guard = self.state.lock();
        guard.region_set_protection_locked(region_key(region), prot)
    }

    fn region_lock_in_memory(&self, region: RegionId) -> Result<()> {
        let key = region_key(region);
        self.run(|s| s.region_lock_attempt(key))
    }

    fn region_unlock(&self, region: RegionId) -> Result<()> {
        let mut guard = self.state.lock();
        guard.region_unlock_locked(region_key(region))
    }

    fn region_status(&self, region: RegionId) -> Result<RegionStatus> {
        let guard = self.state.lock();
        guard.region_status_locked(region_key(region))
    }

    fn region_destroy(&self, region: RegionId) -> Result<()> {
        let mut guard = self.state.lock();
        guard.region_destroy_locked(region_key(region))
    }

    fn cache_flush(&self, cache: CacheId, offset: u64, size: u64) -> Result<()> {
        let key = cache_key(cache);
        self.run(|s| s.flush_attempt(key, offset, size))
    }

    fn cache_sync(&self, cache: CacheId, offset: u64, size: u64) -> Result<()> {
        let key = cache_key(cache);
        self.run(|s| s.sync_attempt(key, offset, size))
    }

    fn cache_invalidate(&self, cache: CacheId, offset: u64, size: u64) -> Result<()> {
        let key = cache_key(cache);
        self.run(|s| s.invalidate_attempt(key, offset, size))
    }

    fn cache_set_protection(
        &self,
        cache: CacheId,
        offset: u64,
        size: u64,
        prot: Prot,
    ) -> Result<()> {
        let mut guard = self.state.lock();
        guard.cache_set_protection_locked(cache_key(cache), offset, size, prot)
    }

    fn cache_lock_in_memory(&self, cache: CacheId, offset: u64, size: u64) -> Result<()> {
        let key = cache_key(cache);
        let mut pinned = 0u64;
        self.run(|s| s.cache_lock_attempt(key, offset, size, &mut pinned))
    }

    fn cache_unlock(&self, cache: CacheId, offset: u64, size: u64) -> Result<()> {
        let mut guard = self.state.lock();
        guard.cache_unlock_locked(cache_key(cache), offset, size)
    }

    fn handle_fault(&self, ctx: CtxId, va: VirtAddr, access: Access) -> Result<()> {
        let key = ctx_key(ctx);
        // The fault-enter stamp is taken before the fast-path probe so
        // every handled fault — fast or slow — has exactly one
        // FaultEnter/FaultExit pair.
        let fstart = self.trace.fault_enter(key.index(), va.0, access);
        // Soft-fault fast path: a current-generation translation whose
        // installed protection already allows the access means the MMU
        // mapping is valid — the fault needs no state change at all, so
        // it completes without the state mutex (only one sharded read
        // lock). Anything else (miss, stale generation, COW, stub,
        // protection upgrade) falls through to the locked slow path,
        // which re-derives truth from the global map.
        if self.fast.lookup(key, self.geom.vpn(va), access) {
            self.model.charge(chorus_hal::OpKind::FaultEntry);
            self.trace.event(|| TraceEvent::FastPathHit {
                ctx: key.index(),
                va: va.0,
            });
            self.trace
                .fault_exit(fstart, key.index(), va.0, Resolution::FastPath);
            return Ok(());
        }
        if self.fast.enabled() {
            self.trace.event(|| TraceEvent::FastPathFallback {
                ctx: key.index(),
                va: va.0,
            });
        }
        // Parallel driver: resolve the faulting cache with a short
        // state-lock peek, then hold that cache's stripe across the
        // whole hard fault (pull upcall included) so faults on the same
        // cache serialize — visibly, in the stripe counters — while
        // faults on disjoint caches proceed concurrently. Any peek
        // failure (dead context, unmapped address) falls through to the
        // unstriped driver so error semantics stay identical.
        if self.parallel && !HOLDS_STRIPE.with(|f| f.get()) {
            if let Some(cache) = self.peek_fault_cache(key, va) {
                let _stripe = self.lock_stripe(cache);
                HOLDS_STRIPE.with(|f| f.set(true));
                let res = self.fault_slow(key, va, access, fstart);
                HOLDS_STRIPE.with(|f| f.set(false));
                return res;
            }
        }
        self.fault_slow(key, va, access, fstart)
    }

    fn vm_read(&self, ctx: CtxId, va: VirtAddr, buf: &mut [u8]) -> Result<()> {
        self.vm_access(ctx, va, Access::Read, AccessBuf::Read(buf))
    }

    fn vm_write(&self, ctx: CtxId, va: VirtAddr, buf: &[u8]) -> Result<()> {
        self.vm_access(ctx, va, Access::Write, AccessBuf::Write(buf))
    }

    fn geometry(&self) -> PageGeometry {
        self.geom
    }

    fn cache_resident_pages(&self, cache: CacheId) -> Result<u64> {
        let guard = self.state.lock();
        let key = cache_key(cache);
        let desc = guard.cache(key)?;
        Ok(desc
            .entries
            .iter()
            .filter(|&&o| matches!(guard.gmap.get(key, o), Some(Slot::Present(_))))
            .count() as u64)
    }
}

/// The absolute simulated deadline of a request submitted at
/// `submit_ns`: the retry policy's per-upcall deadline from submission,
/// or "never" when deadlines are disabled.
fn request_deadline(submit_ns: u64, policy: &chorus_gmi::RetryPolicy) -> u64 {
    if policy.deadline_ns == 0 {
        u64::MAX
    } else {
        submit_ns.saturating_add(policy.deadline_ns)
    }
}

/// Sentinel segment id that carries `victimAdvice` completions through
/// the engine's in-flight table: advice is addressed to the manager as
/// a whole, not to any one segment, and no real segment ever gets this
/// id (segment ids are small sequential integers).
const ADVICE_SEGMENT: SegmentId = SegmentId(u64::MAX);

/// Applies a `victimAdvice` verdict mask to its candidate batch: a
/// candidate survives only where the mapper answered `true`; a short
/// reply vetoes the missing tail.
fn approved_victims(
    pages: &[crate::keys::PageKey],
    verdicts: &[bool],
) -> Vec<crate::keys::PageKey> {
    pages
        .iter()
        .zip(verdicts.iter().copied().chain(std::iter::repeat(false)))
        .filter_map(|(&p, ok)| ok.then_some(p))
        .collect()
}

/// Maps an upcall's final result onto the traced outcome.
fn upcall_outcome(res: &Result<()>) -> UpcallOutcome {
    match res {
        Ok(()) => UpcallOutcome::Ok,
        Err(GmiError::MapperTimeout { .. }) => UpcallOutcome::Timeout,
        Err(e) if e.is_transient() => UpcallOutcome::Transient,
        Err(_) => UpcallOutcome::Permanent,
    }
}

enum AccessBuf<'a> {
    Read(&'a mut [u8]),
    Write(&'a [u8]),
}

impl Pvm {
    /// The locked slow half of `handle_fault`: the blocked-action
    /// driver looping `fault_attempt`, shared by the classic and the
    /// striped paths.
    fn fault_slow(
        &self,
        key: CtxKey,
        va: VirtAddr,
        access: Access,
        fstart: Option<u64>,
    ) -> Result<()> {
        let mut first = true;
        let res = self.run(|s| {
            let head = first;
            if head {
                first = false;
                s.stats.bump(Counter::Faults);
                s.charge(chorus_hal::OpKind::FaultEntry);
            }
            s.fault_attempt(key, va, access, head)
        });
        let resolution = *res.as_ref().unwrap_or(&Resolution::Failed);
        self.trace.fault_exit(fstart, key.index(), va.0, resolution);
        res.map(|_| ())
    }

    /// Resolves which cache backs a faulting address, under a short
    /// state-lock section. `None` (dead context, unmapped va) routes
    /// the fault to the unstriped driver, which re-derives and reports
    /// the error itself.
    fn peek_fault_cache(&self, ctx: CtxKey, va: VirtAddr) -> Option<CacheKey> {
        let guard = self.state.lock();
        let reg = guard.find_region(ctx, va).ok()?;
        guard.region(reg).ok().map(|r| r.cache)
    }

    /// Locks the fault stripe of one cache (outermost tier of the
    /// parallel lock order), counting acquisition and contention both
    /// globally and in the cache's telemetry family.
    fn lock_stripe(&self, cache: CacheKey) -> parking_lot::MutexGuard<'_, ()> {
        let m = &self.stripes[(fx_hash_one(&cache) & self.stripe_mask) as usize];
        self.stats.bump(Counter::CacheStripeAcqs);
        if self.telemetry.enabled() {
            self.telemetry
                .bump(Dim::Cache, u64::from(cache.index()), DimCounter::LockAcqs);
        }
        match m.try_lock() {
            Some(g) => g,
            None => {
                self.stats.bump(Counter::CacheStripeContended);
                if self.telemetry.enabled() {
                    self.telemetry.bump(
                        Dim::Cache,
                        u64::from(cache.index()),
                        DimCounter::LockContended,
                    );
                }
                m.lock()
            }
        }
    }

    /// One page of parallel `fillUp`: the landing-frame protocol. The
    /// frame is claimed under one state-lock section, filled through
    /// the lock-free byte plane with no lock held, and published under
    /// a second section — so the memcpy/zeroing (the expensive part of
    /// a hard fault's recovery) no longer serializes behind the state
    /// lock.
    ///
    /// Returns `Ok(true)` when the page was handled here; `Ok(false)`
    /// when claiming a frame would have to evict, routing this page to
    /// the classic blocked-action driver.
    fn fill_one_parallel(&self, cache: CacheKey, page_off: u64, chunk: &[u8]) -> Result<bool> {
        // --- state lock #1: classify, claim a landing frame ---
        let (frame, prezeroed) = {
            let mut guard = self.state.lock();
            if guard.caches.get(cache).is_none() {
                // The cache died while the pull was in flight; drop the
                // data.
                if guard.gmap.get(cache, page_off) == Some(Slot::Sync) {
                    guard.gmap.remove(cache, page_off);
                }
                return Ok(true);
            }
            if let Some(Slot::Present(p)) = guard.slot(cache, page_off) {
                // Data already resident (e.g. a concurrent fill):
                // refresh the bytes only if the page is clean — under
                // the lock, since a resident page is visible to every
                // other thread.
                if !guard.page(p).dirty {
                    let frame = guard.page(p).frame;
                    let mut full = vec![0u8; guard.ps() as usize];
                    full[..chunk.len()].copy_from_slice(chunk);
                    guard.phys.lock().write(frame, 0, &full);
                }
                return Ok(true);
            }
            if let Some(frame) = guard.reserved_frames.remove(&(cache, page_off)) {
                // A pre-zeroed contiguous-run frame reserved for this
                // pull window is consumed in place.
                guard.landing.insert((cache, page_off), frame);
                (frame, true)
            } else {
                // Mirror `alloc_frame_reserved`'s uncontended path,
                // reserve-grant accounting included; a dry pool routes
                // to the classic driver, which knows how to evict.
                let reserve = guard.config.emergency_reserve_frames;
                let free = guard.phys.lock().free_frames();
                if free == 0 {
                    return Ok(false);
                }
                if reserve > 0 && free <= reserve {
                    guard.stats.bump(Counter::ReserveGrants);
                }
                let frame = guard.phys.lock().alloc().expect("free frame count lied");
                guard.landing.insert((cache, page_off), frame);
                (frame, false)
            }
        };
        // --- no lock: land the bytes ---
        // SAFETY: `frame` came out of the free pool (or the reservation
        // table) under the state lock and is recorded only in
        // `landing`, which no other path reads, maps or releases — this
        // thread is the frame's sole logical owner until state lock #2
        // threads it into a page descriptor, so the plane access cannot
        // race.
        unsafe {
            let dst = self.store.frame_mut(frame);
            dst[..chunk.len()].copy_from_slice(chunk);
            if !prezeroed {
                dst[chunk.len()..].fill(0);
            }
        }
        // --- state lock #2: publish ---
        let mut guard = self.state.lock();
        guard.landing.remove(&(cache, page_off));
        // Mirror the serial path's zero charge (`phys.write` charges
        // nothing). MemStats.zeroed is not bumped: the tail was zeroed
        // through the plane, not `phys.zero` — a documented drift of
        // the parallel fill.
        if !prezeroed {
            guard.charge(chorus_hal::OpKind::BzeroPage);
        }
        if guard.caches.get(cache).is_none() {
            // Quarantine/destroy raced the fill: drop the data.
            if guard.gmap.get(cache, page_off) == Some(Slot::Sync) {
                guard.gmap.remove(cache, page_off);
            }
            guard.phys.lock().release(frame);
            return Ok(true);
        }
        if let Some(Slot::Present(_)) = guard.slot(cache, page_off) {
            // A concurrent fill landed first; drop our frame.
            guard.phys.lock().release(frame);
            return Ok(true);
        }
        if let Some(Slot::Cow(src)) = guard.slot(cache, page_off) {
            guard.unthread_cow_stub(cache, page_off, src);
        }
        let writable = !guard.has_history_covering(cache, page_off);
        guard.create_page(cache, page_off, frame, writable, false);
        if guard.config.check_invariants {
            guard.check_invariants();
        }
        Ok(true)
    }

    /// The faulting user-access simulation loop: translate, fault,
    /// retry — crossing page (and region) boundaries as needed.
    fn vm_access(
        &self,
        ctx: CtxId,
        va: VirtAddr,
        access: Access,
        mut buf: AccessBuf<'_>,
    ) -> Result<()> {
        let key = ctx_key(ctx);
        let len = match &buf {
            AccessBuf::Read(b) => b.len(),
            AccessBuf::Write(b) => b.len(),
        } as u64;
        let ps = self.geometry().page_size();
        let mut cur = 0u64;
        while cur < len {
            let addr = VirtAddr(va.0 + cur);
            let page_rem = ps - (addr.0 % ps);
            let n = page_rem.min(len - cur) as usize;
            // Translate-or-fault loop for this chunk.
            let mut tries = 0;
            loop {
                let guard = self.state.lock();
                // An OOM-killed context reports the kill, not a bare
                // "no such context", so MIX can reap the process.
                guard.check_context_alive(key)?;
                let mmu_ctx = guard.ctx(key)?.mmu_ctx;
                let translated = guard.mmu.lock().translate(mmu_ctx, addr, access, false);
                match translated {
                    Ok(pa) => {
                        match &mut buf {
                            AccessBuf::Read(b) => {
                                guard
                                    .phys
                                    .lock()
                                    .read_phys(pa, &mut b[cur as usize..cur as usize + n]);
                            }
                            AccessBuf::Write(b) => {
                                guard
                                    .phys
                                    .lock()
                                    .write_phys(pa, &b[cur as usize..cur as usize + n]);
                            }
                        }
                        break;
                    }
                    Err(_fault) => {
                        drop(guard);
                        self.handle_fault(ctx, addr, access)?;
                        tries += 1;
                        assert!(tries < 64, "fault livelock at {addr:?}");
                    }
                }
            }
            cur += n as u64;
        }
        Ok(())
    }
}
