//! Explicit cache access: `copy` and `move` (Table 1), plus the internal
//! byte-granular read/write used to implement them and the kernel's
//! explicit-I/O path.
//!
//! The unified cache (§3.2) means these operations and mapped access see
//! the same data — the dual-caching problem cannot arise. Deferred copies
//! dispatch to the history-object technique (§4.2) or the
//! per-virtual-page technique (§4.3) according to the [`CopyMode`].

use crate::descriptors::{CacheDesc, Slot};
use crate::keys::CacheKey;
use crate::resolve::Version;
use crate::state::{blocked, done, Attempt, Blocked, PvmState};
use crate::stats::Counter;
use chorus_gmi::{CopyMode, GmiError, Result, SegmentId};
use chorus_hal::{Access, OpKind};

impl PvmState {
    /// `cacheCreate(segment)`.
    pub fn cache_create_locked(&mut self, segment: Option<SegmentId>) -> CacheKey {
        self.charge(OpKind::ObjectCreate);
        self.caches.insert(CacheDesc {
            segment,
            fully_backed: segment.is_some(),
            ..Default::default()
        })
    }

    /// Chooses the deferred-copy technique for `CopyMode::Auto` (§4.3:
    /// per-page for small fragments, history objects for large ones;
    /// unaligned transfers copy eagerly).
    pub fn choose_mode(&self, src_off: u64, dst_off: u64, size: u64) -> CopyMode {
        let aligned = self.geom.is_aligned(src_off)
            && self.geom.is_aligned(dst_off)
            && self.geom.is_aligned(size);
        if !aligned {
            return CopyMode::Eager;
        }
        if self.geom.pages_for(size) <= self.config.per_page_max_pages {
            CopyMode::PerPage
        } else {
            CopyMode::HistoryCow
        }
    }

    /// One attempt of `cache.copy` with an explicit mode. `progress` is a
    /// byte cursor owned by the driver: blocked attempts resume where
    /// they left off instead of restarting (which could otherwise
    /// livelock with page replacement by re-dirtying just-cleaned pages).
    #[allow(clippy::too_many_arguments)] // Mirrors the Table 1 copy signature plus the driver's progress cursor.
    pub fn cache_copy_attempt(
        &mut self,
        src: CacheKey,
        src_off: u64,
        dst: CacheKey,
        dst_off: u64,
        size: u64,
        mode: CopyMode,
        progress: &mut u64,
    ) -> Attempt<()> {
        self.cache(src)?;
        self.cache(dst)?;
        self.check_not_poisoned(src)?;
        self.check_not_poisoned(dst)?;
        if size == 0 {
            return done(());
        }
        let mode = match mode {
            CopyMode::Auto => self.choose_mode(src_off, dst_off, size),
            m => m,
        };
        match mode {
            CopyMode::Auto => unreachable!(),
            CopyMode::HistoryCow => {
                self.check_deferred_args(src, src_off, dst, dst_off, size)?;
                self.link_copy(src, src_off, dst, dst_off, size, false)
            }
            CopyMode::HistoryCor => {
                self.check_deferred_args(src, src_off, dst, dst_off, size)?;
                self.link_copy(src, src_off, dst, dst_off, size, true)
            }
            CopyMode::PerPage => {
                self.check_deferred_args(src, src_off, dst, dst_off, size)?;
                self.per_page_copy_attempt(src, src_off, dst, dst_off, size)
            }
            CopyMode::Eager => self.eager_copy_attempt(src, src_off, dst, dst_off, size, progress),
        }
    }

    fn check_deferred_args(
        &self,
        src: CacheKey,
        src_off: u64,
        dst: CacheKey,
        dst_off: u64,
        size: u64,
    ) -> Result<()> {
        self.check_aligned(src_off, "deferred copy source offset")?;
        self.check_aligned(dst_off, "deferred copy destination offset")?;
        self.check_aligned(size, "deferred copy size")?;
        if src == dst {
            return Err(GmiError::InvalidArgument("deferred copy within one cache"));
        }
        Ok(())
    }

    /// One attempt of `cache.move`: re-assigns page frames from source to
    /// destination where possible, degrading to per-page deferred copy
    /// where the source page cannot be stolen (§3.3.1: "changing the
    /// real-page-to-cache assignments, rather than by copying, whenever
    /// possible"). The source fragment becomes undefined. `progress`
    /// counts completed pages so blocked attempts resume, never undoing
    /// already-moved pages.
    pub fn cache_move_attempt(
        &mut self,
        src: CacheKey,
        src_off: u64,
        dst: CacheKey,
        dst_off: u64,
        size: u64,
        progress: &mut u64,
    ) -> Attempt<()> {
        self.cache(src)?;
        self.cache(dst)?;
        self.check_not_poisoned(src)?;
        self.check_not_poisoned(dst)?;
        if size == 0 {
            return done(());
        }
        let aligned = self.geom.is_aligned(src_off)
            && self.geom.is_aligned(dst_off)
            && self.geom.is_aligned(size);
        if !aligned {
            // No frame re-assignment possible; plain copy (the source
            // may keep its contents — "undefined" allows that).
            return self.eager_copy_attempt(src, src_off, dst, dst_off, size, progress);
        }
        if src == dst {
            return Err(GmiError::InvalidArgument("move within one cache"));
        }
        if *progress == 0 {
            match self.overwrite_range(dst, dst_off, size)? {
                crate::state::Outcome::Done(()) => {}
                crate::state::Outcome::Blocked(b) => return blocked(b),
            }
        }
        let ps = self.ps();
        let pages = self.geom.pages_for(size);
        let start = *progress / ps;
        for k in start..pages {
            let so = src_off + k * ps;
            let dstoff = dst_off + k * ps;
            let stealable = match self.slot(src, so) {
                Some(Slot::Present(p)) => {
                    let page = self.page(p);
                    page.stubs.is_empty()
                        && page.lock_count == 0
                        && !page.cleaning
                        && !self.has_history_covering(src, so)
                }
                Some(Slot::Sync) => return blocked(Blocked::WaitStub),
                _ => false,
            };
            if stealable {
                let Some(Slot::Present(p)) = self.slot(src, so) else {
                    unreachable!()
                };
                self.unmap_all(p);
                self.clear_slot(src, so);
                self.cache_mut(src)?.owned.remove(&so);
                let desc = self.page_mut(p);
                desc.cache = dst;
                desc.offset = dstoff;
                desc.dirty = true;
                let writable = !self.has_history_covering(dst, dstoff);
                self.page_mut(p).writable = writable;
                self.set_slot(dst, dstoff, Slot::Present(p));
                self.cache_mut(dst)?.owned.insert(dstoff);
                self.stats.bump(Counter::MovedFrames);
            } else {
                // Not stealable: install a per-page stub instead.
                match self.per_page_copy_attempt(src, so, dst, dstoff, ps)? {
                    crate::state::Outcome::Done(()) => {}
                    crate::state::Outcome::Blocked(b) => return blocked(b),
                }
            }
            *progress = (k + 1) * ps;
        }
        done(())
    }

    // ----- byte-granular access ------------------------------------------

    /// Reads the current logical contents of a cache range, pulling
    /// non-resident owned data in as needed (the faulting Table 1 access
    /// path, as opposed to `copyBack`). `progress` lets blocked attempts
    /// resume mid-range.
    pub fn cache_read_attempt(
        &mut self,
        cache: CacheKey,
        off: u64,
        buf: &mut [u8],
        progress: &mut u64,
    ) -> Attempt<()> {
        self.cache(cache)?;
        self.check_not_poisoned(cache)?;
        let ps = self.ps();
        let mut cur = off + *progress;
        let end = off + buf.len() as u64;
        while cur < end {
            let page_off = self.geom.round_down(cur);
            let in_page = (page_off + ps).min(end) - cur;
            let version = match self.resolve_version(cache, page_off, Access::Read)? {
                crate::state::Outcome::Done(v) => v,
                crate::state::Outcome::Blocked(b) => return blocked(b),
            };
            let dst = &mut buf[(cur - off) as usize..(cur - off + in_page) as usize];
            match version {
                Version::Page(p) => {
                    let frame = self.page(p).frame;
                    self.phys.lock().read(frame, cur - page_off, dst);
                }
                Version::Zero => dst.fill(0),
            }
            cur += in_page;
            *progress = cur - off;
        }
        done(())
    }

    /// Writes bytes into a cache range, materializing own writable pages
    /// (running the full write-violation algorithm where needed).
    /// `progress` lets blocked attempts resume mid-range.
    pub fn cache_write_attempt(
        &mut self,
        cache: CacheKey,
        off: u64,
        data: &[u8],
        progress: &mut u64,
    ) -> Attempt<()> {
        self.cache(cache)?;
        self.check_not_poisoned(cache)?;
        let ps = self.ps();
        let mut cur = off + *progress;
        let end = off + data.len() as u64;
        while cur < end {
            let page_off = self.geom.round_down(cur);
            let in_page = (page_off + ps).min(end) - cur;
            let page = match self.own_writable_page(cache, page_off)? {
                crate::state::Outcome::Done(p) => p,
                crate::state::Outcome::Blocked(b) => return blocked(b),
            };
            let frame = self.page(page).frame;
            self.phys.lock().write(
                frame,
                cur - page_off,
                &data[(cur - off) as usize..(cur - off + in_page) as usize],
            );
            self.page_mut(page).dirty = true;
            self.charge(OpKind::BcopyPage);
            cur += in_page;
            *progress = cur - off;
        }
        done(())
    }

    /// Ensures (cache, page_off) has an own, writable, resident page
    /// holding the current logical value, and returns it.
    pub fn own_writable_page(
        &mut self,
        cache: CacheKey,
        page_off: u64,
    ) -> Attempt<crate::keys::PageKey> {
        match self.slot(cache, page_off) {
            Some(Slot::Present(p)) => {
                if !self.page(p).write_allowed() {
                    match self.promote_page(cache, page_off, p)? {
                        crate::state::Outcome::Done(()) => {}
                        crate::state::Outcome::Blocked(b) => return blocked(b),
                    }
                }
                done(p)
            }
            Some(Slot::Sync) => blocked(Blocked::WaitStub),
            other => {
                // Cow stub or absent: materialize an own copy of the
                // current value, then promote it.
                let version = match other {
                    Some(Slot::Cow(crate::descriptors::CowSource::Page(p))) => Version::Page(p),
                    Some(Slot::Cow(crate::descriptors::CowSource::Zero)) => Version::Zero,
                    Some(Slot::Cow(crate::descriptors::CowSource::Loc(c2, o2))) => {
                        match self.resolve_version(c2, o2, Access::Read)? {
                            crate::state::Outcome::Done(v) => v,
                            crate::state::Outcome::Blocked(b) => return blocked(b),
                        }
                    }
                    Some(_) => unreachable!(),
                    None => match self.resolve_version(cache, page_off, Access::Read)? {
                        crate::state::Outcome::Done(v) => v,
                        crate::state::Outcome::Blocked(b) => return blocked(b),
                    },
                };
                let alloc = match version {
                    Version::Page(p) => self.alloc_frame_keeping(p)?,
                    Version::Zero => self.alloc_frame()?,
                };
                let frame = match alloc {
                    crate::state::Outcome::Done(f) => f,
                    crate::state::Outcome::Blocked(b) => return blocked(b),
                };
                match version {
                    Version::Page(p) => {
                        let src = self.page(p).frame;
                        self.phys.lock().copy_frame(src, frame);
                        self.stats.bump(Counter::CowCopies);
                        // Stale read mappings established through this
                        // cache must re-fault onto the new own page.
                        self.unmap_via(p, cache);
                    }
                    Version::Zero => {
                        self.phys.lock().zero(frame);
                        self.stats.bump(Counter::ZeroFills);
                    }
                }
                if let Some(Slot::Cow(src)) = other {
                    self.unthread_cow_stub(cache, page_off, src);
                }
                let writable = !self.has_history_covering(cache, page_off);
                let key = self.create_page(cache, page_off, frame, writable, true);
                if !self.page(key).write_allowed() {
                    match self.promote_page(cache, page_off, key)? {
                        crate::state::Outcome::Done(()) => {}
                        crate::state::Outcome::Blocked(b) => return blocked(b),
                    }
                }
                done(key)
            }
        }
    }

    /// Eager (non-deferred) copy: byte-granular, page-by-page. `progress`
    /// counts completed bytes so blocked attempts resume.
    pub fn eager_copy_attempt(
        &mut self,
        src: CacheKey,
        src_off: u64,
        dst: CacheKey,
        dst_off: u64,
        size: u64,
        progress: &mut u64,
    ) -> Attempt<()> {
        if src == dst {
            let (a, b) = (src_off, src_off + size);
            let (c, d) = (dst_off, dst_off + size);
            if a < d && c < b {
                return Err(GmiError::InvalidArgument("overlapping eager copy"));
            }
        }
        let ps = self.ps();
        let mut moved = *progress;
        let mut chunk = vec![0u8; ps as usize];
        while moved < size {
            let n = ps.min(size - moved);
            let buf = &mut chunk[..n as usize];
            let mut sub = 0u64;
            match self.cache_read_attempt(src, src_off + moved, buf, &mut sub)? {
                crate::state::Outcome::Done(()) => {}
                crate::state::Outcome::Blocked(b) => return blocked(b),
            }
            let data = chunk[..n as usize].to_vec();
            let mut sub = 0u64;
            match self.cache_write_attempt(dst, dst_off + moved, &data, &mut sub)? {
                crate::state::Outcome::Done(()) => {}
                crate::state::Outcome::Blocked(b) => return blocked(b),
            }
            moved += n;
            *progress = moved;
        }
        done(())
    }
}
