//! Pluggable replacement and readahead policies.
//!
//! The paper's machine-independent PVM is generic over *mechanism*; this
//! module makes it generic over *policy* as well. Eviction candidates
//! flow through a `ReplacementPolicy` (the clock ring, LRU lists,
//! WSClock, an ARC-style adaptive pair, or an external advisor driven
//! over the upcall protocol), and pull-cluster sizing flows through a
//! `ReadaheadPolicy` (the adaptive doubling window or a fixed FIFO
//! baseline). The default `Clock` + `DoublingWindow` pair reproduces the
//! pre-policy behaviour bit for bit: same sweep order, same
//! `ClockFullSweeps` accounting, same window arithmetic.
//!
//! Lock order (PR 9 domains): every policy structure lives *inside*
//! `PvmState` and is only touched under the state lock; policies never
//! take the `phys`/`trans` domain locks themselves — mutable page state
//! is reached through the `PolicyView` the caller passes in, which
//! borrows the page arena under the same state-lock section.

use crate::clock::ClockRing;
use crate::descriptors::{CacheDesc, PageDesc};
use crate::keys::PageKey;
use chorus_hal::{Arena, FxHashMap};
use std::collections::VecDeque;

// ----- public configuration ------------------------------------------------

/// Which replacement policy drives victim selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementKind {
    /// The classic two-sweep clock over one resident ring (default).
    Clock,
    /// LRU via active/inactive lists with lazy demotion.
    Lru,
    /// WSClock: a clock sweep that only takes pages outside the working
    /// set (older than `wsclock_tau` virtual ticks), falling back to the
    /// oldest candidate when everything is in the working set.
    WsClock,
    /// ARC-style adaptive split between a recency list and a frequency
    /// list, steered by ghost hits.
    Arc,
    /// Victim selection delegated to the segment manager through the
    /// upcall protocol (batched; rides the async completion engine when
    /// `async_upcalls` is on, with an inner clock as the in-flight
    /// fallback).
    External,
}

impl ReplacementKind {
    /// Stable lower-case label (bench JSON, pvmtop).
    pub fn label(self) -> &'static str {
        match self {
            ReplacementKind::Clock => "clock",
            ReplacementKind::Lru => "lru",
            ReplacementKind::WsClock => "wsclock",
            ReplacementKind::Arc => "arc",
            ReplacementKind::External => "external",
        }
    }

    /// Every built-in kind, in the order benches race them.
    pub const ALL: [ReplacementKind; 5] = [
        ReplacementKind::Clock,
        ReplacementKind::Lru,
        ReplacementKind::WsClock,
        ReplacementKind::Arc,
        ReplacementKind::External,
    ];

    /// Parses a [`Self::label`] back into a kind.
    pub fn parse(s: &str) -> Option<ReplacementKind> {
        ReplacementKind::ALL.into_iter().find(|k| k.label() == s)
    }
}

/// Which readahead policy sizes clustered pulls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadaheadKind {
    /// Sequential streams double the window up to the cap (default).
    Doubling,
    /// Fixed window: always the static cluster base (FIFO baseline).
    Fifo,
}

impl ReadaheadKind {
    /// Stable lower-case label (bench JSON, pvmtop).
    pub fn label(self) -> &'static str {
        match self {
            ReadaheadKind::Doubling => "doubling",
            ReadaheadKind::Fifo => "fifo",
        }
    }

    /// Parses a [`Self::label`] back into a kind.
    pub fn parse(s: &str) -> Option<ReadaheadKind> {
        [ReadaheadKind::Doubling, ReadaheadKind::Fifo]
            .into_iter()
            .find(|k| k.label() == s)
    }
}

/// The policy section of [`crate::PvmConfig`]: which replacement and
/// readahead policies run, selectable per segment (each override gets
/// its own policy instance, so distinct segment managers age their
/// pages independently).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct PolicyConfig {
    /// Replacement policy for every page not covered by an override.
    pub replacement: ReplacementKind,
    /// Readahead policy (global: the window state is per cache already).
    pub readahead: ReadaheadKind,
    /// Per-segment replacement overrides: pages of a cache backed by
    /// segment `.0` are tracked by their own instance of `.1`.
    pub segment_overrides: Vec<(u64, ReplacementKind)>,
    /// WSClock working-set horizon in virtual ticks (touches + sweeps).
    pub wsclock_tau: u64,
    /// Candidate batch size for [`ReplacementKind::External`] advice
    /// upcalls.
    pub external_batch: u64,
}

impl Default for PolicyConfig {
    fn default() -> PolicyConfig {
        PolicyConfig {
            replacement: ReplacementKind::Clock,
            readahead: ReadaheadKind::Doubling,
            segment_overrides: Vec::new(),
            wsclock_tau: 2,
            external_batch: 8,
        }
    }
}

// ----- trait contracts -----------------------------------------------------

/// The page identity a policy may remember across residencies (page
/// *keys* die at eviction; the (cache, offset) pair is stable, which is
/// what ARC's ghost lists need).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct PageIdent {
    pub cache: u32,
    pub offset: u64,
}

/// Read/write access to the per-page state a policy may consult during
/// victim selection. Implemented over the page arena by the caller; all
/// methods expect live keys (policies must not retain dead keys).
pub(crate) trait PolicyView {
    /// Pinned (`lock_count > 0`) or mid-cleaning: never a victim.
    fn pinned_or_cleaning(&self, key: PageKey) -> bool;
    /// The hardware reference bit.
    fn referenced(&self, key: PageKey) -> bool;
    /// Clears the reference bit (the clock sweep's first pass).
    fn clear_referenced(&mut self, key: PageKey);
    /// Dirty page of a quarantined cache: cannot be cleaned, so not a
    /// victim (clean pages of quarantined caches still are).
    fn dirty_unpushable(&self, key: PageKey) -> bool;
}

/// The result of one victim-selection call.
#[derive(Debug, Default)]
pub(crate) struct SelectOutcome {
    /// Chosen victims, best first (empty: nothing evictable now).
    pub victims: Vec<PageKey>,
    /// Clock-style full-sweep count for `ClockFullSweeps` accounting:
    /// `step / n` when a victim was found, 2 on an exhausted sweep, 0
    /// from non-clock policies and empty rings. The caller adds this to
    /// the counter and emits a `ClockSweep` trace event when positive —
    /// exactly the pre-policy bookkeeping.
    pub full_sweeps: u64,
    /// An external policy wants an advice upcall over these candidates.
    pub need_advice: Option<Vec<PageKey>>,
    /// An external policy fell back to its inner clock because advice
    /// is still in flight (counted as `PolicyExternalFallbacks`).
    pub external_fallback: bool,
}

/// A replacement policy: tracks residency, observes touches and cleans,
/// and selects eviction victims in batches.
pub(crate) trait ReplacementPolicy: Send {
    /// Which kind this instance is.
    fn kind(&self) -> ReplacementKind;
    /// A page became resident.
    fn insert(&mut self, key: PageKey, ident: PageIdent);
    /// A resident page is going away (eviction, invalidate, destroy).
    fn remove(&mut self, key: PageKey, ident: PageIdent);
    /// A page was (re)mapped — the policy's use signal.
    fn touch(&mut self, key: PageKey);
    /// A laundering push finished for the page (it is clean now).
    fn cleaned(&mut self, _key: PageKey) {}
    /// Number of tracked pages.
    fn len(&self) -> usize;
    /// Whether `key` is tracked.
    fn contains(&self, key: PageKey) -> bool;
    /// Snapshot of tracked keys in policy order (emergency eviction,
    /// invariant checks).
    fn keys(&self) -> Vec<PageKey>;
    /// Selects up to `want` victims.
    fn select_victims(&mut self, want: usize, view: &mut dyn PolicyView) -> SelectOutcome;
    /// Delivers the approved subset of a previously requested advice
    /// batch (empty slice: the request failed or was cancelled — clear
    /// the in-flight flag and fall back).
    fn approve_victims(&mut self, _pages: &[PageKey]) {}
}

/// Input to one readahead-window decision.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RaInput {
    /// The missing page offset.
    pub offset: u64,
    /// The static cluster base (`pull_cluster_pages`, min 1).
    pub base: u64,
    /// The window cap (`readahead_max_pages`, min `base`).
    pub cap: u64,
    /// The cache's previously granted window (0 = not yet ramped).
    pub window: u64,
    /// Where the cache's previous clustered pull ended (0 = none).
    pub next: u64,
}

/// One readahead-window decision. The caller does the counter
/// bookkeeping (`ReadaheadHits`/`ReadaheadRamps` and the cache
/// dimension) so policies stay side-effect free.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RaDecision {
    /// Granted window in pages.
    pub pages: u64,
    /// The miss continued a sequential stream.
    pub hit: bool,
    /// The window actually grew.
    pub ramped: bool,
}

/// A readahead policy: maps a miss's stream position onto a pull window.
pub(crate) trait ReadaheadPolicy: Send {
    /// Which kind this instance is.
    fn kind(&self) -> ReadaheadKind;
    /// Decides the window for one miss.
    fn window(&mut self, inp: &RaInput) -> RaDecision;
}

// ----- built-in readahead policies ----------------------------------------

/// The adaptive doubling window (default; bit-identical to the
/// pre-policy `pull_window`).
#[derive(Default)]
pub(crate) struct DoublingWindow;

impl ReadaheadPolicy for DoublingWindow {
    fn kind(&self) -> ReadaheadKind {
        ReadaheadKind::Doubling
    }

    fn window(&mut self, inp: &RaInput) -> RaDecision {
        if inp.next != 0 && inp.offset == inp.next {
            let prev = if inp.window == 0 {
                inp.base
            } else {
                inp.window
            };
            let grown = prev.saturating_mul(2).min(inp.cap);
            RaDecision {
                pages: grown,
                hit: true,
                ramped: grown > prev,
            }
        } else {
            RaDecision {
                pages: inp.base,
                hit: false,
                ramped: false,
            }
        }
    }
}

/// Fixed-window baseline: always the static base. Stream hits are still
/// detected (so `ReadaheadHits` stays comparable across policies) but
/// never ramp the window.
#[derive(Default)]
pub(crate) struct FifoWindow;

impl ReadaheadPolicy for FifoWindow {
    fn kind(&self) -> ReadaheadKind {
        ReadaheadKind::Fifo
    }

    fn window(&mut self, inp: &RaInput) -> RaDecision {
        RaDecision {
            pages: inp.base,
            hit: inp.next != 0 && inp.offset == inp.next,
            ramped: false,
        }
    }
}

// ----- Clock ---------------------------------------------------------------

/// The classic two-sweep clock (default; bit-identical to the
/// pre-policy `select_victim`).
#[derive(Default)]
pub(crate) struct Clock {
    ring: ClockRing,
}

impl Clock {
    /// The shared sweep: up to two full revolutions, clearing reference
    /// bits on the first. Collects up to `want` victims.
    fn sweep(&mut self, want: usize, view: &mut dyn PolicyView, out: &mut SelectOutcome) {
        if self.ring.is_empty() {
            return;
        }
        let n = self.ring.len();
        for step in 0..(2 * n) {
            let key = self.ring.advance().expect("ring emptied mid-sweep");
            if view.pinned_or_cleaning(key) {
                continue;
            }
            if view.referenced(key) {
                view.clear_referenced(key);
                continue;
            }
            if view.dirty_unpushable(key) {
                continue;
            }
            out.victims.push(key);
            if out.victims.len() >= want {
                out.full_sweeps = (step / n) as u64;
                return;
            }
        }
        out.full_sweeps = 2;
    }
}

impl ReplacementPolicy for Clock {
    fn kind(&self) -> ReplacementKind {
        ReplacementKind::Clock
    }

    fn insert(&mut self, key: PageKey, _ident: PageIdent) {
        self.ring.insert(key);
    }

    fn remove(&mut self, key: PageKey, _ident: PageIdent) {
        self.ring.remove(key);
    }

    fn touch(&mut self, _key: PageKey) {
        // The reference bit on the page descriptor is the clock's use
        // signal; `map_page` sets it already.
    }

    fn len(&self) -> usize {
        self.ring.len()
    }

    fn contains(&self, key: PageKey) -> bool {
        self.ring.contains(key)
    }

    fn keys(&self) -> Vec<PageKey> {
        self.ring.iter().collect()
    }

    fn select_victims(&mut self, want: usize, view: &mut dyn PolicyView) -> SelectOutcome {
        let mut out = SelectOutcome::default();
        self.sweep(want, view, &mut out);
        out
    }
}

// ----- LRU -----------------------------------------------------------------

/// Entry state in the LRU map. `gen` invalidates stale deque entries
/// (touch re-queues instead of splicing, classic lazy deletion).
#[derive(Debug, Clone, Copy)]
struct LruSlot {
    gen: u64,
    active: bool,
}

/// LRU via active/inactive lists: new pages enter the inactive list,
/// touched pages promote to the active list, victims come from the
/// inactive head (oldest first); when the inactive list runs dry the
/// oldest half of the active list demotes.
#[derive(Default)]
pub(crate) struct Lru {
    map: FxHashMap<PageKey, LruSlot>,
    active: VecDeque<(PageKey, u64)>,
    inactive: VecDeque<(PageKey, u64)>,
    active_live: usize,
    inactive_live: usize,
    next_gen: u64,
}

impl Lru {
    fn bump_gen(&mut self) -> u64 {
        self.next_gen += 1;
        self.next_gen
    }

    /// Is a deque entry the current home of its key?
    fn current(&self, key: PageKey, gen: u64, active: bool) -> bool {
        self.map
            .get(&key)
            .map(|s| s.gen == gen && s.active == active)
            .unwrap_or(false)
    }

    /// Demotes up to half the active list (at least one entry) into the
    /// inactive list.
    fn refill_inactive(&mut self) {
        let quota = (self.active_live / 2).max(1);
        let mut moved = 0;
        while moved < quota {
            let Some((key, gen)) = self.active.pop_front() else {
                break;
            };
            if !self.current(key, gen, true) {
                continue; // stale
            }
            let g = self.bump_gen();
            self.map.insert(
                key,
                LruSlot {
                    gen: g,
                    active: false,
                },
            );
            self.inactive.push_back((key, g));
            self.active_live -= 1;
            self.inactive_live += 1;
            moved += 1;
        }
    }

    /// Drops stale entries when a deque grows far past its live count.
    fn maybe_compact(&mut self) {
        if self.inactive.len() > 2 * self.inactive_live + 8 {
            let map = &self.map;
            self.inactive.retain(|&(k, g)| {
                map.get(&k)
                    .map(|s| s.gen == g && !s.active)
                    .unwrap_or(false)
            });
        }
        if self.active.len() > 2 * self.active_live + 8 {
            let map = &self.map;
            self.active
                .retain(|&(k, g)| map.get(&k).map(|s| s.gen == g && s.active).unwrap_or(false));
        }
    }
}

impl ReplacementPolicy for Lru {
    fn kind(&self) -> ReplacementKind {
        ReplacementKind::Lru
    }

    fn insert(&mut self, key: PageKey, _ident: PageIdent) {
        if self.map.contains_key(&key) {
            return;
        }
        let g = self.bump_gen();
        self.map.insert(
            key,
            LruSlot {
                gen: g,
                active: false,
            },
        );
        self.inactive.push_back((key, g));
        self.inactive_live += 1;
    }

    fn remove(&mut self, key: PageKey, _ident: PageIdent) {
        if let Some(slot) = self.map.remove(&key) {
            if slot.active {
                self.active_live -= 1;
            } else {
                self.inactive_live -= 1;
            }
        }
    }

    fn touch(&mut self, key: PageKey) {
        let Some(&slot) = self.map.get(&key) else {
            return;
        };
        let g = self.bump_gen();
        self.map.insert(
            key,
            LruSlot {
                gen: g,
                active: true,
            },
        );
        self.active.push_back((key, g));
        if !slot.active {
            self.inactive_live -= 1;
            self.active_live += 1;
        }
        self.maybe_compact();
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn contains(&self, key: PageKey) -> bool {
        self.map.contains_key(&key)
    }

    fn keys(&self) -> Vec<PageKey> {
        // Inactive (oldest first), then active: eviction-preference order.
        let mut out = Vec::with_capacity(self.map.len());
        for &(k, g) in &self.inactive {
            if self.current(k, g, false) {
                out.push(k);
            }
        }
        for &(k, g) in &self.active {
            if self.current(k, g, true) {
                out.push(k);
            }
        }
        out
    }

    fn select_victims(&mut self, want: usize, view: &mut dyn PolicyView) -> SelectOutcome {
        let mut out = SelectOutcome::default();
        let mut rotations = 0usize;
        // A fruitless full revolution of the inactive list means every
        // entry is pinned or just-referenced; an in-flight pull window
        // can pin the *entire* inactive remnant, so giving up there
        // would force the caller into emergency eviction. Demote fresh
        // candidates from the active list instead and keep looking.
        let mut fruitless = 0usize;
        // Two logical revolutions, like the clock: one may be spent
        // clearing reference bits, the second must find victims.
        let max_rotations = 2 * self.map.len() + 2;
        while out.victims.len() < want {
            if self.inactive_live == 0 {
                if self.active_live == 0 {
                    break;
                }
                self.refill_inactive();
                fruitless = 0;
                continue;
            }
            let Some((key, gen)) = self.inactive.pop_front() else {
                // Live count says there are entries but the deque is
                // empty: stale-count bug guard; bail deterministically.
                self.inactive_live = 0;
                continue;
            };
            if !self.current(key, gen, false) {
                continue; // stale
            }
            let rotate = if view.pinned_or_cleaning(key) || view.dirty_unpushable(key) {
                // Not evictable now: rotate to the back (bounded).
                true
            } else if view.referenced(key) {
                // Second chance: a page used since the last pass — or
                // freshly created (the bit starts set, which keeps an
                // in-flight pull window from eating its own pages) —
                // gets one rotation of grace.
                view.clear_referenced(key);
                true
            } else {
                false
            };
            if rotate {
                self.inactive.push_back((key, gen));
                rotations += 1;
                if rotations > max_rotations {
                    break;
                }
                fruitless += 1;
                if fruitless >= self.inactive_live && self.active_live > 0 {
                    self.refill_inactive();
                    fruitless = 0;
                }
                continue;
            }
            // Victim. It stays resident (the caller may only clean it),
            // so keep tracking it at the back of the queue.
            let g = self.bump_gen();
            self.map.insert(
                key,
                LruSlot {
                    gen: g,
                    active: false,
                },
            );
            self.inactive.push_back((key, g));
            out.victims.push(key);
            fruitless = 0;
        }
        self.maybe_compact();
        out
    }
}

// ----- WSClock -------------------------------------------------------------

/// WSClock: a clock sweep that prefers pages outside the working set —
/// older than `tau` virtual ticks since last use — and falls back to
/// the oldest unreferenced candidate when the whole ring is inside it.
pub(crate) struct WsClock {
    ring: ClockRing,
    last_use: FxHashMap<PageKey, u64>,
    now: u64,
    tau: u64,
}

impl WsClock {
    pub fn new(tau: u64) -> WsClock {
        WsClock {
            ring: ClockRing::new(),
            last_use: FxHashMap::default(),
            now: 0,
            tau: tau.max(1),
        }
    }
}

impl ReplacementPolicy for WsClock {
    fn kind(&self) -> ReplacementKind {
        ReplacementKind::WsClock
    }

    fn insert(&mut self, key: PageKey, _ident: PageIdent) {
        self.ring.insert(key);
        self.last_use.insert(key, self.now);
    }

    fn remove(&mut self, key: PageKey, _ident: PageIdent) {
        self.ring.remove(key);
        self.last_use.remove(&key);
    }

    fn touch(&mut self, key: PageKey) {
        self.now += 1;
        if let Some(t) = self.last_use.get_mut(&key) {
            *t = self.now;
        }
    }

    fn len(&self) -> usize {
        self.ring.len()
    }

    fn contains(&self, key: PageKey) -> bool {
        self.ring.contains(key)
    }

    fn keys(&self) -> Vec<PageKey> {
        self.ring.iter().collect()
    }

    fn select_victims(&mut self, want: usize, view: &mut dyn PolicyView) -> SelectOutcome {
        let mut out = SelectOutcome::default();
        if self.ring.is_empty() {
            return out;
        }
        self.now += 1;
        let n = self.ring.len();
        // Oldest unreferenced evictable candidate, as the fallback when
        // every candidate is inside the working set.
        let mut fallback: Option<(PageKey, u64)> = None;
        for step in 0..(2 * n) {
            let key = self.ring.advance().expect("ring emptied mid-sweep");
            if view.pinned_or_cleaning(key) {
                continue;
            }
            if view.referenced(key) {
                view.clear_referenced(key);
                if let Some(t) = self.last_use.get_mut(&key) {
                    *t = self.now;
                }
                continue;
            }
            if view.dirty_unpushable(key) {
                continue;
            }
            let last = self.last_use.get(&key).copied().unwrap_or(0);
            if self.now.saturating_sub(last) >= self.tau {
                out.victims.push(key);
                if out.victims.len() >= want {
                    out.full_sweeps = (step / n) as u64;
                    return out;
                }
                continue;
            }
            if fallback.map(|(_, t)| last < t).unwrap_or(true) {
                fallback = Some((key, last));
            }
        }
        if out.victims.len() < want {
            if let Some((key, _)) = fallback {
                if !out.victims.contains(&key) {
                    out.victims.push(key);
                }
            }
        }
        out.full_sweeps = 2;
        out
    }
}

// ----- ARC-style -----------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct ArcSlot {
    gen: u64,
    /// false: recency list (T1); true: frequency list (T2).
    freq: bool,
    ident: PageIdent,
}

/// ARC-style adaptive replacement: a recency list T1 and a frequency
/// list T2 whose balance point `p` is steered by hits in the ghost
/// lists B1/B2 (identities of recently evicted pages). Ghosts are keyed
/// by (cache, offset) — page keys die at eviction but the datum's
/// identity is stable across re-pulls.
#[derive(Default)]
pub(crate) struct ArcPolicy {
    map: FxHashMap<PageKey, ArcSlot>,
    t1: VecDeque<(PageKey, u64)>,
    t2: VecDeque<(PageKey, u64)>,
    t1_live: usize,
    t2_live: usize,
    b1: VecDeque<PageIdent>,
    b2: VecDeque<PageIdent>,
    /// Target size of T1 (the adaptation parameter).
    p: usize,
    next_gen: u64,
}

impl ArcPolicy {
    fn bump_gen(&mut self) -> u64 {
        self.next_gen += 1;
        self.next_gen
    }

    fn ghost_cap(&self) -> usize {
        (self.t1_live + self.t2_live).max(8)
    }

    fn trim_ghosts(&mut self) {
        let cap = self.ghost_cap();
        while self.b1.len() > cap {
            self.b1.pop_front();
        }
        while self.b2.len() > cap {
            self.b2.pop_front();
        }
    }

    fn current(&self, key: PageKey, gen: u64, freq: bool) -> bool {
        self.map
            .get(&key)
            .map(|s| s.gen == gen && s.freq == freq)
            .unwrap_or(false)
    }

    /// Pops one evictable victim off one list, oldest first, rotating
    /// blocked candidates to the back (bounded by the list's length).
    fn pick_from(&mut self, freq: bool, view: &mut dyn PolicyView) -> Option<PageKey> {
        let mut rotations = 0usize;
        // Two revolutions, like the clock: one may be spent clearing
        // reference bits, the second must find a victim.
        let max_rotations = 2 * if freq { self.t2.len() } else { self.t1.len() } + 2;
        loop {
            let deque = if freq { &mut self.t2 } else { &mut self.t1 };
            let (key, gen) = deque.pop_front()?;
            if !self.current(key, gen, freq) {
                continue;
            }
            if view.pinned_or_cleaning(key) || view.dirty_unpushable(key) {
                let deque = if freq { &mut self.t2 } else { &mut self.t1 };
                deque.push_back((key, gen));
                rotations += 1;
                if rotations > max_rotations {
                    return None;
                }
                continue;
            }
            if view.referenced(key) {
                // Second chance: a page used since the last pass — or
                // freshly created (the bit starts set, which keeps an
                // in-flight pull window from eating its own pages) —
                // rotates once instead of dying.
                view.clear_referenced(key);
                let deque = if freq { &mut self.t2 } else { &mut self.t1 };
                deque.push_back((key, gen));
                rotations += 1;
                if rotations > max_rotations {
                    return None;
                }
                continue;
            }
            // Victim stays resident until the caller evicts it; keep it
            // tracked at the back.
            let g = self.bump_gen();
            let ident = self.map.get(&key).expect("current entry has a slot").ident;
            self.map.insert(
                key,
                ArcSlot {
                    gen: g,
                    freq,
                    ident,
                },
            );
            let deque = if freq { &mut self.t2 } else { &mut self.t1 };
            deque.push_back((key, g));
            return Some(key);
        }
    }
}

impl ReplacementPolicy for ArcPolicy {
    fn kind(&self) -> ReplacementKind {
        ReplacementKind::Arc
    }

    fn insert(&mut self, key: PageKey, ident: PageIdent) {
        if self.map.contains_key(&key) {
            return;
        }
        // Ghost hits steer the balance point: a B1 hit means T1 was too
        // small (grow it), a B2 hit the reverse.
        let in_b1 = self.b1.contains(&ident);
        let in_b2 = !in_b1 && self.b2.contains(&ident);
        let freq = if in_b1 {
            self.b1.retain(|&g| g != ident);
            self.p = (self.p + 1).min(self.t1_live + self.t2_live + 1);
            true
        } else if in_b2 {
            self.b2.retain(|&g| g != ident);
            self.p = self.p.saturating_sub(1);
            true
        } else {
            false
        };
        let g = self.bump_gen();
        self.map.insert(
            key,
            ArcSlot {
                gen: g,
                freq,
                ident,
            },
        );
        if freq {
            self.t2.push_back((key, g));
            self.t2_live += 1;
        } else {
            self.t1.push_back((key, g));
            self.t1_live += 1;
        }
    }

    fn remove(&mut self, key: PageKey, ident: PageIdent) {
        if let Some(slot) = self.map.remove(&key) {
            // Any departure becomes a ghost of its list, so a re-pull of
            // the same datum registers as a ghost hit.
            if slot.freq {
                self.t2_live -= 1;
                self.b2.push_back(ident);
            } else {
                self.t1_live -= 1;
                self.b1.push_back(ident);
            }
            self.trim_ghosts();
        }
    }

    fn touch(&mut self, key: PageKey) {
        let Some(&slot) = self.map.get(&key) else {
            return;
        };
        // A touched T1 page graduates to T2; a T2 touch refreshes.
        let g = self.bump_gen();
        self.map.insert(
            key,
            ArcSlot {
                gen: g,
                freq: true,
                ident: slot.ident,
            },
        );
        self.t2.push_back((key, g));
        if !slot.freq {
            self.t1_live -= 1;
            self.t2_live += 1;
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn contains(&self, key: PageKey) -> bool {
        self.map.contains_key(&key)
    }

    fn keys(&self) -> Vec<PageKey> {
        let mut out = Vec::with_capacity(self.map.len());
        for &(k, g) in &self.t1 {
            if self.current(k, g, false) {
                out.push(k);
            }
        }
        for &(k, g) in &self.t2 {
            if self.current(k, g, true) {
                out.push(k);
            }
        }
        out
    }

    fn select_victims(&mut self, want: usize, view: &mut dyn PolicyView) -> SelectOutcome {
        let mut out = SelectOutcome::default();
        while out.victims.len() < want {
            // Prefer the list over target: T1 over `p`, else T2.
            let prefer_t1 = self.t1_live > self.p;
            let pick = if prefer_t1 {
                self.pick_from(false, view)
                    .or_else(|| self.pick_from(true, view))
            } else {
                self.pick_from(true, view)
                    .or_else(|| self.pick_from(false, view))
            };
            match pick {
                Some(k) if !out.victims.contains(&k) => out.victims.push(k),
                _ => break,
            }
        }
        out
    }
}

// ----- External ------------------------------------------------------------

/// Victim selection delegated to the segment manager: candidate batches
/// go out as `victimAdvice` upcalls (async: queued on the completion
/// engine; sync: performed inline by the driver), approved victims come
/// back through [`ReplacementPolicy::approve_victims`]. While advice is
/// in flight the inner clock keeps the machine making progress.
pub(crate) struct ExternalPolicy {
    inner: Clock,
    approved: VecDeque<PageKey>,
    inflight: bool,
    batch: usize,
}

impl ExternalPolicy {
    pub fn new(batch: u64) -> ExternalPolicy {
        ExternalPolicy {
            inner: Clock::default(),
            approved: VecDeque::new(),
            inflight: false,
            batch: batch.max(1) as usize,
        }
    }
}

impl ReplacementPolicy for ExternalPolicy {
    fn kind(&self) -> ReplacementKind {
        ReplacementKind::External
    }

    fn insert(&mut self, key: PageKey, ident: PageIdent) {
        self.inner.insert(key, ident);
    }

    fn remove(&mut self, key: PageKey, ident: PageIdent) {
        self.inner.remove(key, ident);
    }

    fn touch(&mut self, key: PageKey) {
        self.inner.touch(key);
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn contains(&self, key: PageKey) -> bool {
        self.inner.contains(key)
    }

    fn keys(&self) -> Vec<PageKey> {
        self.inner.keys()
    }

    fn select_victims(&mut self, want: usize, view: &mut dyn PolicyView) -> SelectOutcome {
        let mut out = SelectOutcome::default();
        // 1. Drain previously approved victims that are still evictable.
        while out.victims.len() < want {
            let Some(key) = self.approved.pop_front() else {
                break;
            };
            if self.inner.contains(key)
                && !view.pinned_or_cleaning(key)
                && !view.dirty_unpushable(key)
            {
                out.victims.push(key);
            }
        }
        if !out.victims.is_empty() {
            return out;
        }
        // 2. No approvals on hand: request a fresh advice batch.
        if !self.inflight {
            let mut scan = SelectOutcome::default();
            self.inner.sweep(self.batch, view, &mut scan);
            if !scan.victims.is_empty() {
                self.inflight = true;
                out.need_advice = Some(scan.victims);
                return out;
            }
            // Nothing evictable at all.
            out.full_sweeps = scan.full_sweeps;
            return out;
        }
        // 3. Advice in flight (async): fall back to the inner clock so
        // allocation never stalls on the advisor.
        self.inner.sweep(want, view, &mut out);
        out.external_fallback = !out.victims.is_empty();
        out
    }

    fn approve_victims(&mut self, pages: &[PageKey]) {
        self.inflight = false;
        self.approved.extend(pages.iter().copied());
    }
}

// ----- the engine ----------------------------------------------------------

/// The per-`PvmState` policy engine: one replacement instance for the
/// default kind plus one per segment override, a routing table, and the
/// readahead policy. With the default configuration this is exactly one
/// `Clock` and one `DoublingWindow` — zero-overhead routing (slot 0).
pub(crate) struct PolicyEngine {
    slots: Vec<Box<dyn ReplacementPolicy>>,
    /// Segment id → slot index (empty with no overrides).
    by_segment: FxHashMap<u64, usize>,
    /// Page → slot index; only maintained with more than one slot.
    page_slot: FxHashMap<PageKey, usize>,
    /// Rotating start slot for victim selection (always 0 with one slot).
    cursor: usize,
    pub readahead: Box<dyn ReadaheadPolicy>,
}

fn make_replacement(kind: ReplacementKind, cfg: &PolicyConfig) -> Box<dyn ReplacementPolicy> {
    match kind {
        ReplacementKind::Clock => Box::new(Clock::default()),
        ReplacementKind::Lru => Box::new(Lru::default()),
        ReplacementKind::WsClock => Box::new(WsClock::new(cfg.wsclock_tau)),
        ReplacementKind::Arc => Box::new(ArcPolicy::default()),
        ReplacementKind::External => Box::new(ExternalPolicy::new(cfg.external_batch)),
    }
}

impl PolicyEngine {
    pub fn new(cfg: &PolicyConfig) -> PolicyEngine {
        let mut slots = vec![make_replacement(cfg.replacement, cfg)];
        let mut by_segment = FxHashMap::default();
        for &(seg, kind) in &cfg.segment_overrides {
            by_segment.insert(seg, slots.len());
            slots.push(make_replacement(kind, cfg));
        }
        PolicyEngine {
            slots,
            by_segment,
            page_slot: FxHashMap::default(),
            cursor: 0,
            readahead: match cfg.readahead {
                ReadaheadKind::Doubling => Box::new(DoublingWindow),
                ReadaheadKind::Fifo => Box::new(FifoWindow),
            },
        }
    }

    /// A zero-allocation stand-in used while the real engine is
    /// temporarily moved out of `PvmState` for a selection call (both
    /// `Vec::new` and boxing a ZST allocate nothing).
    pub fn placeholder() -> PolicyEngine {
        PolicyEngine {
            slots: Vec::new(),
            by_segment: FxHashMap::default(),
            page_slot: FxHashMap::default(),
            cursor: 0,
            readahead: Box::new(FifoWindow),
        }
    }

    /// The replacement kind of the default slot (pvmtop, bench labels).
    pub fn default_kind(&self) -> ReplacementKind {
        self.slots[0].kind()
    }

    /// How many per-segment replacement overrides are routing pages.
    pub fn override_count(&self) -> usize {
        self.by_segment.len()
    }

    fn route(&self, segment: Option<u64>) -> usize {
        if self.slots.len() == 1 {
            return 0;
        }
        segment
            .and_then(|s| self.by_segment.get(&s).copied())
            .unwrap_or(0)
    }

    fn slot_of(&self, key: PageKey) -> usize {
        if self.slots.len() == 1 {
            0
        } else {
            self.page_slot.get(&key).copied().unwrap_or(0)
        }
    }

    /// A page became resident; `segment` routes it to its policy.
    pub fn insert(&mut self, key: PageKey, ident: PageIdent, segment: Option<u64>) {
        let idx = self.route(segment);
        if self.slots.len() > 1 {
            self.page_slot.insert(key, idx);
        }
        self.slots[idx].insert(key, ident);
    }

    /// A resident page is going away.
    pub fn remove(&mut self, key: PageKey, ident: PageIdent) {
        let idx = self.slot_of(key);
        self.slots[idx].remove(key, ident);
        if self.slots.len() > 1 {
            self.page_slot.remove(&key);
        }
    }

    /// A page was (re)mapped.
    pub fn touch(&mut self, key: PageKey) {
        let idx = self.slot_of(key);
        self.slots[idx].touch(key);
    }

    /// A laundering push finished for the page.
    pub fn cleaned(&mut self, key: PageKey) {
        let idx = self.slot_of(key);
        self.slots[idx].cleaned(key);
    }

    /// Total tracked pages across every slot.
    pub fn tracked(&self) -> usize {
        self.slots.iter().map(|s| s.len()).sum()
    }

    /// Whether any slot tracks `key`.
    pub fn contains(&self, key: PageKey) -> bool {
        self.slots[self.slot_of(key)].contains(key)
    }

    /// Snapshot of every tracked key, slot by slot in policy order.
    pub fn keys(&self) -> Vec<PageKey> {
        let mut out = Vec::with_capacity(self.tracked());
        for s in &self.slots {
            out.extend(s.keys());
        }
        out
    }

    /// Selects up to `want` victims, asking slots round-robin from a
    /// rotating cursor (with one slot: always slot 0, bit-identical to
    /// the single clock).
    pub fn select_victims(&mut self, want: usize, view: &mut dyn PolicyView) -> SelectOutcome {
        let n = self.slots.len();
        let start = self.cursor % n;
        self.cursor = (self.cursor + 1) % n;
        let mut merged = SelectOutcome::default();
        for i in 0..n {
            let idx = (start + i) % n;
            let out = self.slots[idx].select_victims(want, view);
            merged.full_sweeps += out.full_sweeps;
            merged.external_fallback |= out.external_fallback;
            if !out.victims.is_empty() {
                merged.victims = out.victims;
                return merged;
            }
            if out.need_advice.is_some() {
                merged.need_advice = out.need_advice;
                return merged;
            }
        }
        merged
    }

    /// Delivers approved external victims to every slot (non-external
    /// slots ignore it).
    pub fn approve_victims(&mut self, pages: &[PageKey]) {
        for s in &mut self.slots {
            s.approve_victims(pages);
        }
    }
}

/// The [`PolicyView`] over the live page arena, built by the caller
/// under the state lock. Lookups expect live keys: policies drop dead
/// keys eagerly (`remove`) or filter through their own membership maps.
pub(crate) struct StateView<'a> {
    pub pages: &'a mut Arena<PageDesc>,
    pub caches: &'a Arena<CacheDesc>,
}

impl PolicyView for StateView<'_> {
    fn pinned_or_cleaning(&self, key: PageKey) -> bool {
        let p = self.pages.get(key).expect("dead key in policy");
        p.lock_count > 0 || p.cleaning
    }

    fn referenced(&self, key: PageKey) -> bool {
        self.pages.get(key).expect("dead key in policy").ref_bit
    }

    fn clear_referenced(&mut self, key: PageKey) {
        self.pages.get_mut(key).expect("dead key in policy").ref_bit = false;
    }

    fn dirty_unpushable(&self, key: PageKey) -> bool {
        let p = self.pages.get(key).expect("dead key in policy");
        p.dirty
            && self
                .caches
                .get(p.cache)
                .map(|c| c.poisoned)
                .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chorus_hal::Id;

    fn k(i: u32) -> PageKey {
        Id::from_raw_parts(i, 1)
    }

    fn ident(i: u32) -> PageIdent {
        PageIdent {
            cache: 0,
            offset: u64::from(i) * 0x1000,
        }
    }

    /// A free-standing view for policy unit tests.
    #[derive(Default)]
    struct TestView {
        referenced: std::collections::BTreeSet<u32>,
        pinned: std::collections::BTreeSet<u32>,
    }

    impl PolicyView for TestView {
        fn pinned_or_cleaning(&self, key: PageKey) -> bool {
            self.pinned.contains(&key.index())
        }
        fn referenced(&self, key: PageKey) -> bool {
            self.referenced.contains(&key.index())
        }
        fn clear_referenced(&mut self, key: PageKey) {
            self.referenced.remove(&key.index());
        }
        fn dirty_unpushable(&self, _key: PageKey) -> bool {
            false
        }
    }

    #[test]
    fn clock_two_sweep_semantics() {
        let mut c = Clock::default();
        let mut view = TestView::default();
        for i in 0..4 {
            c.insert(k(i), ident(i));
            view.referenced.insert(i);
        }
        // Everything referenced: first sweep clears, second finds the
        // first candidate — one full sweep on the books.
        let out = c.select_victims(1, &mut view);
        assert_eq!(out.victims.len(), 1);
        assert_eq!(out.full_sweeps, 1);
        assert!(view.referenced.is_empty(), "first sweep cleared ref bits");
        // Nothing referenced now: immediate victim, zero full sweeps.
        let out = c.select_victims(1, &mut view);
        assert_eq!(out.full_sweeps, 0);
        // All pinned: exhausted sweep reports two revolutions.
        for i in 0..4 {
            view.pinned.insert(i);
        }
        let out = c.select_victims(1, &mut view);
        assert!(out.victims.is_empty());
        assert_eq!(out.full_sweeps, 2);
        // Empty ring: silent none.
        let mut empty = Clock::default();
        let out = empty.select_victims(1, &mut view);
        assert!(out.victims.is_empty());
        assert_eq!(out.full_sweeps, 0);
    }

    #[test]
    fn lru_evicts_oldest_unprotected() {
        let mut l = Lru::default();
        let mut view = TestView::default();
        for i in 0..4 {
            l.insert(k(i), ident(i));
        }
        l.touch(k(0)); // 0 promotes to active
        let out = l.select_victims(1, &mut view);
        assert_eq!(out.victims, vec![k(1)], "oldest inactive page goes first");
        // Pin 2: selection skips to 3.
        view.pinned.insert(2);
        let out = l.select_victims(1, &mut view);
        assert_eq!(out.victims, vec![k(3)]);
        // Evict the whole inactive list for real; only 0 (active)
        // remains, so the next selection must demote it first.
        l.remove(k(1), ident(1));
        l.remove(k(2), ident(2));
        l.remove(k(3), ident(3));
        let out = l.select_victims(1, &mut view);
        assert_eq!(out.victims, vec![k(0)], "active list demotes when dry");
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn wsclock_prefers_outside_working_set() {
        let mut w = WsClock::new(3);
        let mut view = TestView::default();
        for i in 0..3 {
            w.insert(k(i), ident(i));
        }
        // Touch 0 and 1 repeatedly; 2 ages out.
        for _ in 0..4 {
            w.touch(k(0));
            w.touch(k(1));
        }
        let out = w.select_victims(1, &mut view);
        assert_eq!(out.victims, vec![k(2)], "stale page leaves first");
        // Everything fresh: the oldest candidate is the fallback.
        let mut w = WsClock::new(1000);
        for i in 0..3 {
            w.insert(k(i), ident(i));
        }
        w.touch(k(0));
        w.touch(k(2));
        let out = w.select_victims(1, &mut view);
        assert_eq!(out.victims, vec![k(1)], "oldest fallback inside tau");
    }

    #[test]
    fn arc_ghost_hit_promotes_to_frequency_list() {
        let mut a = ArcPolicy::default();
        let mut view = TestView::default();
        for i in 0..3 {
            a.insert(k(i), ident(i));
        }
        assert_eq!(a.t1_live, 3);
        // Evict 0 (leaves a B1 ghost), then re-insert the same datum
        // under a new key: it must land in T2 and grow p.
        a.remove(k(0), ident(0));
        assert_eq!(a.b1.len(), 1);
        a.insert(k(10), ident(0));
        assert_eq!(a.t2_live, 1, "ghost hit goes to the frequency list");
        assert_eq!(a.p, 1);
        // Touch graduates T1 → T2.
        a.touch(k(1));
        assert_eq!(a.t2_live, 2);
        let out = a.select_victims(1, &mut view);
        assert_eq!(out.victims.len(), 1);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn external_requests_advice_then_drains_approvals() {
        let mut e = ExternalPolicy::new(2);
        let mut view = TestView::default();
        for i in 0..4 {
            e.insert(k(i), ident(i));
        }
        // First call: no approvals, not in flight → advice request.
        let out = e.select_victims(1, &mut view);
        assert!(out.victims.is_empty());
        let cands = out.need_advice.expect("requests an advice batch");
        assert_eq!(cands.len(), 2, "batch size respected");
        // In flight: falls back to the inner clock.
        let out = e.select_victims(1, &mut view);
        assert_eq!(out.victims.len(), 1);
        assert!(out.external_fallback);
        // Approval delivery: approved victims drain first.
        e.approve_victims(&cands);
        let out = e.select_victims(1, &mut view);
        assert_eq!(out.victims, vec![cands[0]]);
        assert!(!out.external_fallback);
    }

    #[test]
    fn engine_routes_by_segment_override() {
        let cfg = PolicyConfig {
            segment_overrides: vec![(7, ReplacementKind::Lru)],
            ..PolicyConfig::default()
        };
        let mut eng = PolicyEngine::new(&cfg);
        eng.insert(k(0), ident(0), None);
        eng.insert(k(1), ident(1), Some(7));
        eng.insert(k(2), ident(2), Some(9));
        assert_eq!(eng.tracked(), 3);
        assert!(eng.contains(k(0)) && eng.contains(k(1)) && eng.contains(k(2)));
        eng.remove(k(1), ident(1));
        assert_eq!(eng.tracked(), 2);
        assert!(!eng.contains(k(1)));
        let mut view = TestView::default();
        let out = eng.select_victims(1, &mut view);
        assert_eq!(out.victims.len(), 1);
    }

    #[test]
    fn doubling_window_arithmetic() {
        let mut d = DoublingWindow;
        // Cold miss: base.
        let dec = d.window(&RaInput {
            offset: 0x3000,
            base: 2,
            cap: 16,
            window: 0,
            next: 0,
        });
        assert_eq!((dec.pages, dec.hit, dec.ramped), (2, false, false));
        // Stream hit: double from the previous window.
        let dec = d.window(&RaInput {
            offset: 0x5000,
            base: 2,
            cap: 16,
            window: 4,
            next: 0x5000,
        });
        assert_eq!((dec.pages, dec.hit, dec.ramped), (8, true, true));
        // Capped: hit without ramp.
        let dec = d.window(&RaInput {
            offset: 0x5000,
            base: 2,
            cap: 8,
            window: 8,
            next: 0x5000,
        });
        assert_eq!((dec.pages, dec.hit, dec.ramped), (8, true, false));
        // FIFO never ramps but still detects the stream.
        let mut f = FifoWindow;
        let dec = f.window(&RaInput {
            offset: 0x5000,
            base: 2,
            cap: 16,
            window: 4,
            next: 0x5000,
        });
        assert_eq!((dec.pages, dec.hit, dec.ramped), (2, true, false));
    }
}
