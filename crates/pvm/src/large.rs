//! Large-page promotion and demotion over the buddy frame tier.
//!
//! With `PvmConfig::large_pages` on and an MMU back-end that supports a
//! large level, a fully-resident, physically-contiguous, uniformly
//! protected and aligned run of `PageGeometry::large_factor()` base
//! pages is *promoted*: one large MMU mapping is installed on top of the
//! base mappings, so sequential accesses translate through a single
//! entry and never re-enter the fault path. Promotion is additive — the
//! base mappings and fast-path entries stay — and any event that could
//! invalidate the run (a global-map slot change, an unmap, a reprotect,
//! a cleaning pass) *demotes* it by removing only the large mapping; the
//! base level then carries on as before.
//!
//! Physical contiguity comes from the buddy allocator: a synchronous
//! pull whose window lands exactly on a large-aligned full run reserves
//! one contiguous pre-zeroed frame run up front
//! ([`PvmState::reserve_pull_run`]), and `fillUp` consumes the reserved
//! frames in place. Every hook early-returns on an empty record list,
//! so the machinery costs one branch when the feature is off.

use crate::descriptors::{RegionDesc, Slot};
use crate::keys::{CacheKey, CtxKey};
use crate::state::PvmState;
use crate::stats::Counter;
use crate::trace::TraceEvent;
use chorus_hal::{FrameNo, Prot, VirtAddr, Vpn};

/// One installed large mapping (a promotion record).
#[derive(Debug, Clone, Copy)]
pub(crate) struct LargeMap {
    /// Context owning the mapping.
    pub ctx: CtxKey,
    /// Large virtual page number ([`chorus_hal::PageGeometry::large_vpn`]).
    pub lvpn: Vpn,
    /// Cache backing the run.
    pub cache: CacheKey,
    /// Cache byte offset of the run's first page.
    pub offset: u64,
    /// First frame of the physically contiguous run.
    pub base_frame: FrameNo,
}

impl PvmState {
    // ----- promotion --------------------------------------------------------

    /// Called after a page was mapped at (ctx, vpn): if the whole large
    /// page around it is resident, physically contiguous and uniformly
    /// protected, installs a large mapping over the run. The per-page
    /// walk probes the global map directly (uncharged) — this is a
    /// knob-on optimization pass, not a modelled hardware walk; the one
    /// modelled charge is the `MapPage` of the large entry itself.
    pub(crate) fn maybe_promote(&mut self, ctx: CtxKey, vpn: Vpn, region: &RegionDesc) {
        if !self.config.large_pages || !self.mmu.lock().supports_large() {
            return;
        }
        let factor = self.geom.large_factor();
        let ps = self.ps();
        let large = self.geom.large_page_size();
        let va_base = VirtAddr(self.geom.round_down_large(self.geom.base(vpn).0));
        let lvpn = self.geom.large_vpn(va_base);
        // The whole window must sit inside this one region, and the
        // backing run must start large-aligned in the cache's offset
        // space (matching the reservation granule).
        if va_base < region.addr || va_base.0 + large > region.end().0 {
            return;
        }
        let cache = region.cache;
        let off_base = region.va_to_offset(va_base);
        if !self.geom.is_large_aligned(off_base) {
            return;
        }
        if self
            .large_maps
            .iter()
            .any(|r| r.ctx == ctx && r.lvpn == lvpn)
        {
            return;
        }
        // Cheap residency screen before the per-page walk: the cache
        // must index every offset of the window.
        let Ok(desc) = self.cache(cache) else { return };
        if desc.entries.range(off_base..off_base + large).count() as u64 != factor {
            return;
        }
        let mut base_frame = FrameNo(0);
        let mut common_prot: Option<Prot> = None;
        for k in 0..factor {
            let off = off_base + k * ps;
            let Some(Slot::Present(p)) = self.gmap.get(cache, off) else {
                return;
            };
            let page = self.page(p);
            if page.cache != cache || page.cleaning {
                return;
            }
            if k == 0 {
                base_frame = page.frame;
            } else if u64::from(page.frame.0) != u64::from(base_frame.0) + k {
                return;
            }
            // The prot a base mapping of this page would carry (the
            // no-dirty-bit discipline: clean pages map read-only so the
            // first write faults and sets the dirty flag).
            let mut eff = page.effective_prot(region.prot);
            if !page.dirty {
                eff = eff.remove(Prot::WRITE);
            }
            match common_prot {
                None => common_prot = Some(eff),
                Some(c) if c == eff => {}
                Some(_) => return,
            }
        }
        let prot = common_prot.expect("factor >= 2 run with no pages");
        if prot.is_none() {
            return;
        }
        let Ok(cd) = self.ctx(ctx) else { return };
        let mmu_ctx = cd.mmu_ctx;
        if !self.mmu.lock().map_large(mmu_ctx, lvpn, base_frame, prot) {
            return;
        }
        self.large_maps.push(LargeMap {
            ctx,
            lvpn,
            cache,
            offset: off_base,
            base_frame,
        });
        self.stats.bump(Counter::LargePromotions);
        self.trace.event(|| TraceEvent::LargePromote {
            ctx: ctx.index(),
            va: va_base.0,
            cache: cache.index(),
            offset: off_base,
        });
    }

    // ----- demotion ---------------------------------------------------------

    /// Removes the promotion record at `idx`: drops the large MMU
    /// mapping (the MMU charges the unmap) and counts the demotion.
    fn demote_record(&mut self, idx: usize) {
        let rec = self.large_maps.swap_remove(idx);
        if let Ok(cd) = self.ctx(rec.ctx) {
            let mmu_ctx = cd.mmu_ctx;
            self.mmu.lock().unmap_large(mmu_ctx, rec.lvpn);
        }
        self.stats.bump(Counter::LargeDemotions);
        let va = rec.lvpn.0 * self.geom.large_page_size();
        self.trace.event(|| TraceEvent::LargeDemote {
            ctx: rec.ctx.index(),
            va,
        });
    }

    /// Demotes any large mapping of `ctx` covering base page `vpn`.
    /// Hooked into `unmap_va` and the per-mapping unmap loops.
    pub(crate) fn demote_covering_va(&mut self, ctx: CtxKey, vpn: Vpn) {
        if self.large_maps.is_empty() {
            return;
        }
        let lvpn = Vpn(vpn.0 / self.geom.large_factor());
        while let Some(i) = self
            .large_maps
            .iter()
            .position(|r| r.ctx == ctx && r.lvpn == lvpn)
        {
            self.demote_record(i);
        }
    }

    /// Demotes every large mapping whose backing run covers
    /// (cache, off). Hooked into the global-map slot mutators — any
    /// slot transition inside a promoted run invalidates it, so the
    /// mapping can never go stale.
    pub(crate) fn demote_covering_slot(&mut self, cache: CacheKey, off: u64) {
        if self.large_maps.is_empty() {
            return;
        }
        let large = self.geom.large_page_size();
        while let Some(i) = self
            .large_maps
            .iter()
            .position(|r| r.cache == cache && r.offset <= off && off < r.offset + large)
        {
            self.demote_record(i);
        }
    }

    /// Demotes every promotion backed by `cache` (quarantine path).
    pub(crate) fn demote_all_of_cache(&mut self, cache: CacheKey) {
        if self.large_maps.is_empty() {
            return;
        }
        while let Some(i) = self.large_maps.iter().position(|r| r.cache == cache) {
            self.demote_record(i);
        }
    }

    /// Drops every promotion record of a dying context. The MMU context
    /// teardown removes the large entries wholesale (and charges them),
    /// so only the records and counters are updated here.
    pub(crate) fn drop_large_maps_of_ctx(&mut self, ctx: CtxKey) {
        if self.large_maps.is_empty() {
            return;
        }
        let before = self.large_maps.len();
        self.large_maps.retain(|r| r.ctx != ctx);
        let dropped = (before - self.large_maps.len()) as u64;
        self.stats.add(Counter::LargeDemotions, dropped);
    }

    // ----- contiguous pull-run reservations ---------------------------------

    /// Reserves one physically contiguous pre-zeroed frame run for the
    /// large-aligned pull window starting at (cache, offset), keyed per
    /// page offset so `fillUp` consumes exact frames. Falls back
    /// silently (counted) when the buddy pool has no aligned run free —
    /// the pull proceeds with per-page allocation and the run simply
    /// cannot be promoted afterwards.
    pub(crate) fn reserve_pull_run(&mut self, cache: CacheKey, offset: u64) {
        let factor = self.geom.large_factor();
        let order = factor.trailing_zeros();
        // Hoisted so the phys guard (a scrutinee temporary) is dropped
        // before the match body runs.
        let run = self.phys.lock().alloc_run_zeroed(order);
        match run {
            Some(base) => {
                let ps = self.ps();
                for k in 0..factor {
                    self.reserved_frames
                        .insert((cache, offset + k * ps), FrameNo(base.0 + k as u32));
                }
                self.stats.bump(Counter::LargeRunReserves);
            }
            None => {
                self.stats.bump(Counter::LargeRunFallbacks);
            }
        }
    }

    /// Releases any frames still reserved for the pull window
    /// `[offset, offset + size)` of `cache` — the mapper delivered fewer
    /// pages than reserved (or failed), so the leftovers go back to the
    /// buddy pool. Runs after every synchronous pull, success or not.
    pub(crate) fn release_reservations(&mut self, cache: CacheKey, offset: u64, size: u64) {
        if self.reserved_frames.is_empty() {
            return;
        }
        let ps = self.ps();
        let mut off = offset;
        while off < offset.saturating_add(size) {
            if let Some(frame) = self.reserved_frames.remove(&(cache, off)) {
                self.phys.lock().release(frame);
            }
            off += ps;
        }
    }

    /// Releases every reserved frame of a cache (quarantine path).
    pub(crate) fn release_all_reservations_of(&mut self, cache: CacheKey) {
        if self.reserved_frames.is_empty() {
            return;
        }
        let stale: Vec<(CacheKey, u64)> = self
            .reserved_frames
            .keys()
            .filter(|&&(c, _)| c == cache)
            .copied()
            .collect();
        for k in stale {
            if let Some(frame) = self.reserved_frames.remove(&k) {
                self.phys.lock().release(frame);
            }
        }
    }
}
