//! The locked PVM state and its core bookkeeping helpers.
//!
//! All descriptor arenas, the global map, and the machine state (frame
//! pool + MMU) live behind one mutex in [`crate::Pvm`]. Operations that
//! must block (waiting on a synchronization page stub, performing a
//! `pullIn`/`pushOut` upcall) never sleep while holding the lock: an
//! *attempt* runs under the lock and either completes or returns a
//! [`Blocked`] action; the driver in `pvm.rs` releases the lock, performs
//! the action, and retries the attempt.

use crate::config::PvmConfig;
use crate::descriptors::{CacheDesc, ContextDesc, CowSource, Mapping, PageDesc, RegionDesc, Slot};
use crate::domains::DomainLock;
use crate::fastpath::TranslationCache;
use crate::gmap::GlobalMap;
use crate::keys::{CacheKey, CtxKey, PageKey, RegKey};
use crate::policy::{PageIdent, PolicyEngine};
use crate::stats::{Counter, StatsRegistry};
use crate::telemetry::{Dim, DimCounter, SeriesRing, Telemetry, TelemetrySample, SERIES_CAP};
use crate::trace::{TraceEvent, Tracer};
use chorus_gmi::{GmiError, Result, SegmentId};
use chorus_hal::{
    Access, Arena, CostModel, FrameNo, FxHashMap, Mmu, OpKind, PageGeometry, PhysicalMemory, Prot,
    VirtAddr, Vpn,
};
use std::sync::Arc;

/// An action the caller must perform without the state lock, then retry.
#[derive(Debug)]
pub(crate) enum Blocked {
    /// Wait for a synchronization page stub to resolve.
    WaitStub,
    /// Perform a `pullIn` upcall. The attempt has already placed a sync
    /// stub at (cache, offset).
    PullIn {
        /// Target cache.
        cache: CacheKey,
        /// Its segment.
        segment: SegmentId,
        /// Page-aligned fragment offset.
        offset: u64,
        /// Fragment size.
        size: u64,
        /// Access mode for the pull.
        access: Access,
    },
    /// Perform a `pushOut` upcall for a run of pages being cleaned. The
    /// attempt has already write-protected every page's mappings and set
    /// their `cleaning` flags; `pages[i]` sits at `offset + i * ps`.
    PushOut {
        /// Source cache.
        cache: CacheKey,
        /// Its segment.
        segment: SegmentId,
        /// Page-aligned offset of the first page of the run.
        offset: u64,
        /// Size to push (`pages.len() * page_size`).
        size: u64,
        /// The contiguous run of pages being cleaned, in offset order.
        pages: Vec<PageKey>,
        /// Why the run is being pushed (demand eviction, the writeback
        /// daemon, or an explicit sync/flush).
        origin: PushOrigin,
    },
    /// The cache needs a segment assigned (`segmentCreate` upcall,
    /// §5.1.2: temporary caches get a swap segment at first push-out).
    NeedSegment {
        /// The segment-less cache.
        cache: CacheKey,
    },
    /// Frame allocation found no victim, but the completion engine has
    /// in-flight (or pending) asynchronous upcalls whose delivery can
    /// free frames (a finished laundering push makes its pages clean
    /// and evictable). The driver force-delivers the earliest
    /// completion and retries.
    AwaitCompletion,
    /// Backpressure: the pending asynchronous pull queue reached
    /// `PvmConfig::max_pending_pulls`. The faulting thread is stalled
    /// deterministically — the driver force-delivers a completion
    /// (feeding a pending pull into the freed slot) and retries —
    /// instead of letting the queue grow without bound.
    Throttled,
    /// The external replacement policy needs a `victimAdvice` upcall:
    /// present the candidate batch to the segment manager and deliver
    /// the approved subset back through
    /// [`PvmState::approve_external_victims`] (directly in synchronous
    /// mode; via a completion-engine record when `async_upcalls` is on).
    VictimAdvice {
        /// Candidate pages, in policy order.
        pages: Vec<PageKey>,
        /// Their public identities (cache id, offset), parallel to
        /// `pages` — what the segment manager actually sees.
        idents: Vec<(chorus_gmi::CacheId, u64)>,
    },
    /// Ask the segment manager for write access (`getWriteAccess`).
    GetWriteAccess {
        /// The cache whose page needs write access (kept for telemetry
        /// in Debug output).
        #[allow(dead_code)]
        cache: CacheKey,
        /// Its segment.
        segment: SegmentId,
        /// Page offset.
        offset: u64,
        /// Size (one page).
        size: u64,
        /// The page to mark writable on success.
        page: PageKey,
    },
}

/// Why a [`Blocked::PushOut`] was issued. Demand evictions stall the
/// faulting thread (tracked in the `fault.evictStall` histogram); daemon
/// pushes run from the watermark laundering pass and must never fail the
/// operation that triggered them; sync pushes come from explicit
/// `cache_sync`/flush/destroy and keep their caller's error semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushOrigin {
    /// Synchronous eviction inside a demand fault or allocation.
    Demand,
    /// Background laundering by the watermark-driven writeback daemon.
    Daemon,
    /// Explicit `cache_sync`/flush/destroy writeback.
    Sync,
}

/// Result of one locked attempt.
pub(crate) enum Outcome<T> {
    /// The operation completed.
    Done(T),
    /// The lock must be released and `Blocked` performed, then retry.
    Blocked(Blocked),
}

/// `Result` of an attempt: hard error, completion, or blocked.
pub(crate) type Attempt<T> = Result<Outcome<T>>;

/// Shorthand for returning a blocked outcome.
pub(crate) fn blocked<T>(b: Blocked) -> Attempt<T> {
    Ok(Outcome::Blocked(b))
}

/// Shorthand for returning a completed outcome.
pub(crate) fn done<T>(v: T) -> Attempt<T> {
    Ok(Outcome::Done(v))
}

/// How [`PvmState::free_page`] should treat stubs threaded on the page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StubsTo {
    /// Re-point stubs at (cache, offset) — the data survives on the
    /// segment (eviction path; §4.3 "otherwise, it contains a pointer to
    /// the source local-cache descriptor and its offset").
    Loc,
    /// The caller already materialized or dropped every stub.
    AlreadyHandled,
}

/// The PVM state proper (everything behind the lock).
pub(crate) struct PvmState {
    pub geom: PageGeometry,
    /// The physical-tier lock domain: buddy allocator + frame metadata.
    /// Guards must stay single-statement (parking_lot is non-reentrant);
    /// lock order is state → phys, never the reverse.
    pub phys: DomainLock<PhysicalMemory>,
    /// The translation lock domain: MMU contexts + page tables. Same
    /// single-statement guard discipline; lock order state → trans.
    pub mmu: DomainLock<Box<dyn Mmu>>,
    pub model: Arc<CostModel>,
    pub contexts: Arena<ContextDesc>,
    pub regions: Arena<RegionDesc>,
    pub caches: Arena<CacheDesc>,
    pub pages: Arena<PageDesc>,
    /// The global map (§4.1.1), lock-striped by (cache, offset); also
    /// holds the location-stub index (per-virtual-page stubs whose
    /// source page is not resident, re-threaded at the next pull).
    pub gmap: GlobalMap,
    /// The lock-free resident translation cache consulted by
    /// `handle_fault` before the state mutex (shared with `Pvm`).
    pub fast: Arc<TranslationCache>,
    /// Owner page of each allocated frame (reverse of `PageDesc.frame`).
    pub frame_owner: FxHashMap<u32, PageKey>,
    /// The replacement/readahead policy engine (every tracked entry is a
    /// live page; freed pages are removed eagerly). The default
    /// configuration is one clock ring plus the doubling readahead
    /// window — the pre-policy behaviour, bit for bit.
    pub policy: PolicyEngine,
    /// The current user context.
    pub current: Option<CtxKey>,
    pub config: PvmConfig,
    /// The live counter cells, shared with the translation cache, the
    /// global map, the tracer and `Pvm` (lock-free snapshots).
    pub stats: Arc<StatsRegistry>,
    /// The event tracer, shared with `Pvm` and (for correlation) the
    /// nucleus mapper layers.
    pub trace: Arc<Tracer>,
    /// The asynchronous-upcall completion engine (in-flight table,
    /// deterministic completion queue, pending coalescible pulls).
    /// Entirely inert unless `config.async_upcalls` is set.
    pub engine: crate::engine::EngineState,
    /// Public ids of contexts torn down by the out-of-memory killer.
    /// Lookups through a dead handle consult this so the error is
    /// `ContextKilled`, not a bare `NoSuchContext` (MIX keys process
    /// reaping off the distinction). Grows only when `oom_killer` is
    /// on, and one entry per kill — never a space concern.
    pub oom_killed: Vec<chorus_gmi::CtxId>,
    /// Installed large mappings (promotion records). Empty unless
    /// `config.large_pages` is on; every hook early-returns on empty.
    pub large_maps: Vec<crate::large::LargeMap>,
    /// Contiguous frames reserved for an in-flight large-aligned pull,
    /// keyed by (cache, page offset) and consumed by `fillUp`. Empty
    /// unless `config.large_pages` is on.
    pub reserved_frames: FxHashMap<(CacheKey, u64), FrameNo>,
    /// Landing frames of the parallel `fillUp` protocol: allocated (or
    /// claimed from `reserved_frames`) under one state-lock section,
    /// filled from the mapper's bytes *outside every domain lock*, and
    /// threaded into a page descriptor under a second section. An entry
    /// here is the filling thread's exclusive property — no other path
    /// reads, maps or releases a landing frame. Empty unless
    /// `config.parallel_faults` engaged the parallel driver.
    pub landing: FxHashMap<(CacheKey, u64), FrameNo>,
    /// The dimensional telemetry registry (per-cache / per-context /
    /// per-mapper counters), shared with the translation cache and
    /// `Pvm`. Inert (one relaxed load per site) unless
    /// `config.telemetry` is on.
    pub telemetry: Arc<Telemetry>,
    /// Ring of deterministic sim-time gauge samples recorded by
    /// [`PvmState::maybe_sample`]. Empty unless `config.telemetry` is
    /// on.
    pub series: SeriesRing,
    /// Next simulated instant (multiple of `config.telemetry_sample_ns`)
    /// at which the gauge sampler fires.
    pub next_sample_ns: u64,
}

impl PvmState {
    pub fn new(
        geom: PageGeometry,
        phys: PhysicalMemory,
        mmu: Box<dyn Mmu>,
        model: Arc<CostModel>,
        config: PvmConfig,
    ) -> PvmState {
        let stats = Arc::new(StatsRegistry::new());
        let trace = Arc::new(Tracer::new(config.trace, model.clone(), stats.clone()));
        let telemetry = Arc::new(Telemetry::new(config.telemetry));
        PvmState {
            geom,
            phys: DomainLock::new(
                phys,
                stats.clone(),
                Counter::PhysLockAcqs,
                Counter::PhysLockContended,
            ),
            mmu: DomainLock::new(
                mmu,
                stats.clone(),
                Counter::TransLockAcqs,
                Counter::TransLockContended,
            ),
            model,
            contexts: Arena::new(),
            regions: Arena::new(),
            caches: Arena::new(),
            pages: Arena::new(),
            gmap: GlobalMap::new(config.global_map_shards, stats.clone()),
            fast: Arc::new(TranslationCache::new(
                config.fast_path,
                stats.clone(),
                telemetry.clone(),
            )),
            frame_owner: FxHashMap::default(),
            policy: PolicyEngine::new(&config.policy),
            current: None,
            config,
            stats,
            trace,
            engine: crate::engine::EngineState::new(),
            oom_killed: Vec::new(),
            large_maps: Vec::new(),
            reserved_frames: FxHashMap::default(),
            landing: FxHashMap::default(),
            telemetry,
            series: SeriesRing::new(SERIES_CAP),
            next_sample_ns: 0,
        }
    }

    // ----- lookups --------------------------------------------------------

    pub fn ctx(&self, k: CtxKey) -> Result<&ContextDesc> {
        self.contexts
            .get(k)
            .ok_or(GmiError::NoSuchContext(crate::keys::pub_ctx(k)))
    }

    pub fn ctx_mut(&mut self, k: CtxKey) -> Result<&mut ContextDesc> {
        self.contexts
            .get_mut(k)
            .ok_or(GmiError::NoSuchContext(crate::keys::pub_ctx(k)))
    }

    /// Distinguishes "context was killed by the OOM killer" from a
    /// plain dangling handle: a killed context's public id is recorded
    /// in `oom_killed`, and accesses through it report `ContextKilled`
    /// so the MIX layer can reap the process rather than treat the
    /// handle as a caller bug.
    pub fn check_context_alive(&self, k: CtxKey) -> Result<()> {
        if self.contexts.get(k).is_none() {
            let id = crate::keys::pub_ctx(k);
            if self.oom_killed.contains(&id) {
                return Err(GmiError::ContextKilled(id));
            }
        }
        Ok(())
    }

    pub fn region(&self, k: RegKey) -> Result<&RegionDesc> {
        self.regions
            .get(k)
            .ok_or(GmiError::NoSuchRegion(crate::keys::pub_region(k)))
    }

    pub fn region_mut(&mut self, k: RegKey) -> Result<&mut RegionDesc> {
        self.regions
            .get_mut(k)
            .ok_or(GmiError::NoSuchRegion(crate::keys::pub_region(k)))
    }

    pub fn cache(&self, k: CacheKey) -> Result<&CacheDesc> {
        self.caches
            .get(k)
            .ok_or(GmiError::NoSuchCache(crate::keys::pub_cache(k)))
    }

    pub fn cache_mut(&mut self, k: CacheKey) -> Result<&mut CacheDesc> {
        self.caches
            .get_mut(k)
            .ok_or(GmiError::NoSuchCache(crate::keys::pub_cache(k)))
    }

    /// Fails with `CachePoisoned` if the cache was quarantined after a
    /// permanent mapper failure. A dead (removed) cache is not an error
    /// here — the caller's own lookup reports that.
    pub fn check_not_poisoned(&self, k: CacheKey) -> Result<()> {
        match self.caches.get(k) {
            Some(c) if c.poisoned => Err(GmiError::CachePoisoned(crate::keys::pub_cache(k))),
            _ => Ok(()),
        }
    }

    /// Quarantines a cache after a permanent mapper failure (if the
    /// config enables it): every later operation that needs the cache
    /// fails with a clean `CachePoisoned` error instead of re-driving
    /// upcalls into an unavailable mapper.
    pub fn quarantine_cache(&mut self, k: CacheKey) {
        if !self.config.quarantine_on_permanent_failure {
            return;
        }
        let mut transitioned = false;
        if let Some(c) = self.caches.get_mut(k) {
            if !c.poisoned {
                c.poisoned = true;
                transitioned = true;
                self.stats.bump(Counter::QuarantinedCaches);
                self.trace
                    .event(|| TraceEvent::Quarantine { cache: k.index() });
                // Faults touching the quarantined cache must reach the
                // slow path to observe `CachePoisoned`; drop every fast
                // translation rather than finding the cache's mappings.
                self.fast.bump_generation();
            }
        }
        if transitioned {
            // Large mappings over a poisoned cache are stale by fiat;
            // reserved pull frames for it will never be consumed.
            self.demote_all_of_cache(k);
            self.release_all_reservations_of(k);
            // Coalesced pulls still queued behind an in-flight request
            // must fail, not vanish: clear their synchronization stubs
            // so the waiting faults re-run and observe `CachePoisoned`
            // instead of sleeping on a request that will never be
            // resubmitted for a quarantined cache.
            let drained: Vec<_> = {
                let pending = &mut self.engine.pending_pulls;
                let mut kept = Vec::with_capacity(pending.len());
                let mut gone = Vec::new();
                for p in pending.drain(..) {
                    if p.cache == k {
                        gone.push(p);
                    } else {
                        kept.push(p);
                    }
                }
                *pending = kept;
                gone
            };
            for p in drained {
                self.stats.bump(Counter::AsyncPendingFailed);
                let ps = self.ps();
                let mut off = p.offset;
                while off < p.offset + p.size {
                    if self.is_sync_stub(p.cache, off) {
                        self.clear_slot(p.cache, off);
                    }
                    off += ps;
                }
            }
        }
    }

    /// Internal page lookup: pages are never exposed, so a dangling key
    /// is a PVM bug.
    pub fn page(&self, k: PageKey) -> &PageDesc {
        self.pages.get(k).expect("dangling page key")
    }

    pub fn page_mut(&mut self, k: PageKey) -> &mut PageDesc {
        self.pages.get_mut(k).expect("dangling page key")
    }

    /// Pins the page resident at `(cache, offset)`, if any, and returns
    /// its key. Used by `fillUp` to keep the already-landed pages of a
    /// clustered delivery out of the victim pool while the rest of the
    /// window is still landing.
    pub fn pin_resident(&mut self, cache: CacheKey, offset: u64) -> Option<PageKey> {
        // Uncharged lookup: the pin is kernel bookkeeping, not a
        // modeled global-map operation (`slot()` would bill one).
        match self.gmap.get(cache, offset) {
            Some(Slot::Present(p)) => {
                self.page_mut(p).lock_count += 1;
                Some(p)
            }
            _ => None,
        }
    }

    /// Releases pins taken with [`Self::pin_resident`]. Pages may have
    /// died with their cache in the meantime; dead keys are skipped
    /// (arena generations make reuse detection exact).
    pub fn unpin_pages(&mut self, keys: &[PageKey]) {
        for &p in keys {
            if self.pages.contains(p) {
                self.page_mut(p).lock_count -= 1;
            }
        }
    }

    // ----- geometry helpers ------------------------------------------------

    #[inline]
    pub fn ps(&self) -> u64 {
        self.geom.page_size()
    }

    pub fn check_aligned(&self, value: u64, what: &'static str) -> Result<()> {
        if self.geom.is_aligned(value) {
            Ok(())
        } else {
            Err(GmiError::Unaligned { value, what })
        }
    }

    // ----- global map ------------------------------------------------------

    pub fn slot(&self, cache: CacheKey, off: u64) -> Option<Slot> {
        self.model.charge(OpKind::GlobalMapOp);
        self.gmap.get(cache, off)
    }

    /// Installs a slot, maintaining the cache's entry index.
    pub fn set_slot(&mut self, cache: CacheKey, off: u64, slot: Slot) {
        // Any slot transition inside a promoted run invalidates the
        // large mapping (this is the lowest-level hook, covering every
        // path that moves or re-points a page).
        self.demote_covering_slot(cache, off);
        self.model.charge(OpKind::GlobalMapOp);
        self.gmap.insert(cache, off, slot);
        if let Some(c) = self.caches.get_mut(cache) {
            c.entries.insert(off);
        }
    }

    /// Removes a slot, maintaining the cache's entry index.
    pub fn clear_slot(&mut self, cache: CacheKey, off: u64) -> Option<Slot> {
        self.demote_covering_slot(cache, off);
        self.model.charge(OpKind::GlobalMapOp);
        let old = self.gmap.remove(cache, off);
        if old.is_some() {
            if let Some(c) = self.caches.get_mut(cache) {
                c.entries.remove(&off);
            }
        }
        old
    }

    // ----- page lifecycle ---------------------------------------------------

    /// Creates a real page descriptor for `frame` at (cache, offset),
    /// replacing any stub there, and threads any location stubs waiting
    /// for this (cache, offset).
    pub fn create_page(
        &mut self,
        cache: CacheKey,
        offset: u64,
        frame: FrameNo,
        writable: bool,
        dirty: bool,
    ) -> PageKey {
        let mut desc = PageDesc::new(cache, offset, frame);
        desc.writable = writable;
        desc.dirty = dirty;
        // Re-thread per-page stubs that were pointing at this location.
        desc.stubs = self.gmap.take_loc_stubs(cache, offset);
        let key = self.pages.insert(desc);
        for &(dc, doff) in &self.page(key).stubs.clone() {
            self.set_slot(dc, doff, Slot::Cow(CowSource::Page(key)));
        }
        self.set_slot(cache, offset, Slot::Present(key));
        if let Some(c) = self.caches.get_mut(cache) {
            c.owned.insert(offset);
        }
        self.frame_owner.insert(frame.0, key);
        let segment = self.caches.get(cache).and_then(|c| c.segment).map(|s| s.0);
        self.policy.insert(
            key,
            PageIdent {
                cache: cache.index(),
                offset,
            },
            segment,
        );
        key
    }

    /// Removes a page: unmaps it everywhere, detaches stubs per
    /// `stubs_to`, clears its slot, and releases (or returns) its frame.
    ///
    /// The `owned` mark is *not* cleared — the caller decides whether the
    /// cache still logically owns the offset (eviction: yes; invalidate:
    /// no).
    pub fn free_page(&mut self, key: PageKey, stubs_to: StubsTo, release_frame: bool) -> FrameNo {
        self.unmap_all(key);
        let desc = self.pages.remove(key).expect("freeing a dead page");
        match stubs_to {
            StubsTo::Loc => {
                for (dc, doff) in desc.stubs {
                    self.set_slot(dc, doff, Slot::Cow(CowSource::Loc(desc.cache, desc.offset)));
                    self.gmap.push_loc_stub(desc.cache, desc.offset, (dc, doff));
                }
            }
            StubsTo::AlreadyHandled => {
                debug_assert!(desc.stubs.is_empty(), "free_page with live stubs");
            }
        }
        // Only clear the slot if it still refers to this page (a sync
        // stub may have replaced it during cleaning).
        if self.gmap.get(desc.cache, desc.offset) == Some(Slot::Present(key)) {
            self.clear_slot(desc.cache, desc.offset);
        }
        self.frame_owner.remove(&desc.frame.0);
        self.policy.remove(
            key,
            PageIdent {
                cache: desc.cache.index(),
                offset: desc.offset,
            },
        );
        if release_frame {
            self.phys.lock().release(desc.frame);
        }
        desc.frame
    }

    // ----- mapping bookkeeping ----------------------------------------------

    /// Enters a mapping in the MMU and records it on the page.
    pub fn map_page(&mut self, key: PageKey, ctx: CtxKey, vpn: Vpn, prot: Prot, via: CacheKey) {
        // Remove any previous mapping at this (ctx, vpn) first.
        self.unmap_va(ctx, vpn);
        let mmu_ctx = self.ctx(ctx).expect("mapping into dead context").mmu_ctx;
        let frame = self.page(key).frame;
        self.mmu.lock().map(mmu_ctx, vpn, frame, prot);
        let page = self.page_mut(key);
        page.mappings.push(Mapping { ctx, vpn, via });
        page.ref_bit = true;
        // The policy's use signal (the clock reads the reference bit set
        // above; recency policies queue the touch).
        self.policy.touch(key);
        // Publish the translation so later soft faults on it skip the
        // state mutex. Only non-COW, non-stub resident pages ever get
        // here with the protection actually installed in the MMU.
        self.fast.install(ctx, vpn, frame, prot);
    }

    /// Removes the mapping at (ctx, vpn), if any, and unthreads it from
    /// its page descriptor.
    pub fn unmap_va(&mut self, ctx: CtxKey, vpn: Vpn) {
        self.demote_covering_va(ctx, vpn);
        let Ok(desc) = self.ctx(ctx) else { return };
        let mmu_ctx = desc.mmu_ctx;
        let unmapped = self.mmu.lock().unmap(mmu_ctx, vpn);
        if let Some(frame) = unmapped {
            self.fast.remove(ctx, vpn);
            if let Some(&owner) = self.frame_owner.get(&frame.0) {
                let page = self.page_mut(owner);
                page.mappings.retain(|m| !(m.ctx == ctx && m.vpn == vpn));
            }
        }
    }

    /// Removes every MMU mapping of a page.
    pub fn unmap_all(&mut self, key: PageKey) {
        let mappings = core::mem::take(&mut self.page_mut(key).mappings);
        for m in mappings {
            self.demote_covering_va(m.ctx, m.vpn);
            self.fast.remove(m.ctx, m.vpn);
            if let Ok(desc) = self.ctx(m.ctx) {
                let mmu_ctx = desc.mmu_ctx;
                self.mmu.lock().unmap(mmu_ctx, m.vpn);
            }
        }
    }

    /// Shoots down the mappings of a page that were established through
    /// one particular cache — used when that cache materializes its own
    /// version, so stale read mappings of the old version re-fault.
    pub fn unmap_via(&mut self, key: PageKey, via: CacheKey) {
        let (keep, drop): (Vec<Mapping>, Vec<Mapping>) =
            self.page(key).mappings.iter().partition(|m| m.via != via);
        for m in &drop {
            self.demote_covering_va(m.ctx, m.vpn);
            self.fast.remove(m.ctx, m.vpn);
            if let Ok(desc) = self.ctx(m.ctx) {
                let mmu_ctx = desc.mmu_ctx;
                self.mmu.lock().unmap(mmu_ctx, m.vpn);
            }
        }
        self.page_mut(key).mappings = keep;
    }

    /// Shoots down mappings of a page established through caches other
    /// than the owner (descendants reading the original); called before
    /// the owner's copy is modified in place.
    pub fn unmap_foreign(&mut self, key: PageKey) {
        let owner = self.page(key).cache;
        let (keep, drop): (Vec<Mapping>, Vec<Mapping>) =
            self.page(key).mappings.iter().partition(|m| m.via == owner);
        for m in &drop {
            self.demote_covering_va(m.ctx, m.vpn);
            self.fast.remove(m.ctx, m.vpn);
            if let Ok(desc) = self.ctx(m.ctx) {
                let mmu_ctx = desc.mmu_ctx;
                self.mmu.lock().unmap(mmu_ctx, m.vpn);
            }
        }
        self.page_mut(key).mappings = keep;
    }

    /// Re-applies the protection of every current mapping of a page,
    /// given each mapping's region protection recomputed from scratch.
    pub fn reprotect_mappings(&mut self, key: PageKey) {
        // A protection change anywhere in a promoted run breaks its
        // uniform-protection invariant; demote by the page's slot so
        // even pages with no base mapping of their own (covered only by
        // the large entry) take effect immediately.
        let (pc, po) = {
            let p = self.page(key);
            (p.cache, p.offset)
        };
        self.demote_covering_slot(pc, po);
        let mappings = self.page(key).mappings.clone();
        for m in mappings {
            let Some(region_prot) = self.region_prot_at(m.ctx, m.vpn) else {
                continue;
            };
            let page = self.page(key);
            let eff = if m.via == page.cache {
                page.effective_prot(region_prot)
            } else {
                // Foreign (descendant) mappings of an ancestor page are
                // always read-only.
                region_prot.remove(Prot::WRITE)
            };
            let mmu_ctx = self.ctx(m.ctx).expect("mapping into dead context").mmu_ctx;
            self.mmu.lock().protect(mmu_ctx, m.vpn, eff);
            // Refresh the fast-path entry to the narrowed protection so
            // a revoked right cannot be satisfied lock-free.
            let frame = self.page(key).frame;
            self.fast.install(m.ctx, m.vpn, frame, eff);
        }
    }

    /// The protection of the region covering (ctx, vpn), if any.
    fn region_prot_at(&self, ctx: CtxKey, vpn: Vpn) -> Option<Prot> {
        let va = self.geom.base(vpn);
        let reg = self.find_region(ctx, va).ok()?;
        Some(self.region(reg).ok()?.prot)
    }

    // ----- region lookup ----------------------------------------------------

    /// Finds the region of `ctx` containing `va` (§4.1.2's search in the
    /// sorted region list).
    pub fn find_region(&self, ctx: CtxKey, va: VirtAddr) -> Result<RegKey> {
        let desc = self.ctx(ctx)?;
        // Regions are sorted by start address; find the last region whose
        // start is <= va and check containment.
        let idx = desc
            .regions
            .partition_point(|&r| self.regions.get(r).map(|d| d.addr <= va).unwrap_or(false));
        if idx > 0 {
            let key = desc.regions[idx - 1];
            if let Some(r) = self.regions.get(key) {
                if r.contains(va) {
                    return Ok(key);
                }
            }
        }
        Err(GmiError::SegmentationFault {
            ctx: crate::keys::pub_ctx(ctx),
            va,
            access: Access::Read,
        })
    }

    // ----- dimensional telemetry --------------------------------------------

    /// Attributes one handled slow-path fault to its context. Called by
    /// `fault_attempt` on the first attempt only; the cache half rides
    /// [`Self::note_fault_cache_dim`] once the region resolves, so
    /// attribution reuses the fault path's own region lookup and never
    /// touches the cost model (faults into unmapped addresses are
    /// charged to the context only; the cache-dimension sum therefore
    /// equals the global slow-path fault count whenever every fault
    /// resolved).
    #[inline]
    pub fn note_fault_ctx_dim(&self, ctx: CtxKey) {
        if self.telemetry.enabled() {
            self.telemetry
                .bump(Dim::Context, u64::from(ctx.index()), DimCounter::Faults);
        }
    }

    /// The cache half of first-attempt fault attribution.
    #[inline]
    pub fn note_fault_cache_dim(&self, cache: CacheKey) {
        if self.telemetry.enabled() {
            self.telemetry
                .bump(Dim::Cache, u64::from(cache.index()), DimCounter::Faults);
        }
    }

    /// Bumps one counter in the cache dimension.
    #[inline]
    pub fn dim_cache(&self, cache: CacheKey, c: DimCounter, n: u64) {
        self.telemetry
            .add(Dim::Cache, u64::from(cache.index()), c, n);
    }

    /// Bumps one counter in the mapper (segment) dimension.
    #[inline]
    pub fn dim_mapper(&self, segment: SegmentId, c: DimCounter, n: u64) {
        self.telemetry.add(Dim::Mapper, segment.0, c, n);
    }

    /// Bumps one counter in both the cache and mapper dimensions — the
    /// shape of every upcall event (a cache's traffic through its
    /// segment's mapper).
    #[inline]
    pub fn dim_io(&self, cache: CacheKey, segment: SegmentId, c: DimCounter, n: u64) {
        if !self.telemetry.enabled() {
            return;
        }
        self.dim_cache(cache, c, n);
        self.dim_mapper(segment, c, n);
    }

    /// A gauge sample of the live state, stamped with the current
    /// simulated time. Pure observation: nothing here charges the cost
    /// model (`free_frames`/`free_blocks_per_order`/`len` are plain
    /// reads, and the gmap is consulted via its uncharged `len`).
    pub fn live_sample(&self) -> TelemetrySample {
        let free = self.phys.lock().free_frames();
        TelemetrySample {
            sim_ns: self.model.now().nanos(),
            free_frames: free,
            free_blocks_per_order: self.phys.lock().free_blocks_per_order(),
            inflight_upcalls: self.engine.inflight(),
            pending_pulls: self.engine.pending_pulls.len() as u64,
            clock_ring_pages: self.policy.tracked() as u64,
            gmap_slots: self.gmap.len() as u64,
            reserve_free: free.min(self.config.emergency_reserve_frames),
        }
    }

    /// The deterministic sim-time sampler: records at most one gauge
    /// sample per driver entry, once the simulated clock has crossed the
    /// next multiple of `config.telemetry_sample_ns`. Reads the clock,
    /// never advances it — with telemetry off this is a single branch.
    pub fn maybe_sample(&mut self) {
        if !self.telemetry.enabled() {
            return;
        }
        let now = self.model.now().nanos();
        if now < self.next_sample_ns {
            return;
        }
        let cadence = self.config.telemetry_sample_ns.max(1);
        self.next_sample_ns = now - now % cadence + cadence;
        let sample = self.live_sample();
        self.series.push(sample);
        self.stats.bump(Counter::TelemetrySamples);
    }

    // ----- external replacement policy --------------------------------------

    /// Delivers the approved subset of a `victimAdvice` batch to the
    /// policy engine, dropping pages that died while the advice was in
    /// flight. An empty delivery (failed or cancelled advice) still
    /// clears the policy's in-flight flag so it can re-request.
    pub(crate) fn approve_external_victims(&mut self, pages: &[PageKey]) {
        let live: Vec<PageKey> = pages
            .iter()
            .copied()
            .filter(|&p| self.pages.contains(p))
            .collect();
        self.stats
            .add(Counter::PolicyExternalApprovals, live.len() as u64);
        if live.is_empty() && !pages.is_empty() {
            self.stats.bump(Counter::PolicyExternalFallbacks);
        }
        self.policy.approve_victims(&live);
    }

    // ----- charging ----------------------------------------------------------

    #[inline]
    pub fn charge(&self, op: OpKind) {
        self.model.charge(op);
    }

    #[inline]
    pub fn charge_n(&self, op: OpKind, n: u64) {
        self.model.charge_n(op, n);
    }
}
