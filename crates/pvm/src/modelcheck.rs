//! Bounded-interleaving model checking of the cross-domain protocols
//! (DESIGN.md §7), in lieu of a vendored `loom`.
//!
//! The two protocols whose correctness depends on *ordering between
//! lock domains* — not on any single mutex — are modeled as small
//! state machines and checked exhaustively over every interleaving of
//! their atomic steps:
//!
//! 1. **Fast-path generation validation vs invalidation** — the
//!    lock-free soft-fault path reads a `(frame, generation)` entry
//!    from the sharded fast table and uses the frame, while an
//!    invalidation (flush, eviction, protection change) removes the
//!    entry, bumps the generation and frees the frame. Safety: the
//!    reader must never touch a frame after it was freed. The real
//!    code gets this from the shard lock (validate-and-use is one
//!    critical section; invalidators unhook under the shard's write
//!    lock *before* the frame dies), and the two buggy variants below
//!    confirm the checker actually sees the race when either half of
//!    that discipline is dropped.
//!
//! 2. **Stub wait/wake across two lock domains** — a faulting thread
//!    that holds its cache's *fault stripe* finds a `Sync` stub under
//!    the *state lock*, releases the state lock and sleeps on the stub
//!    condvar; the filler needs only the state lock (never the
//!    waiter's stripe) to publish the page and wake. Safety: no lost
//!    wakeup and no deadlock, even though the waiter keeps its stripe
//!    for the whole wait. The buggy variant splits the condvar's
//!    atomic release-and-register to show the checker catches the
//!    classic lost-wakeup deadlock.
//!
//! The checker itself is a plain DFS over `(shared, locals, pcs)`
//! configurations with memoization and a hard state cap — deliberately
//! tiny, deterministic, and dependency-free. A step that returns
//! [`Outcome::Block`] is discarded (the explorer steps a *clone* of
//! the configuration), so blocked probes are side-effect-free by
//! construction. Reaching no runnable thread with work outstanding is
//! reported as a deadlock; a `violation` predicate over the shared
//! state reports safety failures, each with the full schedule that
//! produced it.

#![allow(clippy::type_complexity)]

use std::collections::HashSet;
use std::hash::Hash;

/// Result of one atomic step of a modeled thread.
enum Outcome {
    /// Advance to the next program counter.
    Next,
    /// Jump to an explicit program counter (loops, retries).
    Goto(usize),
    /// Cannot run in this configuration (lock held, no wake pending).
    /// The explorer discards the attempted step.
    Block,
    /// Thread finished.
    Done,
}

/// One modeled thread: a name for traces and a pure step function
/// `(shared, local, pc) -> Outcome`.
struct ThreadModel<S, L> {
    name: &'static str,
    local: L,
    step: fn(&mut S, &mut L, usize) -> Outcome,
}

/// What an exhaustive run explored (for non-vacuity asserts).
#[derive(Debug)]
struct Report {
    states: usize,
}

/// Hard cap on explored configurations: these models have dozens of
/// reachable states, so hitting the cap means a model regression, not
/// a big model.
const MAX_STATES: usize = 100_000;

/// Exhaustively explores every interleaving from the initial
/// configuration. Returns a violation or deadlock as `Err` with the
/// schedule that reached it.
fn explore<S, L>(
    shared: S,
    threads: Vec<ThreadModel<S, L>>,
    violation: fn(&S) -> Option<&'static str>,
) -> Result<Report, String>
where
    S: Clone + Eq + Hash,
    L: Clone + Eq + Hash,
{
    let steps: Vec<(&'static str, fn(&mut S, &mut L, usize) -> Outcome)> =
        threads.iter().map(|t| (t.name, t.step)).collect();
    let init: (S, Vec<(L, usize, bool)>) = (
        shared,
        threads.into_iter().map(|t| (t.local, 0, false)).collect(),
    );
    let mut visited = HashSet::new();
    let mut report = Report { states: 0 };
    let mut trace = Vec::new();
    dfs(
        init,
        &steps,
        violation,
        &mut visited,
        &mut trace,
        &mut report,
    )?;
    Ok(report)
}

fn dfs<S, L>(
    cfg: (S, Vec<(L, usize, bool)>),
    steps: &[(&'static str, fn(&mut S, &mut L, usize) -> Outcome)],
    violation: fn(&S) -> Option<&'static str>,
    visited: &mut HashSet<(S, Vec<(L, usize, bool)>)>,
    trace: &mut Vec<String>,
    report: &mut Report,
) -> Result<(), String>
where
    S: Clone + Eq + Hash,
    L: Clone + Eq + Hash,
{
    if !visited.insert(cfg.clone()) {
        return Ok(());
    }
    report.states += 1;
    assert!(
        report.states <= MAX_STATES,
        "model exceeded {MAX_STATES} states — the model, not the bound, is wrong"
    );
    if let Some(what) = violation(&cfg.0) {
        return Err(format!(
            "violation: {what}\n  schedule: {}",
            trace.join(" -> ")
        ));
    }
    let mut ran_any = false;
    let mut all_done = true;
    for i in 0..cfg.1.len() {
        if cfg.1[i].2 {
            continue;
        }
        all_done = false;
        let (name, step) = steps[i];
        let mut next = cfg.clone();
        let pc = next.1[i].1;
        match step(&mut next.0, &mut next.1[i].0, pc) {
            Outcome::Block => continue,
            Outcome::Next => next.1[i].1 = pc + 1,
            Outcome::Goto(p) => next.1[i].1 = p,
            Outcome::Done => next.1[i].2 = true,
        }
        ran_any = true;
        trace.push(format!("{name}@{pc}"));
        let res = dfs(next, steps, violation, visited, trace, report);
        trace.pop();
        res?;
    }
    if !ran_any && !all_done {
        let stuck: Vec<_> = cfg
            .1
            .iter()
            .zip(steps)
            .filter(|(t, _)| !t.2)
            .map(|(t, (name, _))| format!("{name}@{}", t.1))
            .collect();
        return Err(format!(
            "deadlock: {} blocked\n  schedule: {}",
            stuck.join(", "),
            trace.join(" -> ")
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------
// Model 1: fast-path generation validation vs invalidation.
// ---------------------------------------------------------------

/// Shared state of the fast-path race: one page, one fast-table shard.
#[derive(Clone, PartialEq, Eq, Hash)]
struct FastShared {
    /// The shard lock guarding the fast-table entry (the reader's read
    /// lock is modeled as exclusive — conservative, since the race of
    /// interest is reader-vs-invalidator, not reader-vs-reader).
    shard_locked: bool,
    /// The fast-table entry: the generation it was installed at.
    entry: Option<u32>,
    /// The page's current generation (state-lock truth).
    cur_gen: u32,
    /// Whether the frame still belongs to this page.
    frame_live: bool,
    /// Set by the reader if it ever touches a dead frame.
    used_after_free: bool,
}

impl FastShared {
    fn init() -> Self {
        FastShared {
            shard_locked: false,
            entry: Some(0),
            cur_gen: 0,
            frame_live: true,
            used_after_free: false,
        }
    }
}

fn fast_violation(s: &FastShared) -> Option<&'static str> {
    s.used_after_free
        .then_some("fast path used a frame after it was freed")
}

/// The implemented reader: validate *and* use under one shard-lock
/// critical section.
fn reader_locked(s: &mut FastShared, _l: &mut (), pc: usize) -> Outcome {
    match pc {
        0 => {
            if s.shard_locked {
                return Outcome::Block;
            }
            s.shard_locked = true;
            Outcome::Next
        }
        1 => match s.entry {
            Some(g) if g == s.cur_gen => Outcome::Next,
            _ => {
                // Miss or stale: release and take the slow path.
                s.shard_locked = false;
                Outcome::Done
            }
        },
        2 => {
            if !s.frame_live {
                s.used_after_free = true;
            }
            s.shard_locked = false;
            Outcome::Done
        }
        _ => unreachable!(),
    }
}

/// Buggy reader: validates under the lock but uses the frame after
/// releasing it — the window the shard lock exists to close.
fn reader_unlocked_use(s: &mut FastShared, _l: &mut (), pc: usize) -> Outcome {
    match pc {
        0 => {
            if s.shard_locked {
                return Outcome::Block;
            }
            s.shard_locked = true;
            Outcome::Next
        }
        1 => match s.entry {
            Some(g) if g == s.cur_gen => {
                s.shard_locked = false;
                Outcome::Next
            }
            _ => {
                s.shard_locked = false;
                Outcome::Done
            }
        },
        2 => {
            if !s.frame_live {
                s.used_after_free = true;
            }
            Outcome::Done
        }
        _ => unreachable!(),
    }
}

/// The implemented invalidator: unhook the entry and bump the
/// generation under the shard lock, and only then free the frame.
fn invalidator_ordered(s: &mut FastShared, _l: &mut (), pc: usize) -> Outcome {
    match pc {
        0 => {
            if s.shard_locked {
                return Outcome::Block;
            }
            s.shard_locked = true;
            Outcome::Next
        }
        1 => {
            s.entry = None;
            s.cur_gen += 1;
            s.shard_locked = false;
            Outcome::Next
        }
        2 => {
            s.frame_live = false;
            Outcome::Done
        }
        _ => unreachable!(),
    }
}

/// Buggy invalidator: frees the frame first, unhooks second — the
/// cross-domain ordering DESIGN.md §7 forbids.
fn invalidator_free_first(s: &mut FastShared, _l: &mut (), pc: usize) -> Outcome {
    match pc {
        0 => {
            s.frame_live = false;
            Outcome::Next
        }
        1 => {
            if s.shard_locked {
                return Outcome::Block;
            }
            s.shard_locked = true;
            Outcome::Next
        }
        2 => {
            s.entry = None;
            s.cur_gen += 1;
            s.shard_locked = false;
            Outcome::Done
        }
        _ => unreachable!(),
    }
}

// ---------------------------------------------------------------
// Model 2: stub wait/wake across the stripe and state domains.
// ---------------------------------------------------------------

/// Shared state of the stub handoff: one `Sync` stub on cache 0, the
/// state lock, and the waiter's fault stripe (held for the whole
/// episode — the point of the model is that the filler never needs
/// it).
#[derive(Clone, PartialEq, Eq, Hash)]
struct StubShared {
    state_locked: bool,
    /// The waiter's cache stripe. Acquired before the model starts and
    /// asserted to stay held: the filler must complete regardless.
    stripe_held: bool,
    /// false = `Sync` stub in the slot, true = page published.
    slot_present: bool,
    /// Condvar waiters registered on the stub.
    waiters: u8,
    /// Pending wake permits.
    wakes: u8,
}

impl StubShared {
    fn init() -> Self {
        StubShared {
            state_locked: false,
            stripe_held: true,
            slot_present: false,
            waiters: 0,
            wakes: 0,
        }
    }
}

fn stub_violation(s: &StubShared) -> Option<&'static str> {
    (!s.stripe_held).then_some("waiter dropped its stripe mid-fault")
}

/// The implemented waiter: check the slot under the state lock;
/// `Sync` means register-and-release *atomically* (condvar wait
/// semantics), then sleep until a wake permit arrives and recheck.
fn waiter_atomic(s: &mut StubShared, _l: &mut (), pc: usize) -> Outcome {
    match pc {
        0 => {
            if s.state_locked {
                return Outcome::Block;
            }
            s.state_locked = true;
            Outcome::Next
        }
        1 => {
            if s.slot_present {
                s.state_locked = false;
                return Outcome::Done;
            }
            // Condvar wait: registering the waiter and releasing the
            // mutex are one atomic action.
            s.waiters += 1;
            s.state_locked = false;
            Outcome::Next
        }
        2 => {
            if s.wakes == 0 {
                return Outcome::Block;
            }
            s.wakes -= 1;
            s.waiters -= 1;
            Outcome::Goto(0)
        }
        _ => unreachable!(),
    }
}

/// Buggy waiter: releases the state lock, *then* registers — the
/// filler can slip into the gap and its wake is lost.
fn waiter_split(s: &mut StubShared, _l: &mut (), pc: usize) -> Outcome {
    match pc {
        0 => {
            if s.state_locked {
                return Outcome::Block;
            }
            s.state_locked = true;
            Outcome::Next
        }
        1 => {
            if s.slot_present {
                s.state_locked = false;
                return Outcome::Done;
            }
            s.state_locked = false;
            Outcome::Next
        }
        2 => {
            s.waiters += 1;
            Outcome::Next
        }
        3 => {
            if s.wakes == 0 {
                return Outcome::Block;
            }
            s.wakes -= 1;
            s.waiters -= 1;
            Outcome::Goto(0)
        }
        _ => unreachable!(),
    }
}

/// The filler: publish the page and notify under the state lock alone.
/// It never looks at `stripe_held` — completing while the waiter keeps
/// its stripe *is* the cross-domain property.
fn filler(s: &mut StubShared, _l: &mut (), pc: usize) -> Outcome {
    match pc {
        0 => {
            if s.state_locked {
                return Outcome::Block;
            }
            s.state_locked = true;
            Outcome::Next
        }
        1 => {
            s.slot_present = true;
            s.wakes += s.waiters;
            s.state_locked = false;
            Outcome::Done
        }
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_threads(
        reader: fn(&mut FastShared, &mut (), usize) -> Outcome,
        invalidator: fn(&mut FastShared, &mut (), usize) -> Outcome,
    ) -> Vec<ThreadModel<FastShared, ()>> {
        vec![
            ThreadModel {
                name: "reader",
                local: (),
                step: reader,
            },
            ThreadModel {
                name: "invalidator",
                local: (),
                step: invalidator,
            },
        ]
    }

    #[test]
    fn fastpath_generation_protocol_is_safe() {
        let report = explore(
            FastShared::init(),
            fast_threads(reader_locked, invalidator_ordered),
            fast_violation,
        )
        .expect("the implemented protocol must survive every interleaving");
        assert!(
            report.states > 10,
            "model vacuously small: {}",
            report.states
        );
    }

    #[test]
    fn fastpath_use_outside_shard_lock_is_caught() {
        let err = explore(
            FastShared::init(),
            fast_threads(reader_unlocked_use, invalidator_ordered),
            fast_violation,
        )
        .expect_err("validate-then-use outside the shard lock must race");
        assert!(err.contains("after it was freed"), "{err}");
    }

    #[test]
    fn fastpath_freeing_before_unhooking_is_caught() {
        let err = explore(
            FastShared::init(),
            fast_threads(reader_locked, invalidator_free_first),
            fast_violation,
        )
        .expect_err("freeing the frame before unhooking the entry must race");
        assert!(err.contains("after it was freed"), "{err}");
    }

    fn stub_threads(
        waiter: fn(&mut StubShared, &mut (), usize) -> Outcome,
    ) -> Vec<ThreadModel<StubShared, ()>> {
        vec![
            ThreadModel {
                name: "waiter",
                local: (),
                step: waiter,
            },
            ThreadModel {
                name: "filler",
                local: (),
                step: filler,
            },
        ]
    }

    #[test]
    fn stub_wait_wake_never_loses_a_wakeup() {
        let report = explore(
            StubShared::init(),
            stub_threads(waiter_atomic),
            stub_violation,
        )
        .expect("atomic register-and-release must terminate in every interleaving");
        assert!(
            report.states > 5,
            "model vacuously small: {}",
            report.states
        );
    }

    #[test]
    fn stub_wait_with_split_release_deadlocks() {
        let err = explore(
            StubShared::init(),
            stub_threads(waiter_split),
            stub_violation,
        )
        .expect_err("a lost wakeup must surface as a deadlock");
        assert!(err.contains("deadlock"), "{err}");
    }
}
