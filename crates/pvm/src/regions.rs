//! Context and region management (Table 2 operations).

use crate::descriptors::{ContextDesc, RegionDesc, Slot};
use crate::keys::{CtxKey, RegKey};
use crate::state::{blocked, done, Attempt, PvmState};
use chorus_gmi::{GmiError, RegionStatus, Result};
use chorus_hal::{OpKind, Prot, VirtAddr, Vpn};

impl PvmState {
    /// `contextCreate()`.
    pub fn context_create_locked(&mut self) -> CtxKey {
        let mmu_ctx = self.mmu.lock().ctx_create();
        self.charge(OpKind::ObjectCreate);
        self.contexts.insert(ContextDesc {
            mmu_ctx,
            regions: Vec::new(),
            recent_faults: 0,
        })
    }

    /// `context.destroy()`: destroys every region, then the translation
    /// context.
    pub fn context_destroy_locked(&mut self, ctx: CtxKey) -> Result<()> {
        let regions = self.ctx(ctx)?.regions.clone();
        for r in regions {
            // Locked regions are force-unlocked on context destruction.
            let _ = self.region_force_unlock(r);
            self.region_destroy_locked(r)?;
        }
        // `ctx_destroy` below removes any large entries wholesale; only
        // the promotion records (and counters) need dropping here.
        self.drop_large_maps_of_ctx(ctx);
        let desc = self.contexts.remove(ctx).expect("context vanished");
        self.mmu.lock().ctx_destroy(desc.mmu_ctx);
        // `ctx_destroy` drops every remaining MMU mapping of the context
        // wholesale; invalidate the whole translation cache rather than
        // enumerating them (a context dies rarely; a stale entry would be
        // a use-after-free of the arena slot).
        self.fast.bump_generation();
        self.charge(OpKind::ObjectDestroy);
        if self.current == Some(ctx) {
            self.current = None;
        }
        Ok(())
    }

    /// `context.switch()`.
    pub fn context_switch_locked(&mut self, ctx: CtxKey) -> Result<()> {
        let mmu_ctx = self.ctx(ctx)?.mmu_ctx;
        self.mmu.lock().switch(mmu_ctx);
        self.current = Some(ctx);
        Ok(())
    }

    /// `regionCreate(context, address, size, prot, cache, offset)`.
    pub fn region_create_locked(
        &mut self,
        ctx: CtxKey,
        addr: VirtAddr,
        size: u64,
        prot: Prot,
        cache: crate::keys::CacheKey,
        offset: u64,
    ) -> Result<RegKey> {
        self.check_aligned(addr.0, "region address")?;
        self.check_aligned(size, "region size")?;
        self.check_aligned(offset, "region segment offset")?;
        if size == 0 {
            return Err(GmiError::InvalidArgument("zero-size region"));
        }
        if addr.0.checked_add(size).is_none() {
            return Err(GmiError::InvalidArgument("region wraps the address space"));
        }
        self.cache(cache)?;
        let desc = self.ctx(ctx)?;
        // Find the insertion point in the sorted, non-overlapping list
        // and check both neighbours for overlap.
        let idx = desc
            .regions
            .partition_point(|&r| self.regions.get(r).map(|d| d.addr < addr).unwrap_or(false));
        let overlap = |k: Option<&RegKey>| -> bool {
            k.and_then(|&k| self.regions.get(k))
                .map(|d| d.addr.0 < addr.0 + size && addr.0 < d.end().0)
                .unwrap_or(false)
        };
        if overlap(desc.regions.get(idx)) || (idx > 0 && overlap(desc.regions.get(idx - 1))) {
            return Err(GmiError::RegionOverlap {
                ctx: crate::keys::pub_ctx(ctx),
                addr,
                size,
            });
        }
        let key = self.regions.insert(RegionDesc {
            ctx,
            addr,
            size,
            prot,
            cache,
            offset,
            locked: false,
            pinned: Default::default(),
        });
        self.ctx_mut(ctx)?.regions.insert(idx, key);
        self.cache_mut(cache)?.mapped_regions += 1;
        self.charge(OpKind::RegionCreate);
        Ok(key)
    }

    /// `region.destroy()`: invalidates the region's portion of the
    /// virtual address space and unmaps its pages.
    pub fn region_destroy_locked(&mut self, reg: RegKey) -> Result<()> {
        let region = self.region(reg)?.clone();
        if region.locked {
            return Err(GmiError::Locked);
        }
        self.unmap_region_range(&region, reg);
        // The paper: "destruction requires the invalidation of the
        // corresponding portion of the virtual address space" — the one
        // size-dependent cost of region teardown.
        self.charge_n(OpKind::VaInvalidatePage, self.geom.pages_for(region.size));
        let ctx = region.ctx;
        if let Ok(c) = self.ctx_mut(ctx) {
            c.regions.retain(|&r| r != reg);
        }
        self.regions.remove(reg);
        if let Ok(c) = self.cache_mut(region.cache) {
            c.mapped_regions -= 1;
        }
        self.charge(OpKind::RegionDestroy);
        self.collapse_if_possible(region.cache);
        Ok(())
    }

    /// Removes every MMU mapping inside a region (management structures
    /// are proportional to resident pages, so this scans the page arena,
    /// not the virtual range).
    fn unmap_region_range(&mut self, region: &RegionDesc, _reg: RegKey) {
        let lo = self.geom.vpn(region.addr);
        let hi = self.geom.vpn(VirtAddr(region.addr.0 + region.size - 1));
        let hits: Vec<(crate::keys::PageKey, Vpn)> = self
            .pages
            .iter()
            .flat_map(|(k, p)| {
                p.mappings
                    .iter()
                    .filter(|m| m.ctx == region.ctx && m.vpn >= lo && m.vpn <= hi)
                    .map(move |m| (k, m.vpn))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (_page, vpn) in hits {
            self.unmap_va(region.ctx, vpn);
        }
    }

    /// `region.split(offset)`: cuts the region at `offset` (relative to
    /// its start), returning the upper part.
    pub fn region_split_locked(&mut self, reg: RegKey, offset: u64) -> Result<RegKey> {
        self.check_aligned(offset, "split offset")?;
        let region = self.region(reg)?.clone();
        if offset == 0 || offset >= region.size {
            return Err(GmiError::OutOfRange {
                offset,
                size: 0,
                what: "region split",
            });
        }
        // A locked region's pins are split with it: each half keeps the
        // pins of the offsets it still covers, so each half's later
        // unlock releases exactly its own pins.
        let upper_pinned: std::collections::BTreeSet<u64> = region
            .pinned
            .range(region.offset + offset..)
            .copied()
            .collect();
        let upper = RegionDesc {
            ctx: region.ctx,
            addr: VirtAddr(region.addr.0 + offset),
            size: region.size - offset,
            prot: region.prot,
            cache: region.cache,
            offset: region.offset + offset,
            locked: region.locked,
            pinned: upper_pinned,
        };
        let upper_key = self.regions.insert(upper);
        {
            let lower = self.region_mut(reg)?;
            lower.size = offset;
            lower.pinned = region
                .pinned
                .range(..region.offset + offset)
                .copied()
                .collect();
        }
        let ctx = region.ctx;
        let desc = self.ctx(ctx)?;
        let idx = desc
            .regions
            .iter()
            .position(|&r| r == reg)
            .expect("region not in its context");
        self.ctx_mut(ctx)?.regions.insert(idx + 1, upper_key);
        self.cache_mut(region.cache)?.mapped_regions += 1;
        self.charge(OpKind::DescriptorOp);
        Ok(upper_key)
    }

    /// `region.setProtection(prot)`: changes the protection of the whole
    /// region and re-protects the affected resident mappings.
    pub fn region_set_protection_locked(&mut self, reg: RegKey, prot: Prot) -> Result<()> {
        let region = {
            let r = self.region_mut(reg)?;
            r.prot = prot;
            r.clone()
        };
        let lo = self.geom.vpn(region.addr);
        let hi = self.geom.vpn(VirtAddr(region.addr.0 + region.size - 1));
        let pages: Vec<crate::keys::PageKey> = self
            .pages
            .iter()
            .filter(|(_, p)| {
                p.mappings
                    .iter()
                    .any(|m| m.ctx == region.ctx && m.vpn >= lo && m.vpn <= hi)
            })
            .map(|(k, _)| k)
            .collect();
        for p in pages {
            self.reprotect_mappings(p);
        }
        Ok(())
    }

    /// `region.lockInMemory()`: one attempt; pins pages one by one and
    /// records progress in the region flag only once complete.
    pub fn region_lock_attempt(&mut self, reg: RegKey) -> Attempt<()> {
        let region = self.region(reg)?.clone();
        if region.locked {
            return done(());
        }
        let writable = region.prot.contains(Prot::WRITE);
        let pages = self.geom.pages_for(region.size);
        for i in 0..pages {
            let va = VirtAddr(region.addr.0 + i * self.ps());
            let off = self.geom.round_down(region.va_to_offset(va));
            // Skip pages this region already pinned in a previous
            // (blocked) attempt. The pin is recorded per region, so a
            // page locked by *another* region still receives one more
            // pin here — nested locks balance (each unlock releases
            // only its own region's pin).
            if region.pinned.contains(&off) {
                continue;
            }
            match self.lock_one_page(region.ctx, va, writable)? {
                crate::state::Outcome::Done(()) => {
                    self.region_mut(reg)?.pinned.insert(off);
                }
                crate::state::Outcome::Blocked(b) => return blocked(b),
            }
        }
        self.region_mut(reg)?.locked = true;
        done(())
    }

    /// `region.unlock()`.
    pub fn region_unlock_locked(&mut self, reg: RegKey) -> Result<()> {
        self.region_force_unlock(reg)
    }

    /// Releases every pin this region holds (also those left by a lock
    /// attempt that failed part-way) and clears its flag.
    pub fn region_force_unlock(&mut self, reg: RegKey) -> Result<()> {
        let region = self.region(reg)?.clone();
        for &off in &region.pinned {
            self.unlock_one_page(region.cache, off)?;
        }
        let desc = self.region_mut(reg)?;
        desc.pinned.clear();
        desc.locked = false;
        Ok(())
    }

    /// `region.status()`.
    pub fn region_status_locked(&self, reg: RegKey) -> Result<RegionStatus> {
        let region = self.region(reg)?;
        let cache = self.cache(region.cache)?;
        let resident = cache
            .entries
            .range(region.offset..region.offset + region.size)
            .filter(|&&o| matches!(self.gmap.get(region.cache, o), Some(Slot::Present(_))))
            .count() as u64;
        Ok(RegionStatus {
            addr: region.addr,
            size: region.size,
            prot: region.prot,
            cache: crate::keys::pub_cache(region.cache),
            offset: region.offset,
            locked: region.locked,
            resident_pages: resident,
        })
    }
}
