//! The clock-replacement candidate ring.
//!
//! The seed kept resident pages in a `Vec<PageKey>` that accumulated
//! stale keys and relied on periodic O(n) compaction inside
//! `select_victim`. This ring keeps every entry live instead: pages are
//! inserted at creation and removed eagerly when freed, so the sweep
//! never skips dead keys and membership updates are O(1) (hash-indexed
//! swap-remove with hand fix-up to keep the sweep order stable).

use crate::keys::PageKey;
use chorus_hal::FxHashMap;

/// A ring of resident-page candidates with a stable clock hand.
#[derive(Default)]
pub(crate) struct ClockRing {
    ring: Vec<PageKey>,
    /// Position of each key in `ring` (for O(1) removal).
    pos: FxHashMap<PageKey, usize>,
    /// Index of the *next* candidate to examine.
    hand: usize,
}

impl ClockRing {
    pub fn new() -> ClockRing {
        ClockRing::default()
    }

    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    pub fn contains(&self, key: PageKey) -> bool {
        self.pos.contains_key(&key)
    }

    /// Iterates the ring in arbitrary (insertion-perturbed) order.
    pub fn iter(&self) -> impl Iterator<Item = PageKey> + '_ {
        self.ring.iter().copied()
    }

    /// Adds a page to the ring. Idempotent.
    pub fn insert(&mut self, key: PageKey) {
        if self.pos.contains_key(&key) {
            return;
        }
        self.pos.insert(key, self.ring.len());
        self.ring.push(key);
    }

    /// Removes a page in O(1) via swap-remove, fixing up the hand so the
    /// sweep neither skips nor re-examines unrelated entries.
    pub fn remove(&mut self, key: PageKey) {
        let Some(i) = self.pos.remove(&key) else {
            return;
        };
        let last = self.ring.len() - 1;
        self.ring.swap_remove(i);
        if i < last {
            // The former last element moved into slot i.
            self.pos.insert(self.ring[i], i);
            // If the hand pointed at the moved element's old slot, follow
            // it to its new home; a hand pointing at the removed slot
            // stays (the moved element becomes the next candidate).
            if self.hand == last {
                self.hand = i;
            }
        }
        if self.hand >= self.ring.len() {
            self.hand = 0;
        }
    }

    /// Advances the hand one step and returns the candidate it passed
    /// over, or `None` if the ring is empty.
    pub fn advance(&mut self) -> Option<PageKey> {
        if self.ring.is_empty() {
            return None;
        }
        if self.hand >= self.ring.len() {
            self.hand = 0;
        }
        let key = self.ring[self.hand];
        self.hand = (self.hand + 1) % self.ring.len();
        Some(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chorus_hal::Id;

    fn k(i: u32) -> PageKey {
        Id::from_raw_parts(i, 1)
    }

    #[test]
    fn insert_remove_membership() {
        let mut r = ClockRing::new();
        for i in 0..8 {
            r.insert(k(i));
        }
        r.insert(k(3)); // idempotent
        assert_eq!(r.len(), 8);
        r.remove(k(0));
        r.remove(k(7));
        r.remove(k(7)); // idempotent
        assert_eq!(r.len(), 6);
        assert!(!r.contains(k(0)));
        assert!(r.contains(k(3)));
    }

    #[test]
    fn sweep_visits_every_live_entry() {
        let mut r = ClockRing::new();
        for i in 0..5 {
            r.insert(k(i));
        }
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..5 {
            seen.insert(r.advance().unwrap().index());
        }
        assert_eq!(seen.len(), 5, "one full sweep touches each entry once");
    }

    #[test]
    fn removal_during_sweep_keeps_hand_sane() {
        let mut r = ClockRing::new();
        for i in 0..6 {
            r.insert(k(i));
        }
        // Advance partway, then remove entries before, at, and after the
        // hand; the sweep must still terminate over live entries only.
        r.advance();
        r.advance();
        r.remove(k(0));
        r.remove(k(5));
        r.remove(k(2));
        let mut remaining = std::collections::BTreeSet::new();
        for _ in 0..r.len() {
            remaining.insert(r.advance().unwrap().index());
        }
        assert!(remaining.iter().all(|&i| [1, 3, 4].contains(&i)));
        assert!(r.advance().is_some(), "ring keeps cycling");
        r.remove(k(1));
        r.remove(k(3));
        r.remove(k(4));
        assert!(r.advance().is_none(), "empty ring yields no candidates");
    }
}
