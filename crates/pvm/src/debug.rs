//! Structural invariant checking and history-tree dumps.
//!
//! The checker validates every cross-structure invariant of Figure 2 and
//! §4.2 after mutating operations (when enabled); the dumps drive the
//! `figure3` bench binary and the worked examples.

use crate::descriptors::{CowSource, Slot};
use crate::keys::pub_cache;
use crate::pvm::Pvm;
use crate::state::PvmState;
use chorus_gmi::{CacheId, SegmentId};
use core::fmt;

impl PvmState {
    pub(crate) fn check_invariants_if_enabled(&self) {
        if self.config.check_invariants {
            self.check_invariants();
        }
    }

    /// Validates all structural invariants; panics on violation.
    pub(crate) fn check_invariants(&self) {
        self.check_global_map();
        self.check_caches();
        self.check_pages();
        self.check_regions();
        self.check_frames();
        self.check_clock_ring();
        self.check_fast_path();
        self.check_large_maps();
    }

    fn check_global_map(&self) {
        for ((cache, off), slot) in self.gmap.slots_snapshot() {
            let c = self
                .caches
                .get(cache)
                .unwrap_or_else(|| panic!("global slot for dead cache {cache:?}"));
            assert!(
                c.entries.contains(&off),
                "slot ({cache:?},{off:#x}) missing from entry index"
            );
            match slot {
                Slot::Present(p) => {
                    let page = self.pages.get(p).expect("Present slot with dead page");
                    assert_eq!(page.cache, cache, "page back pointer mismatch");
                    assert_eq!(page.offset, off, "page offset mismatch");
                }
                Slot::Sync => {}
                Slot::Cow(CowSource::Page(p)) => {
                    let src = self.pages.get(p).expect("Cow stub points at dead page");
                    assert!(
                        src.stubs.contains(&(cache, off)),
                        "stub ({cache:?},{off:#x}) not threaded on source page"
                    );
                }
                Slot::Cow(CowSource::Loc(c2, o2)) => {
                    assert!(
                        self.gmap.loc_stub_registered(c2, o2, (cache, off)),
                        "loc stub ({cache:?},{off:#x}) not registered at ({c2:?},{o2:#x})"
                    );
                }
                Slot::Cow(CowSource::Zero) => {}
            }
        }
        for (cache, c) in self.caches.iter() {
            for &off in &c.entries {
                assert!(
                    self.gmap.get(cache, off).is_some(),
                    "entry index ({cache:?},{off:#x}) without global slot"
                );
            }
        }
        for ((c, o), list) in self.gmap.loc_stubs_snapshot() {
            for (dc, doff) in list {
                assert_eq!(
                    self.gmap.get(dc, doff),
                    Some(Slot::Cow(CowSource::Loc(c, o))),
                    "stale loc-stub registration"
                );
            }
        }
        let indexed: usize = self.caches.iter().map(|(_, c)| c.entries.len()).sum();
        assert_eq!(
            self.gmap.len(),
            indexed,
            "global map size != sum of cache entry indexes"
        );
    }

    /// Policy/pages bijection: every resident page is tracked by the
    /// replacement policy engine and every tracked key is a live page.
    fn check_clock_ring(&self) {
        assert_eq!(
            self.policy.tracked(),
            self.pages.len(),
            "policy tracked size != live pages"
        );
        for k in self.policy.keys() {
            assert!(self.pages.contains(k), "dead page key in policy engine");
        }
        for (k, _) in self.pages.iter() {
            assert!(
                self.policy.contains(k),
                "live page {k:?} missing from policy engine"
            );
        }
    }

    /// Every *current-generation* fast-path entry must mirror a live MMU
    /// mapping to the same frame with at least its recorded protection —
    /// the property that makes a lock-free hit safe.
    fn check_fast_path(&self) {
        for ((ctx, vpn), e) in self.fast.snapshot() {
            let Some(cd) = self.contexts.get(ctx) else {
                panic!("fast-path entry for dead context {ctx:?}");
            };
            let Some((frame, prot)) = self.mmu.lock().query(cd.mmu_ctx, vpn) else {
                panic!("fast-path entry ({ctx:?},{vpn:?}) without MMU mapping");
            };
            assert_eq!(e.frame, frame, "fast-path frame mismatch at {vpn:?}");
            assert_eq!(
                prot.intersect(e.prot),
                e.prot,
                "fast-path entry wider than MMU protection at {vpn:?}"
            );
        }
    }

    fn check_caches(&self) {
        for (key, c) in self.caches.iter() {
            // Fragments sorted and non-overlapping.
            for w in c.parents.windows(2) {
                assert!(
                    w[0].child_end() <= w[1].child_off,
                    "{key:?}: overlapping or unsorted parent fragments"
                );
            }
            for f in &c.parents {
                assert!(f.size > 0, "{key:?}: zero-size fragment");
                let p = self
                    .caches
                    .get(f.parent)
                    .unwrap_or_else(|| panic!("{key:?}: fragment to dead parent {:?}", f.parent));
                let refs = p.children.iter().filter(|&&ch| ch == key).count();
                let frags = c.parents.iter().filter(|g| g.parent == f.parent).count();
                assert_eq!(
                    refs, frags,
                    "{key:?}: child-list count mismatch with parent {:?}",
                    f.parent
                );
            }
            if let Some(h) = c.history {
                let hist = self
                    .caches
                    .get(h)
                    .unwrap_or_else(|| panic!("{key:?}: dead history object {h:?}"));
                assert!(
                    hist.parents.iter().any(|f| f.parent == key),
                    "{key:?}: history {h:?} has no fragment from it"
                );
            }
            // Offset-level termination: the cache graph may be cyclic at
            // cache granularity (copying data back into an ancestor is
            // legal), but every *resolution walk* must terminate because
            // overwrite re-pointing removes in-range back edges. Probe
            // each fragment at its boundaries.
            for f in &c.parents {
                for probe in [f.child_off, f.child_end().saturating_sub(1)] {
                    let mut x = key;
                    let mut o = probe;
                    let bound = self.caches.len() * 4 + 4;
                    let mut steps = 0;
                    loop {
                        steps += 1;
                        assert!(
                            steps <= bound,
                            "{key:?}@{probe:#x}: non-terminating resolution walk"
                        );
                        let Some(cd) = self.caches.get(x) else { break };
                        // A present or owned slot terminates the walk.
                        if cd.owns(o) || cd.entries.contains(&o) {
                            break;
                        }
                        match cd.parent_at(o) {
                            Some(g) => {
                                o = g.to_parent(o);
                                x = g.parent;
                            }
                            None => break,
                        }
                    }
                }
            }
        }
    }

    fn check_pages(&self) {
        for (key, p) in self.pages.iter() {
            assert_eq!(
                self.gmap.get(p.cache, p.offset),
                Some(Slot::Present(key)),
                "page {key:?} not indexed in the global map"
            );
            assert_eq!(
                self.frame_owner.get(&p.frame.0),
                Some(&key),
                "frame owner mismatch"
            );
            for &(dc, doff) in &p.stubs {
                assert_eq!(
                    self.gmap.get(dc, doff),
                    Some(Slot::Cow(CowSource::Page(key))),
                    "threaded stub not pointing back at page {key:?}"
                );
            }
            for m in &p.mappings {
                let ctx = self.contexts.get(m.ctx).expect("mapping into dead context");
                let entry = self.mmu.lock().query(ctx.mmu_ctx, m.vpn);
                assert_eq!(
                    entry.map(|(f, _)| f),
                    Some(p.frame),
                    "MMU entry mismatch for mapping of page {key:?}"
                );
            }
            if self.caches.get(p.cache).map(|c| c.owns(p.offset)) == Some(false) {
                panic!("page {key:?} resident but not owned by its cache");
            }
        }
    }

    fn check_regions(&self) {
        for (ck, c) in self.contexts.iter() {
            let mut last_end = 0u64;
            for &r in &c.regions {
                let rd = self.regions.get(r).expect("context lists dead region");
                assert_eq!(rd.ctx, ck, "region context back pointer");
                assert!(
                    rd.addr.0 >= last_end,
                    "{ck:?}: regions unsorted or overlapping"
                );
                last_end = rd.end().0;
            }
        }
        for (rk, r) in self.regions.iter() {
            assert!(
                self.caches.contains(r.cache),
                "region {rk:?} maps dead cache"
            );
            let ctx = self.contexts.get(r.ctx).expect("region in dead context");
            assert!(
                ctx.regions.contains(&rk),
                "region {rk:?} missing from its context list"
            );
        }
        for (ck, c) in self.caches.iter() {
            let mapped = self.regions.iter().filter(|(_, r)| r.cache == ck).count() as u32;
            assert_eq!(
                c.mapped_regions, mapped,
                "{ck:?}: mapped_regions count drift"
            );
        }
    }

    fn check_frames(&self) {
        assert_eq!(
            self.phys.lock().stats().in_use as usize,
            self.pages.len() + self.reserved_frames.len() + self.landing.len(),
            "allocated frames != live pages + reserved pull frames + landing frames"
        );
        assert_eq!(
            self.frame_owner.len(),
            self.pages.len(),
            "frame_owner index drift"
        );
        for (&f, &p) in &self.frame_owner {
            assert!(
                self.phys.lock().is_allocated(chorus_hal::FrameNo(f)),
                "frame_owner lists unallocated frame {f}"
            );
            assert!(self.pages.contains(p), "frame_owner lists dead page");
        }
        for (&(cache, off), &f) in &self.reserved_frames {
            assert!(
                self.phys.lock().is_allocated(f),
                "reserved frame {} for ({cache:?},{off:#x}) not allocated",
                f.0
            );
            assert!(
                !self.frame_owner.contains_key(&f.0),
                "reserved frame {} already owned by a page",
                f.0
            );
        }
        for (&(cache, off), &f) in &self.landing {
            assert!(
                self.phys.lock().is_allocated(f),
                "landing frame {} for ({cache:?},{off:#x}) not allocated",
                f.0
            );
            assert!(
                !self.frame_owner.contains_key(&f.0),
                "landing frame {} already owned by a page",
                f.0
            );
        }
    }

    /// Every promotion record must describe a live, fully resident,
    /// physically contiguous run whose large MMU mapping is installed.
    fn check_large_maps(&self) {
        let factor = self.geom.large_factor();
        let ps = self.geom.page_size();
        for rec in &self.large_maps {
            let ctx = self
                .contexts
                .get(rec.ctx)
                .unwrap_or_else(|| panic!("large map for dead context {:?}", rec.ctx));
            assert!(
                self.mmu.lock().has_large_mapping(ctx.mmu_ctx, rec.lvpn),
                "promotion record without MMU large mapping at lvpn {}",
                rec.lvpn.0
            );
            for k in 0..factor {
                let off = rec.offset + k * ps;
                let Some(crate::descriptors::Slot::Present(p)) = self.gmap.get(rec.cache, off)
                else {
                    panic!(
                        "promoted run ({:?},{:#x}) page {k} not resident",
                        rec.cache, rec.offset
                    );
                };
                assert_eq!(
                    u64::from(self.pages.get(p).expect("promoted page dead").frame.0),
                    u64::from(rec.base_frame.0) + k,
                    "promoted run ({:?},{:#x}) not physically contiguous at page {k}",
                    rec.cache,
                    rec.offset
                );
            }
        }
    }
}

/// The state of one page slot in a dump.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotDump {
    /// A resident page: (writable, dirty).
    Page {
        /// May be modified in place.
        writable: bool,
        /// Modified relative to the segment.
        dirty: bool,
    },
    /// A synchronization stub.
    Sync,
    /// A per-page copy-on-write stub.
    CowStub,
}

/// Dump of one cache for inspection and rendering.
#[derive(Clone, Debug)]
pub struct CacheDump {
    /// Public id.
    pub id: CacheId,
    /// Bound segment, if any.
    pub segment: Option<SegmentId>,
    /// A working object or zombie internal node.
    pub internal: bool,
    /// Destroyed but kept for descendants.
    pub zombie: bool,
    /// The history object.
    pub history: Option<CacheId>,
    /// Parent fragments: (child_off, size, parent, parent_off, cor).
    pub parents: Vec<(u64, u64, CacheId, u64, bool)>,
    /// Resident slots: (offset, state).
    pub slots: Vec<(u64, SlotDump)>,
}

/// Dump of every cache in the PVM.
#[derive(Clone, Debug, Default)]
pub struct TreeDump {
    /// One entry per live cache.
    pub caches: Vec<CacheDump>,
}

impl TreeDump {
    /// Looks a cache up by id.
    pub fn cache(&self, id: CacheId) -> Option<&CacheDump> {
        self.caches.iter().find(|c| c.id == id)
    }
}

impl fmt::Display for TreeDump {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.caches {
            let kind = match (c.internal, c.zombie) {
                (true, _) => " [working/internal]",
                (false, true) => " [zombie]",
                _ => "",
            };
            writeln!(f, "{:?}{kind}", c.id)?;
            if let Some(h) = c.history {
                writeln!(f, "  history -> {h:?}")?;
            }
            for &(co, size, parent, po, cor) in &c.parents {
                let sz = if size == u64::MAX {
                    "ALL".to_string()
                } else {
                    format!("{size:#x}")
                };
                let kind = if cor { "cor" } else { "cow" };
                writeln!(f, "  [{co:#x}+{sz}] <-{kind}- {parent:?}@{po:#x}")?;
            }
            for &(off, slot) in &c.slots {
                match slot {
                    SlotDump::Page { writable, dirty } => writeln!(
                        f,
                        "  page @{off:#x} {}{}",
                        if writable { "rw" } else { "ro" },
                        if dirty { " dirty" } else { "" }
                    )?,
                    SlotDump::Sync => writeln!(f, "  sync-stub @{off:#x}")?,
                    SlotDump::CowStub => writeln!(f, "  cow-stub @{off:#x}")?,
                }
            }
        }
        Ok(())
    }
}

impl Pvm {
    /// Dumps the full cache graph (history trees, stubs, residency).
    pub fn dump_caches(&self) -> TreeDump {
        let guard = self.state_for_dump();
        let mut out = TreeDump::default();
        for (key, c) in guard.caches.iter() {
            let mut slots = Vec::new();
            for &off in &c.entries {
                let slot = match guard.gmap.get(key, off) {
                    Some(Slot::Present(p)) => {
                        let page = guard.page(p);
                        SlotDump::Page {
                            writable: page.writable,
                            dirty: page.dirty,
                        }
                    }
                    Some(Slot::Sync) => SlotDump::Sync,
                    Some(Slot::Cow(_)) => SlotDump::CowStub,
                    None => continue,
                };
                slots.push((off, slot));
            }
            out.caches.push(CacheDump {
                id: pub_cache(key),
                segment: c.segment,
                internal: c.internal,
                zombie: c.zombie,
                history: c.history.map(pub_cache),
                parents: c
                    .parents
                    .iter()
                    .map(|f| {
                        (
                            f.child_off,
                            f.size,
                            pub_cache(f.parent),
                            f.parent_off,
                            f.cor,
                        )
                    })
                    .collect(),
                slots,
            });
        }
        out
    }

    /// Raw byte read of a cache's logical contents (test/debug helper
    /// mirroring `Gmi::cache_read`-style access).
    pub fn read_logical(
        &self,
        cache: CacheId,
        offset: u64,
        len: usize,
    ) -> chorus_gmi::Result<Vec<u8>> {
        let key = crate::keys::cache_key(cache);
        let mut buf = vec![0u8; len];
        let mut progress = 0u64;
        self.run_pub(|s| s.cache_read_attempt(key, offset, &mut buf, &mut progress))?;
        Ok(buf)
    }

    /// Raw byte write into a cache (test/debug helper).
    pub fn write_logical(
        &self,
        cache: CacheId,
        offset: u64,
        data: &[u8],
    ) -> chorus_gmi::Result<()> {
        let key = crate::keys::cache_key(cache);
        let mut progress = 0u64;
        self.run_pub(|s| s.cache_write_attempt(key, offset, data, &mut progress))
    }
}
