//! The PVM descriptor types (paper Figure 2).
//!
//! - a **context descriptor** per context, holding the sorted list of its
//!   regions;
//! - a **region descriptor** per region: start address, size, access
//!   rights, the cache it maps and the start offset in that segment;
//! - a **cache descriptor** per local cache: segment identity, the set of
//!   currently-cached page offsets, the (generalized, §4.2.4) parent
//!   fragment list and the history link (§4.2.1);
//! - a **real page descriptor** per resident page: back pointer to its
//!   cache, offset in the segment, plus reverse mappings and the threaded
//!   per-virtual-page stub list (§4.3).
//!
//! The paper's "single global map, hashing real page descriptors by the
//! page's cache and its offset" lives in [`crate::state::PvmState`]; a
//! [`Slot`] in that map holds a page, a synchronization page stub, or a
//! copy-on-write page stub.

use crate::keys::{CacheKey, CtxKey, PageKey, RegKey};
use chorus_gmi::SegmentId;
use chorus_hal::{FrameNo, MmuCtx, Prot, VirtAddr, Vpn};
use std::collections::BTreeSet;

/// A context descriptor: one protected virtual address space.
#[derive(Debug)]
pub(crate) struct ContextDesc {
    /// The machine-dependent translation context.
    pub mmu_ctx: MmuCtx,
    /// Regions of the context, sorted by start address (non-overlapping).
    pub regions: Vec<RegKey>,
    /// Running count of faults taken by this context, consulted by the
    /// OOM victim score (a hot context is a better kill than an idle
    /// one with the same footprint). Pure bookkeeping: never charged
    /// to the cost model.
    pub recent_faults: u64,
}

/// A region descriptor: a contiguous window of a context mapped onto a
/// cache.
#[derive(Debug, Clone)]
pub(crate) struct RegionDesc {
    /// Owning context.
    pub ctx: CtxKey,
    /// Start virtual address (page aligned).
    pub addr: VirtAddr,
    /// Size in bytes (page aligned, non-zero).
    pub size: u64,
    /// Protection of the entire region (§3.2: one protection per region).
    pub prot: Prot,
    /// The cache this region maps.
    pub cache: CacheKey,
    /// Start offset of the window within the cache's segment.
    pub offset: u64,
    /// Whether `lockInMemory` is in effect.
    pub locked: bool,
    /// Segment offsets whose pin count *this region* holds. Tracking pins
    /// per region (rather than inferring them from `lock_count > 0`)
    /// makes nested `lockInMemory` of the same page by two regions
    /// balance: each region contributes exactly one pin and removes
    /// exactly that pin on unlock.
    pub pinned: BTreeSet<u64>,
}

impl RegionDesc {
    /// Exclusive end address.
    pub fn end(&self) -> VirtAddr {
        VirtAddr(self.addr.0 + self.size)
    }

    /// True if the region contains `va`.
    pub fn contains(&self, va: VirtAddr) -> bool {
        va >= self.addr && va < self.end()
    }

    /// Segment offset corresponding to a virtual address in the region.
    pub fn va_to_offset(&self, va: VirtAddr) -> u64 {
        debug_assert!(self.contains(va));
        self.offset + (va.0 - self.addr.0)
    }

    /// Virtual address corresponding to a segment offset, if the offset
    /// falls inside the window.
    #[allow(dead_code)] // Symmetry helper; exercised by unit tests.
    pub fn offset_to_va(&self, offset: u64) -> Option<VirtAddr> {
        if offset >= self.offset && offset < self.offset + self.size {
            Some(VirtAddr(self.addr.0 + (offset - self.offset)))
        } else {
            None
        }
    }
}

/// One entry of a cache's generalized parent list (§4.2.4): the fragment
/// `[child_off, child_off + size)` of this cache was copied from
/// `[parent_off, parent_off + size)` of `parent`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ParentFragment {
    /// Start offset of the fragment in the child cache.
    pub child_off: u64,
    /// Fragment length in bytes.
    pub size: u64,
    /// The parent cache.
    pub parent: CacheKey,
    /// Start offset of the fragment in the parent cache.
    pub parent_off: u64,
    /// Copy-on-reference: materialize a private page on *any* first
    /// access, not only on writes (§4.2.2).
    pub cor: bool,
}

impl ParentFragment {
    /// Exclusive end offset in the child (saturating: working history
    /// objects use a full-coverage fragment of size `u64::MAX`).
    pub fn child_end(&self) -> u64 {
        self.child_off.saturating_add(self.size)
    }

    /// True if the fragment covers child offset `off`.
    pub fn covers_child(&self, off: u64) -> bool {
        off >= self.child_off && off < self.child_end()
    }

    /// True if the fragment's parent range covers parent offset `off`.
    pub fn covers_parent(&self, off: u64) -> bool {
        off >= self.parent_off && off < self.parent_off.saturating_add(self.size)
    }

    /// Maps a child offset to the corresponding parent offset.
    pub fn to_parent(self, off: u64) -> u64 {
        debug_assert!(self.covers_child(off));
        self.parent_off + (off - self.child_off)
    }

    /// Maps a parent offset back to the corresponding child offset.
    pub fn to_child(self, off: u64) -> u64 {
        debug_assert!(self.covers_parent(off));
        self.child_off + (off - self.parent_off)
    }
}

/// A local cache descriptor: the real memory in use for one segment.
#[derive(Debug, Default)]
pub(crate) struct CacheDesc {
    /// Identifier of the data segment, once known. Temporary caches get
    /// one lazily through the `segmentCreate` upcall at first `pushOut`
    /// (§5.1.2).
    pub segment: Option<SegmentId>,
    /// A permanent segment backs *every* offset of the cache, so a miss
    /// with no parent coverage means `pullIn`, not zero-fill.
    pub fully_backed: bool,
    /// Offsets (page aligned) with a live [`Slot`] in the global map.
    pub entries: BTreeSet<u64>,
    /// Offsets this cache owns a private version of, resident or swapped
    /// out. Misses on owned offsets are resolved by `pullIn`; misses on
    /// un-owned offsets go up the history tree.
    pub owned: BTreeSet<u64>,
    /// Generalized parent list, sorted by `child_off`, non-overlapping.
    pub parents: Vec<ParentFragment>,
    /// The history object: this cache's single immediate descendant in
    /// the history tree (§4.2.1 shape invariant).
    pub history: Option<CacheKey>,
    /// Caches whose parent fragments reference this cache (one entry per
    /// fragment, so a child with two fragments appears twice).
    pub children: Vec<CacheKey>,
    /// Destroyed while descendants still depend on it: kept as an
    /// internal node until they are gone (§4.2.2 "source deleted first").
    pub zombie: bool,
    /// Created unilaterally by the memory manager (a working history
    /// object, §4.2.3).
    pub internal: bool,
    /// Number of regions currently mapping this cache.
    pub mapped_regions: u32,
    /// Quarantined after a permanent mapper failure: further operations
    /// needing the cache fail with `CachePoisoned` instead of re-driving
    /// upcalls into an unavailable mapper. Resident clean data may still
    /// be invalidated and the cache destroyed.
    pub poisoned: bool,
    /// Known length of the backing segment, if any. Clamps clustered
    /// `pullIn` runs of fully-backed caches (which own *every* offset) so
    /// readahead never asks the mapper for data past segment end. Grown
    /// when a `pushOut` extends the segment; `None` means unknown, which
    /// only disables the clamp, never the pull itself.
    pub seg_len: Option<u64>,
    /// Adaptive readahead window, in pages (0 = not yet ramped; the base
    /// window is `PvmConfig::pull_cluster_pages`).
    pub ra_window: u64,
    /// Offset one past the last clustered pull: a fault landing exactly
    /// here continues a sequential stream and doubles the window.
    pub ra_next: u64,
}

impl CacheDesc {
    /// Finds the parent fragment covering child offset `off`, if any.
    pub fn parent_at(&self, off: u64) -> Option<ParentFragment> {
        // `parents` is sorted by child_off and non-overlapping.
        let idx = self.parents.partition_point(|f| f.child_end() <= off);
        self.parents
            .get(idx)
            .copied()
            .filter(|f| f.covers_child(off))
    }

    /// True if this cache owns a version of `off` (resident or swapped).
    pub fn owns(&self, off: u64) -> bool {
        self.fully_backed || self.owned.contains(&off)
    }

    /// True if the cache can be reclaimed entirely (no users left).
    pub fn is_reclaimable(&self) -> bool {
        self.zombie && self.children.is_empty() && self.mapped_regions == 0
    }

    /// The single distinct child, if there is exactly one.
    pub fn sole_child(&self) -> Option<CacheKey> {
        let first = *self.children.first()?;
        if self.children.iter().all(|&c| c == first) {
            Some(first)
        } else {
            None
        }
    }
}

/// One reverse mapping of a page: the page's frame is entered in the MMU
/// at (`ctx`, `vpn`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Mapping {
    /// The mapped context.
    pub ctx: CtxKey,
    /// The virtual page within that context.
    pub vpn: Vpn,
    /// The cache through which the mapping was established. Descendant
    /// caches may map an ancestor's page read-only; those mappings must
    /// be shot down when the ancestor page is promoted to writable.
    pub via: CacheKey,
}

/// A real page descriptor.
#[derive(Debug)]
pub(crate) struct PageDesc {
    /// Back pointer to the owning cache.
    pub cache: CacheKey,
    /// The page's offset in the segment (page aligned).
    pub offset: u64,
    /// The physical frame holding the data.
    pub frame: FrameNo,
    /// History constraint: false while a history descendant may still
    /// need this page's original value, so it must stay read-only.
    pub writable: bool,
    /// Coherence constraint: the segment manager granted write access
    /// (`pullIn` access mode / `getWriteAccess`, Table 3).
    pub seg_write_ok: bool,
    /// Modified relative to the segment.
    pub dirty: bool,
    /// A `pushOut` is collecting this page; writers must wait.
    pub cleaning: bool,
    /// `lockInMemory` pin count.
    pub lock_count: u32,
    /// Clock algorithm reference bit.
    pub ref_bit: bool,
    /// Reverse mappings of this page's frame.
    pub mappings: Vec<Mapping>,
    /// Per-virtual-page copy-on-write stubs threaded on this source page
    /// (§4.3: "all the stubs for some source page are threaded together
    /// on a list attached to its page descriptor").
    pub stubs: Vec<(CacheKey, u64)>,
}

impl PageDesc {
    /// Creates a descriptor for a fresh page.
    pub fn new(cache: CacheKey, offset: u64, frame: FrameNo) -> PageDesc {
        PageDesc {
            cache,
            offset,
            frame,
            writable: true,
            seg_write_ok: true,
            dirty: false,
            cleaning: false,
            lock_count: 0,
            ref_bit: true,
            mappings: Vec::new(),
            stubs: Vec::new(),
        }
    }

    /// True if a write may currently be performed in place.
    pub fn write_allowed(&self) -> bool {
        self.writable && self.seg_write_ok && self.stubs.is_empty() && !self.cleaning
    }

    /// The hardware protection a mapping of this page may carry, given
    /// the region's protection.
    pub fn effective_prot(&self, region_prot: Prot) -> Prot {
        if self.write_allowed() {
            region_prot
        } else {
            region_prot.remove(Prot::WRITE)
        }
    }
}

/// What the source of a per-virtual-page copy-on-write stub points at
/// (§4.3): the source page descriptor if resident, otherwise the source
/// cache and offset; `Zero` records that the source was unpopulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CowSource {
    /// The source page is resident.
    Page(PageKey),
    /// The source is not resident: (source cache, source offset).
    Loc(CacheKey, u64),
    /// The source had no data: materialize a zero-filled page.
    Zero,
}

/// A slot of the global map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Slot {
    /// A resident real page.
    Present(PageKey),
    /// A synchronization page stub: the page is in transit (`pullIn` or
    /// `pushOut`); accessors sleep until it lands (§4.1.2).
    Sync,
    /// A per-virtual-page copy-on-write stub (§4.3).
    Cow(CowSource),
}

#[cfg(test)]
mod tests {
    use super::*;
    use chorus_hal::Id;

    fn ck(i: u32) -> CacheKey {
        Id::from_raw_parts(i, 0)
    }

    #[test]
    fn region_va_offset_roundtrip() {
        let r = RegionDesc {
            ctx: Id::from_raw_parts(0, 0),
            addr: VirtAddr(0x8000),
            size: 0x4000,
            prot: Prot::RW,
            cache: ck(0),
            offset: 0x2000,
            locked: false,
            pinned: BTreeSet::new(),
        };
        assert!(r.contains(VirtAddr(0x8000)));
        assert!(!r.contains(VirtAddr(0xC000)));
        assert_eq!(r.va_to_offset(VirtAddr(0x9000)), 0x3000);
        assert_eq!(r.offset_to_va(0x3000), Some(VirtAddr(0x9000)));
        assert_eq!(r.offset_to_va(0x1000), None);
        assert_eq!(r.offset_to_va(0x6000), None);
    }

    #[test]
    fn parent_fragment_translation() {
        let f = ParentFragment {
            child_off: 0x1000,
            size: 0x2000,
            parent: ck(1),
            parent_off: 0x5000,
            cor: false,
        };
        assert!(f.covers_child(0x1000));
        assert!(f.covers_child(0x2FFF));
        assert!(!f.covers_child(0x3000));
        assert_eq!(f.to_parent(0x1800), 0x5800);
        assert_eq!(f.to_child(0x5800), 0x1800);
        assert!(f.covers_parent(0x5000));
        assert!(!f.covers_parent(0x7000));
    }

    #[test]
    fn cache_parent_at_uses_sorted_fragments() {
        let c = CacheDesc {
            parents: vec![
                ParentFragment {
                    child_off: 0,
                    size: 0x1000,
                    parent: ck(1),
                    parent_off: 0,
                    cor: false,
                },
                ParentFragment {
                    child_off: 0x2000,
                    size: 0x1000,
                    parent: ck(2),
                    parent_off: 0x800,
                    cor: true,
                },
            ],
            ..CacheDesc::default()
        };
        assert_eq!(c.parent_at(0).unwrap().parent, ck(1));
        assert_eq!(c.parent_at(0xFFF).unwrap().parent, ck(1));
        assert!(c.parent_at(0x1000).is_none());
        assert_eq!(c.parent_at(0x2000).unwrap().parent, ck(2));
        assert!(c.parent_at(0x3000).is_none());
    }

    #[test]
    fn cache_ownership() {
        let mut c = CacheDesc::default();
        assert!(!c.owns(0));
        c.owned.insert(0x1000);
        assert!(c.owns(0x1000));
        assert!(!c.owns(0x2000));
        c.fully_backed = true;
        assert!(c.owns(0x2000));
    }

    #[test]
    fn page_effective_prot_respects_constraints() {
        let mut p = PageDesc::new(ck(0), 0, FrameNo(0));
        assert_eq!(p.effective_prot(Prot::RW), Prot::RW);
        p.writable = false;
        assert_eq!(p.effective_prot(Prot::RW), Prot::READ);
        p.writable = true;
        p.stubs.push((ck(1), 0));
        assert_eq!(p.effective_prot(Prot::RW), Prot::READ);
        p.stubs.clear();
        p.seg_write_ok = false;
        assert!(!p.write_allowed());
        p.seg_write_ok = true;
        p.cleaning = true;
        assert!(!p.write_allowed());
    }
}
