//! The sharded global map (§4.1.1) and location-stub index.
//!
//! The paper's global map is the one structure every fault, pull, clean
//! and copy touches, so on a multiprocessor it must not convoy on a
//! single lock. This module lock-stripes the `(cache, offset) → Slot`
//! table and the location-stub index across N mutex-protected shards
//! hashed by [`chorus_hal::fx_hash_one`] of the key. Offsets are
//! page-strided, so the Fx mix spreads consecutive pages of one cache
//! across shards and two unrelated caches almost never share one.
//!
//! **Ordering discipline:** any operation that must visit more than one
//! shard (the `has_loc_stubs_from` cache-liveness scan, the snapshot
//! helpers used by the invariant checker) visits shards in ascending
//! index order and never holds two shard locks at once unless acquired
//! in that order. Today the outer `Mutex<PvmState>` already serializes
//! whole multi-shard *transactions* (history walks, copies); the shard
//! locks exist so the lock-free fault fast path and future finer-grained
//! entry points see a consistent per-entry view, and so contention on
//! the map itself is measurable (`contention()`), not hidden.

use crate::descriptors::Slot;
use crate::keys::CacheKey;

/// One stub list keyed by its source location, as copied out by
/// [`GlobalMap::loc_stubs_snapshot`].
type LocStubEntry = ((CacheKey, u64), Vec<(CacheKey, u64)>);
use crate::stats::{Counter, StatsRegistry};
use chorus_hal::{fx_hash_one, FxHashMap};
use parking_lot::{Mutex, MutexGuard};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One lock stripe: a slice of the slot table plus the location stubs
/// whose *source* (cache, offset) hashes here.
#[derive(Default)]
struct Shard {
    slots: FxHashMap<(CacheKey, u64), Slot>,
    loc_stubs: FxHashMap<(CacheKey, u64), Vec<(CacheKey, u64)>>,
}

/// The lock-striped global map.
pub(crate) struct GlobalMap {
    shards: Box<[Mutex<Shard>]>,
    mask: u64,
    /// Live slot count across all shards, maintained on insert/remove so
    /// `len()` — polled by the telemetry gauge sampler — never has to
    /// sweep the stripes.
    slot_count: AtomicUsize,
    /// Shared counter registry; contended shard-lock acquisitions bump
    /// `Counter::ShardContention` (exposed as
    /// `PvmStats::shard_contention`).
    stats: Arc<StatsRegistry>,
}

impl GlobalMap {
    /// Creates a map with `shards` stripes, rounded up to a power of two
    /// (and at least 1) so shard selection is a mask.
    pub fn new(shards: usize, stats: Arc<StatsRegistry>) -> GlobalMap {
        let n = shards.max(1).next_power_of_two();
        GlobalMap {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            mask: (n - 1) as u64,
            slot_count: AtomicUsize::new(0),
            stats,
        }
    }

    /// Number of stripes (power of two).
    #[cfg(test)]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_for(&self, key: &(CacheKey, u64)) -> &Mutex<Shard> {
        &self.shards[(fx_hash_one(key) & self.mask) as usize]
    }

    /// Locks one shard, counting contention when the uncontended
    /// try-lock misses.
    #[inline]
    fn lock<'a>(&'a self, m: &'a Mutex<Shard>) -> MutexGuard<'a, Shard> {
        match m.try_lock() {
            Some(g) => g,
            None => {
                self.stats.bump(Counter::ShardContention);
                m.lock()
            }
        }
    }

    // ----- slot table -------------------------------------------------------

    /// Looks up the slot at (cache, offset).
    pub fn get(&self, cache: CacheKey, off: u64) -> Option<Slot> {
        let key = (cache, off);
        self.lock(self.shard_for(&key)).slots.get(&key).copied()
    }

    /// Installs a slot, returning the previous one.
    pub fn insert(&self, cache: CacheKey, off: u64, slot: Slot) -> Option<Slot> {
        let key = (cache, off);
        let prev = self.lock(self.shard_for(&key)).slots.insert(key, slot);
        if prev.is_none() {
            self.slot_count.fetch_add(1, Ordering::Relaxed);
        }
        prev
    }

    /// Removes the slot at (cache, offset), returning it.
    pub fn remove(&self, cache: CacheKey, off: u64) -> Option<Slot> {
        let key = (cache, off);
        let prev = self.lock(self.shard_for(&key)).slots.remove(&key);
        if prev.is_some() {
            self.slot_count.fetch_sub(1, Ordering::Relaxed);
        }
        prev
    }

    /// Total live slots across all shards (one relaxed load).
    pub fn len(&self) -> usize {
        self.slot_count.load(Ordering::Relaxed)
    }

    /// Live slots per stripe, ascending shard order — the balance gauge
    /// behind `pvmtop` (a skewed vector means one stripe convoys).
    pub fn shard_occupancy(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| self.lock(s).slots.len())
            .collect()
    }

    /// Copies out every (key, slot) pair, in ascending shard order, for
    /// the invariant checker and debug dumps. Not a consistent global
    /// snapshot unless the caller holds the state mutex.
    pub fn slots_snapshot(&self) -> Vec<((CacheKey, u64), Slot)> {
        let mut out = Vec::new();
        for s in self.shards.iter() {
            out.extend(self.lock(s).slots.iter().map(|(&k, &v)| (k, v)));
        }
        out
    }

    // ----- location-stub index ----------------------------------------------

    /// Threads a per-page stub (dst cache, dst offset) onto the source
    /// location (cache, offset).
    pub fn push_loc_stub(&self, cache: CacheKey, off: u64, dst: (CacheKey, u64)) {
        let key = (cache, off);
        self.lock(self.shard_for(&key))
            .loc_stubs
            .entry(key)
            .or_default()
            .push(dst);
    }

    /// Takes (and removes) every stub waiting on (cache, offset).
    pub fn take_loc_stubs(&self, cache: CacheKey, off: u64) -> Vec<(CacheKey, u64)> {
        let key = (cache, off);
        self.lock(self.shard_for(&key))
            .loc_stubs
            .remove(&key)
            .unwrap_or_default()
    }

    /// Unthreads one stub (dc, doff) from the list at (cache, offset).
    /// Returns true if the list existed and is now empty (and removed).
    pub fn unthread_loc_stub(&self, cache: CacheKey, off: u64, dc: CacheKey, doff: u64) -> bool {
        let key = (cache, off);
        let mut g = self.lock(self.shard_for(&key));
        if let Some(list) = g.loc_stubs.get_mut(&key) {
            list.retain(|&(c, o)| !(c == dc && o == doff));
            if list.is_empty() {
                g.loc_stubs.remove(&key);
                return true;
            }
        }
        false
    }

    /// True if exactly `dst` is threaded on (cache, offset) — invariant
    /// checking only.
    pub fn loc_stub_registered(&self, cache: CacheKey, off: u64, dst: (CacheKey, u64)) -> bool {
        let key = (cache, off);
        self.lock(self.shard_for(&key))
            .loc_stubs
            .get(&key)
            .is_some_and(|l| l.contains(&dst))
    }

    /// True if any stub is threaded on (cache, offset).
    pub fn has_loc_stubs_at(&self, cache: CacheKey, off: u64) -> bool {
        let key = (cache, off);
        self.lock(self.shard_for(&key))
            .loc_stubs
            .get(&key)
            .is_some_and(|l| !l.is_empty())
    }

    /// True if any location anywhere in `cache` still has threaded stubs
    /// (cache-liveness check; scans shards in ascending order).
    pub fn has_loc_stubs_from(&self, cache: CacheKey) -> bool {
        self.shards.iter().any(|s| {
            self.lock(s)
                .loc_stubs
                .iter()
                .any(|(&(c, _), l)| c == cache && !l.is_empty())
        })
    }

    /// Copies out the whole stub index, ascending shard order.
    pub fn loc_stubs_snapshot(&self) -> Vec<LocStubEntry> {
        let mut out = Vec::new();
        for s in self.shards.iter() {
            out.extend(self.lock(s).loc_stubs.iter().map(|(&k, v)| (k, v.clone())));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chorus_hal::Id;

    fn keys(n: u32) -> Vec<CacheKey> {
        (0..n).map(|i| Id::from_raw_parts(i, 1)).collect()
    }

    fn map(shards: usize) -> GlobalMap {
        GlobalMap::new(shards, Arc::new(StatsRegistry::new()))
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(map(0).shard_count(), 1);
        assert_eq!(map(5).shard_count(), 8);
        assert_eq!(map(16).shard_count(), 16);
    }

    #[test]
    fn slots_roundtrip_across_shards() {
        let m = map(8);
        let ks = keys(3);
        for (i, &c) in ks.iter().enumerate() {
            for o in 0..64u64 {
                m.insert(c, o * 8192, Slot::Cow(crate::descriptors::CowSource::Zero));
                assert!(m.get(c, o * 8192).is_some(), "key {i}/{o}");
            }
        }
        assert_eq!(m.len(), 3 * 64);
        for &c in &ks {
            for o in 0..64u64 {
                assert!(m.remove(c, o * 8192).is_some());
            }
        }
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn loc_stub_threading() {
        let m = map(4);
        let ks = keys(2);
        let (src, dst) = (ks[0], ks[1]);
        m.push_loc_stub(src, 0, (dst, 8192));
        m.push_loc_stub(src, 0, (dst, 16384));
        assert!(m.has_loc_stubs_at(src, 0));
        assert!(m.has_loc_stubs_from(src));
        assert!(!m.unthread_loc_stub(src, 0, dst, 8192), "one stub remains");
        assert!(m.unthread_loc_stub(src, 0, dst, 16384), "now emptied");
        assert!(!m.has_loc_stubs_from(src));
        m.push_loc_stub(src, 8192, (dst, 0));
        assert_eq!(m.take_loc_stubs(src, 8192), vec![(dst, 0)]);
        assert!(m.take_loc_stubs(src, 8192).is_empty());
    }
}
