//! PVM event counters: the atomic registry and its snapshot view.
//!
//! The registry ([`StatsRegistry`]) is one cache of atomic cells shared
//! by every counting site — the locked slow path, the lock-free fault
//! fast path, the global-map shards and the tracer all bump the *same*
//! cells, so no counter can lose updates to a non-atomic read-modify-
//! write and no fold-at-snapshot step has to reconcile divergent copies.
//! [`PvmStats`] survives as the plain snapshot view the tests and
//! benches always consumed; [`PvmStats::delta`] subtracts an earlier
//! snapshot for before/after measurements.

use core::sync::atomic::{AtomicU64, Ordering};

macro_rules! counters {
    ($($(#[$doc:meta])* $field:ident => $variant:ident,)*) => {
        /// Identifies one atomic counter cell of the [`StatsRegistry`].
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum Counter {
            $($(#[$doc])* $variant,)*
        }

        impl Counter {
            /// Every counter, in declaration order.
            pub const ALL: &'static [Counter] = &[$(Counter::$variant,)*];

            /// The snapshot field name (stable report label).
            pub fn label(self) -> &'static str {
                match self {
                    $(Counter::$variant => stringify!($field),)*
                }
            }
        }

        /// Counters of notable PVM events, exposed for tests and benches.
        ///
        /// These complement the cost-model operation counts with events
        /// that are specific to the PVM's algorithms (history pushes,
        /// stub waits, zombie merges, ...). This is a point-in-time
        /// *snapshot* of the live [`StatsRegistry`]; take one with
        /// [`crate::Pvm::stats`].
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct PvmStats {
            $($(#[$doc])* pub $field: u64,)*
        }

        impl PvmStats {
            /// Field-wise difference `self - earlier` (saturating), for
            /// before/after bench windows.
            pub fn delta(&self, earlier: &PvmStats) -> PvmStats {
                PvmStats {
                    $($field: self.$field.saturating_sub(earlier.$field),)*
                }
            }

            /// The value of one counter, by registry id.
            pub fn get(&self, c: Counter) -> u64 {
                match c {
                    $(Counter::$variant => self.$field,)*
                }
            }
        }

        impl StatsRegistry {
            /// Copies every cell into a plain snapshot. The `faults`
            /// field folds in the fast-path hits: a fast hit IS a
            /// handled fault the slow path never saw.
            pub fn snapshot(&self) -> PvmStats {
                let mut s = PvmStats {
                    $($field: self.get(Counter::$variant),)*
                };
                s.faults += s.fast_path_hits;
                s
            }
        }
    };
}

counters! {
    /// Page faults handled (§4.1.2 entry).
    faults => Faults,
    /// Faults resolved by allocating a zero-filled page.
    zero_fills => ZeroFills,
    /// Faults resolved by a `pullIn` upcall.
    pull_ins => PullIns,
    /// `pushOut` upcalls performed.
    push_outs => PushOuts,
    /// Write violations resolved by materializing a private copy
    /// (copy-on-write resolution, either technique).
    cow_copies => CowCopies,
    /// Originals preserved into a history object before a source write.
    history_pushes => HistoryPushes,
    /// Own read-only pages promoted to writable.
    promotes => Promotes,
    /// Working history objects created to preserve the tree shape
    /// invariant (§4.2.3).
    working_objects => WorkingObjects,
    /// Single-child zombie nodes merged into their child.
    zombie_merges => ZombieMerges,
    /// Times a thread blocked on a synchronization page stub.
    stub_waits => StubWaits,
    /// Pages evicted by the clock algorithm.
    evictions => Evictions,
    /// Frames transferred cache-to-cache by `move` without copying.
    moved_frames => MovedFrames,
    /// Per-virtual-page copy-on-write stubs created (§4.3).
    cow_stubs_created => CowStubsCreated,
    /// `getWriteAccess` upcalls performed.
    write_access_upcalls => WriteAccessUpcalls,
    /// Mapper upcalls re-driven after a transient failure.
    mapper_retries => MapperRetries,
    /// Mapper upcalls abandoned because the retry deadline expired.
    mapper_timeouts => MapperTimeouts,
    /// Caches quarantined after a permanent mapper failure.
    quarantined_caches => QuarantinedCaches,
    /// Emergency eviction passes run when fault recovery hit
    /// `OutOfMemory`.
    emergency_pageouts => EmergencyPageouts,
    /// Faults resolved by the lock-free resident translation cache
    /// without taking the state mutex.
    fast_path_hits => FastPathHits,
    /// Fast-path lookups that missed (stale generation, absent entry,
    /// or insufficient protection) and fell through to the slow path.
    fast_path_fallbacks => FastPathFallbacks,
    /// Global-map shard locks that were contended (the uncontended
    /// try-lock missed and the caller blocked).
    shard_contention => ShardContention,
    /// Full clock-hand sweeps completed while hunting an eviction
    /// victim (each pass over the whole ring counts once).
    clock_full_sweeps => ClockFullSweeps,
    /// Batched `pushOut` requests shipped to a mapper (each batch
    /// launders one run of contiguous dirty pages; `push_outs` counts
    /// the individual pages).
    push_out_batches => PushOutBatches,
    /// Batched `pushOut` requests that failed part-way and were split
    /// into per-page retries to avoid dirty-page loss.
    push_batch_splits => PushBatchSplits,
    /// Watermark-driven laundering passes run by the writeback daemon.
    launder_passes => LaunderPasses,
    /// Faults that landed on a page pre-fetched by the adaptive
    /// readahead window (sequential stream continuations).
    readahead_hits => ReadaheadHits,
    /// Times the adaptive readahead window grew (doubled) on a
    /// sequential stream.
    readahead_ramps => ReadaheadRamps,
    /// Asynchronous upcalls submitted to the completion engine
    /// (fire-and-collect readahead pulls and laundering pushes).
    async_submits => AsyncSubmits,
    /// Asynchronous completions delivered by the scheduler (each
    /// applies its deferred bookkeeping under the state lock).
    async_deliveries => AsyncDeliveries,
    /// Pending asynchronous pulls merged into an adjacent in-flight or
    /// queued request instead of submitting a new one.
    async_coalesced => AsyncCoalesced,
    /// Times a thread had to force-deliver the earliest in-flight
    /// completion to make progress (stub wait or frame exhaustion).
    async_inflight_stalls => AsyncInflightStalls,
    /// Completions delivered in a different order than their requests
    /// were submitted (the observable signature of the engine).
    async_out_of_order => AsyncOutOfOrder,
    /// In-flight upcalls cancelled by the deadline watchdog after their
    /// per-request deadline (derived from the retry policy) expired on
    /// the simulated clock.
    watchdog_cancels => WatchdogCancels,
    /// Mappers escalated to the `Suspected` state after repeated
    /// watchdog timeouts (degraded to the synchronous path with a
    /// shrunken in-flight cap, one step short of quarantine).
    suspected_mappers => SuspectedMappers,
    /// Faulting threads stalled by backpressure because the pending
    /// asynchronous pull queue was at its configured bound.
    throttle_stalls => ThrottleStalls,
    /// Contexts killed by the out-of-memory escalation path (frame
    /// exhaustion with no reclaim progress).
    oom_kills => OomKills,
    /// Pending (queued, never submitted) asynchronous pulls failed
    /// because their cache was quarantined while they waited; their
    /// stubs are cleared so waiters observe the poisoning instead of
    /// hanging.
    async_pending_failed => AsyncPendingFailed,
    /// Allocations that dipped into the emergency frame reserve (only
    /// pull-recovery and pageout work may draw from it).
    reserve_grants => ReserveGrants,
    /// Fully resident aligned runs promoted to a single large MMU
    /// mapping.
    large_promotions => LargePromotions,
    /// Large mappings demoted back to base pages (partial unmap,
    /// reprotect, eviction, quarantine, or context teardown).
    large_demotions => LargeDemotions,
    /// Contiguous pre-zeroed frame runs reserved from the buddy tier for
    /// a whole-large-page pull window.
    large_run_reserves => LargeRunReserves,
    /// Whole-large-page pull windows that fell back to per-frame
    /// allocation because no contiguous run was free.
    large_run_fallbacks => LargeRunFallbacks,
    /// Deterministic sim-time gauge samples recorded by the telemetry
    /// sampler (dimensional telemetry knob on; see [`crate::telemetry`]).
    telemetry_samples => TelemetrySamples,
    /// Acquisitions of the state lock domain (cache/region/history
    /// bookkeeping — the classic big mutex, now one domain of several).
    state_lock_acqs => StateLockAcqs,
    /// State-domain acquisitions that were contended (the uncontended
    /// try-lock missed and the caller blocked).
    state_lock_contended => StateLockContended,
    /// Acquisitions of the physical-tier lock domain (buddy allocator
    /// and frame-plane metadata).
    phys_lock_acqs => PhysLockAcqs,
    /// Physical-tier acquisitions that were contended.
    phys_lock_contended => PhysLockContended,
    /// Acquisitions of the translation lock domain (MMU contexts and
    /// hardware page tables).
    trans_lock_acqs => TransLockAcqs,
    /// Translation-domain acquisitions that were contended.
    trans_lock_contended => TransLockContended,
    /// Per-cache fault-stripe acquisitions by the parallel hard-fault
    /// driver (`parallel_faults` knob on; disjoint caches hash to
    /// different stripes).
    cache_stripe_acqs => CacheStripeAcqs,
    /// Fault-stripe acquisitions that were contended (two faults raced
    /// on the same cache's stripe).
    cache_stripe_contended => CacheStripeContended,
    /// Victim-selection rounds requested from the replacement policy
    /// engine (demand allocation and the laundering daemon both count).
    policy_victim_requests => PolicyVictimRequests,
    /// Victims the policy engine actually produced (a request can come
    /// up empty when every candidate is pinned or cleaning).
    policy_victims => PolicyVictims,
    /// Candidate batches shipped to an external policy's segment
    /// manager through the `victimAdvice` upcall.
    policy_external_batches => PolicyExternalBatches,
    /// Candidate pages approved (still live) when external victim
    /// advice was applied.
    policy_external_approvals => PolicyExternalApprovals,
    /// Selections the external policy served from its internal
    /// fallback clock because advice was still in flight (or an entire
    /// approved batch had died by delivery time).
    policy_external_fallbacks => PolicyExternalFallbacks,
}

const N_COUNTERS: usize = Counter::ALL.len();

/// The live counter cells. One instance per [`crate::Pvm`], shared (via
/// `Arc`) with the translation cache, the global map and the tracer so
/// every bump lands in the same atomic cell regardless of which lock (if
/// any) the bumping path holds.
pub struct StatsRegistry {
    cells: [AtomicU64; N_COUNTERS],
}

impl Default for StatsRegistry {
    fn default() -> StatsRegistry {
        StatsRegistry::new()
    }
}

impl StatsRegistry {
    /// A zeroed registry.
    pub fn new() -> StatsRegistry {
        StatsRegistry {
            cells: core::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Adds one to a counter.
    #[inline]
    pub fn bump(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        if n != 0 {
            self.cells[c as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Reads one counter.
    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.cells[c as usize].load(Ordering::Relaxed)
    }

    /// Zeroes every counter.
    pub fn reset(&self) {
        for cell in &self.cells {
            cell.store(0, Ordering::Relaxed);
        }
    }
}

impl core::fmt::Debug for StatsRegistry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StatsRegistry")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_snapshot_and_reset() {
        let r = StatsRegistry::new();
        r.bump(Counter::ZeroFills);
        r.add(Counter::MapperRetries, 3);
        let s = r.snapshot();
        assert_eq!(s.zero_fills, 1);
        assert_eq!(s.mapper_retries, 3);
        assert_eq!(s.get(Counter::MapperRetries), 3);
        r.reset();
        assert_eq!(r.snapshot(), PvmStats::default());
    }

    #[test]
    fn snapshot_folds_fast_hits_into_faults() {
        let r = StatsRegistry::new();
        r.add(Counter::Faults, 5);
        r.add(Counter::FastPathHits, 7);
        let s = r.snapshot();
        assert_eq!(s.faults, 12, "a fast hit IS a handled fault");
        assert_eq!(s.fast_path_hits, 7);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let r = StatsRegistry::new();
        r.add(Counter::Evictions, 2);
        let before = r.snapshot();
        r.add(Counter::Evictions, 3);
        r.bump(Counter::StubWaits);
        let after = r.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.evictions, 3);
        assert_eq!(d.stub_waits, 1);
        assert_eq!(d.faults, 0);
    }

    #[test]
    fn counter_labels_match_snapshot_fields() {
        assert_eq!(Counter::FastPathHits.label(), "fast_path_hits");
        assert_eq!(Counter::ALL.len(), 56);
        assert_eq!(Counter::PolicyVictims.label(), "policy_victims");
        assert_eq!(Counter::TelemetrySamples.label(), "telemetry_samples");
        assert_eq!(Counter::StateLockAcqs.label(), "state_lock_acqs");
        assert_eq!(Counter::PhysLockContended.label(), "phys_lock_contended");
        assert_eq!(Counter::CacheStripeAcqs.label(), "cache_stripe_acqs");
        assert_eq!(Counter::LargePromotions.label(), "large_promotions");
        assert_eq!(Counter::WatchdogCancels.label(), "watchdog_cancels");
        assert_eq!(Counter::OomKills.label(), "oom_kills");
        assert_eq!(Counter::AsyncSubmits.label(), "async_submits");
        assert_eq!(Counter::PushOutBatches.label(), "push_out_batches");
    }

    #[test]
    fn concurrent_bumps_never_lose_updates() {
        let r = std::sync::Arc::new(StatsRegistry::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        r.bump(Counter::ShardContention);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.get(Counter::ShardContention), 40_000);
    }
}
