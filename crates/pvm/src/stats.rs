//! PVM event counters.

/// Counters of notable PVM events, exposed for tests and benches.
///
/// These complement the cost-model operation counts with events that are
/// specific to the PVM's algorithms (history pushes, stub waits, zombie
/// merges, ...).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PvmStats {
    /// Page faults handled (§4.1.2 entry).
    pub faults: u64,
    /// Faults resolved by allocating a zero-filled page.
    pub zero_fills: u64,
    /// Faults resolved by a `pullIn` upcall.
    pub pull_ins: u64,
    /// `pushOut` upcalls performed.
    pub push_outs: u64,
    /// Write violations resolved by materializing a private copy
    /// (copy-on-write resolution, either technique).
    pub cow_copies: u64,
    /// Originals preserved into a history object before a source write.
    pub history_pushes: u64,
    /// Own read-only pages promoted to writable.
    pub promotes: u64,
    /// Working history objects created to preserve the tree shape
    /// invariant (§4.2.3).
    pub working_objects: u64,
    /// Single-child zombie nodes merged into their child.
    pub zombie_merges: u64,
    /// Times a thread blocked on a synchronization page stub.
    pub stub_waits: u64,
    /// Pages evicted by the clock algorithm.
    pub evictions: u64,
    /// Frames transferred cache-to-cache by `move` without copying.
    pub moved_frames: u64,
    /// Per-virtual-page copy-on-write stubs created (§4.3).
    pub cow_stubs_created: u64,
    /// `getWriteAccess` upcalls performed.
    pub write_access_upcalls: u64,
    /// Mapper upcalls re-driven after a transient failure.
    pub mapper_retries: u64,
    /// Mapper upcalls abandoned because the retry deadline expired.
    pub mapper_timeouts: u64,
    /// Caches quarantined after a permanent mapper failure.
    pub quarantined_caches: u64,
    /// Emergency eviction passes run when fault recovery hit
    /// `OutOfMemory`.
    pub emergency_pageouts: u64,
    /// Faults resolved by the lock-free resident translation cache
    /// without taking the state mutex.
    pub fast_path_hits: u64,
    /// Fast-path lookups that missed (stale generation, absent entry,
    /// or insufficient protection) and fell through to the slow path.
    pub fast_path_fallbacks: u64,
    /// Global-map shard locks that were contended (the uncontended
    /// try-lock missed and the caller blocked).
    pub shard_contention: u64,
    /// Full clock-hand sweeps completed while hunting an eviction
    /// victim (each pass over the whole ring counts once).
    pub clock_full_sweeps: u64,
}
