//! PVM tunables.

use crate::trace::TraceConfig;
use chorus_gmi::RetryPolicy;

/// Configuration of a [`crate::Pvm`] instance.
#[derive(Clone, Debug)]
pub struct PvmConfig {
    /// `CopyMode::Auto` uses the per-virtual-page technique for copies of
    /// at most this many pages, and history objects above (§4.3: per-page
    /// for "relatively small amounts of data (e.g. an IPC message)").
    /// With the paper's 8 KB pages and 64 KB IPC messages the boundary is
    /// 8 pages.
    pub per_page_max_pages: u64,
    /// Enable clock page replacement when the frame pool runs dry. When
    /// disabled, exhaustion returns `GmiError::OutOfMemory` immediately
    /// (useful for deterministic tests).
    pub enable_pageout: bool,
    /// Run the full structural invariant checker after every mutating
    /// operation. Expensive; defaults to on only in debug builds.
    pub check_invariants: bool,
    /// Collapse single-child zombie history nodes by merging them into
    /// their child (§4.2.5: the bounded analogue of Mach's shadow-chain
    /// garbage collection, needed only for fork-exit-fork-exit chains).
    pub collapse_zombies: bool,
    /// Read-ahead: a `pullIn` may cover up to this many contiguous
    /// owned-but-non-resident pages in one upcall (§3.3.3: "The MM may
    /// unilaterally decide to cache a fragment of data"). 1 disables
    /// clustering.
    pub pull_cluster_pages: u64,
    /// Retry policy for mapper upcalls (`pullIn`, `pushOut`,
    /// `getWriteAccess`): transient failures are retried with exponential
    /// backoff charged to the simulated clock. `RetryPolicy::no_retry()`
    /// restores fail-fast semantics.
    pub retry: RetryPolicy,
    /// Quarantine a cache after a *permanent* mapper failure: all further
    /// operations touching the cache fail with `CachePoisoned` instead of
    /// re-driving upcalls into a dead mapper.
    pub quarantine_on_permanent_failure: bool,
    /// When a `fillUp` delivering pulled data cannot allocate a frame,
    /// run an emergency eviction pass over clean unpinned pages instead
    /// of failing the fault recovery with `OutOfMemory`.
    pub emergency_pageout: bool,
    /// Consult the lock-free resident translation cache before taking
    /// the state mutex on a fault. Soft faults (resident page, non-COW,
    /// non-stub, access already allowed) then complete without the big
    /// lock. Disable for single-lock ablation runs.
    pub fast_path: bool,
    /// Lock stripes for the sharded global map (rounded up to a power of
    /// two). Independent caches hash to different stripes and never
    /// contend on one mutex.
    pub global_map_shards: usize,
    /// Event tracing (see [`crate::trace`]). Disabled by default; when
    /// disabled every trace point is one relaxed atomic load, and when
    /// enabled the simulated clock is untouched, so the evaluation
    /// tables are bit-identical either way.
    pub trace: TraceConfig,
    /// Write-back clustering: a `pushOut` may cover up to this many
    /// contiguous dirty resident pages of the same cache in one batched
    /// upcall (one request overhead per run, symmetric to
    /// [`PvmConfig::pull_cluster_pages`]). 1 disables clustering.
    pub push_cluster_pages: u64,
    /// Watermark-driven laundering: whenever an operation enters the
    /// PVM with fewer than [`PvmConfig::writeback_low_frames`] free
    /// frames, a deterministic pageout pass cleans and evicts pages
    /// until [`PvmConfig::writeback_high_frames`] frames are free, so
    /// demand faults almost never block on a synchronous `pushOut`.
    pub writeback_daemon: bool,
    /// Low free-frame watermark that activates the laundering pass.
    pub writeback_low_frames: u32,
    /// High free-frame watermark at which the laundering pass stops.
    pub writeback_high_frames: u32,
    /// Adaptive readahead: ramp the pull cluster window per cache on a
    /// detected sequential fault stream (doubling up to
    /// [`PvmConfig::readahead_max_pages`]) and reset it to
    /// [`PvmConfig::pull_cluster_pages`] on random access.
    pub readahead_adaptive: bool,
    /// Ceiling for the adaptive readahead window, in pages.
    pub readahead_max_pages: u64,
}

impl Default for PvmConfig {
    fn default() -> PvmConfig {
        PvmConfig {
            per_page_max_pages: 8,
            enable_pageout: true,
            check_invariants: cfg!(debug_assertions),
            collapse_zombies: true,
            pull_cluster_pages: 1,
            retry: RetryPolicy::default(),
            quarantine_on_permanent_failure: true,
            emergency_pageout: true,
            fast_path: true,
            global_map_shards: 16,
            trace: TraceConfig::default(),
            push_cluster_pages: 1,
            writeback_daemon: false,
            writeback_low_frames: 0,
            writeback_high_frames: 0,
            readahead_adaptive: false,
            readahead_max_pages: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_ipc_boundary() {
        let c = PvmConfig::default();
        // 8 pages * 8 KB = 64 KB, the paper's IPC message limit.
        assert_eq!(c.per_page_max_pages * 8192, 64 * 1024);
        assert!(c.enable_pageout);
        assert!(c.collapse_zombies);
        assert_eq!(c.pull_cluster_pages, 1, "clustering is opt-in");
        assert!(c.retry.max_attempts > 1, "transient faults heal by default");
        assert!(c.quarantine_on_permanent_failure);
        assert!(c.emergency_pageout);
        assert!(c.fast_path, "soft-fault fast path is on by default");
        assert_eq!(c.global_map_shards, 16);
        assert!(c.global_map_shards.is_power_of_two());
        assert!(!c.trace.enabled, "tracing is opt-in");
        assert!(!c.trace.wall_clock, "wall stamps are opt-in");
        assert_eq!(c.push_cluster_pages, 1, "write clustering is opt-in");
        assert!(!c.writeback_daemon, "laundering is opt-in");
        assert_eq!(c.writeback_low_frames, 0);
        assert_eq!(c.writeback_high_frames, 0);
        assert!(!c.readahead_adaptive, "adaptive readahead is opt-in");
        assert_eq!(c.readahead_max_pages, 8);
    }
}
