//! PVM tunables.
//!
//! [`PvmConfig`] stays a flat, public struct (literal mutation keeps
//! working), but the validating [`PvmConfig::builder`] now exposes the
//! knobs through *grouped sections* — [`paging`](PvmConfigBuilder::paging),
//! [`async`](PvmConfigBuilder::r#async), [`pressure`](PvmConfigBuilder::pressure),
//! [`large_pages`](PvmConfigBuilder::large_pages),
//! [`telemetry`](PvmConfigBuilder::telemetry) and
//! [`policy`](PvmConfigBuilder::policy) — so related knobs are set
//! together and cross-field invariants read next to the fields they
//! constrain. The old flat setters survive one release as thin
//! deprecated forwards.

use crate::policy::{PolicyConfig, ReadaheadKind, ReplacementKind};
use crate::trace::TraceConfig;
use chorus_gmi::RetryPolicy;

/// Configuration of a [`crate::Pvm`] instance.
///
/// Construct via [`PvmConfig::default`] followed by field mutation, or
/// through the validating [`PvmConfig::builder`]. The struct is
/// `#[non_exhaustive]` so new knobs can be added without breaking
/// downstream literals.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct PvmConfig {
    /// `CopyMode::Auto` uses the per-virtual-page technique for copies of
    /// at most this many pages, and history objects above (§4.3: per-page
    /// for "relatively small amounts of data (e.g. an IPC message)").
    /// With the paper's 8 KB pages and 64 KB IPC messages the boundary is
    /// 8 pages.
    pub per_page_max_pages: u64,
    /// Enable clock page replacement when the frame pool runs dry. When
    /// disabled, exhaustion returns `GmiError::OutOfMemory` immediately
    /// (useful for deterministic tests).
    pub enable_pageout: bool,
    /// Run the full structural invariant checker after every mutating
    /// operation. Expensive; defaults to on only in debug builds.
    pub check_invariants: bool,
    /// Collapse single-child zombie history nodes by merging them into
    /// their child (§4.2.5: the bounded analogue of Mach's shadow-chain
    /// garbage collection, needed only for fork-exit-fork-exit chains).
    pub collapse_zombies: bool,
    /// Read-ahead: a `pullIn` may cover up to this many contiguous
    /// owned-but-non-resident pages in one upcall (§3.3.3: "The MM may
    /// unilaterally decide to cache a fragment of data"). 1 disables
    /// clustering.
    pub pull_cluster_pages: u64,
    /// Retry policy for mapper upcalls (`pullIn`, `pushOut`,
    /// `getWriteAccess`): transient failures are retried with exponential
    /// backoff charged to the simulated clock. `RetryPolicy::no_retry()`
    /// restores fail-fast semantics.
    pub retry: RetryPolicy,
    /// Quarantine a cache after a *permanent* mapper failure: all further
    /// operations touching the cache fail with `CachePoisoned` instead of
    /// re-driving upcalls into a dead mapper.
    pub quarantine_on_permanent_failure: bool,
    /// When a `fillUp` delivering pulled data cannot allocate a frame,
    /// run an emergency eviction pass over clean unpinned pages instead
    /// of failing the fault recovery with `OutOfMemory`.
    pub emergency_pageout: bool,
    /// Consult the lock-free resident translation cache before taking
    /// the state mutex on a fault. Soft faults (resident page, non-COW,
    /// non-stub, access already allowed) then complete without the big
    /// lock. Disable for single-lock ablation runs.
    pub fast_path: bool,
    /// Lock stripes for the sharded global map (rounded up to a power of
    /// two). Independent caches hash to different stripes and never
    /// contend on one mutex.
    pub global_map_shards: usize,
    /// Event tracing (see [`crate::trace`]). Disabled by default; when
    /// disabled every trace point is one relaxed atomic load, and when
    /// enabled the simulated clock is untouched, so the evaluation
    /// tables are bit-identical either way.
    pub trace: TraceConfig,
    /// Write-back clustering: a `pushOut` may cover up to this many
    /// contiguous dirty resident pages of the same cache in one batched
    /// upcall (one request overhead per run, symmetric to
    /// [`PvmConfig::pull_cluster_pages`]). 1 disables clustering.
    pub push_cluster_pages: u64,
    /// Watermark-driven laundering: whenever an operation enters the
    /// PVM with fewer than [`PvmConfig::writeback_low_frames`] free
    /// frames, a deterministic pageout pass cleans and evicts pages
    /// until [`PvmConfig::writeback_high_frames`] frames are free, so
    /// demand faults almost never block on a synchronous `pushOut`.
    pub writeback_daemon: bool,
    /// Low free-frame watermark that activates the laundering pass.
    pub writeback_low_frames: u32,
    /// High free-frame watermark at which the laundering pass stops.
    pub writeback_high_frames: u32,
    /// Adaptive readahead: ramp the pull cluster window per cache on a
    /// detected sequential fault stream (doubling up to
    /// [`PvmConfig::readahead_max_pages`]) and reset it to
    /// [`PvmConfig::pull_cluster_pages`] on random access.
    pub readahead_adaptive: bool,
    /// Ceiling for the adaptive readahead window, in pages.
    pub readahead_max_pages: u64,
    /// Completion-based asynchronous upcalls: readahead tail `pullIn`s
    /// and watermark-laundering `pushOut`s become fire-and-collect
    /// requests tracked in a per-mapper in-flight table and delivered
    /// by a deterministic completion scheduler in (due-time,
    /// request-id) order. Off by default: every upcall then completes
    /// synchronously inside the blocked-action driver and the
    /// evaluation tables are bit-identical to the pre-engine code.
    pub async_upcalls: bool,
    /// Maximum outstanding asynchronous upcalls per mapper. Further
    /// submissions fall back to the synchronous path (pushes) or queue
    /// as pending coalescible requests (pulls). Must be at least 1.
    pub max_inflight_upcalls: u64,
    /// Deadline watchdog over the asynchronous in-flight table: every
    /// driver entry sweeps the completion queue on the simulated clock
    /// and cancels requests whose per-request deadline (submit time +
    /// [`RetryPolicy::deadline_ns`]) has expired, failing them through
    /// the existing transient taxonomy (`MapperTimeout`) so pull stubs
    /// are cleared and push pages stay dirty for relaundering. Off by
    /// default: hung requests then park in the queue until force-
    /// delivered, reproducing the pre-watchdog stall behaviour.
    pub upcall_watchdog: bool,
    /// Watchdog timeouts after which a mapper is escalated to the
    /// `Suspected` state: its in-flight cap shrinks to 1 and demand
    /// pulls stop splitting an asynchronous readahead tail (fully
    /// synchronous path). A successful delivery clears the suspicion.
    pub suspect_after_timeouts: u32,
    /// Watchdog timeouts after which the affected cache is quarantined
    /// outright (the full `CachePoisoned` escalation). Must be at least
    /// [`PvmConfig::suspect_after_timeouts`].
    pub quarantine_after_timeouts: u32,
    /// Backpressure bound on the pending asynchronous pull queue: a
    /// faulting thread entering the slow path while this many pulls are
    /// queued (not yet submitted) blocks on `Blocked::Throttled`,
    /// force-draining completions instead of growing the queue without
    /// bound. 0 disables throttling.
    pub max_pending_pulls: u64,
    /// Emergency frame reserve: ordinary allocations launder/evict
    /// until this many frames stay free, while pull-recovery (`fillUp`)
    /// allocations may draw the reserve down to zero. Closes the
    /// frame-exhaustion deadlock where laundering itself needs a frame.
    /// 0 disables the reserve.
    pub emergency_reserve_frames: u32,
    /// Out-of-memory escalation: when the frame pool is dry and a full
    /// clock sweep finds no victim (and the completion engine has no
    /// deliverable work), score contexts by resident+dirty footprint
    /// and recent fault count, tear down the worst victim through the
    /// normal context-destroy path, and reclaim its frames. Accesses
    /// through the dead handle then report `ContextKilled`. Off by
    /// default: exhaustion returns `OutOfMemory` as before.
    pub oom_killer: bool,
    /// Contiguous frame runs from the buddy physical tier: a pull window
    /// that covers a whole aligned large page reserves one contiguous
    /// pre-zeroed run (`alloc_run_zeroed`) so large-page promotion finds
    /// physically contiguous frames. Off by default: frames are handed
    /// out one at a time exactly as before.
    pub buddy_runs: bool,
    /// Large-page promotion: a fully resident, aligned, uniformly
    /// protected run of [`PvmConfig::promote_threshold_pages`] base pages
    /// backed by contiguous frames is additionally mapped by a single
    /// large MMU entry, so subsequent accesses anywhere in the run
    /// translate without faulting. Any per-page mutation (unmap,
    /// reprotect, evict, quarantine) demotes the large mapping first.
    /// Requires [`PvmConfig::buddy_runs`]. Off by default.
    pub large_pages: bool,
    /// Base pages per large page (the promotion granule). Must be a
    /// power of two of at least 2. 256 matches the 2 MiB class over the
    /// paper's 8 KiB pages.
    pub promote_threshold_pages: u64,
    /// Dimensional telemetry (see [`crate::telemetry`]): per-cache,
    /// per-context and per-mapper counter families bumped at the same
    /// sites that feed the global [`crate::StatsRegistry`] cells, plus
    /// the deterministic sim-time gauge sampler behind
    /// [`PvmConfig::telemetry_sample_ns`]. Off by default: every
    /// dimensional site is then one relaxed atomic load, no sample is
    /// ever taken, and the evaluation tables are bit-identical. When
    /// on, no telemetry path touches the simulated clock — it reads
    /// `now()` but never advances it.
    pub telemetry: bool,
    /// Cadence of the deterministic gauge sampler, in *simulated*
    /// nanoseconds (no wall clock is ever consulted): at most one
    /// [`crate::TelemetrySample`] is recorded per driver entry, aligned
    /// to multiples of this period on the simulated clock. Must be at
    /// least 1 when [`PvmConfig::telemetry`] is on.
    pub telemetry_sample_ns: u64,
    /// Parallel hard-fault engine: decompose the PVM into independently
    /// lockable domains (per-cache fault stripes over the global-map
    /// hash, a physical-tier lock around the buddy allocator, one
    /// translation lock around the MMU) so hard faults to *disjoint*
    /// caches pull, fill and map concurrently — the faulting thread
    /// holds only its cache's stripe across the pull, and `fillUp`
    /// copies the delivered bytes into landing frames outside every
    /// domain lock. Off by default: all work then funnels through the
    /// classic single state mutex and the evaluation tables are
    /// bit-identical. The striped driver engages only when
    /// [`PvmConfig::async_upcalls`] is off (the completion engine has
    /// its own source of concurrency); the knob is inert, not invalid,
    /// with the engine on.
    ///
    /// Setting the `CHORUS_PARALLEL_FAULTS` environment variable to
    /// anything but `0` or the empty string flips the *default* to on,
    /// so whole existing test suites can be swept knob-on
    /// (`CHORUS_PARALLEL_FAULTS=1 cargo test`) without editing every
    /// config literal. Explicit assignments and builder calls still
    /// win over the environment.
    pub parallel_faults: bool,
    /// Replacement and readahead policy selection: which
    /// `ReplacementPolicy` runs victim selection — globally and per
    /// segment override — and which `ReadaheadPolicy` sizes the
    /// adaptive pull window. The defaults (`Clock` + `DoublingWindow`)
    /// reproduce the classic clock sweep and window doubling
    /// bit-identically.
    pub policy: PolicyConfig,
}

impl Default for PvmConfig {
    fn default() -> PvmConfig {
        PvmConfig {
            per_page_max_pages: 8,
            enable_pageout: true,
            check_invariants: cfg!(debug_assertions),
            collapse_zombies: true,
            pull_cluster_pages: 1,
            retry: RetryPolicy::default(),
            quarantine_on_permanent_failure: true,
            emergency_pageout: true,
            fast_path: true,
            global_map_shards: 16,
            trace: TraceConfig::default(),
            push_cluster_pages: 1,
            writeback_daemon: false,
            writeback_low_frames: 0,
            writeback_high_frames: 0,
            readahead_adaptive: false,
            readahead_max_pages: 8,
            async_upcalls: false,
            max_inflight_upcalls: 4,
            upcall_watchdog: false,
            suspect_after_timeouts: 2,
            quarantine_after_timeouts: 4,
            max_pending_pulls: 0,
            emergency_reserve_frames: 0,
            oom_killer: false,
            buddy_runs: false,
            large_pages: false,
            promote_threshold_pages: 256,
            telemetry: false,
            telemetry_sample_ns: 1_000_000,
            parallel_faults: parallel_faults_env(),
            policy: PolicyConfig::default(),
        }
    }
}

/// Environment override for the [`PvmConfig::parallel_faults`] default:
/// `CHORUS_PARALLEL_FAULTS` set to anything but `0`/empty turns the
/// knob on for every default-constructed config, enabling knob-on
/// sweeps of unmodified test suites.
fn parallel_faults_env() -> bool {
    std::env::var_os("CHORUS_PARALLEL_FAULTS").is_some_and(|v| !v.is_empty() && v != "0")
}

impl PvmConfig {
    /// Starts a validating [`PvmConfigBuilder`] seeded with the
    /// defaults.
    pub fn builder() -> PvmConfigBuilder {
        PvmConfigBuilder {
            config: PvmConfig::default(),
        }
    }
}

/// Builder for [`PvmConfig`] enforcing cross-field invariants that a
/// plain struct literal cannot: watermark ordering, non-zero cluster
/// and shard sizes, readahead ceiling at least the base cluster, a
/// positive in-flight budget, and well-formed policy overrides.
///
/// Knobs are set through grouped sections, each a closure over a
/// section proxy:
///
/// ```
/// # use chorus_pvm::PvmConfig;
/// let config = PvmConfig::builder()
///     .paging(|p| p.pull_cluster_pages(4).readahead_max_pages(16))
///     .pressure(|p| p.writeback_daemon(true).writeback_high_frames(8))
///     .policy(|p| p.replacement(chorus_pvm::ReplacementKind::Lru))
///     .build()
///     .unwrap();
/// assert_eq!(config.pull_cluster_pages, 4);
/// ```
#[derive(Clone, Debug)]
pub struct PvmConfigBuilder {
    config: PvmConfig,
}

/// Generates `#[must_use]` setters over a wrapped [`PvmConfig`]; used
/// by every builder section proxy.
macro_rules! setters {
    ($($(#[$meta:meta])* $name:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$meta])*
            #[must_use]
            pub fn $name(mut self, value: $ty) -> Self {
                self.cfg.$name = value;
                self
            }
        )*
    };
}

/// Generates the deprecated flat forwards on [`PvmConfigBuilder`]
/// itself: same names and behaviour as the pre-section setters, kept
/// for one release.
macro_rules! flat_forwards {
    ($($name:ident: $ty:ty => $section:literal),* $(,)?) => {
        $(
            #[doc = concat!("See [`PvmConfig::", stringify!($name), "`]. ",
                "Grouped section: `", $section, "`.")]
            #[deprecated(note = "set this through its grouped builder section instead")]
            #[must_use]
            pub fn $name(mut self, value: $ty) -> Self {
                self.config.$name = value;
                self
            }
        )*
    };
}

/// The `paging` section: core replacement/readahead mechanics, map
/// sharding and the fault fast paths.
#[derive(Debug)]
pub struct PagingSection {
    cfg: PvmConfig,
}

impl PagingSection {
    setters! {
        /// See [`PvmConfig::per_page_max_pages`].
        per_page_max_pages: u64,
        /// See [`PvmConfig::enable_pageout`].
        enable_pageout: bool,
        /// See [`PvmConfig::check_invariants`].
        check_invariants: bool,
        /// See [`PvmConfig::collapse_zombies`].
        collapse_zombies: bool,
        /// See [`PvmConfig::pull_cluster_pages`].
        pull_cluster_pages: u64,
        /// See [`PvmConfig::push_cluster_pages`].
        push_cluster_pages: u64,
        /// See [`PvmConfig::readahead_adaptive`].
        readahead_adaptive: bool,
        /// See [`PvmConfig::readahead_max_pages`].
        readahead_max_pages: u64,
        /// See [`PvmConfig::fast_path`].
        fast_path: bool,
        /// See [`PvmConfig::global_map_shards`].
        global_map_shards: usize,
        /// See [`PvmConfig::parallel_faults`].
        parallel_faults: bool,
    }
}

/// The `async` section: the completion engine, mapper retry/health
/// escalation and the deadline watchdog.
#[derive(Debug)]
pub struct AsyncSection {
    cfg: PvmConfig,
}

impl AsyncSection {
    setters! {
        /// See [`PvmConfig::async_upcalls`].
        async_upcalls: bool,
        /// See [`PvmConfig::max_inflight_upcalls`].
        max_inflight_upcalls: u64,
        /// See [`PvmConfig::upcall_watchdog`].
        upcall_watchdog: bool,
        /// See [`PvmConfig::suspect_after_timeouts`].
        suspect_after_timeouts: u32,
        /// See [`PvmConfig::quarantine_after_timeouts`].
        quarantine_after_timeouts: u32,
        /// See [`PvmConfig::retry`].
        retry: RetryPolicy,
        /// See [`PvmConfig::quarantine_on_permanent_failure`].
        quarantine_on_permanent_failure: bool,
    }
}

/// The `pressure` section: the memory-pressure survival layer —
/// laundering watermarks, backpressure, reserves and the OOM killer.
#[derive(Debug)]
pub struct PressureSection {
    cfg: PvmConfig,
}

impl PressureSection {
    setters! {
        /// See [`PvmConfig::writeback_daemon`].
        writeback_daemon: bool,
        /// See [`PvmConfig::writeback_low_frames`].
        writeback_low_frames: u32,
        /// See [`PvmConfig::writeback_high_frames`].
        writeback_high_frames: u32,
        /// See [`PvmConfig::max_pending_pulls`].
        max_pending_pulls: u64,
        /// See [`PvmConfig::emergency_reserve_frames`].
        emergency_reserve_frames: u32,
        /// See [`PvmConfig::emergency_pageout`].
        emergency_pageout: bool,
        /// See [`PvmConfig::oom_killer`].
        oom_killer: bool,
    }
}

/// The `large_pages` section: the buddy contiguous-run tier and
/// large-page promotion over it.
#[derive(Debug)]
pub struct LargePagesSection {
    cfg: PvmConfig,
}

impl LargePagesSection {
    setters! {
        /// See [`PvmConfig::buddy_runs`].
        buddy_runs: bool,
        /// See [`PvmConfig::large_pages`].
        large_pages: bool,
        /// See [`PvmConfig::promote_threshold_pages`].
        promote_threshold_pages: u64,
    }
}

/// The `telemetry` section: dimensional counter families, the gauge
/// sampler and event tracing.
#[derive(Debug)]
pub struct TelemetrySection {
    cfg: PvmConfig,
}

impl TelemetrySection {
    setters! {
        /// See [`PvmConfig::telemetry`].
        telemetry: bool,
        /// See [`PvmConfig::telemetry_sample_ns`].
        telemetry_sample_ns: u64,
        /// See [`PvmConfig::trace`].
        trace: TraceConfig,
    }
}

/// The `policy` section: replacement/readahead policy selection (see
/// [`crate::policy`]), per-segment overrides and the external-policy
/// batch size.
#[derive(Debug)]
pub struct PolicySection {
    cfg: PvmConfig,
}

impl PolicySection {
    /// Default replacement policy for every segment manager without an
    /// override. See [`PolicyConfig::replacement`].
    #[must_use]
    pub fn replacement(mut self, kind: ReplacementKind) -> Self {
        self.cfg.policy.replacement = kind;
        self
    }

    /// Readahead window policy. See [`PolicyConfig::readahead`].
    #[must_use]
    pub fn readahead(mut self, kind: ReadaheadKind) -> Self {
        self.cfg.policy.readahead = kind;
        self
    }

    /// Routes pages of the segment manager that registered `segment`
    /// to their own instance of `kind` instead of the default
    /// replacement policy. See [`PolicyConfig::segment_overrides`].
    #[must_use]
    pub fn segment_override(mut self, segment: u64, kind: ReplacementKind) -> Self {
        self.cfg.policy.segment_overrides.push((segment, kind));
        self
    }

    /// WSClock working-set age threshold τ, in victim-selection rounds.
    /// See [`PolicyConfig::wsclock_tau`].
    #[must_use]
    pub fn wsclock_tau(mut self, tau: u64) -> Self {
        self.cfg.policy.wsclock_tau = tau;
        self
    }

    /// Candidate batch size per external-policy `victimAdvice` upcall.
    /// See [`PolicyConfig::external_batch`].
    #[must_use]
    pub fn external_batch(mut self, batch: u64) -> Self {
        self.cfg.policy.external_batch = batch;
        self
    }
}

macro_rules! sections {
    ($($(#[$meta:meta])* $name:ident: $proxy:ident,)*) => {
        $(
            $(#[$meta])*
            #[must_use]
            pub fn $name(mut self, f: impl FnOnce($proxy) -> $proxy) -> Self {
                self.config = f($proxy { cfg: self.config }).cfg;
                self
            }
        )*
    };
}

impl PvmConfigBuilder {
    sections! {
        /// Core paging mechanics: clustering, readahead window bounds,
        /// map sharding, fast paths. See [`PagingSection`].
        paging: PagingSection,
        /// The asynchronous upcall engine and mapper-health
        /// escalation. See [`AsyncSection`].
        r#async: AsyncSection,
        /// Memory-pressure survival: laundering watermarks,
        /// backpressure, reserves, OOM killer. See [`PressureSection`].
        pressure: PressureSection,
        /// Buddy contiguous runs and large-page promotion. See
        /// [`LargePagesSection`].
        large_pages: LargePagesSection,
        /// Dimensional telemetry, gauge sampling and tracing. See
        /// [`TelemetrySection`].
        telemetry: TelemetrySection,
        /// Replacement/readahead policy selection. See
        /// [`PolicySection`].
        policy: PolicySection,
    }

    flat_forwards! {
        per_page_max_pages: u64 => "paging",
        enable_pageout: bool => "paging",
        check_invariants: bool => "paging",
        collapse_zombies: bool => "paging",
        pull_cluster_pages: u64 => "paging",
        retry: RetryPolicy => "async",
        quarantine_on_permanent_failure: bool => "async",
        emergency_pageout: bool => "pressure",
        fast_path: bool => "paging",
        global_map_shards: usize => "paging",
        trace: TraceConfig => "telemetry",
        push_cluster_pages: u64 => "paging",
        writeback_daemon: bool => "pressure",
        writeback_low_frames: u32 => "pressure",
        writeback_high_frames: u32 => "pressure",
        readahead_adaptive: bool => "paging",
        readahead_max_pages: u64 => "paging",
        async_upcalls: bool => "async",
        max_inflight_upcalls: u64 => "async",
        upcall_watchdog: bool => "async",
        suspect_after_timeouts: u32 => "async",
        quarantine_after_timeouts: u32 => "async",
        max_pending_pulls: u64 => "pressure",
        emergency_reserve_frames: u32 => "pressure",
        oom_killer: bool => "pressure",
        buddy_runs: bool => "large_pages",
        promote_threshold_pages: u64 => "large_pages",
        telemetry_sample_ns: u64 => "telemetry",
        parallel_faults: bool => "paging",
    }
    // `large_pages(bool)` and `telemetry(bool)` could not survive as
    // forwards: their names ARE the section entry points now. Use
    // `.large_pages(|l| l.large_pages(true))` / `.telemetry(|t|
    // t.telemetry(true))`.

    /// Validates the assembled configuration.
    ///
    /// # Errors
    ///
    /// Returns [`chorus_gmi::GmiError::Unsupported`] naming the violated
    /// invariant: zero cluster/shard/in-flight sizes, inverted
    /// writeback watermarks, or a readahead ceiling below the base
    /// pull cluster.
    pub fn build(self) -> chorus_gmi::Result<PvmConfig> {
        let c = &self.config;
        if c.pull_cluster_pages < 1 {
            return Err(chorus_gmi::GmiError::Unsupported(
                "pull_cluster_pages must be at least 1",
            ));
        }
        if c.push_cluster_pages < 1 {
            return Err(chorus_gmi::GmiError::Unsupported(
                "push_cluster_pages must be at least 1",
            ));
        }
        if c.global_map_shards < 1 {
            return Err(chorus_gmi::GmiError::Unsupported(
                "global_map_shards must be at least 1",
            ));
        }
        if c.writeback_low_frames > c.writeback_high_frames {
            return Err(chorus_gmi::GmiError::Unsupported(
                "writeback_low_frames must not exceed writeback_high_frames",
            ));
        }
        if c.readahead_max_pages < c.pull_cluster_pages {
            return Err(chorus_gmi::GmiError::Unsupported(
                "readahead_max_pages must be at least pull_cluster_pages",
            ));
        }
        if c.max_inflight_upcalls < 1 {
            return Err(chorus_gmi::GmiError::Unsupported(
                "max_inflight_upcalls must be at least 1",
            ));
        }
        if c.suspect_after_timeouts < 1 {
            return Err(chorus_gmi::GmiError::Unsupported(
                "suspect_after_timeouts must be at least 1",
            ));
        }
        if c.quarantine_after_timeouts < c.suspect_after_timeouts {
            return Err(chorus_gmi::GmiError::Unsupported(
                "quarantine_after_timeouts must be at least suspect_after_timeouts",
            ));
        }
        if c.large_pages && !c.buddy_runs {
            return Err(chorus_gmi::GmiError::Unsupported(
                "large_pages requires buddy_runs",
            ));
        }
        if !c.promote_threshold_pages.is_power_of_two() || c.promote_threshold_pages < 2 {
            return Err(chorus_gmi::GmiError::Unsupported(
                "promote_threshold_pages must be a power of two >= 2",
            ));
        }
        if c.telemetry && c.telemetry_sample_ns < 1 {
            return Err(chorus_gmi::GmiError::Unsupported(
                "telemetry_sample_ns must be at least 1 when telemetry is on",
            ));
        }
        if c.policy.wsclock_tau < 1 {
            return Err(chorus_gmi::GmiError::Unsupported(
                "policy.wsclock_tau must be at least 1",
            ));
        }
        if c.policy.external_batch < 1 {
            return Err(chorus_gmi::GmiError::Unsupported(
                "policy.external_batch must be at least 1",
            ));
        }
        for (i, &(seg, _)) in c.policy.segment_overrides.iter().enumerate() {
            if c.policy.segment_overrides[..i]
                .iter()
                .any(|&(s, _)| s == seg)
            {
                return Err(chorus_gmi::GmiError::Unsupported(
                    "policy.segment_overrides names a segment twice",
                ));
            }
        }
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_ipc_boundary() {
        let c = PvmConfig::default();
        // 8 pages * 8 KB = 64 KB, the paper's IPC message limit.
        assert_eq!(c.per_page_max_pages * 8192, 64 * 1024);
        assert!(c.enable_pageout);
        assert!(c.collapse_zombies);
        assert_eq!(c.pull_cluster_pages, 1, "clustering is opt-in");
        assert!(c.retry.max_attempts > 1, "transient faults heal by default");
        assert!(c.quarantine_on_permanent_failure);
        assert!(c.emergency_pageout);
        assert!(c.fast_path, "soft-fault fast path is on by default");
        assert_eq!(c.global_map_shards, 16);
        assert!(c.global_map_shards.is_power_of_two());
        assert!(!c.trace.enabled, "tracing is opt-in");
        assert!(!c.trace.wall_clock, "wall stamps are opt-in");
        assert_eq!(c.push_cluster_pages, 1, "write clustering is opt-in");
        assert!(!c.writeback_daemon, "laundering is opt-in");
        assert_eq!(c.writeback_low_frames, 0);
        assert_eq!(c.writeback_high_frames, 0);
        assert!(!c.readahead_adaptive, "adaptive readahead is opt-in");
        assert_eq!(c.readahead_max_pages, 8);
        assert!(!c.async_upcalls, "the completion engine is opt-in");
        assert!(c.max_inflight_upcalls >= 1);
        assert!(!c.upcall_watchdog, "the deadline watchdog is opt-in");
        assert_eq!(c.suspect_after_timeouts, 2);
        assert_eq!(c.quarantine_after_timeouts, 4);
        assert_eq!(c.max_pending_pulls, 0, "backpressure is opt-in");
        assert_eq!(c.emergency_reserve_frames, 0, "the reserve is opt-in");
        assert!(!c.oom_killer, "the OOM killer is opt-in");
        assert!(!c.buddy_runs, "contiguous runs are opt-in");
        assert!(!c.large_pages, "large pages are opt-in");
        assert_eq!(
            c.promote_threshold_pages * 8192,
            2 * 1024 * 1024,
            "the default granule is the 2 MiB class over 8 KiB pages"
        );
        assert!(!c.telemetry, "dimensional telemetry is opt-in");
        assert_eq!(c.telemetry_sample_ns, 1_000_000, "1 ms sim cadence");
        if std::env::var_os("CHORUS_PARALLEL_FAULTS").is_none() {
            assert!(!c.parallel_faults, "parallel hard faults are opt-in");
        }
        assert_eq!(
            c.policy.replacement,
            ReplacementKind::Clock,
            "the default replacement policy is the classic clock"
        );
        assert_eq!(
            c.policy.readahead,
            ReadaheadKind::Doubling,
            "the default readahead policy is the doubling window"
        );
        assert!(c.policy.segment_overrides.is_empty());
    }

    #[test]
    fn builder_accepts_defaults_and_valid_tweaks() {
        let c = PvmConfig::builder()
            .paging(|p| {
                p.pull_cluster_pages(4)
                    .readahead_max_pages(16)
                    .parallel_faults(true)
            })
            .pressure(|p| {
                p.writeback_daemon(true)
                    .writeback_low_frames(4)
                    .writeback_high_frames(8)
                    .max_pending_pulls(16)
                    .emergency_reserve_frames(2)
                    .oom_killer(true)
            })
            .r#async(|a| {
                a.async_upcalls(true)
                    .max_inflight_upcalls(2)
                    .upcall_watchdog(true)
                    .suspect_after_timeouts(1)
                    .quarantine_after_timeouts(3)
            })
            .telemetry(|t| t.telemetry(true).telemetry_sample_ns(500_000))
            .build()
            .expect("valid config");
        assert_eq!(c.pull_cluster_pages, 4);
        assert!(c.async_upcalls);
        assert_eq!(c.max_inflight_upcalls, 2);
        assert!(c.upcall_watchdog);
        assert_eq!(c.quarantine_after_timeouts, 3);
        assert_eq!(c.max_pending_pulls, 16);
        assert!(c.oom_killer);
        assert!(c.telemetry);
        assert_eq!(c.telemetry_sample_ns, 500_000);
        assert!(
            c.parallel_faults,
            "parallel_faults composes with the async engine (inert, not invalid)"
        );
    }

    #[test]
    fn policy_section_selects_and_routes() {
        let c = PvmConfig::builder()
            .policy(|p| {
                p.replacement(ReplacementKind::Lru)
                    .readahead(ReadaheadKind::Fifo)
                    .segment_override(7, ReplacementKind::WsClock)
                    .wsclock_tau(3)
                    .external_batch(4)
            })
            .build()
            .expect("valid policy config");
        assert_eq!(c.policy.replacement, ReplacementKind::Lru);
        assert_eq!(c.policy.readahead, ReadaheadKind::Fifo);
        assert_eq!(
            c.policy.segment_overrides,
            vec![(7, ReplacementKind::WsClock)]
        );
        assert_eq!(c.policy.wsclock_tau, 3);
        assert_eq!(c.policy.external_batch, 4);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_flat_setters_still_forward() {
        let c = PvmConfig::builder()
            .pull_cluster_pages(2)
            .async_upcalls(true)
            .writeback_daemon(true)
            .writeback_high_frames(4)
            .build()
            .expect("flat forwards still build");
        assert_eq!(c.pull_cluster_pages, 2);
        assert!(c.writeback_daemon);
        assert!(c.async_upcalls);
    }

    #[test]
    fn builder_rejects_invalid_combinations() {
        let paging_err =
            |f: fn(PagingSection) -> PagingSection| PvmConfig::builder().paging(f).build().is_err();
        assert!(paging_err(|p| p.pull_cluster_pages(0)));
        assert!(paging_err(|p| p.push_cluster_pages(0)));
        assert!(paging_err(|p| p.global_map_shards(0)));
        assert!(paging_err(|p| p
            .pull_cluster_pages(8)
            .readahead_max_pages(4)));
        assert!(PvmConfig::builder()
            .pressure(|p| p.writeback_low_frames(8).writeback_high_frames(4))
            .build()
            .is_err());
        assert!(PvmConfig::builder()
            .r#async(|a| a.max_inflight_upcalls(0))
            .build()
            .is_err());
        assert!(PvmConfig::builder()
            .r#async(|a| a.suspect_after_timeouts(0))
            .build()
            .is_err());
        assert!(PvmConfig::builder()
            .r#async(|a| a.suspect_after_timeouts(5).quarantine_after_timeouts(2))
            .build()
            .is_err());
        assert!(PvmConfig::builder()
            .large_pages(|l| l.large_pages(true))
            .build()
            .is_err());
        assert!(PvmConfig::builder()
            .large_pages(|l| l.promote_threshold_pages(48))
            .build()
            .is_err());
        assert!(PvmConfig::builder()
            .large_pages(|l| l.promote_threshold_pages(1))
            .build()
            .is_err());
        assert!(PvmConfig::builder()
            .telemetry(|t| t.telemetry(true).telemetry_sample_ns(0))
            .build()
            .is_err());
        assert!(
            PvmConfig::builder()
                .telemetry(|t| t.telemetry_sample_ns(0))
                .build()
                .is_ok(),
            "a zero cadence is only rejected once telemetry is on"
        );
        assert!(PvmConfig::builder()
            .policy(|p| p.wsclock_tau(0))
            .build()
            .is_err());
        assert!(PvmConfig::builder()
            .policy(|p| p.external_batch(0))
            .build()
            .is_err());
        assert!(
            PvmConfig::builder()
                .policy(|p| {
                    p.segment_override(3, ReplacementKind::Lru)
                        .segment_override(3, ReplacementKind::Arc)
                })
                .build()
                .is_err(),
            "duplicate per-segment overrides are ambiguous"
        );
        let c = PvmConfig::builder()
            .large_pages(|l| {
                l.buddy_runs(true)
                    .large_pages(true)
                    .promote_threshold_pages(16)
            })
            .build()
            .expect("valid large-page config");
        assert!(c.large_pages);
        assert_eq!(c.promote_threshold_pages, 16);
    }
}
