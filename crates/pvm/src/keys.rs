//! Internal arena key types and conversions to/from the opaque GMI ids.

use crate::descriptors::{CacheDesc, ContextDesc, PageDesc, RegionDesc};
use chorus_gmi::{CacheId, CtxId, RegionId};
use chorus_hal::Id;

/// Arena key of a context descriptor.
pub(crate) type CtxKey = Id<ContextDesc>;
/// Arena key of a region descriptor.
pub(crate) type RegKey = Id<RegionDesc>;
/// Arena key of a cache descriptor.
pub(crate) type CacheKey = Id<CacheDesc>;
/// Arena key of a real-page descriptor.
pub(crate) type PageKey = Id<PageDesc>;

/// Packs an internal key into an opaque public id.
pub(crate) fn pub_ctx(k: CtxKey) -> CtxId {
    CtxId::pack(k.index(), k.generation())
}

/// Packs an internal key into an opaque public id.
pub(crate) fn pub_region(k: RegKey) -> RegionId {
    RegionId::pack(k.index(), k.generation())
}

/// Packs an internal key into an opaque public id.
pub(crate) fn pub_cache(k: CacheKey) -> CacheId {
    CacheId::pack(k.index(), k.generation())
}

/// Reconstructs an internal key from a public id (validated at lookup).
pub(crate) fn ctx_key(id: CtxId) -> CtxKey {
    let (i, g) = id.unpack();
    Id::from_raw_parts(i, g)
}

/// Reconstructs an internal key from a public id (validated at lookup).
pub(crate) fn region_key(id: RegionId) -> RegKey {
    let (i, g) = id.unpack();
    Id::from_raw_parts(i, g)
}

/// Reconstructs an internal key from a public id (validated at lookup).
pub(crate) fn cache_key(id: CacheId) -> CacheKey {
    let (i, g) = id.unpack();
    Id::from_raw_parts(i, g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        let k: CacheKey = Id::from_raw_parts(7, 3);
        assert_eq!(cache_key(pub_cache(k)), k);
        let k: CtxKey = Id::from_raw_parts(0, 0);
        assert_eq!(ctx_key(pub_ctx(k)), k);
        let k: RegKey = Id::from_raw_parts(u32::MAX, 1);
        assert_eq!(region_key(pub_region(k)), k);
    }
}
