//! Dimensional telemetry: per-entity counter families and the
//! deterministic sim-time gauge series.
//!
//! The flat [`crate::StatsRegistry`] answers "how many faults did the
//! whole PVM handle"; this module answers "which cache, which context,
//! which mapper". Every dimensional bump happens at the *same site*
//! that feeds the corresponding global cell, keyed by the entity's
//! stable index (arena index for caches and contexts, segment id for
//! mappers — the finest mapper identity the PVM sees).
//!
//! **Determinism rule.** The layer is gated by `PvmConfig::telemetry`
//! (off by default): when off, every dimensional site is one relaxed
//! atomic load and the gauge sampler never runs, so the evaluation
//! tables stay bit-identical. When on, no telemetry call may advance
//! the cost-model clock — counters only count, and the sampler *reads*
//! the simulated clock at a fixed cadence
//! (`PvmConfig::telemetry_sample_ns`) without ever charging it, so the
//! sim-time series is a pure observation of the run it rides on.
//!
//! Gauges that counters cannot express — free frames, per-order buddy
//! occupancy, completion-table depth, pending-pull queue length,
//! clock-ring size, emergency-reserve level — are captured as
//! [`TelemetrySample`] points into a bounded [`SeriesRing`]
//! (drop-oldest), exported by [`crate::TraceSink`] as chrome-trace
//! counter tracks and a `telemetry.json` artifact.

use chorus_hal::FxHashMap;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

macro_rules! dims {
    ($($(#[$doc:meta])* $variant:ident => $label:literal,)*) => {
        /// A labeled dimension of the telemetry registry.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum Dim {
            $($(#[$doc])* $variant,)*
        }

        impl Dim {
            /// Every dimension, in declaration order.
            pub const ALL: &'static [Dim] = &[$(Dim::$variant,)*];

            /// Stable report label.
            pub fn label(self) -> &'static str {
                match self {
                    $(Dim::$variant => $label,)*
                }
            }
        }
    };
}

dims! {
    /// Per local cache (keyed by the cache's arena index).
    Cache => "cache",
    /// Per context (keyed by the context's arena index).
    Context => "context",
    /// Per mapper, approximated per segment (keyed by the segment id).
    Mapper => "mapper",
}

macro_rules! dim_counters {
    ($($(#[$doc:meta])* $variant:ident => $label:literal,)*) => {
        /// One per-entity counter of a dimensional family.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum DimCounter {
            $($(#[$doc])* $variant,)*
        }

        impl DimCounter {
            /// Every counter, in declaration order.
            pub const ALL: &'static [DimCounter] = &[$(DimCounter::$variant,)*];

            /// Stable report label.
            pub fn label(self) -> &'static str {
                match self {
                    $(DimCounter::$variant => $label,)*
                }
            }
        }
    };
}

dim_counters! {
    /// Slow-path faults attributed to the entity (per context: every
    /// handled slow-path fault; per cache: those whose address resolved
    /// to a region of the cache).
    Faults => "faults",
    /// Lock-free fast-path hits (per context only: the fast path never
    /// learns the cache).
    FastPathHits => "fast_path_hits",
    /// Successful `pullIn` requests (per cache and per mapper).
    PullIns => "pull_ins",
    /// Pages successfully pushed out (per cache and per mapper).
    PushOuts => "push_outs",
    /// Transient mapper retries (per mapper).
    Retries => "retries",
    /// Mapper deadline misses: upcalls abandoned or cancelled at their
    /// deadline (per mapper).
    Timeouts => "timeouts",
    /// In-flight requests cancelled by the watchdog (per mapper).
    Cancels => "cancels",
    /// Pages evicted by the clock algorithm (per cache).
    Evictions => "evictions",
    /// Faults landing on a readahead-prefetched page (per cache).
    ReadaheadHits => "readahead_hits",
    /// Fault-stripe acquisitions attributed to the entity (per cache:
    /// every striped hard-fault entry under `parallel_faults`).
    LockAcqs => "lock_acqs",
    /// Fault-stripe acquisitions that missed the uncontended try-lock
    /// and had to block (per cache) — the "lock heat" of the entity.
    LockContended => "lock_contended",
    /// Victims the replacement policy engine selected from the entity
    /// (per cache).
    PolicyVictims => "policy_victims",
}

/// Number of counters in one dimensional row.
pub const N_DIM_COUNTERS: usize = DimCounter::ALL.len();

/// Entity ids below this bound live in a dense, pre-sized atomic array
/// (arena indices and segment ids are small sequential integers); the
/// hash map only ever holds pathological ids. Keeps the hot per-bump
/// cost down to one relaxed `fetch_add` — no lock on the dense path,
/// which is what keeps the telemetry-on wall overhead inside the
/// `ablation_telemetry` budget.
const DENSE_IDS: u64 = 1024;

/// One dimension's rows: a flat `DENSE_IDS × N_DIM_COUNTERS` atomic
/// array for small ids plus a mutexed spill map for the rest. A touched
/// row always has at least one nonzero counter (`add` rejects
/// `n == 0`), so all-zero dense rows are untouched and skipped on
/// export.
struct DimTable {
    dense: Box<[AtomicU64]>,
    sparse: Mutex<FxHashMap<u64, [u64; N_DIM_COUNTERS]>>,
}

impl DimTable {
    fn new() -> DimTable {
        DimTable {
            dense: (0..DENSE_IDS as usize * N_DIM_COUNTERS)
                .map(|_| AtomicU64::new(0))
                .collect(),
            sparse: Mutex::new(FxHashMap::default()),
        }
    }

    #[inline]
    fn add(&self, id: u64, c: DimCounter, n: u64) {
        if id < DENSE_IDS {
            let cell = id as usize * N_DIM_COUNTERS + c as usize;
            self.dense[cell].fetch_add(n, Ordering::Relaxed);
        } else {
            self.sparse.lock().entry(id).or_insert([0; N_DIM_COUNTERS])[c as usize] += n;
        }
    }

    fn get(&self, id: u64) -> Option<[u64; N_DIM_COUNTERS]> {
        if id < DENSE_IDS {
            let row = self.load_dense(id as usize);
            row.iter().any(|&v| v != 0).then_some(row)
        } else {
            self.sparse.lock().get(&id).copied()
        }
    }

    fn load_dense(&self, id: usize) -> [u64; N_DIM_COUNTERS] {
        core::array::from_fn(|c| self.dense[id * N_DIM_COUNTERS + c].load(Ordering::Relaxed))
    }

    /// Touched rows, ascending id (dense ids are all below sparse ones).
    fn rows(&self) -> Vec<(u64, [u64; N_DIM_COUNTERS])> {
        let mut out: Vec<_> = (0..DENSE_IDS as usize)
            .map(|id| (id as u64, self.load_dense(id)))
            .filter(|(_, r)| r.iter().any(|&v| v != 0))
            .collect();
        let mut tail: Vec<_> = self.sparse.lock().iter().map(|(&id, &r)| (id, r)).collect();
        tail.sort_unstable_by_key(|&(id, _)| id);
        out.extend(tail);
        out
    }

    fn clear(&self) {
        for cell in self.dense.iter() {
            cell.store(0, Ordering::Relaxed);
        }
        self.sparse.lock().clear();
    }
}

/// The dimensional counter registry. Shared (via `Arc`) between the
/// locked state and the lock-free fault fast path. Small entity ids —
/// the only ones real runs produce — bump a pre-sized atomic array
/// without taking any lock; only pathological ids fall back to a
/// mutexed spill map. With the layer disabled every call is one relaxed
/// load.
pub struct Telemetry {
    enabled: AtomicBool,
    tables: [DimTable; Dim::ALL.len()],
}

impl Telemetry {
    /// A registry, enabled per `PvmConfig::telemetry`.
    pub fn new(enabled: bool) -> Telemetry {
        Telemetry {
            enabled: AtomicBool::new(enabled),
            tables: core::array::from_fn(|_| DimTable::new()),
        }
    }

    /// Whether dimensional counting is on (one relaxed load).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Adds one to `(dim, id, c)`. A no-op when disabled.
    #[inline]
    pub fn bump(&self, dim: Dim, id: u64, c: DimCounter) {
        self.add(dim, id, c, 1);
    }

    /// Adds `n` to `(dim, id, c)`. A no-op when disabled or `n == 0`.
    #[inline]
    pub fn add(&self, dim: Dim, id: u64, c: DimCounter, n: u64) {
        if !self.enabled() || n == 0 {
            return;
        }
        self.tables[dim as usize].add(id, c, n);
    }

    /// Reads one dimensional counter (0 for an untouched entity).
    pub fn get(&self, dim: Dim, id: u64, c: DimCounter) -> u64 {
        self.tables[dim as usize]
            .get(id)
            .map(|row| row[c as usize])
            .unwrap_or(0)
    }

    /// Sums one counter across every entity of a dimension.
    pub fn sum(&self, dim: Dim, c: DimCounter) -> u64 {
        self.tables[dim as usize]
            .rows()
            .iter()
            .map(|(_, row)| row[c as usize])
            .sum()
    }

    /// Copies out one dimension's touched rows, sorted ascending by
    /// entity id (deterministic export order).
    pub fn table(&self, dim: Dim) -> Vec<(u64, [u64; N_DIM_COUNTERS])> {
        self.tables[dim as usize].rows()
    }

    /// Zeroes every table (the enabled flag is unchanged).
    pub fn reset(&self) {
        for t in &self.tables {
            t.clear();
        }
    }
}

impl core::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .finish_non_exhaustive()
    }
}

/// One deterministic gauge sample: live state the counters cannot
/// express, stamped with the simulated time it was observed at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetrySample {
    /// Simulated time of the observation (read, never advanced).
    pub sim_ns: u64,
    /// Free physical frames.
    pub free_frames: u32,
    /// Free buddy blocks per order (`free_blocks_per_order`).
    pub free_blocks_per_order: Vec<u32>,
    /// In-flight asynchronous upcalls (completion-table population).
    pub inflight_upcalls: u64,
    /// Queued (not yet submitted) asynchronous pulls.
    pub pending_pulls: u64,
    /// Pages in the clock replacement ring.
    pub clock_ring_pages: u64,
    /// Live slots in the global map (pages + stubs).
    pub gmap_slots: u64,
    /// Intact portion of the emergency frame reserve:
    /// `min(free_frames, emergency_reserve_frames)`.
    pub reserve_free: u32,
}

/// A bounded drop-oldest ring of gauge samples.
pub struct SeriesRing {
    cap: usize,
    buf: std::collections::VecDeque<TelemetrySample>,
    dropped: AtomicU64,
}

/// Default sample capacity: enough for long bench runs at a millisecond
/// cadence without unbounded growth.
pub(crate) const SERIES_CAP: usize = 4096;

impl SeriesRing {
    /// An empty ring holding at most `cap` samples.
    pub fn new(cap: usize) -> SeriesRing {
        SeriesRing {
            cap: cap.max(1),
            buf: std::collections::VecDeque::new(),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends a sample, dropping the oldest at capacity.
    pub fn push(&mut self, s: TelemetrySample) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        self.buf.push_back(s);
    }

    /// Copies the retained samples out, oldest first.
    pub fn samples(&self) -> Vec<TelemetrySample> {
        self.buf.iter().cloned().collect()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Samples lost to the drop-oldest policy.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Clears the ring (capacity and drop count are kept).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_counts_nothing() {
        let t = Telemetry::new(false);
        t.bump(Dim::Cache, 3, DimCounter::Faults);
        t.add(Dim::Mapper, 1, DimCounter::Retries, 9);
        assert!(!t.enabled());
        assert_eq!(t.get(Dim::Cache, 3, DimCounter::Faults), 0);
        assert!(t.table(Dim::Mapper).is_empty());
    }

    #[test]
    fn rows_accumulate_and_export_sorted() {
        let t = Telemetry::new(true);
        t.bump(Dim::Cache, 7, DimCounter::Faults);
        t.bump(Dim::Cache, 2, DimCounter::Faults);
        t.add(Dim::Cache, 7, DimCounter::PullIns, 3);
        t.bump(Dim::Context, 0, DimCounter::FastPathHits);
        assert_eq!(t.get(Dim::Cache, 7, DimCounter::PullIns), 3);
        assert_eq!(t.sum(Dim::Cache, DimCounter::Faults), 2);
        let rows = t.table(Dim::Cache);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, 2, "export is sorted by entity id");
        assert_eq!(rows[1].0, 7);
        t.reset();
        assert!(t.table(Dim::Cache).is_empty());
        assert!(t.enabled(), "reset keeps the enabled flag");
    }

    #[test]
    fn sparse_ids_merge_after_dense_rows() {
        let t = Telemetry::new(true);
        t.bump(Dim::Mapper, DENSE_IDS + 7, DimCounter::Retries);
        t.bump(Dim::Mapper, 3, DimCounter::Retries);
        let rows = t.table(Dim::Mapper);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, 3, "dense rows sort before sparse ids");
        assert_eq!(rows[1].0, DENSE_IDS + 7);
        assert_eq!(t.get(Dim::Mapper, DENSE_IDS + 7, DimCounter::Retries), 1);
        assert_eq!(t.sum(Dim::Mapper, DimCounter::Retries), 2);
    }

    #[test]
    fn dim_and_counter_labels_are_stable() {
        assert_eq!(Dim::ALL.len(), 3);
        assert_eq!(DimCounter::ALL.len(), N_DIM_COUNTERS);
        assert_eq!(Dim::Mapper.label(), "mapper");
        assert_eq!(DimCounter::Faults.label(), "faults");
        assert_eq!(DimCounter::ReadaheadHits.label(), "readahead_hits");
        assert_eq!(N_DIM_COUNTERS, 12);
        assert_eq!(DimCounter::LockAcqs.label(), "lock_acqs");
        assert_eq!(DimCounter::LockContended.label(), "lock_contended");
    }

    #[test]
    fn series_ring_drops_oldest() {
        let sample = |ns: u64| TelemetrySample {
            sim_ns: ns,
            free_frames: 0,
            free_blocks_per_order: Vec::new(),
            inflight_upcalls: 0,
            pending_pulls: 0,
            clock_ring_pages: 0,
            gmap_slots: 0,
            reserve_free: 0,
        };
        let mut r = SeriesRing::new(2);
        r.push(sample(1));
        r.push(sample(2));
        r.push(sample(3));
        let kept = r.samples();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].sim_ns, 2);
        assert_eq!(kept[1].sim_ns, 3);
        assert_eq!(r.dropped(), 1);
    }
}
