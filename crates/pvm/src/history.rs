//! History objects: the paper's novel deferred-copy technique (§4.2).
//!
//! Copies between segments build *history trees* of their caches. The
//! shape invariant (§4.2.1): the tree is binary, and each source of a
//! copy has a single immediate descendant, its *history object*. Each
//! cache holds the current version of its own pages; misses are resolved
//! by walking towards the root. When a source page is about to be
//! modified, its original value is first placed in the source's history
//! object.
//!
//! - First copy from a source: the destination becomes the source's
//!   history (§4.2.2).
//! - Further copies from the same source: a *working* cache is inserted
//!   between the source and its previous history, becoming the source's
//!   new history and the parent of both the previous history and the new
//!   copy (§4.2.3, Figures 3.c/3.d).
//! - Copies into existing segments generalize the parent pointer into a
//!   sorted *fragment list*, so individual fragments may have different,
//!   arbitrary parents (§4.2.4).
//! - Deleting a copy discards its cache; deleting a source first turns it
//!   into a *zombie* internal node kept until its descendants die, and
//!   single-child zombies are merged downward — the bounded analogue of
//!   the shadow-chain garbage collection that §4.2.5 credits as "a major
//!   complication of the Mach algorithm".

use crate::descriptors::{CowSource, ParentFragment, Slot};
use crate::keys::{CacheKey, PageKey};
use crate::state::{blocked, done, Attempt, Blocked, PvmState, StubsTo};
use crate::stats::Counter;
use crate::trace::TraceEvent;
use chorus_gmi::{GmiError, Result};
use chorus_hal::OpKind;

/// Fragment size used by working history objects to relay the entire
/// offset space of their parent.
pub(crate) const FULL_COVER: u64 = u64::MAX;

impl PvmState {
    // ----- coverage queries ------------------------------------------------

    /// True if `cache` has a history object that logically copied offset
    /// `off`, i.e. the original value of (cache, off) must be preserved
    /// before an in-place modification.
    pub fn has_history_covering(&self, cache: CacheKey, off: u64) -> bool {
        !self.history_child_offsets(cache, off).is_empty()
    }

    /// Every place in `cache`'s history object where the original value
    /// of (cache, off) logically belongs. With generalized fragment
    /// lists (§4.2.4), several fragments of the history child may alias
    /// the same source offset (repeated copies of an unmodified source),
    /// so the original must be preserved at each of them.
    pub fn history_child_offsets(&self, cache: CacheKey, off: u64) -> Vec<(CacheKey, u64)> {
        let Some(h) = self.caches.get(cache).and_then(|c| c.history) else {
            return Vec::new();
        };
        let Some(hist) = self.caches.get(h) else {
            return Vec::new();
        };
        hist.parents
            .iter()
            .filter(|f| f.parent == cache && f.covers_parent(off))
            .map(|f| (h, f.to_child(off)))
            .collect()
    }

    // ----- fragment list maintenance ----------------------------------------

    /// Installs a parent fragment on `child`, clipping any overlapping
    /// older fragments (a fragment copied later overrides earlier copies
    /// of the same range, §4.2.4). Maintains the parents' child lists.
    pub fn add_parent_fragment(&mut self, child: CacheKey, frag: ParentFragment) {
        self.charge(OpKind::HistoryOp);
        self.clip_parent_fragments(child, frag.child_off, frag.child_end());
        let list = &mut self
            .caches
            .get_mut(child)
            .expect("dead child cache")
            .parents;
        let pos = list.partition_point(|f| f.child_off < frag.child_off);
        list.insert(pos, frag);
        self.caches
            .get_mut(frag.parent)
            .expect("dead parent cache")
            .children
            .push(child);
    }

    /// Removes the parts of `child`'s fragments overlapping
    /// `[start, end)`, splitting fragments where needed.
    pub fn clip_parent_fragments(&mut self, child: CacheKey, start: u64, end: u64) {
        let old = core::mem::take(&mut self.caches.get_mut(child).expect("dead cache").parents);
        let mut kept: Vec<ParentFragment> = Vec::with_capacity(old.len() + 1);
        let mut removed_parents: Vec<CacheKey> = Vec::new();
        let mut added_parents: Vec<CacheKey> = Vec::new();
        for f in old {
            let f_end = f.child_end();
            if f_end <= start || f.child_off >= end {
                kept.push(f);
                continue;
            }
            // Overlap: the original fragment reference goes away...
            removed_parents.push(f.parent);
            // ...and up to two clipped pieces reference the parent anew.
            if f.child_off < start {
                let size = start - f.child_off;
                kept.push(ParentFragment { size, ..f });
                added_parents.push(f.parent);
            }
            if f_end > end && f.size != FULL_COVER {
                let cut = end - f.child_off;
                kept.push(ParentFragment {
                    child_off: end,
                    size: f.size - cut,
                    parent_off: f.parent_off + cut,
                    ..f
                });
                added_parents.push(f.parent);
            } else if f.size == FULL_COVER && f_end > end {
                // Full-coverage fragments (working objects) keep their
                // upper part too.
                kept.push(ParentFragment {
                    child_off: end,
                    size: FULL_COVER,
                    parent_off: f.parent_off + (end - f.child_off),
                    ..f
                });
                added_parents.push(f.parent);
            }
        }
        self.caches.get_mut(child).expect("dead cache").parents = kept;
        // Add the clipped pieces' references before removing the old ones
        // so a parent's child list never transiently empties (which would
        // wrongly clear its history link).
        for p in added_parents {
            if let Some(pc) = self.caches.get_mut(p) {
                pc.children.push(child);
            }
        }
        for &p in &removed_parents {
            self.detach_child_ref(p, child);
        }
        for p in removed_parents {
            self.collapse_if_possible(p);
        }
    }

    /// Attaches a dependency fragment to `frag.parent`, preserving the
    /// single-history shape invariant: if the parent already has a
    /// different history object, the fragment is routed through it (when
    /// it is a transparent working object with no own data in the
    /// range) or through a freshly inserted working object.
    ///
    /// Used by internal re-composition (overwrite re-pointing, zombie
    /// merges); `link_copy` keeps its own paper-shaped insertion.
    pub fn attach_child_fragment(&mut self, child: CacheKey, frag: ParentFragment) {
        let p = frag.parent;
        let Some(pdesc) = self.caches.get(p) else {
            return;
        };
        match pdesc.history {
            None => {
                self.add_parent_fragment(child, frag);
                if let Some(pd) = self.caches.get_mut(p) {
                    pd.history = Some(child);
                }
            }
            Some(h) if h == child => {
                self.add_parent_fragment(child, frag);
            }
            Some(h) => {
                let frag_end = frag.parent_off.saturating_add(frag.size);
                let reusable = self
                    .caches
                    .get(h)
                    .map(|hd| {
                        hd.internal
                            && hd.parents.len() == 1
                            && hd.parents[0].parent == p
                            && hd.parents[0].size == FULL_COVER
                            && hd.parents[0].child_off == hd.parents[0].parent_off
                            && hd.entries.range(frag.parent_off..frag_end).next().is_none()
                            && hd.owned.range(frag.parent_off..frag_end).next().is_none()
                    })
                    .unwrap_or(false);
                if reusable {
                    // The existing working object is transparent over the
                    // range: route through it.
                    self.add_parent_fragment(child, ParentFragment { parent: h, ..frag });
                } else {
                    // Insert a fresh working object between p and h.
                    let w = self.create_internal_cache();
                    self.stats.bump(Counter::WorkingObjects);
                    self.charge(OpKind::ObjectCreate);
                    self.charge(OpKind::HistoryOp);
                    self.add_parent_fragment(
                        w,
                        ParentFragment {
                            child_off: 0,
                            size: FULL_COVER,
                            parent: p,
                            parent_off: 0,
                            cor: false,
                        },
                    );
                    self.repoint_fragments(h, p, w);
                    if let Some(pd) = self.caches.get_mut(p) {
                        pd.history = Some(w);
                    }
                    self.add_parent_fragment(child, ParentFragment { parent: w, ..frag });
                    if let Some(wd) = self.caches.get_mut(w) {
                        wd.zombie = true;
                    }
                }
            }
        }
    }

    /// Removes one child-list entry of `parent` referring to `child`
    /// WITHOUT running the collapse check — used when several references
    /// must be detached before the graph is consistent enough to
    /// collapse.
    pub fn detach_child_ref(&mut self, parent: CacheKey, child: CacheKey) {
        if let Some(pc) = self.caches.get_mut(parent) {
            if let Some(pos) = pc.children.iter().position(|&c| c == child) {
                pc.children.swap_remove(pos);
            }
            if pc.history == Some(child) && !pc.children.contains(&child) {
                pc.history = None;
            }
        }
    }

    // ----- tree construction (cache.copy, deferred) --------------------------

    /// Links `dst[dst_off..+size]` as a deferred copy of
    /// `src[src_off..+size]`, building the history tree.
    ///
    /// May block (waiting out in-transit destination pages, or allocating
    /// frames while preserving destination originals).
    pub fn link_copy(
        &mut self,
        src: CacheKey,
        src_off: u64,
        dst: CacheKey,
        dst_off: u64,
        size: u64,
        cor: bool,
    ) -> Attempt<()> {
        if src == dst {
            return Err(GmiError::InvalidArgument("deferred copy within one cache"));
        }
        // 1. The destination range is being overwritten: preserve its
        //    originals for *its* history (if any), then drop its pages.
        match self.overwrite_range(dst, dst_off, size)? {
            crate::state::Outcome::Done(()) => {}
            crate::state::Outcome::Blocked(b) => return blocked(b),
        }

        // 2. Protect the source's own present pages in the range
        //    read-only (§4.2.2: "all the pages of (the corresponding
        //    fragment of) the source are made read-only").
        self.write_protect_range(src, src_off, size)?;

        // 3. Tree linking with the shape invariant. The history link is
        //    (re)established *after* the destination fragment is
        //    installed: installing it clips overlapping old fragments,
        //    which could transiently empty the child list and clear the
        //    link.
        let src_desc = self.cache(src)?;
        let link_parent = match src_desc.history {
            None => {
                // Simple case (§4.2.2): dst becomes src's history.
                src
            }
            Some(h) if h == dst => {
                // Repeated copy into the same destination: the existing
                // link already serves; just extend coverage below.
                src
            }
            Some(h) => {
                // §4.2.3: src already has a history; insert a working
                // object w between src and h. It is made collapsible
                // (zombie) only once fully linked, so no cascade can
                // reclaim it mid-construction.
                let w = self.create_internal_cache();
                self.stats.bump(Counter::WorkingObjects);
                self.charge(OpKind::ObjectCreate);
                self.charge(OpKind::HistoryOp);
                // w relays all of src.
                self.add_parent_fragment(
                    w,
                    ParentFragment {
                        child_off: 0,
                        size: FULL_COVER,
                        parent: src,
                        parent_off: 0,
                        cor: false,
                    },
                );
                // Re-point h's fragments from src to w (identity shift).
                // Note h may itself use src as *its* history for a
                // disjoint range (mutual links are legal at offset
                // granularity); that relationship is unaffected.
                self.repoint_fragments(h, src, w);
                self.cache_mut(src)?.history = Some(w);
                w
            }
        };

        // 4. Install the destination fragment (working objects are
        //    identity overlays of src, so the parent offset is unchanged
        //    either way) and then (re)assert the source's history link.
        self.add_parent_fragment(
            dst,
            ParentFragment {
                child_off: dst_off,
                size,
                parent: link_parent,
                parent_off: src_off,
                cor,
            },
        );
        if link_parent == src {
            self.cache_mut(src)?.history = Some(dst);
        } else {
            self.cache_mut(src)?.history = Some(link_parent);
            // The working object now participates in zombie collapse.
            self.cache_mut(link_parent)?.zombie = true;
        }
        self.check_invariants_if_enabled();
        done(())
    }

    /// Re-points every fragment of `child` that references `old_parent`
    /// to `new_parent` (which must relay `old_parent` identically).
    fn repoint_fragments(&mut self, child: CacheKey, old_parent: CacheKey, new_parent: CacheKey) {
        let mut moved = 0;
        if let Some(c) = self.caches.get_mut(child) {
            for f in &mut c.parents {
                if f.parent == old_parent {
                    f.parent = new_parent;
                    moved += 1;
                }
            }
        }
        for _ in 0..moved {
            // Transfer child references without triggering collapse on
            // old_parent (it just gained new_parent as its history child).
            if let Some(pc) = self.caches.get_mut(old_parent) {
                if let Some(pos) = pc.children.iter().position(|&c| c == child) {
                    pc.children.swap_remove(pos);
                }
            }
            if let Some(pc) = self.caches.get_mut(new_parent) {
                pc.children.push(child);
            }
        }
        self.charge_n(OpKind::HistoryOp, moved);
    }

    /// Creates an anonymous internal cache (a working history object).
    /// The caller marks it `zombie` once linked; from then on it lives
    /// exactly as long as it has children.
    pub fn create_internal_cache(&mut self) -> CacheKey {
        self.caches.insert(crate::descriptors::CacheDesc {
            internal: true,
            ..Default::default()
        })
    }

    /// Write-protects the source's own resident pages in a range about
    /// to be logically copied ("all the pages of the corresponding
    /// fragment of the source are made read-only"). The hardware protect
    /// is issued per page on every copy — §5.3.2 derives ~0.02 ms per
    /// allocated page from Table 7, i.e. the original re-protected
    /// unconditionally — and the walk uses the cache's own page list,
    /// not the global map.
    pub fn write_protect_range(&mut self, cache: CacheKey, off: u64, size: u64) -> Result<()> {
        let offsets: Vec<u64> = self
            .cache(cache)?
            .entries
            .range(off..off.saturating_add(size))
            .copied()
            .collect();
        for o in offsets {
            if let Some(Slot::Present(p)) = self.gmap.get(cache, o) {
                self.charge(OpKind::ProtectPage);
                let page = self.page_mut(p);
                if page.writable {
                    page.writable = false;
                    self.reprotect_mappings(p);
                }
            }
        }
        Ok(())
    }

    /// Prepares a destination range for overwriting: waits out sync
    /// stubs, refuses locked pages, preserves pre-overwrite values for
    /// the destination's history child (own pages are pushed, per-page
    /// stubs duplicated, and inherited coverage re-pointed to the old
    /// parents), unthreads per-page stubs, and finally drops the
    /// destination's own pages and ownership marks in the range.
    pub fn overwrite_range(&mut self, cache: CacheKey, off: u64, size: u64) -> Attempt<()> {
        let end = off.saturating_add(size);
        // 0. Swapped-out own pages that the history child still needs
        //    must come back in before their ownership marks die.
        if self.cache(cache)?.history.is_some() {
            let owned: Vec<u64> = self.cache(cache)?.owned.range(off..end).copied().collect();
            for o in owned {
                let resident = self.cache(cache)?.entries.contains(&o);
                if resident {
                    continue;
                }
                let mut needed = false;
                for (h, ho) in self.history_child_offsets(cache, o) {
                    let hd = self.cache(h)?;
                    if !(hd.owns(ho) || hd.entries.contains(&ho)) {
                        needed = true;
                    }
                }
                if needed {
                    match self.resolve_version(cache, o, chorus_hal::Access::Read)? {
                        crate::state::Outcome::Done(_) => {}
                        crate::state::Outcome::Blocked(b) => return blocked(b),
                    }
                }
            }
        }
        // 1. Walk the resident slots: preserve values for the history
        //    child, then drop them.
        let offsets: Vec<u64> = self
            .cache(cache)?
            .entries
            .range(off..end)
            .copied()
            .collect();
        for o in offsets {
            match self.slot(cache, o) {
                Some(Slot::Sync) => return blocked(Blocked::WaitStub),
                Some(Slot::Cow(src)) => {
                    // The history child's snapshot includes this stub's
                    // value: duplicate the stub for it (at every
                    // aliasing offset).
                    for (h, ho) in self.history_child_offsets(cache, o) {
                        let hd = self.cache(h)?;
                        if !(hd.owns(ho) || hd.entries.contains(&ho)) {
                            self.set_slot(h, ho, Slot::Cow(src));
                            match src {
                                crate::descriptors::CowSource::Page(p) => {
                                    self.page_mut(p).stubs.push((h, ho));
                                }
                                crate::descriptors::CowSource::Loc(c2, o2) => {
                                    self.gmap.push_loc_stub(c2, o2, (h, ho));
                                }
                                crate::descriptors::CowSource::Zero => {}
                            }
                        }
                    }
                    self.unthread_cow_stub(cache, o, src);
                    self.clear_slot(cache, o);
                }
                Some(Slot::Present(p)) => {
                    if self.page(p).lock_count > 0 {
                        return Err(GmiError::Locked);
                    }
                    // Preserve the original for this cache's own history
                    // before the overwrite (§4.2.4 generalization).
                    if self.has_history_covering(cache, o) {
                        match self.push_original_to_history(cache, o, p)? {
                            crate::state::Outcome::Done(()) => {}
                            crate::state::Outcome::Blocked(b) => return blocked(b),
                        }
                    }
                    // Outstanding per-page stubs still need the value:
                    // hand the page over to the first stub instead of
                    // freeing it.
                    if !self.page(p).stubs.is_empty() {
                        self.donate_page_to_stubs(p);
                    } else {
                        self.free_page(p, StubsTo::AlreadyHandled, true);
                    }
                }
                None => {}
            }
        }
        // 2. The history child's *inherited* coverage of the range must
        //    keep resolving to the old parents, not to the new content:
        //    compose its fragments through this cache's current parents.
        if let Some(h) = self.cache(cache)?.history {
            self.repoint_history_coverage(cache, h, off, end);
        }
        // 3. Ownership marks for the overwritten range die with the old
        //    content.
        let owned: Vec<u64> = self.cache(cache)?.owned.range(off..end).copied().collect();
        for o in owned {
            if self.gmap.has_loc_stubs_at(cache, o) {
                return Err(GmiError::Unsupported(
                    "overwriting a swapped-out page with outstanding per-page stubs",
                ));
            }
            self.cache_mut(cache)?.owned.remove(&o);
        }
        done(())
    }

    /// Re-points the parts of `h`'s fragments that cover `[lo, hi)` of
    /// `cache` (in cache offsets) directly at `cache`'s current parents,
    /// composing offset translations — so `h` keeps seeing the values
    /// `cache` inherited before an overwrite.
    fn repoint_history_coverage(&mut self, cache: CacheKey, h: CacheKey, lo: u64, hi: u64) {
        let h_frags: Vec<ParentFragment> = match self.caches.get(h) {
            Some(hd) => hd
                .parents
                .iter()
                .copied()
                .filter(|f| {
                    f.parent == cache
                        && f.parent_off < hi
                        && f.parent_off.saturating_add(f.size) > lo
                })
                .collect(),
            None => return,
        };
        if h_frags.is_empty() {
            return;
        }
        let via: Vec<ParentFragment> = self
            .caches
            .get(cache)
            .map(|c| c.parents.clone())
            .unwrap_or_default();
        for f in h_frags {
            let plo = f.parent_off.max(lo);
            let phi = f.parent_off.saturating_add(f.size).min(hi);
            debug_assert!(plo < phi);
            let clo = f.to_child(plo);
            let chi = clo + (phi - plo);
            // Remove the covered piece (keeps the out-of-range parts).
            self.clip_parent_fragments(h, clo, chi);
            // Re-add composed pieces where the cache inherited data.
            for zf in &via {
                let zlo = plo.max(zf.child_off);
                let zhi = phi.min(zf.child_end());
                if zlo >= zhi {
                    continue;
                }
                self.attach_child_fragment(
                    h,
                    ParentFragment {
                        child_off: clo + (zlo - plo),
                        size: zhi - zlo,
                        parent: zf.parent,
                        parent_off: zf.to_parent(zlo),
                        cor: f.cor || zf.cor,
                    },
                );
            }
            self.charge(chorus_hal::OpKind::HistoryOp);
        }
    }

    // ----- write-violation algorithm (§4.2.2, §4.2.3) -------------------------

    /// Preserves the original value of (cache, off) into the covering
    /// history object — at *every* aliasing offset that does not already
    /// have its own version ("it suffices to make the page writable"
    /// otherwise).
    pub fn push_original_to_history(
        &mut self,
        cache: CacheKey,
        off: u64,
        page: PageKey,
    ) -> Attempt<()> {
        for (h, h_off) in self.history_child_offsets(cache, off) {
            let hist = self.cache(h)?;
            if hist.owns(h_off) || hist.entries.contains(&h_off) {
                // The history already has its own version at this spot.
                continue;
            }
            let frame = match self.alloc_frame_keeping(page)? {
                crate::state::Outcome::Done(f) => f,
                crate::state::Outcome::Blocked(b) => return blocked(b),
            };
            let src_frame = self.page(page).frame;
            self.phys.lock().copy_frame(src_frame, frame);
            let writable = !self.has_history_covering(h, h_off);
            self.create_page(h, h_off, frame, writable, true);
            self.stats.bump(Counter::HistoryPushes);
            self.trace.event(|| TraceEvent::HistoryPush {
                cache: h.index(),
                offset: h_off,
            });
            self.charge(OpKind::HistoryOp);
        }
        done(())
    }

    /// The full write-violation algorithm for a cache's own read-only
    /// page: resolve every constraint keeping it read-only, then make it
    /// writable and shoot down foreign (descendant) read mappings.
    pub fn promote_page(&mut self, cache: CacheKey, off: u64, page: PageKey) -> Attempt<()> {
        if self.page(page).cleaning {
            return blocked(Blocked::WaitStub);
        }
        // Coherence constraint: the segment manager must grant write
        // access first (Table 3 getWriteAccess).
        if !self.page(page).seg_write_ok {
            let desc = self.cache(cache)?;
            let segment = desc.segment.ok_or(GmiError::InvalidArgument(
                "write access revoked on a segment-less cache",
            ))?;
            return blocked(Blocked::GetWriteAccess {
                cache,
                segment,
                offset: off,
                size: self.ps(),
                page,
            });
        }
        // Per-page stubs still reference the original value (§4.3).
        if !self.page(page).stubs.is_empty() {
            match self.materialize_stub_original(page)? {
                crate::state::Outcome::Done(()) => {}
                crate::state::Outcome::Blocked(b) => return blocked(b),
            }
        }
        // History constraint (§4.2.2): place the original in the history
        // object unless it already has its own version.
        if !self.page(page).writable {
            match self.push_original_to_history(cache, off, page)? {
                crate::state::Outcome::Done(()) => {}
                crate::state::Outcome::Blocked(b) => return blocked(b),
            }
            self.page_mut(page).writable = true;
            self.stats.bump(Counter::Promotes);
        }
        // Descendants reading the old value through this frame must
        // re-fault and find the preserved original.
        self.unmap_foreign(page);
        self.page_mut(page).dirty = true;
        self.charge(OpKind::ProtectPage);
        done(())
    }

    /// Copies the original value of a stub-source page into a fresh page
    /// owned by the first stub destination, re-threading the remaining
    /// stubs onto the new page.
    pub fn materialize_stub_original(&mut self, page: PageKey) -> Attempt<()> {
        let frame = match self.alloc_frame_keeping(page)? {
            crate::state::Outcome::Done(f) => f,
            crate::state::Outcome::Blocked(b) => return blocked(b),
        };
        let src_frame = self.page(page).frame;
        self.phys.lock().copy_frame(src_frame, frame);
        let mut stubs = core::mem::take(&mut self.page_mut(page).stubs);
        let (first_cache, first_off) = stubs.remove(0);
        // The new page belongs to the first stub's cache; the remaining
        // stubs now thread on it. It stays read-only if that cache has
        // its own history child covering the offset.
        let writable = stubs.is_empty() && !self.has_history_covering(first_cache, first_off);
        let new_page = self.create_page(first_cache, first_off, frame, writable, true);
        self.page_mut(new_page).stubs = stubs.clone();
        for (dc, doff) in stubs {
            self.set_slot(dc, doff, Slot::Cow(CowSource::Page(new_page)));
        }
        self.stats.bump(Counter::CowCopies);
        done(())
    }

    /// Hands a page over to its first stub destination (used when the
    /// owner is discarding the page but stubs still need the value).
    pub fn donate_page_to_stubs(&mut self, page: PageKey) {
        let desc = self.page_mut(page);
        let (first_cache, first_off) = desc.stubs.remove(0);
        let old_cache = desc.cache;
        let old_off = desc.offset;
        desc.cache = first_cache;
        desc.offset = first_off;
        let remaining = desc.stubs.clone();
        desc.dirty = true;
        let writable = remaining.is_empty() && !self.has_history_covering(first_cache, first_off);
        self.page_mut(page).writable = writable;
        self.unmap_all(page);
        if self.gmap.get(old_cache, old_off) == Some(Slot::Present(page)) {
            self.clear_slot(old_cache, old_off);
        }
        if let Some(c) = self.caches.get_mut(old_cache) {
            c.owned.remove(&old_off);
        }
        self.set_slot(first_cache, first_off, Slot::Present(page));
        if let Ok(c) = self.cache_mut(first_cache) {
            c.owned.insert(first_off);
        }
        for (dc, doff) in remaining {
            self.set_slot(dc, doff, Slot::Cow(CowSource::Page(page)));
        }
        self.stats.bump(Counter::MovedFrames);
    }

    /// Unthreads one per-page stub from its source bookkeeping.
    pub fn unthread_cow_stub(&mut self, dst: CacheKey, dst_off: u64, src: CowSource) {
        match src {
            CowSource::Page(p) => {
                if let Some(page) = self.pages.get_mut(p) {
                    page.stubs.retain(|&(c, o)| !(c == dst && o == dst_off));
                }
            }
            CowSource::Loc(c, o) => {
                let emptied = self.gmap.unthread_loc_stub(c, o, dst, dst_off);
                if emptied {
                    // The source cache may have been waiting only on this
                    // stub to die (zombie kept alive by loc stubs).
                    self.collapse_if_possible(c);
                }
            }
            CowSource::Zero => {}
        }
    }

    // ----- zombie collapse (§4.2.5) -------------------------------------------

    /// Frees a fully dead cache, or merges a single-child zombie into its
    /// child. Called whenever a cache loses a child or a user.
    pub fn collapse_if_possible(&mut self, cache: CacheKey) {
        let Some(desc) = self.caches.get(cache) else {
            return;
        };
        if desc.is_reclaimable() {
            // Outstanding location stubs (per-page copies of swapped or
            // not-yet-pulled data) keep the cache alive like children do.
            if self.gmap.has_loc_stubs_from(cache) {
                return;
            }
            self.reclaim_dead_cache(cache);
            return;
        }
        if !self.config.collapse_zombies || !desc.zombie || desc.mapped_regions > 0 {
            return;
        }
        let Some(child) = desc.sole_child() else {
            return;
        };
        // Working objects relaying with FULL_COVER merge like any zombie.
        self.try_merge_into_child(cache, child);
    }

    /// Releases every resource of a cache with no remaining users.
    fn reclaim_dead_cache(&mut self, cache: CacheKey) {
        let offsets: Vec<u64> = match self.caches.get(cache) {
            Some(c) => c.entries.iter().copied().collect(),
            None => return,
        };
        for o in offsets {
            match self.slot(cache, o) {
                Some(Slot::Present(p)) => {
                    if !self.page(p).stubs.is_empty() {
                        self.donate_page_to_stubs(p);
                    } else {
                        self.free_page(p, StubsTo::AlreadyHandled, true);
                    }
                }
                Some(Slot::Cow(src)) => {
                    self.unthread_cow_stub(cache, o, src);
                    self.clear_slot(cache, o);
                }
                Some(Slot::Sync) | None => {
                    // In-transit pages die with the cache once the
                    // transit finishes; leave the stub for the filler to
                    // discover the dead cache.
                }
            }
        }
        // Detach from parents (may cascade the collapse upward).
        let parents: Vec<CacheKey> = match self.caches.get(cache) {
            Some(c) => c.parents.iter().map(|f| f.parent).collect(),
            None => return,
        };
        self.caches
            .get_mut(cache)
            .expect("cache vanished")
            .parents
            .clear();
        self.charge(OpKind::ObjectDestroy);
        self.caches.remove(cache);
        // Detach every reference before any collapse runs, so no
        // intermediate collapse observes a half-detached graph.
        for &p in &parents {
            self.detach_child_ref(p, cache);
        }
        for p in parents {
            self.collapse_if_possible(p);
        }
    }

    /// Attempts the §4.2.5 merge of a zombie into its sole child. The
    /// merge is skipped (not an error — the chain simply persists, as in
    /// pre-GC Mach) when in-transit pages, locked pages, outstanding
    /// per-page stubs, or swapped-out data make it unsafe to do
    /// synchronously.
    fn try_merge_into_child(&mut self, zombie: CacheKey, child: CacheKey) {
        let Some(z) = self.caches.get(zombie) else {
            return;
        };
        // Bail-out checks.
        for &o in &z.entries {
            match self.gmap.get(zombie, o) {
                Some(Slot::Sync) => return,
                Some(Slot::Cow(_)) => return,
                Some(Slot::Present(p)) => {
                    let page = self.page(p);
                    if !page.stubs.is_empty() || page.lock_count > 0 || page.cleaning {
                        return;
                    }
                }
                None => return,
            }
        }
        let z = self.caches.get(zombie).expect("zombie vanished");
        if z.owned.iter().any(|o| !z.entries.contains(o)) {
            // Swapped-out data: merging would require pulling it in.
            return;
        }
        if self.gmap.has_loc_stubs_from(zombie) {
            return;
        }

        // The child's fragments that point at the zombie.
        let child_frags: Vec<ParentFragment> = self
            .cache(child)
            .map(|c| {
                c.parents
                    .iter()
                    .copied()
                    .filter(|f| f.parent == zombie)
                    .collect()
            })
            .unwrap_or_default();
        let zombie_frags: Vec<ParentFragment> = self
            .caches
            .get(zombie)
            .map(|z| z.parents.clone())
            .unwrap_or_default();

        // 1. Move pages down into the child where the child lacks its
        //    own version and a fragment covers them; with generalized
        //    fragment lists SEVERAL child fragments may alias one zombie
        //    offset, and each uncovered alias needs the value — the
        //    first gets the page, the rest get copies. The merge bails
        //    (harmlessly, the chain just persists) if the pool cannot
        //    supply the extra frames without blocking.
        let offsets: Vec<u64> = self
            .caches
            .get(zombie)
            .expect("zombie vanished")
            .entries
            .iter()
            .copied()
            .collect();
        let targets_of = |s: &Self, o: u64| -> Vec<u64> {
            child_frags
                .iter()
                .filter(|f| f.covers_parent(o))
                .map(|f| f.to_child(o))
                .filter(|co| {
                    let c = s.cache(child).expect("dead child");
                    !c.owns(*co) && !c.entries.contains(co)
                })
                .collect()
        };
        let extra_frames: u64 = offsets
            .iter()
            .map(|&o| (targets_of(self, o).len().saturating_sub(1)) as u64)
            .sum();
        if (self.phys.lock().free_frames() as u64) < extra_frames {
            return;
        }
        for o in offsets {
            let Some(Slot::Present(p)) = self.gmap.get(zombie, o) else {
                continue;
            };
            let targets = targets_of(self, o);
            match targets.split_first() {
                Some((&first, rest)) => {
                    // Copies for the additional aliases first (the frame
                    // data is still intact here).
                    for &co in rest {
                        let frame = self.phys.lock().alloc().expect("reserved frame vanished");
                        let src_frame = self.page(p).frame;
                        self.phys.lock().copy_frame(src_frame, frame);
                        let writable = !self.has_history_covering(child, co);
                        self.create_page(child, co, frame, writable, true);
                        self.charge(OpKind::HistoryOp);
                    }
                    // Re-home the page descriptor to the first alias.
                    self.unmap_foreign(p);
                    self.clear_slot(zombie, o);
                    let desc = self.page_mut(p);
                    desc.cache = child;
                    desc.offset = first;
                    desc.dirty = true;
                    let writable = !self.has_history_covering(child, first)
                        && self.page(p).mappings.is_empty();
                    self.page_mut(p).writable = writable;
                    self.set_slot(child, first, Slot::Present(p));
                    self.cache_mut(child)
                        .expect("dead child")
                        .owned
                        .insert(first);
                }
                None => {
                    self.free_page(p, StubsTo::AlreadyHandled, true);
                }
            }
            self.charge(OpKind::HistoryOp);
        }

        // 2. Compose the child's zombie-fragments with the zombie's own
        //    parent fragments.
        let mut composed: Vec<ParentFragment> = Vec::new();
        for cf in &child_frags {
            for zf in &zombie_frags {
                // Overlap of cf's parent range with zf's child range, in
                // zombie offsets.
                let lo = cf.parent_off.max(zf.child_off);
                let hi = (cf.parent_off.saturating_add(cf.size)).min(zf.child_end());
                if lo >= hi {
                    continue;
                }
                composed.push(ParentFragment {
                    child_off: cf.to_child(lo),
                    size: if hi - lo == 0 { 0 } else { hi - lo },
                    parent: zf.parent,
                    parent_off: zf.to_parent(lo),
                    cor: cf.cor || zf.cor,
                });
            }
        }

        // 3. Splice the zombie out of the graph.
        //    Remove the child's fragments pointing at the zombie.
        if let Ok(c) = self.cache_mut(child) {
            c.parents.retain(|f| f.parent != zombie);
        }
        if let Some(z) = self.caches.get_mut(zombie) {
            z.children.retain(|&c| c != child);
        }
        //    Remove the zombie's own upward references.
        let z_parents: Vec<CacheKey> = zombie_frags.iter().map(|f| f.parent).collect();
        if let Some(z) = self.caches.get_mut(zombie) {
            z.parents.clear();
        }
        //    Install composed fragments on the child (routing through
        //    working objects where the shape invariant demands it).
        for f in composed {
            if f.size > 0 {
                self.attach_child_fragment(child, f);
            }
        }
        //    Whoever used the zombie as history now uses the child — but
        //    only where the composition kept a fragment from them; with
        //    no surviving fragment, nobody can see their originals
        //    anymore and the history link dissolves.
        let adopters: Vec<CacheKey> = self
            .caches
            .iter()
            .filter(|(_, c)| c.history == Some(zombie))
            .map(|(k, _)| k)
            .collect();
        for a in adopters {
            let keeps = self
                .caches
                .get(child)
                .map(|c| c.parents.iter().any(|f| f.parent == a))
                .unwrap_or(false);
            self.caches.get_mut(a).expect("dead adopter").history =
                if keeps { Some(child) } else { None };
        }
        //    Detach the zombie from its parents (without collapsing
        //    them yet — the child now references them instead).
        for p in z_parents {
            if let Some(pc) = self.caches.get_mut(p) {
                if let Some(pos) = pc.children.iter().position(|&c| c == zombie) {
                    pc.children.swap_remove(pos);
                }
            }
        }
        // The zombie should now be fully dead.
        debug_assert!(self
            .caches
            .get(zombie)
            .map(|z| z.children.is_empty() && z.parents.is_empty())
            .unwrap_or(true));
        self.charge(OpKind::ObjectDestroy);
        self.caches.remove(zombie);
        self.stats.bump(Counter::ZombieMerges);
        self.check_invariants_if_enabled();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptors::CacheDesc;
    use chorus_hal::{CostModel, CostParams, PageGeometry, PhysicalMemory, SoftMmu};
    use std::sync::Arc;

    fn state() -> PvmState {
        let geom = PageGeometry::new(256);
        let model = Arc::new(CostModel::new(CostParams::zero()));
        PvmState::new(
            geom,
            PhysicalMemory::new(geom, 64, model.clone()),
            Box::new(SoftMmu::new(geom, model.clone())),
            model,
            crate::config::PvmConfig {
                check_invariants: true,
                ..Default::default()
            },
        )
    }

    fn frag(child_off: u64, size: u64, parent: CacheKey, parent_off: u64) -> ParentFragment {
        ParentFragment {
            child_off,
            size,
            parent,
            parent_off,
            cor: false,
        }
    }

    #[test]
    fn clip_splits_fragments_and_keeps_child_lists_consistent() {
        let mut s = state();
        let parent = s.caches.insert(CacheDesc::default());
        let child = s.caches.insert(CacheDesc::default());
        s.add_parent_fragment(child, frag(0x100, 0x400, parent, 0x1000));
        // Clip the middle: two pieces survive.
        s.clip_parent_fragments(child, 0x200, 0x300);
        let parents = &s.caches.get(child).unwrap().parents;
        assert_eq!(parents.len(), 2);
        assert_eq!(
            (parents[0].child_off, parents[0].size, parents[0].parent_off),
            (0x100, 0x100, 0x1000)
        );
        assert_eq!(
            (parents[1].child_off, parents[1].size, parents[1].parent_off),
            (0x300, 0x200, 0x1200)
        );
        assert_eq!(s.caches.get(parent).unwrap().children.len(), 2);
        s.check_invariants();
        // Clip everything: no fragments, no child refs.
        s.clip_parent_fragments(child, 0, u64::MAX);
        assert!(s.caches.get(child).unwrap().parents.is_empty());
        assert!(s.caches.get(parent).unwrap().children.is_empty());
        s.check_invariants();
    }

    #[test]
    fn clip_preserves_full_cover_upper_part() {
        let mut s = state();
        let parent = s.caches.insert(CacheDesc::default());
        let w = s.caches.insert(CacheDesc::default());
        s.add_parent_fragment(w, frag(0, FULL_COVER, parent, 0));
        s.clip_parent_fragments(w, 0x100, 0x200);
        let parents = &s.caches.get(w).unwrap().parents;
        assert_eq!(parents.len(), 2);
        // Identity translation preserved on the upper piece.
        assert_eq!(parents[1].to_parent(0x300), 0x300);
        assert_eq!(parents[1].size, FULL_COVER);
    }

    #[test]
    fn attach_creates_working_object_when_history_occupied() {
        let mut s = state();
        let p = s.caches.insert(CacheDesc::default());
        let h = s.caches.insert(CacheDesc::default());
        let other = s.caches.insert(CacheDesc::default());
        // h is p's history with its own data at the offset.
        s.add_parent_fragment(h, frag(0, 0x100, p, 0));
        s.caches.get_mut(p).unwrap().history = Some(h);
        s.caches.get_mut(h).unwrap().owned.insert(0);
        // Attaching another dependent must NOT reuse h (it has data).
        s.attach_child_fragment(other, frag(0, 0x100, p, 0));
        let w = s.caches.get(p).unwrap().history.unwrap();
        assert_ne!(w, h, "a fresh working object is inserted");
        assert!(s.caches.get(w).unwrap().internal);
        assert_eq!(s.caches.get(other).unwrap().parents[0].parent, w);
        assert_eq!(
            s.caches.get(h).unwrap().parents[0].parent,
            w,
            "h re-pointed through w"
        );
        s.check_invariants();
    }

    #[test]
    fn attach_reuses_transparent_working_object() {
        let mut s = state();
        let p = s.caches.insert(CacheDesc::default());
        let a = s.caches.insert(CacheDesc::default());
        let b = s.caches.insert(CacheDesc::default());
        s.attach_child_fragment(a, frag(0, 0x100, p, 0));
        assert_eq!(s.caches.get(p).unwrap().history, Some(a));
        // Second attach: creates w (a has the history slot).
        s.attach_child_fragment(b, frag(0, 0x100, p, 0));
        let w = s.caches.get(p).unwrap().history.unwrap();
        assert!(s.caches.get(w).unwrap().internal);
        // Third attach: the empty transparent w is reused, not chained.
        let c = s.caches.insert(CacheDesc::default());
        s.attach_child_fragment(c, frag(0, 0x100, p, 0));
        assert_eq!(
            s.caches.get(p).unwrap().history,
            Some(w),
            "no second working object"
        );
        assert_eq!(s.caches.get(c).unwrap().parents[0].parent, w);
        s.check_invariants();
    }

    #[test]
    fn history_child_offsets_reports_every_alias() {
        let mut s = state();
        let p = s.caches.insert(CacheDesc::default());
        let h = s.caches.insert(CacheDesc::default());
        s.add_parent_fragment(h, frag(0, 0x100, p, 0x200));
        s.add_parent_fragment(h, frag(0x300, 0x100, p, 0x200));
        s.caches.get_mut(p).unwrap().history = Some(h);
        let mut aliases = s.history_child_offsets(p, 0x240);
        aliases.sort();
        assert_eq!(aliases, vec![(h, 0x40), (h, 0x340)]);
        assert!(s.history_child_offsets(p, 0x100).is_empty());
    }
}
