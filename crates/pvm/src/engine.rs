//! The completion-based asynchronous upcall engine.
//!
//! With `PvmConfig::async_upcalls` set, readahead tail `pullIn`s and
//! watermark-laundering `pushOut`s become *fire-and-collect*: the mapper
//! protocol (including the retry/backoff budget) runs eagerly at submit
//! time with the state lock released, while the request's bookkeeping —
//! cost-model charges, stub clearing, `finish_clean`, quarantine and
//! counters — is deferred into a [`CompletionRecord`] scheduled on the
//! simulated clock. A record becomes *due* at `submit time + modelled
//! service time` (one `IpcOp` round trip plus per-page transfer, read
//! from the cost parameters without charging); the in-flight service
//! time therefore overlaps whatever the submitting thread does next,
//! which is exactly the latency the engine exists to hide.
//!
//! Delivery is deterministic: completions leave the queue in
//! `(due-time, request-id)` order — [`chorus_gmi::CompletionQueue`]'s
//! total order — so the same operation sequence produces bit-identical
//! counters and clock readings run-to-run. Ordinary delivery happens at
//! driver entry for every completion already due (no clock movement:
//! the simulated time was covered by intervening work, so the deferred
//! charges are applied with `count_only`). *Forced* delivery — a stub
//! waiter or a frame-starved allocation that cannot make progress any
//! other way — advances the clock to the record's due time first, which
//! models blocking until the in-flight transfer finishes.
//!
//! The in-flight table is capped per mapper (approximated per segment,
//! the finest mapper identity the PVM sees) at
//! `PvmConfig::max_inflight_upcalls`. Over-cap laundering pushes fall
//! back to the synchronous path; over-cap readahead pulls queue as
//! *pending* requests, and adjacent pending pulls of one cache coalesce
//! into a single elastic batch before submission.

use crate::keys::{CacheKey, PageKey};
use crate::state::PvmState;
use crate::stats::Counter;
use crate::telemetry::DimCounter;
use crate::trace::{TraceEvent, UpcallKind, UpcallOutcome};
use chorus_gmi::{CompletionQueue, GmiError, Result, SegmentId};
use chorus_hal::{Access, FxHashMap, OpKind};
use std::collections::BTreeSet;

/// A submitted asynchronous upcall whose bookkeeping awaits delivery.
#[derive(Debug)]
pub(crate) struct CompletionRecord {
    /// Pull or push (never `GetWriteAccess`: write-access upcalls stay
    /// synchronous — a faulting writer cannot proceed without the
    /// answer, so there is no latency to hide).
    pub kind: UpcallKind,
    /// Target cache.
    pub cache: CacheKey,
    /// Its segment.
    pub segment: SegmentId,
    /// Page-aligned fragment offset.
    pub offset: u64,
    /// Fragment size in bytes.
    pub size: u64,
    /// For pushes: the run of pages left `cleaning` until delivery.
    pub pages: Vec<PageKey>,
    /// The mapper protocol's final result (retries already ran).
    pub result: Result<()>,
    /// Transient retries the protocol performed at submit time.
    pub retries: u64,
    /// Absolute simulated deadline: submit time plus the retry
    /// policy's per-upcall deadline (`u64::MAX` when deadlines are
    /// disabled). The watchdog cancels the request once the clock
    /// passes this while the record is still undelivered.
    pub deadline_ns: u64,
}

/// Simulated "never": the due time given to a request whose mapper
/// protocol timed out at submit — the reply will not arrive on its
/// own. One simulated hour: far beyond any workload's horizon but
/// finite, so a forced delivery advances the clock instead of
/// overflowing it. The watchdog cancels such requests at their
/// deadline; with the watchdog off, forcing one reproduces the
/// pre-watchdog stall (the observable hang in the ablation tests).
pub(crate) const HUNG_REPLY_NS: u64 = 3_600_000_000_000;

/// A readahead pull that could not be submitted (per-mapper cap):
/// queued, coalescible, submitted as in-flight slots free up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PendingPull {
    /// Target cache.
    pub cache: CacheKey,
    /// Its segment.
    pub segment: SegmentId,
    /// Page-aligned fragment offset.
    pub offset: u64,
    /// Fragment size in bytes.
    pub size: u64,
    /// Access mode of the originating fault.
    pub access: Access,
}

/// The engine's state, living inside the PVM's one state mutex so
/// submissions and deliveries serialize with every other attempt.
#[derive(Debug, Default)]
pub(crate) struct EngineState {
    /// Completions ordered by `(due_ns, request_id)`.
    pub queue: CompletionQueue<CompletionRecord>,
    /// Monotonic request-id source (ids start at 1).
    next_id: u64,
    /// Every in-flight request id (submitted, not yet delivered). The
    /// minimum surviving id below a delivered id is the out-of-order
    /// delivery signal.
    inflight_ids: BTreeSet<u64>,
    /// In-flight request count per segment (the per-mapper cap proxy).
    inflight_by_segment: FxHashMap<u64, u64>,
    /// Queued over-cap readahead pulls, in arrival order.
    pub pending_pulls: Vec<PendingPull>,
    /// Watchdog timeouts per segment since its last successful
    /// delivery; feeds the Suspected/quarantine escalation ladder.
    timeouts_by_segment: FxHashMap<u64, u32>,
    /// Segments whose mapper is currently Suspected: in-flight cap
    /// shrunk to 1 and demand pulls degraded to the synchronous path.
    suspected: BTreeSet<u64>,
}

impl EngineState {
    pub fn new() -> EngineState {
        EngineState {
            queue: CompletionQueue::new(),
            next_id: 1,
            inflight_ids: BTreeSet::new(),
            inflight_by_segment: FxHashMap::default(),
            pending_pulls: Vec::new(),
            timeouts_by_segment: FxHashMap::default(),
            suspected: BTreeSet::new(),
        }
    }

    /// True when `segment`'s mapper is under suspicion (repeated
    /// watchdog timeouts without a successful delivery in between).
    pub fn is_suspected(&self, segment: SegmentId) -> bool {
        self.suspected.contains(&segment.0)
    }

    /// The effective in-flight cap for `segment`: the configured cap,
    /// shrunk to 1 while the mapper is Suspected.
    pub fn cap_for(&self, segment: SegmentId, cap: u64) -> u64 {
        if self.is_suspected(segment) {
            1
        } else {
            cap
        }
    }

    /// Records one watchdog timeout against `segment`; returns the
    /// total observed since the last successful delivery.
    pub fn note_timeout(&mut self, segment: SegmentId) -> u32 {
        let n = self.timeouts_by_segment.entry(segment.0).or_insert(0);
        *n += 1;
        *n
    }

    /// Marks `segment` Suspected; returns true on the transition.
    pub fn mark_suspected(&mut self, segment: SegmentId) -> bool {
        self.suspected.insert(segment.0)
    }

    /// A successful delivery clears `segment`'s suspicion and timeout
    /// count: the mapper is demonstrably alive again.
    pub fn note_success(&mut self, segment: SegmentId) {
        self.timeouts_by_segment.remove(&segment.0);
        self.suspected.remove(&segment.0);
    }

    /// In-flight requests currently charged against `segment`'s cap.
    pub fn inflight_for(&self, segment: SegmentId) -> u64 {
        self.inflight_by_segment
            .get(&segment.0)
            .copied()
            .unwrap_or(0)
    }

    /// Total in-flight requests (all mappers).
    pub fn inflight(&self) -> u64 {
        self.inflight_ids.len() as u64
    }

    /// True when the engine still owes work: a queued completion, a
    /// request mid-execution, or a pending pull.
    pub fn has_work(&self) -> bool {
        !self.inflight_ids.is_empty() || !self.pending_pulls.is_empty()
    }

    /// Allocates a request id and enters it in the in-flight table.
    pub fn register(&mut self, segment: SegmentId) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.inflight_ids.insert(id);
        *self.inflight_by_segment.entry(segment.0).or_insert(0) += 1;
        id
    }

    /// Removes a delivered id; returns true when an older request is
    /// still in flight (this delivery overtook it).
    fn retire(&mut self, id: u64, segment: SegmentId) -> bool {
        self.inflight_ids.remove(&id);
        if let Some(n) = self.inflight_by_segment.get_mut(&segment.0) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                self.inflight_by_segment.remove(&segment.0);
            }
        }
        self.inflight_ids.first().is_some_and(|&oldest| oldest < id)
    }

    /// Queues a pull the cap rejected, coalescing it with an adjacent
    /// pending pull of the same cache into one elastic batch. Returns
    /// true when it merged.
    pub fn queue_pending_pull(&mut self, pull: PendingPull) -> bool {
        for p in &mut self.pending_pulls {
            if p.cache != pull.cache || p.segment != pull.segment {
                continue;
            }
            if p.offset + p.size == pull.offset {
                p.size += pull.size;
                return true;
            }
            if pull.offset + pull.size == p.offset {
                p.offset = pull.offset;
                p.size += pull.size;
                return true;
            }
        }
        self.pending_pulls.push(pull);
        false
    }

    /// Takes the first pending pull whose segment has a free in-flight
    /// slot under its effective cap (`cap`, shrunk to 1 when the
    /// mapper is Suspected).
    pub fn take_submittable_pending(&mut self, cap: u64) -> Option<PendingPull> {
        let idx = self
            .pending_pulls
            .iter()
            .position(|p| self.inflight_for(p.segment) < self.cap_for(p.segment, cap))?;
        Some(self.pending_pulls.remove(idx))
    }

    // ----- introspection (pvmtop) ------------------------------------------

    /// Segments currently Suspected, ascending.
    pub fn suspected_segments(&self) -> Vec<u64> {
        self.suspected.iter().copied().collect()
    }

    /// Watchdog timeouts per segment since its last successful
    /// delivery, ascending by segment id.
    pub fn timeout_counts(&self) -> Vec<(u64, u32)> {
        let mut v: Vec<_> = self
            .timeouts_by_segment
            .iter()
            .map(|(&s, &n)| (s, n))
            .collect();
        v.sort_unstable_by_key(|&(s, _)| s);
        v
    }

    /// In-flight request counts per segment, ascending by segment id.
    pub fn inflight_counts(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<_> = self
            .inflight_by_segment
            .iter()
            .map(|(&s, &n)| (s, n))
            .collect();
        v.sort_unstable_by_key(|&(s, _)| s);
        v
    }
}

impl PvmState {
    /// The modelled service time of an asynchronous upcall covering
    /// `pages` pages: one mapper round trip plus the per-page transfer,
    /// read from the cost parameters *without* charging (the charge is
    /// deferred to delivery).
    pub(crate) fn upcall_service_ns(&self, pages: u64) -> u64 {
        let p = self.model.params();
        p.get(OpKind::IpcOp) + pages * p.get(OpKind::SegmentIoPage)
    }

    /// Applies one delivered completion's deferred bookkeeping under the
    /// state lock. `forced` means a waiter blocked until this transfer
    /// finished: the clock advances to the record's due time (ordinary
    /// pumped deliveries are already past it, and only count the ops).
    pub(crate) fn apply_completion(&mut self, due_ns: u64, id: u64, rec: CompletionRecord) {
        let now = self.model.now().nanos();
        if due_ns > now {
            self.model.advance_ns(due_ns - now);
        }
        let overtook = self.engine.retire(id, rec.segment);
        if overtook {
            self.stats.bump(Counter::AsyncOutOfOrder);
        }
        self.stats.bump(Counter::AsyncDeliveries);
        self.stats.add(Counter::MapperRetries, rec.retries);
        self.dim_mapper(rec.segment, DimCounter::Retries, rec.retries);
        let ps = self.ps();
        let pages = rec.size / ps;
        match rec.kind {
            UpcallKind::PullIn => {
                // Clear any stub the pull left behind: on success the
                // `fillUp`s already replaced them with real pages; on
                // failure this wakes every faulter asleep on one so it
                // re-drives its own (synchronous) pull.
                let mut cur = rec.offset;
                while cur < rec.offset + rec.size {
                    if self.is_sync_stub(rec.cache, cur) {
                        self.clear_slot(rec.cache, cur);
                    }
                    cur += ps;
                }
                if rec.result.is_ok() {
                    self.stats.bump(Counter::PullIns);
                    self.dim_io(rec.cache, rec.segment, DimCounter::PullIns, 1);
                    self.model.count_only(OpKind::IpcOp);
                    self.model.count_only_n(OpKind::SegmentIoPage, pages);
                }
            }
            UpcallKind::PushOut => {
                if rec.result.is_ok() {
                    self.model.count_only(OpKind::IpcOp);
                    self.model.count_only_n(OpKind::SegmentIoPage, pages);
                    self.stats.bump(Counter::PushOutBatches);
                    self.dim_io(
                        rec.cache,
                        rec.segment,
                        DimCounter::PushOuts,
                        rec.pages.len() as u64,
                    );
                    for &p in &rec.pages {
                        self.finish_clean(p, true);
                    }
                    self.grow_seg_len(rec.cache, rec.offset + rec.size);
                } else {
                    // The pages keep their dirty bits: no modified data
                    // is lost, the next laundering pass re-drives them.
                    for &p in &rec.pages {
                        self.finish_clean(p, false);
                    }
                }
            }
            UpcallKind::VictimAdvice => {
                // The advice round trip: the segment manager already
                // answered eagerly at submit; the masked candidate
                // batch waits in `rec.pages`. A cancelled/failed round
                // approves nothing but still releases the external
                // policy's in-flight latch so selection can re-request.
                if rec.result.is_ok() {
                    self.model.count_only(OpKind::IpcOp);
                    self.approve_external_victims(&rec.pages);
                } else {
                    self.approve_external_victims(&[]);
                }
            }
            UpcallKind::GetWriteAccess => unreachable!("write access is never asynchronous"),
        }
        match &rec.result {
            // A live reply exonerates a Suspected mapper.
            Ok(()) => self.engine.note_success(rec.segment),
            Err(e) => {
                if matches!(e, GmiError::MapperTimeout { .. }) {
                    self.stats.bump(Counter::MapperTimeouts);
                    self.dim_mapper(rec.segment, DimCounter::Timeouts, 1);
                }
                if !e.is_transient() {
                    self.quarantine_cache(rec.cache);
                }
            }
        }
        let inflight = self.engine.inflight();
        self.trace.event(|| TraceEvent::UpcallComplete {
            kind: rec.kind,
            outcome: match &rec.result {
                Ok(()) => UpcallOutcome::Ok,
                Err(GmiError::MapperTimeout { .. }) => UpcallOutcome::Timeout,
                Err(e) if e.is_transient() => UpcallOutcome::Transient,
                Err(_) => UpcallOutcome::Permanent,
            },
            retries: rec.retries,
            inflight,
        });
    }

    /// Cancels one in-flight completion whose deadline expired: the
    /// request is failed as a mapper timeout through the ordinary
    /// delivery path (pull stubs are cleared so sleepers re-fault,
    /// push pages keep their dirty bits for relaundering — the
    /// existing transient taxonomy), and the timeout is scored against
    /// the mapper for the Suspected/quarantine escalation ladder. The
    /// record is applied at the *current* clock: a cancellation never
    /// advances simulated time to the hung due time.
    pub(crate) fn cancel_completion(&mut self, id: u64, mut rec: CompletionRecord) {
        let segment = rec.segment;
        let cache = rec.cache;
        self.stats.bump(Counter::WatchdogCancels);
        self.dim_mapper(segment, DimCounter::Cancels, 1);
        self.trace.event(|| TraceEvent::WatchdogCancel {
            kind: rec.kind,
            segment: segment.0,
        });
        rec.result = Err(GmiError::MapperTimeout { segment });
        let now = self.model.now().nanos();
        self.apply_completion(now, id, rec);
        let n = self.engine.note_timeout(segment);
        if n >= self.config.suspect_after_timeouts && self.engine.mark_suspected(segment) {
            self.stats.bump(Counter::SuspectedMappers);
            self.trace.event(|| TraceEvent::MapperSuspected {
                segment: segment.0,
                timeouts: n,
            });
        }
        if n >= self.config.quarantine_after_timeouts {
            self.quarantine_cache(cache);
        }
    }

    /// The deadline watchdog sweep: cancels every in-flight completion
    /// whose per-request deadline has expired on the simulated clock
    /// while its due time is still in the future (a record already due
    /// is delivered normally by the next pump). Runs at driver entry;
    /// returns the number of cancellations so the driver can wake stub
    /// sleepers whose stubs were just cleared.
    pub(crate) fn watchdog_sweep(&mut self) -> usize {
        if !self.config.async_upcalls
            || !self.config.upcall_watchdog
            || self.engine.queue.is_empty()
        {
            return 0;
        }
        let now = self.model.now().nanos();
        let expired: Vec<(u64, u64)> = self
            .engine
            .queue
            .iter()
            .filter(|(&(due, _), rec)| due > now && rec.deadline_ns <= now)
            .map(|(&k, _)| k)
            .collect();
        let n = expired.len();
        for (due, id) in expired {
            if let Some(rec) = self.engine.queue.remove(due, id) {
                self.cancel_completion(id, rec);
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::CacheKey;
    use chorus_hal::Id;

    fn key() -> CacheKey {
        Id::from_raw_parts(0, 0)
    }

    #[test]
    fn register_and_retire_track_the_per_segment_cap() {
        let mut e = EngineState::new();
        let (s1, s2) = (SegmentId(1), SegmentId(2));
        let a = e.register(s1);
        let b = e.register(s1);
        let c = e.register(s2);
        assert_eq!(e.inflight_for(s1), 2);
        assert_eq!(e.inflight_for(s2), 1);
        assert_eq!(e.inflight(), 3);
        // Retiring b while a is still in flight is an overtake.
        assert!(e.retire(b, s1));
        assert!(!e.retire(a, s1));
        assert_eq!(e.inflight_for(s1), 0);
        assert!(!e.retire(c, s2));
        assert!(!e.has_work());
    }

    #[test]
    fn adjacent_pending_pulls_coalesce_into_one_batch() {
        let mut e = EngineState::new();
        let c = key();
        let seg = SegmentId(7);
        let mk = |offset: u64, size: u64| PendingPull {
            cache: c,
            segment: seg,
            offset,
            size,
            access: Access::Read,
        };
        assert!(!e.queue_pending_pull(mk(0x2000, 0x2000)));
        // Forward-adjacent: grows the tail.
        assert!(e.queue_pending_pull(mk(0x4000, 0x1000)));
        // Backward-adjacent: grows the head.
        assert!(e.queue_pending_pull(mk(0x1000, 0x1000)));
        // A gap does not coalesce.
        assert!(!e.queue_pending_pull(mk(0x9000, 0x1000)));
        assert_eq!(e.pending_pulls.len(), 2);
        assert_eq!(e.pending_pulls[0], mk(0x1000, 0x4000));
    }

    #[test]
    fn take_submittable_pending_respects_the_cap() {
        let mut e = EngineState::new();
        let c = key();
        let busy = SegmentId(1);
        let idle = SegmentId(2);
        e.register(busy);
        e.queue_pending_pull(PendingPull {
            cache: c,
            segment: busy,
            offset: 0,
            size: 0x2000,
            access: Access::Read,
        });
        e.queue_pending_pull(PendingPull {
            cache: c,
            segment: idle,
            offset: 0x8000,
            size: 0x2000,
            access: Access::Read,
        });
        // Cap 1: the busy mapper's pull must wait, the idle one goes.
        let p = e.take_submittable_pending(1).expect("idle pull");
        assert_eq!(p.segment, idle);
        assert!(e.take_submittable_pending(1).is_none());
        assert!(e.take_submittable_pending(2).is_some());
    }
}
