//! Frame allocation with clock page replacement.
//!
//! The data management policy (page-out decisions) belongs to the memory
//! manager below the GMI (§3.3.3). When the frame pool is exhausted the
//! clock sweep picks a victim: clean victims are evicted inline; dirty
//! victims are first cleaned by a `pushOut` upcall (preceded, for
//! segment-less temporary caches, by a `segmentCreate` upcall — the
//! §5.1.2 lazy swap binding). Eviction keeps the cache's `owned` mark so
//! a later miss pulls the page back in.

use crate::descriptors::Slot;
use crate::keys::PageKey;
use crate::policy::{PolicyEngine, StateView};
use crate::state::{blocked, done, Attempt, Blocked, Outcome, PushOrigin, PvmState, StubsTo};
use crate::stats::Counter;
use crate::trace::TraceEvent;
use chorus_gmi::GmiError;
use chorus_hal::{FrameNo, OpKind};

/// Result of one victim-selection round against the policy engine.
enum Pick {
    /// A page to clean or evict right now.
    Victim(PageKey),
    /// The external policy wants the segment manager's advice on this
    /// candidate batch before anything is evicted (blocked action).
    Advice(Vec<PageKey>),
    /// Nothing evictable.
    None,
}

impl PvmState {
    /// Allocates a frame, running page replacement when the pool is dry.
    /// Ordinary allocations keep `emergency_reserve_frames` frames off
    /// limits so the reclaim machinery itself (laundering pushes need a
    /// frame to land pulled data) can always make progress.
    pub fn alloc_frame(&mut self) -> Attempt<FrameNo> {
        let floor = self.config.emergency_reserve_frames;
        self.alloc_frame_with_floor(floor)
    }

    /// Frame allocation for reclaim-critical work (`fillUp` delivering
    /// pulled data): may dip into the emergency reserve that ordinary
    /// faults cannot touch, closing the deadlock where freeing frames
    /// itself needs a frame.
    pub fn alloc_frame_reserved(&mut self) -> Attempt<FrameNo> {
        let reserve = self.config.emergency_reserve_frames;
        if reserve > 0 {
            let free = self.phys.lock().free_frames();
            if free > 0 && free <= reserve {
                self.stats.bump(Counter::ReserveGrants);
            }
        }
        self.alloc_frame_with_floor(0)
    }

    /// The allocation loop: frames above `floor` are handed out freely;
    /// at or below it, page replacement runs (clean victims evicted
    /// inline, dirty ones cleaned via `pushOut`), and when replacement
    /// finds nothing the out-of-memory killer (if enabled) reclaims one
    /// victim context before the allocation finally fails.
    fn alloc_frame_with_floor(&mut self, floor: u32) -> Attempt<FrameNo> {
        let mut oom_killed_once = false;
        loop {
            if self.phys.lock().free_frames() > floor {
                return done(self.phys.lock().alloc().expect("free frame count lied"));
            }
            if self.config.enable_pageout {
                match self.select_victim() {
                    Pick::Victim(victim) => {
                        if self.page(victim).dirty {
                            match self.start_clean(victim, PushOrigin::Demand)? {
                                Outcome::Blocked(b) => return blocked(b),
                                Outcome::Done(()) => continue,
                            }
                        } else {
                            self.evict(victim);
                            continue;
                        }
                    }
                    Pick::Advice(pages) => {
                        return blocked(self.victim_advice_blocked(pages));
                    }
                    Pick::None => {
                        // No victim, but the completion engine owes work
                        // (e.g. every candidate is `cleaning` under an
                        // in-flight laundering push): delivering a
                        // completion makes those pages clean and
                        // evictable, so wait for one instead of reporting
                        // a premature OutOfMemory.
                        if self.config.async_upcalls && self.engine.has_work() {
                            return blocked(Blocked::AwaitCompletion);
                        }
                    }
                }
            }
            // Reclaim made no progress at all (or is disabled). Kill at
            // most one victim context per allocation attempt; if even
            // that frees nothing, the allocation fails.
            if self.config.oom_killer && !oom_killed_once {
                oom_killed_once = true;
                if self.oom_kill_victim() > 0 {
                    continue;
                }
            }
            return Err(GmiError::OutOfMemory);
        }
    }

    /// Allocates a frame while `keep` is guaranteed to stay resident:
    /// the inline eviction inside [`PvmState::alloc_frame`] must not pick
    /// the page whose contents the caller is about to copy.
    pub fn alloc_frame_keeping(&mut self, keep: PageKey) -> Attempt<FrameNo> {
        self.page_mut(keep).lock_count += 1;
        let result = self.alloc_frame();
        // The page may only disappear while the caller is blocked (lock
        // released); within this attempt it stayed pinned.
        if self.pages.contains(keep) {
            self.page_mut(keep).lock_count -= 1;
        }
        result
    }

    /// One victim-selection call into the policy engine (the default
    /// `Clock` policy reproduces the classic two-sweep clock, reference
    /// bit clearing and `ClockFullSweeps` accounting included). Every
    /// tracked entry is a live page (freed pages leave the policy
    /// eagerly), so no stale-key compaction is needed.
    fn select_victim(&mut self) -> Pick {
        self.stats.bump(Counter::PolicyVictimRequests);
        let mut engine = core::mem::replace(&mut self.policy, PolicyEngine::placeholder());
        let out = engine.select_victims(
            1,
            &mut StateView {
                pages: &mut self.pages,
                caches: &self.caches,
            },
        );
        self.policy = engine;
        // The clock's sweep bookkeeping, exactly as before the policy
        // split: `step / n` full sweeps on success, two on exhaustion,
        // a trace event whenever the count is positive.
        self.stats.add(Counter::ClockFullSweeps, out.full_sweeps);
        if out.full_sweeps > 0 {
            let sweeps = out.full_sweeps;
            self.trace.event(|| TraceEvent::ClockSweep { sweeps });
        }
        if out.external_fallback {
            self.stats.bump(Counter::PolicyExternalFallbacks);
        }
        if let Some(&victim) = out.victims.first() {
            self.stats.bump(Counter::PolicyVictims);
            if self.telemetry.enabled() {
                self.dim_cache(
                    self.page(victim).cache,
                    crate::telemetry::DimCounter::PolicyVictims,
                    1,
                );
            }
            return Pick::Victim(victim);
        }
        if let Some(pages) = out.need_advice {
            return Pick::Advice(pages);
        }
        Pick::None
    }

    /// Builds the blocked `victimAdvice` action for a candidate batch:
    /// resolves each page's public identity for the segment manager.
    fn victim_advice_blocked(&self, pages: Vec<PageKey>) -> Blocked {
        let idents = pages
            .iter()
            .map(|&p| {
                let d = self.page(p);
                (crate::keys::pub_cache(d.cache), d.offset)
            })
            .collect();
        Blocked::VictimAdvice { pages, idents }
    }

    /// Emergency eviction pass (fault-recovery degradation): evicts every
    /// clean, unpinned, non-cleaning resident page regardless of
    /// reference bits. Used when a `fillUp` delivering pulled data cannot
    /// allocate a frame — failing that allocation would strand the pull
    /// and wedge every faulter waiting on its stubs, so trading the whole
    /// clean working set for progress is the better degradation. Returns
    /// the number of frames freed.
    pub fn emergency_evict(&mut self) -> u64 {
        let candidates: Vec<PageKey> = self
            .policy
            .keys()
            .into_iter()
            .filter(|&k| {
                self.pages
                    .get(k)
                    .map(|p| !p.dirty && !p.cleaning && p.lock_count == 0)
                    .unwrap_or(false)
            })
            .collect();
        let mut freed = 0u64;
        for k in candidates {
            if !self.pages.contains(k) {
                continue;
            }
            self.evict(k);
            freed += 1;
        }
        if freed > 0 {
            self.stats.bump(Counter::EmergencyPageouts);
        }
        freed
    }

    /// Begins cleaning a dirty victim: gathers the surrounding run of
    /// contiguous dirty pages (up to `push_cluster_pages`), downgrades
    /// every run member's mappings so re-dirtying faults, marks them
    /// cleaning, and requests one batched `pushOut` upcall (or first a
    /// `segmentCreate` if the cache has no segment yet). `Done(())`
    /// means the victim's cache died and the page was simply evicted.
    fn start_clean(&mut self, victim: PageKey, origin: PushOrigin) -> Attempt<()> {
        let cache = self.page(victim).cache;
        let Some(desc) = self.caches.get(cache) else {
            // Orphaned page: its cache died; just evict.
            self.evict(victim);
            return done(());
        };
        let Some(segment) = desc.segment else {
            return blocked(Blocked::NeedSegment { cache });
        };
        let limit = self.config.push_cluster_pages.max(1);
        let (offset, pages) = self.gather_push_run(victim, limit);
        // Write-protect every mapping so a concurrent write faults and
        // waits for the cleaning to finish (`begin_cleaning` narrows the
        // fast-path entries in the same step so a racing writer cannot
        // satisfy its fault lock-free and dodge the synchronization).
        for &p in &pages {
            self.begin_cleaning(p);
        }
        let size = pages.len() as u64 * self.ps();
        blocked(Blocked::PushOut {
            cache,
            segment,
            offset,
            size,
            pages,
            origin,
        })
    }

    /// Extends a dirty victim into the longest run of pages contiguous
    /// in (cache, offset) that are resident, dirty, unpinned and not
    /// already being cleaned, capped at `limit` pages. Returns the run's
    /// start offset and its pages in offset order.
    fn gather_push_run(&self, victim: PageKey, limit: u64) -> (u64, Vec<PageKey>) {
        let ps = self.ps();
        let cache = self.page(victim).cache;
        let base = self.page(victim).offset;
        let mut start = base;
        let mut pages = vec![victim];
        // With large pages on, clamp the run to the victim's large page
        // so a batched push never straddles a promotion-granule boundary
        // — cleaning one run demotes at most one large mapping, and
        // writeback I/O stays huge-page aligned.
        let (lo_bound, hi_bound) = if self.config.large_pages {
            let lo = self.geom.round_down_large(base);
            (lo, lo + self.geom.large_page_size())
        } else {
            (0, u64::MAX)
        };
        let eligible = |o: u64| -> Option<PageKey> {
            match self.gmap.get(cache, o) {
                Some(Slot::Present(p)) => {
                    let page = self.page(p);
                    (page.dirty && !page.cleaning && page.lock_count == 0).then_some(p)
                }
                _ => None,
            }
        };
        while (pages.len() as u64) < limit && start >= ps && start - ps >= lo_bound {
            let Some(p) = eligible(start - ps) else { break };
            pages.insert(0, p);
            start -= ps;
        }
        let mut next = base + ps;
        while (pages.len() as u64) < limit && next + ps <= hi_bound {
            let Some(p) = eligible(next) else { break };
            pages.push(p);
            next += ps;
        }
        (start, pages)
    }

    /// One step of the watermark-driven laundering pass: while fewer
    /// than `high` frames are free, evict clean victims inline and hand
    /// dirty ones to [`PvmState::start_clean`] as daemon-origin batched
    /// pushes. `Done(())` means the pass is finished (watermark reached
    /// or no evictable victim remains); `Blocked` must be performed and
    /// the attempt retried, like any other blocked action.
    pub fn launder_attempt(&mut self, high: u32) -> Attempt<()> {
        loop {
            if self.phys.lock().free_frames() >= high {
                return done(());
            }
            match self.select_victim() {
                Pick::Victim(victim) => {
                    if self.page(victim).dirty {
                        match self.start_clean(victim, PushOrigin::Daemon)? {
                            Outcome::Blocked(b) => return blocked(b),
                            Outcome::Done(()) => {}
                        }
                    } else {
                        self.evict(victim);
                    }
                }
                Pick::Advice(pages) => {
                    return blocked(self.victim_advice_blocked(pages));
                }
                Pick::None => return done(()),
            }
        }
    }

    /// Called by the driver after a successful `pushOut`: the page is
    /// clean and will be picked as a victim on the retry.
    pub fn finish_clean(&mut self, page: PageKey, success: bool) {
        if let Some(p) = self.pages.get_mut(page) {
            p.cleaning = false;
            if success {
                p.dirty = false;
                // Make it an immediate eviction candidate.
                p.ref_bit = false;
                self.policy.cleaned(page);
            }
            self.stats.add(Counter::PushOuts, success as u64);
        }
    }

    /// Evicts a clean resident page: unmap, re-point stubs at the
    /// segment location, drop the slot (ownership mark stays), release
    /// the frame.
    pub fn evict(&mut self, victim: PageKey) {
        debug_assert!(!self.page(victim).dirty, "evicting a dirty page");
        self.stats.bump(Counter::Evictions);
        self.dim_cache(
            self.page(victim).cache,
            crate::telemetry::DimCounter::Evictions,
            1,
        );
        self.trace.event(|| TraceEvent::Eviction {
            cache: self.page(victim).cache.index(),
            offset: self.page(victim).offset,
        });
        self.charge(OpKind::UnmapPage);
        self.free_page(victim, StubsTo::Loc, true);
    }

    /// True if (cache, off) currently holds a synchronization stub.
    pub fn is_sync_stub(&self, cache: crate::keys::CacheKey, off: u64) -> bool {
        matches!(self.gmap.get(cache, off), Some(Slot::Sync))
    }

    /// Resident and dirty page counts of a context's footprint: every
    /// resident page reachable through one of its regions' windows.
    /// Probes the global map directly (uncharged — pure accounting for
    /// the OOM score, never on the default path).
    fn context_footprint(&self, ctx: crate::keys::CtxKey) -> (u64, u64) {
        let mut resident = 0u64;
        let mut dirty = 0u64;
        let Some(desc) = self.contexts.get(ctx) else {
            return (0, 0);
        };
        for &r in &desc.regions {
            let Some(region) = self.regions.get(r) else {
                continue;
            };
            let Some(cache) = self.caches.get(region.cache) else {
                continue;
            };
            for &off in cache
                .entries
                .range(region.offset..region.offset + region.size)
            {
                if let Some(Slot::Present(p)) = self.gmap.get(region.cache, off) {
                    resident += 1;
                    dirty += self.page(p).dirty as u64;
                }
            }
        }
        (resident, dirty)
    }

    /// The out-of-memory killer: scores every context by footprint
    /// (resident + dirty pages) and recent fault activity, tears the
    /// worst victim down through the ordinary context-destroy path, and
    /// frees the reclaimable resident pages of caches that thereby lost
    /// their last user. Dirty contents die with the victim — that is
    /// the OOM contract — but pages other caches still depend on
    /// (copy-on-write stub sources) are left alone. Returns the number
    /// of frames returned to the pool. Deterministic: ties break toward
    /// the lowest arena index.
    pub fn oom_kill_victim(&mut self) -> u64 {
        let mut best: Option<(crate::keys::CtxKey, u64, u64, u64)> = None;
        for ctx in self.contexts.ids() {
            let (resident, dirty) = self.context_footprint(ctx);
            let faults = self.contexts.get(ctx).map(|c| c.recent_faults).unwrap_or(0);
            let score = (resident + dirty).max(faults);
            if best.map(|(_, _, _, s)| score > s).unwrap_or(true) {
                best = Some((ctx, resident, dirty, score));
            }
        }
        let Some((victim, resident, dirty, _)) = best else {
            return 0;
        };
        let free_before = self.phys.lock().free_frames();
        // Caches the victim maps: once the context is gone they may
        // have no user left, making their resident pages freeable.
        let mut touched: Vec<crate::keys::CacheKey> = Vec::new();
        if let Some(desc) = self.contexts.get(victim) {
            for &r in &desc.regions.clone() {
                if let Some(region) = self.regions.get(r) {
                    if !touched.contains(&region.cache) {
                        touched.push(region.cache);
                    }
                }
            }
        }
        // Tear the address space down through the existing destroy path
        // (force-unlocks pinned regions, invalidates mappings, drops
        // the translation cache generation).
        let _ = self.context_destroy_locked(victim);
        for cache in touched {
            let Some(c) = self.caches.get(cache) else {
                continue;
            };
            if c.mapped_regions != 0 || c.internal || c.zombie || !c.children.is_empty() {
                // Still in use (another context, or history descendants
                // that may pull values from it): keep its pages.
                continue;
            }
            let offsets: Vec<u64> = c.entries.iter().copied().collect();
            for off in offsets {
                let Some(Slot::Present(p)) = self.gmap.get(cache, off) else {
                    continue;
                };
                let page = self.page(p);
                if page.lock_count == 0 && !page.cleaning && page.stubs.is_empty() {
                    self.free_page(p, StubsTo::AlreadyHandled, true);
                }
            }
        }
        self.stats.bump(Counter::OomKills);
        self.oom_killed.push(crate::keys::pub_ctx(victim));
        self.trace.event(|| TraceEvent::OomKill {
            ctx: victim.index(),
            resident,
            dirty,
        });
        (self.phys.lock().free_frames() - free_before) as u64
    }
}
