//! Frame allocation with clock page replacement.
//!
//! The data management policy (page-out decisions) belongs to the memory
//! manager below the GMI (§3.3.3). When the frame pool is exhausted the
//! clock sweep picks a victim: clean victims are evicted inline; dirty
//! victims are first cleaned by a `pushOut` upcall (preceded, for
//! segment-less temporary caches, by a `segmentCreate` upcall — the
//! §5.1.2 lazy swap binding). Eviction keeps the cache's `owned` mark so
//! a later miss pulls the page back in.

use crate::descriptors::Slot;
use crate::keys::PageKey;
use crate::state::{blocked, done, Attempt, Blocked, PvmState, StubsTo};
use crate::stats::Counter;
use crate::trace::TraceEvent;
use chorus_gmi::GmiError;
use chorus_hal::{FrameNo, OpKind, Prot};

impl PvmState {
    /// Allocates a frame, running page replacement when the pool is dry.
    pub fn alloc_frame(&mut self) -> Attempt<FrameNo> {
        if let Some(f) = self.phys.alloc() {
            return done(f);
        }
        if !self.config.enable_pageout {
            return Err(GmiError::OutOfMemory);
        }
        match self.select_victim() {
            Some(victim) => {
                let page = self.page(victim);
                if page.dirty {
                    self.start_clean(victim)
                } else {
                    self.evict(victim);
                    match self.phys.alloc() {
                        Some(f) => done(f),
                        None => Err(GmiError::OutOfMemory),
                    }
                }
            }
            None => Err(GmiError::OutOfMemory),
        }
    }

    /// Allocates a frame while `keep` is guaranteed to stay resident:
    /// the inline eviction inside [`PvmState::alloc_frame`] must not pick
    /// the page whose contents the caller is about to copy.
    pub fn alloc_frame_keeping(&mut self, keep: PageKey) -> Attempt<FrameNo> {
        self.page_mut(keep).lock_count += 1;
        let result = self.alloc_frame();
        // The page may only disappear while the caller is blocked (lock
        // released); within this attempt it stayed pinned.
        if self.pages.contains(keep) {
            self.page_mut(keep).lock_count -= 1;
        }
        result
    }

    /// One clock sweep over the resident ring: clears reference bits and
    /// skips pinned/cleaning pages. Every ring entry is a live page
    /// (freed pages leave the ring eagerly), so there is no stale-key
    /// compaction — each `advance` examines a real candidate.
    fn select_victim(&mut self) -> Option<PageKey> {
        if self.resident.is_empty() {
            return None;
        }
        let n = self.resident.len();
        // Two full sweeps: the first clears reference bits, the second
        // finds a victim even if everything was recently referenced.
        for step in 0..(2 * n) {
            let key = self.resident.advance().expect("ring emptied mid-sweep");
            let page = self.pages.get_mut(key).expect("dead key in clock ring");
            if page.lock_count > 0 || page.cleaning {
                continue;
            }
            if page.ref_bit {
                page.ref_bit = false;
                continue;
            }
            // A quarantined cache's dirty page cannot be cleaned (its
            // mapper failed permanently); picking it would leak the
            // mapper error into an unrelated allocation. Clean pages of
            // quarantined caches are still evictable.
            if page.dirty
                && self
                    .caches
                    .get(page.cache)
                    .map(|c| c.poisoned)
                    .unwrap_or(false)
            {
                continue;
            }
            let sweeps = (step / n) as u64;
            self.stats.add(Counter::ClockFullSweeps, sweeps);
            if sweeps > 0 {
                self.trace.event(|| TraceEvent::ClockSweep { sweeps });
            }
            return Some(key);
        }
        self.stats.add(Counter::ClockFullSweeps, 2);
        self.trace.event(|| TraceEvent::ClockSweep { sweeps: 2 });
        None
    }

    /// Emergency eviction pass (fault-recovery degradation): evicts every
    /// clean, unpinned, non-cleaning resident page regardless of
    /// reference bits. Used when a `fillUp` delivering pulled data cannot
    /// allocate a frame — failing that allocation would strand the pull
    /// and wedge every faulter waiting on its stubs, so trading the whole
    /// clean working set for progress is the better degradation. Returns
    /// the number of frames freed.
    pub fn emergency_evict(&mut self) -> u64 {
        let candidates: Vec<PageKey> = self
            .resident
            .iter()
            .filter(|&k| {
                self.pages
                    .get(k)
                    .map(|p| !p.dirty && !p.cleaning && p.lock_count == 0)
                    .unwrap_or(false)
            })
            .collect();
        let mut freed = 0u64;
        for k in candidates {
            if !self.pages.contains(k) {
                continue;
            }
            self.evict(k);
            freed += 1;
        }
        if freed > 0 {
            self.stats.bump(Counter::EmergencyPageouts);
        }
        freed
    }

    /// Begins cleaning a dirty victim: downgrade its mappings so
    /// re-dirtying faults, mark it cleaning, and request the `pushOut`
    /// upcall (or first a `segmentCreate` if the cache has no segment
    /// yet).
    fn start_clean(&mut self, victim: PageKey) -> Attempt<FrameNo> {
        let cache = self.page(victim).cache;
        let offset = self.page(victim).offset;
        let Some(desc) = self.caches.get(cache) else {
            // Orphaned page: its cache died; just evict.
            self.evict(victim);
            return match self.phys.alloc() {
                Some(f) => done(f),
                None => Err(GmiError::OutOfMemory),
            };
        };
        let Some(segment) = desc.segment else {
            return blocked(Blocked::NeedSegment { cache });
        };
        // Write-protect every mapping so a concurrent write faults and
        // waits for the cleaning to finish. The fast-path entry is
        // narrowed in the same step so a racing writer cannot satisfy
        // its fault lock-free and dodge the cleaning synchronization.
        let mappings = self.page(victim).mappings.clone();
        let frame = self.page(victim).frame;
        for m in mappings {
            if let Ok(c) = self.ctx(m.ctx) {
                let mmu_ctx = c.mmu_ctx;
                if let Some((_, prot)) = self.mmu.query(mmu_ctx, m.vpn) {
                    let narrowed = prot.remove(Prot::WRITE);
                    self.mmu.protect(mmu_ctx, m.vpn, narrowed);
                    self.fast.install(m.ctx, m.vpn, frame, narrowed);
                }
            }
        }
        self.page_mut(victim).cleaning = true;
        let size = self.ps();
        blocked(Blocked::PushOut {
            cache,
            segment,
            offset,
            size,
            page: victim,
        })
    }

    /// Called by the driver after a successful `pushOut`: the page is
    /// clean and will be picked as a victim on the retry.
    pub fn finish_clean(&mut self, page: PageKey, success: bool) {
        if let Some(p) = self.pages.get_mut(page) {
            p.cleaning = false;
            if success {
                p.dirty = false;
                // Make it an immediate eviction candidate.
                p.ref_bit = false;
            }
            self.stats.add(Counter::PushOuts, success as u64);
        }
    }

    /// Evicts a clean resident page: unmap, re-point stubs at the
    /// segment location, drop the slot (ownership mark stays), release
    /// the frame.
    pub fn evict(&mut self, victim: PageKey) {
        debug_assert!(!self.page(victim).dirty, "evicting a dirty page");
        self.stats.bump(Counter::Evictions);
        self.trace.event(|| TraceEvent::Eviction {
            cache: self.page(victim).cache.index(),
            offset: self.page(victim).offset,
        });
        self.charge(OpKind::UnmapPage);
        self.free_page(victim, StubsTo::Loc, true);
    }

    /// True if (cache, off) currently holds a synchronization stub.
    pub fn is_sync_stub(&self, cache: crate::keys::CacheKey, off: u64) -> bool {
        matches!(self.gmap.get(cache, off), Some(Slot::Sync))
    }
}
