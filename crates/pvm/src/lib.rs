//! The PVM: the paper's demand-paged implementation of the GMI (§4).
//!
//! The Paged Virtual memory Manager implements the Generic Memory
//! management Interface for paged architectures. It is characterized by
//! (§4):
//!
//! - support for large, sparse segments and large virtual address spaces:
//!   the size of every management structure depends only on the amount of
//!   physical memory in use, never on segment or address-space sizes;
//! - efficient deferred copy: the novel **history object** technique for
//!   large fragments ([`history`](crate::Pvm)) and a **per-virtual-page**
//!   technique for small fragments such as IPC messages, both supporting
//!   copy-on-write and copy-on-reference;
//! - a machine-independent core over the small [`chorus_hal::Mmu`]
//!   interface, reproducing the paper's easy portability across MMUs.
//!
//! The central data structures follow Figure 2 of the paper: context
//! descriptors with sorted region lists, cache descriptors with their
//! resident page sets and history links, real-page descriptors with
//! reverse mappings, and a single **global map** hashing page slots by
//! (cache, offset). A slot can hold a real page, a *synchronization page
//! stub* (page in transit during `pullIn`/`pushOut`; concurrent accessors
//! block), or a *copy-on-write page stub* (per-virtual-page deferred
//! copy).
//!
//! The public type is [`Pvm`], which implements [`chorus_gmi::Gmi`].

mod cachectl;
mod clock;
mod config;
mod copy;
mod debug;
mod descriptors;
mod domains;
mod engine;
mod fastpath;
mod fault;
mod gmap;
mod history;
mod keys;
mod large;
#[cfg(test)]
mod modelcheck;
mod pageout;
mod perpage;
pub mod policy;
mod pvm;
pub mod pvmtop;
mod regions;
mod resolve;
mod state;
mod stats;
pub mod telemetry;
pub mod trace;

pub use config::{
    AsyncSection, LargePagesSection, PagingSection, PolicySection, PressureSection, PvmConfig,
    PvmConfigBuilder, TelemetrySection,
};
pub use debug::{CacheDump, SlotDump, TreeDump};
pub use policy::{PolicyConfig, ReadaheadKind, ReplacementKind};
pub use pvm::{MmuChoice, Pvm, PvmOptions};
pub use pvmtop::{CacheHeat, DomainHeat, MapperHealth, MapperState, PhaseLatency, PvmTop};
pub use stats::{Counter, PvmStats, StatsRegistry};
pub use telemetry::{Dim, DimCounter, Telemetry, TelemetrySample};
pub use trace::{TraceConfig, TraceSink, Tracer};
