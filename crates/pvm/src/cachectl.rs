//! Cache management operations (Table 4): flush, sync, invalidate,
//! protection control, pinning, destruction.
//!
//! These are the hooks a segment server uses "to control some aspects of
//! caching", e.g. to implement distributed coherent virtual memory
//! (§3.3.3): downgrade with `setProtection` so the next write triggers a
//! `getWriteAccess` upcall, push replicas out with `sync`/`flush`, and
//! revoke them with `invalidate`.

use crate::descriptors::Slot;
use crate::keys::{CacheKey, PageKey};
use crate::state::{blocked, done, Attempt, Blocked, PushOrigin, PvmState, StubsTo};
use chorus_gmi::{GmiError, Result};
use chorus_hal::Prot;

impl PvmState {
    fn range_pages(&self, cache: CacheKey, off: u64, size: u64) -> Result<Vec<(u64, Slot)>> {
        let end = off.saturating_add(size);
        Ok(self
            .cache(cache)?
            .entries
            .range(off..end)
            .map(|&o| (o, self.gmap.get(cache, o).expect("entry without slot")))
            .collect())
    }

    /// Finds one run of dirty pages in the range and starts cleaning it
    /// (up to `push_cluster_pages` contiguous dirty pages per `pushOut`);
    /// completes once no dirty page remains.
    pub fn sync_attempt(&mut self, cache: CacheKey, off: u64, size: u64) -> Attempt<()> {
        self.check_not_poisoned(cache)?;
        let end = off.saturating_add(size);
        for (o, slot) in self.range_pages(cache, off, size)? {
            match slot {
                Slot::Present(p) => {
                    let page = self.page(p);
                    if page.cleaning {
                        return blocked(Blocked::WaitStub);
                    }
                    if !page.dirty {
                        continue;
                    }
                    let Some(segment) = self.cache(cache)?.segment else {
                        return blocked(Blocked::NeedSegment { cache });
                    };
                    // Extend the run over contiguous dirty pages still
                    // inside the requested range.
                    let ps = self.ps();
                    let limit = self.config.push_cluster_pages.max(1);
                    let mut run = vec![p];
                    while (run.len() as u64) < limit {
                        let next = o + run.len() as u64 * ps;
                        if next >= end {
                            break;
                        }
                        match self.gmap.get(cache, next) {
                            Some(Slot::Present(q)) => {
                                let page = self.page(q);
                                if page.dirty && !page.cleaning {
                                    run.push(q);
                                } else {
                                    break;
                                }
                            }
                            _ => break,
                        }
                    }
                    for &q in &run {
                        self.begin_cleaning(q);
                    }
                    let size = run.len() as u64 * ps;
                    return blocked(Blocked::PushOut {
                        cache,
                        segment,
                        offset: o,
                        size,
                        pages: run,
                        origin: PushOrigin::Sync,
                    });
                }
                Slot::Sync => return blocked(Blocked::WaitStub),
                Slot::Cow(_) => {}
            }
        }
        done(())
    }

    /// Write-protects a page's mappings and marks it cleaning, so
    /// concurrent writers fault and wait for the push-out to finish.
    pub fn begin_cleaning(&mut self, page: PageKey) {
        // This narrows protection via `mmu.protect` directly (not
        // `reprotect_mappings`), so the covering large mapping — which
        // would keep the old write right alive — must go first.
        let (pc, po) = {
            let p = self.page(page);
            (p.cache, p.offset)
        };
        self.demote_covering_slot(pc, po);
        let mappings = self.page(page).mappings.clone();
        let frame = self.page(page).frame;
        for m in mappings {
            if let Ok(c) = self.ctx(m.ctx) {
                let mmu_ctx = c.mmu_ctx;
                // Hoisted out of the `if let` scrutinee: a scrutinee
                // temporary would keep the trans guard alive across the
                // body, self-deadlocking on the `protect` below.
                let queried = self.mmu.lock().query(mmu_ctx, m.vpn);
                if let Some((_, prot)) = queried {
                    let narrowed = prot.remove(Prot::WRITE);
                    self.mmu.lock().protect(mmu_ctx, m.vpn, narrowed);
                    // Narrow the fast-path entry in the same step so a
                    // racing writer cannot dodge the cleaning wait.
                    self.fast.install(m.ctx, m.vpn, frame, narrowed);
                }
            }
        }
        self.page_mut(page).cleaning = true;
    }

    /// `cache.flush(offset, size)`: sync, then discard the fragment.
    pub fn flush_attempt(&mut self, cache: CacheKey, off: u64, size: u64) -> Attempt<()> {
        match self.sync_attempt(cache, off, size)? {
            crate::state::Outcome::Done(()) => {}
            crate::state::Outcome::Blocked(b) => return blocked(b),
        }
        for (_o, slot) in self.range_pages(cache, off, size)? {
            if let Slot::Present(p) = slot {
                let page = self.page(p);
                if page.lock_count > 0 {
                    return Err(GmiError::Locked);
                }
                debug_assert!(!page.dirty, "flush after sync found a dirty page");
                // Data is safely on the segment; ownership marks stay so
                // later misses pull it back in.
                self.free_page(p, StubsTo::Loc, true);
            }
        }
        done(())
    }

    /// `cache.invalidate(offset, size)`: discard without write-back.
    pub fn invalidate_attempt(&mut self, cache: CacheKey, off: u64, size: u64) -> Attempt<()> {
        let end = off.saturating_add(size);
        for (o, slot) in self.range_pages(cache, off, size)? {
            match slot {
                Slot::Sync => return blocked(Blocked::WaitStub),
                Slot::Cow(src) => {
                    self.unthread_cow_stub(cache, o, src);
                    self.clear_slot(cache, o);
                }
                Slot::Present(p) => {
                    if self.page(p).lock_count > 0 {
                        return Err(GmiError::Locked);
                    }
                    // A history child's snapshot must survive the
                    // invalidation of the local replica.
                    if self.has_history_covering(cache, o) {
                        match self.push_original_to_history(cache, o, p)? {
                            crate::state::Outcome::Done(()) => {}
                            crate::state::Outcome::Blocked(b) => return blocked(b),
                        }
                    }
                    // Stub destinations still need the (pre-invalidation)
                    // value: hand the page over rather than dropping it.
                    if !self.page(p).stubs.is_empty() {
                        self.donate_page_to_stubs(p);
                    } else {
                        self.free_page(p, StubsTo::AlreadyHandled, true);
                    }
                }
            }
        }
        // The cache no longer has its own version of the range.
        let owned: Vec<u64> = self.cache(cache)?.owned.range(off..end).copied().collect();
        for o in owned {
            if self.gmap.has_loc_stubs_at(cache, o) {
                return Err(GmiError::Unsupported(
                    "invalidating swapped-out data with outstanding per-page stubs",
                ));
            }
            self.cache_mut(cache)?.owned.remove(&o);
        }
        done(())
    }

    /// `cache.setProtection(offset, size, prot)`: grants or revokes write
    /// access on the cached fragment (the coherence hook; read access of
    /// resident data is never revoked — use `invalidate` for that).
    pub fn cache_set_protection_locked(
        &mut self,
        cache: CacheKey,
        off: u64,
        size: u64,
        prot: Prot,
    ) -> Result<()> {
        let write_ok = prot.contains(Prot::WRITE);
        for (_o, slot) in self.range_pages(cache, off, size)? {
            if let Slot::Present(p) = slot {
                self.page_mut(p).seg_write_ok = write_ok;
                if !write_ok {
                    // A revocation also means the segment-level copy is
                    // about to be the authoritative one elsewhere; the
                    // next local write must upcall.
                    self.reprotect_mappings(p);
                }
            }
        }
        Ok(())
    }

    /// `cache.lockInMemory(offset, size)`: pull the fragment in and pin
    /// it (cache-level variant of region locking). `pinned` is a page
    /// cursor owned by the driver counting pages this *call* has already
    /// pinned, so blocked attempts resume without double-pinning — and a
    /// page pinned by a different caller still receives this call's own
    /// pin (nested locks balance).
    pub fn cache_lock_attempt(
        &mut self,
        cache: CacheKey,
        off: u64,
        size: u64,
        pinned: &mut u64,
    ) -> Attempt<()> {
        self.check_not_poisoned(cache)?;
        let ps = self.ps();
        let pages = self.geom.pages_for(size);
        for k in 0..pages {
            if k < *pinned {
                continue;
            }
            let o = self.geom.round_down(off) + k * ps;
            match self.slot(cache, o) {
                Some(Slot::Present(p)) => {
                    self.page_mut(p).lock_count += 1;
                    *pinned += 1;
                }
                Some(Slot::Sync) => return blocked(Blocked::WaitStub),
                _ => {
                    // Materialize an own resident page with the current
                    // value, then pin it.
                    let page = match self.own_resident_page(cache, o)? {
                        crate::state::Outcome::Done(p) => p,
                        crate::state::Outcome::Blocked(b) => return blocked(b),
                    };
                    self.page_mut(page).lock_count += 1;
                    *pinned += 1;
                }
            }
        }
        done(())
    }

    /// Materializes (without promoting) an own resident page holding the
    /// current value of (cache, off).
    fn own_resident_page(&mut self, cache: CacheKey, off: u64) -> Attempt<PageKey> {
        use crate::resolve::Version;
        let version = match self.resolve_version(cache, off, chorus_hal::Access::Read)? {
            crate::state::Outcome::Done(v) => v,
            crate::state::Outcome::Blocked(b) => return blocked(b),
        };
        if let Version::Page(p) = version {
            if self.page(p).cache == cache {
                return done(p);
            }
        }
        let alloc = match version {
            Version::Page(p) => self.alloc_frame_keeping(p)?,
            Version::Zero => self.alloc_frame()?,
        };
        let frame = match alloc {
            crate::state::Outcome::Done(f) => f,
            crate::state::Outcome::Blocked(b) => return blocked(b),
        };
        match version {
            Version::Page(p) => {
                let src = self.page(p).frame;
                self.phys.lock().copy_frame(src, frame);
                self.unmap_via(p, cache);
            }
            Version::Zero => self.phys.lock().zero(frame),
        }
        if let Some(Slot::Cow(src)) = self.slot(cache, off) {
            self.unthread_cow_stub(cache, off, src);
        }
        let writable = !self.has_history_covering(cache, off);
        done(self.create_page(cache, off, frame, writable, true))
    }

    /// `cache.unlock(offset, size)`.
    pub fn cache_unlock_locked(&mut self, cache: CacheKey, off: u64, size: u64) -> Result<()> {
        let ps = self.ps();
        let pages = self.geom.pages_for(size);
        for k in 0..pages {
            let o = self.geom.round_down(off) + k * ps;
            self.unlock_one_page(cache, o)?;
        }
        Ok(())
    }

    /// `cache.destroy()` (one attempt): write permanent data back, hand
    /// pages with outstanding stubs over, then either free everything or
    /// become a zombie internal node if descendants remain (§4.2.2).
    pub fn cache_destroy_attempt(&mut self, cache: CacheKey) -> Attempt<()> {
        let desc = self.cache(cache)?;
        if desc.mapped_regions > 0 {
            return Err(GmiError::InvalidArgument(
                "destroying a cache that is still mapped",
            ));
        }
        // Permanent caches write modified data back first — unless the
        // cache was quarantined, in which case its mapper is gone and
        // the write-back is abandoned (the data was already lost to the
        // permanent failure; destruction must still succeed).
        if desc.fully_backed && !desc.poisoned {
            match self.sync_attempt(cache, 0, u64::MAX)? {
                crate::state::Outcome::Done(()) => {}
                crate::state::Outcome::Blocked(b) => return blocked(b),
            }
        }
        // Any page with threaded stubs is donated to its first stub —
        // unless a history child still needs the original here, in which
        // case the stubs get a materialized copy and the page stays for
        // the child.
        let offsets: Vec<u64> = self.cache(cache)?.entries.iter().copied().collect();
        for o in offsets {
            if let Some(Slot::Present(p)) = self.slot(cache, o) {
                if self.page(p).lock_count > 0 {
                    return Err(GmiError::Locked);
                }
                if !self.page(p).stubs.is_empty() {
                    if self.has_history_covering(cache, o) {
                        match self.materialize_stub_original(p)? {
                            crate::state::Outcome::Done(()) => {}
                            crate::state::Outcome::Blocked(b) => return blocked(b),
                        }
                    } else {
                        self.donate_page_to_stubs(p);
                    }
                }
            }
        }
        let has_dependents = {
            let desc = self.cache(cache)?;
            !desc.children.is_empty() || self.gmap.has_loc_stubs_from(cache)
        };
        if has_dependents {
            // "remaining unmodified source data must be kept until the
            // copy is deleted": become a zombie internal node.
            let desc = self.cache_mut(cache)?;
            desc.zombie = true;
            desc.internal = true;
            self.collapse_if_possible(cache);
        } else {
            let desc = self.cache_mut(cache)?;
            desc.zombie = true;
            self.collapse_if_possible(cache); // Reclaims immediately.
        }
        done(())
    }
}
