//! Per-virtual-page copy-on-write (§4.3).
//!
//! For small fragments (IPC messages), the PVM defers copies page by
//! page: each source page present in real memory is protected read-only
//! and a *copy-on-write page stub* is placed in the global map for each
//! destination page. The stub points at the source page descriptor when
//! resident, or at the (source cache, offset) pair otherwise; all stubs
//! for one source page are threaded on a list attached to its page
//! descriptor, so the page is readable through every cache it was copied
//! to, and a write violation — on either side — materializes private
//! copies.

use crate::descriptors::{CowSource, Slot};
use crate::keys::CacheKey;
use crate::state::{blocked, done, Attempt, Blocked, PvmState};
use crate::stats::Counter;
use chorus_gmi::Result;
use chorus_hal::OpKind;

/// The statically-located source of a per-page stub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Located {
    /// A resident page (possibly of an ancestor cache).
    Page(crate::keys::PageKey),
    /// Swapped-out data of the given cache at the given offset.
    Loc(CacheKey, u64),
    /// No data anywhere on the path.
    Zero,
    /// A synchronization stub is in the way.
    InTransit,
}

impl PvmState {
    /// Locates the current version of (cache, off) without side effects
    /// (no pulls): used to decide what a new stub should point at.
    pub fn locate_version(&self, cache: CacheKey, off: u64) -> Result<Located> {
        let mut x = cache;
        let mut o = off;
        let mut steps = self.caches.len() + 2;
        loop {
            assert!(steps > 0, "history tree cycle during locate");
            steps -= 1;
            match self.gmap.get(x, o) {
                Some(Slot::Present(p)) => return Ok(Located::Page(p)),
                Some(Slot::Sync) => return Ok(Located::InTransit),
                Some(Slot::Cow(CowSource::Page(p))) => return Ok(Located::Page(p)),
                Some(Slot::Cow(CowSource::Loc(c2, o2))) => {
                    x = c2;
                    o = o2;
                }
                Some(Slot::Cow(CowSource::Zero)) => return Ok(Located::Zero),
                None => {
                    let desc = self.cache(x)?;
                    if desc.owns(o) {
                        return Ok(Located::Loc(x, o));
                    }
                    match desc.parent_at(o) {
                        Some(frag) => {
                            o = frag.to_parent(o);
                            x = frag.parent;
                        }
                        None => return Ok(Located::Zero),
                    }
                }
            }
        }
    }

    /// One attempt of the per-virtual-page deferred copy.
    pub fn per_page_copy_attempt(
        &mut self,
        src: CacheKey,
        src_off: u64,
        dst: CacheKey,
        dst_off: u64,
        size: u64,
    ) -> Attempt<()> {
        // Clear the destination range (waits out transits, unthreads old
        // stubs, preserves originals for the destination's history).
        match self.overwrite_range(dst, dst_off, size)? {
            crate::state::Outcome::Done(()) => {}
            crate::state::Outcome::Blocked(b) => return blocked(b),
        }
        let ps = self.ps();
        let pages = self.geom.pages_for(size);
        for k in 0..pages {
            let so = src_off + k * ps;
            let dstoff = dst_off + k * ps;
            match self.locate_version(src, so)? {
                Located::InTransit => return blocked(Blocked::WaitStub),
                Located::Page(p) => {
                    // Protect the source page read-only and thread the
                    // stub on its descriptor.
                    self.page_mut(p).stubs.push((dst, dstoff));
                    self.charge(OpKind::ProtectPage);
                    self.reprotect_mappings(p);
                    self.set_slot(dst, dstoff, Slot::Cow(CowSource::Page(p)));
                }
                Located::Loc(c, o) => {
                    self.gmap.push_loc_stub(c, o, (dst, dstoff));
                    self.set_slot(dst, dstoff, Slot::Cow(CowSource::Loc(c, o)));
                }
                Located::Zero => {
                    self.set_slot(dst, dstoff, Slot::Cow(CowSource::Zero));
                }
            }
            self.stats.bump(Counter::CowStubsCreated);
        }
        done(())
    }
}
