//! Deterministic event tracing for the PVM fault pipeline.
//!
//! The tracer records typed events (fault entry/exit, fast-path
//! hit/fallback, stub wait/wake, history pushes and root-ward walk
//! depth, mapper upcalls with retry outcomes, eviction, quarantine)
//! into per-lane bounded ring buffers, each record stamped with the
//! *simulated* cost-model clock (plus an optional wall clock).
//!
//! **Determinism rule (enforced by construction):** no trace call may
//! advance the cost-model clock. The tracer only holds a
//! [`chorus_hal::TraceClock`], which exposes sampling and nothing else —
//! so enabling tracing at full verbosity leaves Tables 5–7 and Figure 3
//! bit-identical to a tracing-off run. When tracing is disabled every
//! trace point is one relaxed atomic load.
//!
//! Lock-cheapness: a record costs one `fetch_add` (the global sequence
//! number) plus one push under a per-lane mutex that only the owning
//! thread and `drain` ever touch, so trace points never contend with
//! each other in steady state.

pub mod histogram;
pub mod sink;

pub use histogram::{Histogram, HistogramSnapshot, Phase};
pub use sink::TraceSink;

use crate::stats::StatsRegistry;
use chorus_hal::{Access, CostModel, TraceClock};
use parking_lot::Mutex;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of ring-buffer lanes (threads hash onto lanes round-robin).
const LANES: usize = 8;

/// Tracing configuration, part of [`crate::PvmConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record trace events. Off by default; when off, every trace point
    /// costs one relaxed atomic load.
    pub enabled: bool,
    /// Capacity of each per-lane ring buffer (records); the oldest
    /// records are overwritten when a lane overflows.
    pub ring_capacity: usize,
    /// Also stamp records with host wall time. Informational only —
    /// never part of any determinism contract — so it defaults to off.
    pub wall_clock: bool,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            enabled: false,
            ring_capacity: 1 << 16,
            wall_clock: false,
        }
    }
}

impl TraceConfig {
    /// Reads the `CHORUS_TRACE` environment variable: unset, empty, `0`
    /// or `off` leave tracing disabled; `1`, `on` or `sim` enable it;
    /// `wall` enables it with wall-clock stamping. The bench worlds use
    /// this so the verify script can regenerate every table with
    /// tracing forced on and diff against the committed copies.
    pub fn from_env() -> TraceConfig {
        let mut cfg = TraceConfig::default();
        match std::env::var("CHORUS_TRACE").as_deref() {
            Ok("1") | Ok("on") | Ok("sim") => cfg.enabled = true,
            Ok("wall") => {
                cfg.enabled = true;
                cfg.wall_clock = true;
            }
            _ => {}
        }
        cfg
    }
}

/// How a fault was resolved (recorded in [`TraceEvent::FaultExit`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// Satisfied by the lock-free translation cache; no state change.
    FastPath,
    /// The page was already resident in the faulting cache (possibly
    /// after a write-permission promote).
    Resident,
    /// An ancestor's page was mapped read-only (deferred-copy share).
    SharedRead,
    /// A zero-filled own page was materialized.
    ZeroFill,
    /// An own page was materialized by copying the source version.
    CowCopy,
    /// The fault failed with an error.
    Failed,
}

impl Resolution {
    /// Stable label for exports.
    pub fn label(self) -> &'static str {
        match self {
            Resolution::FastPath => "fast_path",
            Resolution::Resident => "resident",
            Resolution::SharedRead => "shared_read",
            Resolution::ZeroFill => "zero_fill",
            Resolution::CowCopy => "cow_copy",
            Resolution::Failed => "failed",
        }
    }
}

/// Which mapper upcall a span covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpcallKind {
    /// `pullIn` (§3.3.1).
    PullIn,
    /// `pushOut` (§3.3.1).
    PushOut,
    /// `getWriteAccess` (distributed coherence, §3.3.2).
    GetWriteAccess,
    /// `victimAdvice`: an external replacement policy asking the
    /// segment manager to veto/approve an eviction candidate batch.
    VictimAdvice,
}

impl UpcallKind {
    /// Stable label for exports.
    pub fn label(self) -> &'static str {
        match self {
            UpcallKind::PullIn => "pullIn",
            UpcallKind::PushOut => "pushOut",
            UpcallKind::GetWriteAccess => "getWriteAccess",
            UpcallKind::VictimAdvice => "victimAdvice",
        }
    }

    /// The latency histogram this upcall feeds. Victim advice rides
    /// the `pushOut` track: both are pageout-side mapper round trips.
    pub fn phase(self) -> Phase {
        match self {
            UpcallKind::PullIn => Phase::PullIn,
            UpcallKind::PushOut | UpcallKind::VictimAdvice => Phase::PushOut,
            UpcallKind::GetWriteAccess => Phase::GetWriteAccess,
        }
    }
}

/// How a mapper upcall concluded (after the retry protocol ran).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpcallOutcome {
    /// Succeeded (possibly after retries).
    Ok,
    /// Failed with a transient error after exhausting attempts.
    Transient,
    /// The per-upcall simulated-time deadline expired.
    Timeout,
    /// Failed permanently (quarantine candidate).
    Permanent,
}

impl UpcallOutcome {
    /// Stable label for exports.
    pub fn label(self) -> &'static str {
        match self {
            UpcallOutcome::Ok => "ok",
            UpcallOutcome::Transient => "transient",
            UpcallOutcome::Timeout => "timeout",
            UpcallOutcome::Permanent => "permanent",
        }
    }
}

/// Kind of an injected mapper fault (correlated from the nucleus
/// `FaultyMapper` so injected failures line up with the PVM's retry
/// records on one timeline).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedKind {
    /// Transient I/O error.
    Transient,
    /// Permanent failure.
    Permanent,
    /// Injected delay (simulated time).
    Delay,
    /// Truncated read.
    Truncated,
    /// Mapper death.
    Crash,
    /// Mapper hang: the request never completes; every operation from
    /// the hang point on reports a deadline timeout until the plan is
    /// replaced.
    Hang,
}

impl InjectedKind {
    /// Stable label for exports.
    pub fn label(self) -> &'static str {
        match self {
            InjectedKind::Transient => "transient",
            InjectedKind::Permanent => "permanent",
            InjectedKind::Delay => "delay",
            InjectedKind::Truncated => "truncated",
            InjectedKind::Crash => "crash",
            InjectedKind::Hang => "hang",
        }
    }
}

/// One typed trace point. Ids are raw descriptor indices (`ctx`,
/// `cache`) or raw values (`va`, `offset`, `segment`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A fault entered the pipeline (before the fast-path probe).
    FaultEnter {
        /// Faulting context index.
        ctx: u32,
        /// Faulting virtual address.
        va: u64,
        /// Access mode.
        access: Access,
    },
    /// The fault left the pipeline.
    FaultExit {
        /// Faulting context index.
        ctx: u32,
        /// Faulting virtual address.
        va: u64,
        /// How it was resolved.
        resolution: Resolution,
    },
    /// The lock-free translation cache satisfied the fault.
    FastPathHit {
        /// Faulting context index.
        ctx: u32,
        /// Faulting virtual address.
        va: u64,
    },
    /// The translation cache missed; falling through to the slow path.
    FastPathFallback {
        /// Faulting context index.
        ctx: u32,
        /// Faulting virtual address.
        va: u64,
    },
    /// A thread is about to sleep on a synchronization page stub.
    StubWait {
        /// Cache holding the in-transit page.
        cache: u32,
        /// Page offset.
        offset: u64,
    },
    /// A stub sleeper woke and will retry its attempt.
    StubWake,
    /// An original was preserved into a history object before a write.
    HistoryPush {
        /// Source cache index.
        cache: u32,
        /// Page offset.
        offset: u64,
    },
    /// A root-ward history walk resolved (depth = links followed).
    HistoryWalk {
        /// Starting cache index.
        cache: u32,
        /// Queried offset.
        offset: u64,
        /// Links followed before resolution (0 = hit in the cache).
        depth: u32,
    },
    /// A mapper upcall is leaving the kernel.
    UpcallStart {
        /// Which upcall.
        kind: UpcallKind,
        /// Target segment.
        segment: u64,
        /// Fragment offset.
        offset: u64,
        /// Fragment size.
        size: u64,
    },
    /// A mapper upcall returned (after the retry protocol).
    UpcallEnd {
        /// Which upcall.
        kind: UpcallKind,
        /// Final outcome.
        outcome: UpcallOutcome,
        /// Transient retries performed.
        retries: u64,
    },
    /// An asynchronous upcall entered the per-mapper in-flight table
    /// (fire-and-collect; the mapper protocol already ran eagerly, the
    /// bookkeeping is deferred to the completion delivery).
    UpcallSubmit {
        /// Which upcall.
        kind: UpcallKind,
        /// Target segment.
        segment: u64,
        /// Fragment offset.
        offset: u64,
        /// Fragment size.
        size: u64,
        /// In-flight requests (this one included) after the submit.
        inflight: u64,
    },
    /// A completion was delivered by the scheduler and its deferred
    /// bookkeeping applied.
    UpcallComplete {
        /// Which upcall.
        kind: UpcallKind,
        /// Final outcome.
        outcome: UpcallOutcome,
        /// Transient retries performed.
        retries: u64,
        /// In-flight requests remaining after the delivery.
        inflight: u64,
    },
    /// The clock algorithm evicted a page.
    Eviction {
        /// Owning cache index.
        cache: u32,
        /// Page offset.
        offset: u64,
    },
    /// The clock hand completed full sweep(s) while hunting a victim.
    ClockSweep {
        /// Full passes over the resident ring.
        sweeps: u64,
    },
    /// A cache was quarantined after a permanent mapper failure.
    Quarantine {
        /// Quarantined cache index.
        cache: u32,
    },
    /// The deadline watchdog cancelled an in-flight upcall whose
    /// per-request deadline expired on the simulated clock.
    WatchdogCancel {
        /// Which upcall was cancelled.
        kind: UpcallKind,
        /// The segment whose mapper went quiet.
        segment: u64,
    },
    /// A mapper was escalated to the `Suspected` state after repeated
    /// watchdog timeouts (in-flight cap shrunk, degraded to the
    /// synchronous path).
    MapperSuspected {
        /// The suspected segment.
        segment: u64,
        /// Watchdog timeouts observed so far.
        timeouts: u32,
    },
    /// A faulting thread was stalled by backpressure: the pending
    /// asynchronous pull queue hit its configured bound.
    Throttled {
        /// Pending pulls queued at the stall.
        pending: u64,
    },
    /// The out-of-memory escalation killed a context.
    OomKill {
        /// Killed context index.
        ctx: u32,
        /// Resident pages attributed to the victim at the kill.
        resident: u64,
        /// Dirty pages among them.
        dirty: u64,
    },
    /// The nucleus fault injector fired (correlation marker).
    MapperFaultInjected {
        /// Injected failure kind.
        kind: InjectedKind,
    },
    /// A fully resident aligned run was promoted to one large mapping.
    LargePromote {
        /// Promoted context index.
        ctx: u32,
        /// Base virtual address of the large page.
        va: u64,
        /// Backing cache index.
        cache: u32,
        /// Cache byte offset of the run base.
        offset: u64,
    },
    /// A large mapping was demoted back to base pages.
    LargeDemote {
        /// Demoted context index.
        ctx: u32,
        /// Base virtual address of the large page.
        va: u64,
    },
    /// A named nested phase opened (span API).
    SpanBegin {
        /// Static span name.
        name: &'static str,
    },
    /// The innermost open span with this name closed.
    SpanEnd {
        /// Static span name.
        name: &'static str,
    },
}

/// One recorded event with its stamps and total-order sequence number.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Global sequence number (total order across lanes).
    pub seq: u64,
    /// Simulated time at the event (deterministic).
    pub sim_ns: u64,
    /// Wall time since tracer construction, when enabled.
    pub wall_ns: Option<u64>,
    /// Recording lane (stable per thread; exported as the tid).
    pub lane: u32,
    /// The event.
    pub event: TraceEvent,
}

/// One bounded per-lane ring.
struct Ring {
    buf: Vec<TraceRecord>,
    cap: usize,
    /// Next overwrite position once full.
    next: usize,
}

impl Ring {
    fn new(cap: usize) -> Ring {
        Ring {
            buf: Vec::new(),
            cap: cap.max(1),
            next: 0,
        }
    }

    /// Pushes a record; returns true if an old record was overwritten.
    fn push(&mut self, rec: TraceRecord) -> bool {
        if self.buf.len() < self.cap {
            self.buf.push(rec);
            false
        } else {
            self.buf[self.next] = rec;
            self.next = (self.next + 1) % self.cap;
            true
        }
    }

    fn drain(&mut self) -> Vec<TraceRecord> {
        self.next = 0;
        core::mem::take(&mut self.buf)
    }
}

/// Process-wide lane allocator: each thread gets a stable lane id on
/// first use (the main thread of a single-threaded run is always 0).
static NEXT_LANE: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static LANE: Cell<u32> = const { Cell::new(u32::MAX) };
}

fn lane_id() -> u32 {
    LANE.with(|l| {
        let v = l.get();
        if v != u32::MAX {
            v
        } else {
            let v = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
            l.set(v);
            v
        }
    })
}

/// The event tracer. One per [`crate::Pvm`], shared (via `Arc`) with
/// the locked state, the driver, and — for correlation — the nucleus
/// mapper layers.
pub struct Tracer {
    enabled: AtomicBool,
    clock: TraceClock,
    seq: AtomicU64,
    lanes: Box<[Mutex<Ring>]>,
    dropped: AtomicU64,
    hists: [Histogram; Phase::ALL.len()],
    stats: Arc<StatsRegistry>,
}

impl Tracer {
    /// Builds a tracer over the PVM's cost model and counter registry.
    pub fn new(config: TraceConfig, model: Arc<CostModel>, stats: Arc<StatsRegistry>) -> Tracer {
        Tracer {
            enabled: AtomicBool::new(config.enabled),
            clock: TraceClock::new(model, config.wall_clock),
            seq: AtomicU64::new(0),
            lanes: (0..LANES)
                .map(|_| Mutex::new(Ring::new(config.ring_capacity)))
                .collect(),
            dropped: AtomicU64::new(0),
            hists: core::array::from_fn(|_| Histogram::new()),
            stats,
        }
    }

    /// A disabled tracer over a pure-counting cost model (handy for
    /// tests and default construction paths).
    pub fn disabled() -> Tracer {
        Tracer::new(
            TraceConfig::default(),
            Arc::new(CostModel::counting()),
            Arc::new(StatsRegistry::new()),
        )
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The counter registry the tracer shares with the PVM.
    pub fn stats(&self) -> &Arc<StatsRegistry> {
        &self.stats
    }

    /// Records one event; the closure only runs when tracing is on.
    #[inline]
    pub fn event(&self, f: impl FnOnce() -> TraceEvent) {
        if self.is_enabled() {
            self.push(f());
        }
    }

    fn push(&self, event: TraceEvent) {
        let stamp = self.clock.stamp();
        let lane = lane_id();
        let rec = TraceRecord {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            sim_ns: stamp.sim_ns,
            wall_ns: stamp.wall_ns,
            lane,
            event,
        };
        let overwrote = self.lanes[lane as usize % LANES].lock().push(rec);
        if overwrote {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    // ----- phase timing ----------------------------------------------------

    /// Starts timing a phase: the current simulated time, or `None`
    /// when tracing is off.
    #[inline]
    pub fn phase_start(&self) -> Option<u64> {
        self.is_enabled().then(|| self.clock.sim_now().nanos())
    }

    /// Ends a phase started with [`Tracer::phase_start`], recording the
    /// simulated duration into the phase's histogram.
    #[inline]
    pub fn phase_end(&self, phase: Phase, start: Option<u64>) {
        if let Some(start) = start {
            let now = self.clock.sim_now().nanos();
            self.hists[phase as usize].record(now.saturating_sub(start));
        }
    }

    /// Snapshot of one phase histogram.
    pub fn histogram(&self, phase: Phase) -> HistogramSnapshot {
        self.hists[phase as usize].snapshot()
    }

    // ----- fault convenience points ----------------------------------------

    /// Records fault entry; returns the phase-start token for
    /// [`Tracer::fault_exit`].
    #[inline]
    pub fn fault_enter(&self, ctx: u32, va: u64, access: Access) -> Option<u64> {
        let start = self.phase_start();
        if start.is_some() {
            self.push(TraceEvent::FaultEnter { ctx, va, access });
        }
        start
    }

    /// Records fault exit and the whole-fault latency sample.
    #[inline]
    pub fn fault_exit(&self, start: Option<u64>, ctx: u32, va: u64, resolution: Resolution) {
        if start.is_some() {
            self.push(TraceEvent::FaultExit {
                ctx,
                va,
                resolution,
            });
            self.phase_end(Phase::FaultTotal, start);
        }
    }

    // ----- span API --------------------------------------------------------

    /// Opens a named nested phase; the returned guard closes it on drop.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        let armed = self.is_enabled();
        if armed {
            self.push(TraceEvent::SpanBegin { name });
        }
        Span {
            tracer: self,
            name,
            armed,
        }
    }

    // ----- draining --------------------------------------------------------

    /// Removes and returns every buffered record in sequence order.
    pub fn drain(&self) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        for lane in self.lanes.iter() {
            out.extend(lane.lock().drain());
        }
        out.sort_by_key(|r| r.seq);
        out
    }

    /// Records overwritten by ring overflow since the last reset.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Clears rings, histograms, the drop count and the sequence
    /// counter. Does not touch the shared counter registry.
    pub fn reset(&self) {
        for lane in self.lanes.iter() {
            lane.lock().drain();
        }
        for h in &self.hists {
            h.reset();
        }
        self.dropped.store(0, Ordering::Relaxed);
        self.seq.store(0, Ordering::Relaxed);
    }
}

impl core::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// Guard of an open [`Tracer::span`]; closes the span on drop.
#[must_use = "a span closes when this guard drops"]
pub struct Span<'a> {
    tracer: &'a Tracer,
    name: &'static str,
    armed: bool,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.tracer.push(TraceEvent::SpanEnd { name: self.name });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chorus_hal::OpKind;

    fn traced() -> (Tracer, Arc<CostModel>) {
        let model = Arc::new(CostModel::new(chorus_hal::CostParams::sun3()));
        let t = Tracer::new(
            TraceConfig {
                enabled: true,
                ring_capacity: 8,
                wall_clock: false,
            },
            model.clone(),
            Arc::new(StatsRegistry::new()),
        );
        (t, model)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.event(|| TraceEvent::StubWake);
        let s = t.fault_enter(1, 0x1000, Access::Read);
        t.fault_exit(s, 1, 0x1000, Resolution::ZeroFill);
        {
            let _g = t.span("noop");
        }
        assert!(t.drain().is_empty());
        assert_eq!(t.histogram(Phase::FaultTotal).count(), 0);
    }

    #[test]
    fn events_are_stamped_with_simulated_time_and_ordered() {
        let (t, model) = traced();
        t.event(|| TraceEvent::StubWake);
        model.charge(OpKind::BzeroPage); // 0.87 ms
        t.event(|| TraceEvent::ClockSweep { sweeps: 1 });
        let recs = t.drain();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].sim_ns, 0);
        assert_eq!(recs[1].sim_ns, 870_000);
        assert!(recs[0].seq < recs[1].seq);
        assert_eq!(recs[0].wall_ns, None);
        // Tracing itself never advanced the simulated clock.
        assert_eq!(model.now().nanos(), 870_000);
    }

    #[test]
    fn fault_points_feed_the_total_histogram() {
        let (t, model) = traced();
        let start = t.fault_enter(3, 0x2000, Access::Write);
        model.charge(OpKind::FaultEntry);
        model.charge(OpKind::BzeroPage);
        t.fault_exit(start, 3, 0x2000, Resolution::ZeroFill);
        let h = t.histogram(Phase::FaultTotal);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum, model.now().nanos());
        let recs = t.drain();
        assert!(matches!(
            recs[0].event,
            TraceEvent::FaultEnter { ctx: 3, .. }
        ));
        assert!(matches!(
            recs[1].event,
            TraceEvent::FaultExit {
                resolution: Resolution::ZeroFill,
                ..
            }
        ));
    }

    #[test]
    fn spans_nest_and_close_on_drop() {
        let (t, _model) = traced();
        {
            let _outer = t.span("outer");
            let _inner = t.span("inner");
        }
        let names: Vec<_> = t
            .drain()
            .into_iter()
            .map(|r| match r.event {
                TraceEvent::SpanBegin { name } => ("B", name),
                TraceEvent::SpanEnd { name } => ("E", name),
                _ => panic!("unexpected event"),
            })
            .collect();
        assert_eq!(
            names,
            vec![
                ("B", "outer"),
                ("B", "inner"),
                ("E", "inner"),
                ("E", "outer")
            ]
        );
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let (t, _model) = traced();
        for i in 0..20u64 {
            t.event(|| TraceEvent::ClockSweep { sweeps: i });
        }
        assert_eq!(t.dropped(), 12, "capacity 8, 20 pushed");
        let recs = t.drain();
        assert_eq!(recs.len(), 8);
        // The survivors are the newest 8, still in seq order.
        assert_eq!(recs.first().unwrap().seq, 12);
        assert_eq!(recs.last().unwrap().seq, 19);
        t.reset();
        assert_eq!(t.dropped(), 0);
    }
}
