//! Trace export: chrome://tracing JSON and a plain-text flame summary.
//!
//! The JSON artifact is the Trace Event Format consumed by Perfetto /
//! `chrome://tracing`: duration pairs (`ph:"B"`/`"E"`) for faults,
//! upcalls and spans, instant events (`ph:"i"`) for everything else,
//! with `ts` in microseconds of *simulated* time so the viewer shows
//! the cost-model timeline the paper's tables are measured on. The
//! flame summary is a per-stack inclusive simulated-time rollup plus
//! the per-phase latency histograms — greppable, diffable text.

use super::histogram::{HistogramSnapshot, Phase};
use super::{TraceEvent, TraceRecord, Tracer};
use crate::telemetry::{Dim, DimCounter, Telemetry, TelemetrySample};
use chorus_hal::Access;

/// A drained capture of a [`Tracer`], ready for export.
pub struct TraceSink {
    records: Vec<TraceRecord>,
    hists: Vec<(Phase, HistogramSnapshot)>,
    dropped: u64,
    /// Gauge samples attached via [`TraceSink::with_telemetry`]:
    /// exported as chrome-trace counter tracks and in
    /// [`TraceSink::telemetry_json`].
    series: Vec<TelemetrySample>,
}

/// The Trace Event Format phase of one event.
enum Ph {
    Begin,
    End,
    Instant,
}

/// One event decomposed for export: phase, name, and key/value args
/// (values already JSON-encoded).
fn parts(e: &TraceEvent) -> (Ph, String, Vec<(&'static str, String)>) {
    let s = |v: &str| format!("\"{v}\"");
    let access = |a: Access| match a {
        Access::Read => "\"read\"".to_string(),
        Access::Write => "\"write\"".to_string(),
        Access::Execute => "\"execute\"".to_string(),
    };
    match *e {
        TraceEvent::FaultEnter { ctx, va, access: a } => (
            Ph::Begin,
            "fault".into(),
            vec![
                ("ctx", ctx.to_string()),
                ("va", format!("\"{va:#x}\"")),
                ("access", access(a)),
            ],
        ),
        TraceEvent::FaultExit { resolution, .. } => (
            Ph::End,
            "fault".into(),
            vec![("resolution", s(resolution.label()))],
        ),
        TraceEvent::FastPathHit { ctx, va } => (
            Ph::Instant,
            "fastpath.hit".into(),
            vec![("ctx", ctx.to_string()), ("va", format!("\"{va:#x}\""))],
        ),
        TraceEvent::FastPathFallback { ctx, va } => (
            Ph::Instant,
            "fastpath.fallback".into(),
            vec![("ctx", ctx.to_string()), ("va", format!("\"{va:#x}\""))],
        ),
        TraceEvent::StubWait { cache, offset } => (
            Ph::Instant,
            "stub.wait".into(),
            vec![("cache", cache.to_string()), ("offset", offset.to_string())],
        ),
        TraceEvent::StubWake => (Ph::Instant, "stub.wake".into(), vec![]),
        TraceEvent::HistoryPush { cache, offset } => (
            Ph::Instant,
            "history.push".into(),
            vec![("cache", cache.to_string()), ("offset", offset.to_string())],
        ),
        TraceEvent::HistoryWalk {
            cache,
            offset,
            depth,
        } => (
            Ph::Instant,
            "history.walk".into(),
            vec![
                ("cache", cache.to_string()),
                ("offset", offset.to_string()),
                ("depth", depth.to_string()),
            ],
        ),
        TraceEvent::UpcallStart {
            kind,
            segment,
            offset,
            size,
        } => (
            Ph::Begin,
            format!("upcall.{}", kind.label()),
            vec![
                ("segment", segment.to_string()),
                ("offset", offset.to_string()),
                ("size", size.to_string()),
            ],
        ),
        TraceEvent::UpcallEnd {
            kind,
            outcome,
            retries,
        } => (
            Ph::End,
            format!("upcall.{}", kind.label()),
            vec![
                ("outcome", s(outcome.label())),
                ("retries", retries.to_string()),
            ],
        ),
        TraceEvent::UpcallSubmit {
            kind,
            segment,
            offset,
            size,
            inflight,
        } => (
            Ph::Instant,
            format!("upcall.submit.{}", kind.label()),
            vec![
                ("segment", segment.to_string()),
                ("offset", offset.to_string()),
                ("size", size.to_string()),
                ("inflight", inflight.to_string()),
            ],
        ),
        TraceEvent::UpcallComplete {
            kind,
            outcome,
            retries,
            inflight,
        } => (
            Ph::Instant,
            format!("upcall.complete.{}", kind.label()),
            vec![
                ("outcome", s(outcome.label())),
                ("retries", retries.to_string()),
                ("inflight", inflight.to_string()),
            ],
        ),
        TraceEvent::Eviction { cache, offset } => (
            Ph::Instant,
            "clock.evict".into(),
            vec![("cache", cache.to_string()), ("offset", offset.to_string())],
        ),
        TraceEvent::ClockSweep { sweeps } => (
            Ph::Instant,
            "clock.sweep".into(),
            vec![("sweeps", sweeps.to_string())],
        ),
        TraceEvent::Quarantine { cache } => (
            Ph::Instant,
            "quarantine".into(),
            vec![("cache", cache.to_string())],
        ),
        TraceEvent::MapperFaultInjected { kind } => (
            Ph::Instant,
            "mapper.inject".into(),
            vec![("kind", s(kind.label()))],
        ),
        TraceEvent::WatchdogCancel { kind, segment } => (
            Ph::Instant,
            format!("watchdog.cancel.{}", kind.label()),
            vec![("segment", segment.to_string())],
        ),
        TraceEvent::MapperSuspected { segment, timeouts } => (
            Ph::Instant,
            "mapper.suspected".into(),
            vec![
                ("segment", segment.to_string()),
                ("timeouts", timeouts.to_string()),
            ],
        ),
        TraceEvent::Throttled { pending } => (
            Ph::Instant,
            "throttle.stall".into(),
            vec![("pending", pending.to_string())],
        ),
        TraceEvent::OomKill {
            ctx,
            resident,
            dirty,
        } => (
            Ph::Instant,
            "oom.kill".into(),
            vec![
                ("ctx", ctx.to_string()),
                ("resident", resident.to_string()),
                ("dirty", dirty.to_string()),
            ],
        ),
        TraceEvent::LargePromote {
            ctx,
            va,
            cache,
            offset,
        } => (
            Ph::Instant,
            "large.promote".into(),
            vec![
                ("ctx", ctx.to_string()),
                ("va", format!("{va:#x}")),
                ("cache", cache.to_string()),
                ("offset", offset.to_string()),
            ],
        ),
        TraceEvent::LargeDemote { ctx, va } => (
            Ph::Instant,
            "large.demote".into(),
            vec![("ctx", ctx.to_string()), ("va", format!("{va:#x}"))],
        ),
        TraceEvent::SpanBegin { name } => (Ph::Begin, name.into(), vec![]),
        TraceEvent::SpanEnd { name } => (Ph::End, name.into(), vec![]),
    }
}

impl TraceSink {
    /// Drains the tracer's rings and histograms into a capture.
    pub fn capture(tracer: &Tracer) -> TraceSink {
        TraceSink {
            records: tracer.drain(),
            hists: Phase::ALL
                .iter()
                .map(|&p| (p, tracer.histogram(p)))
                .collect(),
            dropped: tracer.dropped(),
            series: Vec::new(),
        }
    }

    /// Attaches the telemetry sampler's gauge series (see
    /// [`crate::Pvm::telemetry_series`]) so exports include counter
    /// tracks alongside the event timeline.
    pub fn with_telemetry(mut self, series: Vec<TelemetrySample>) -> TraceSink {
        self.series = series;
        self
    }

    /// The attached gauge series (empty unless
    /// [`TraceSink::with_telemetry`] was used).
    pub fn series(&self) -> &[TelemetrySample] {
        &self.series
    }

    /// The captured records, in sequence order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records lost to ring overflow before the capture.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The captured per-phase histograms.
    pub fn histograms(&self) -> &[(Phase, HistogramSnapshot)] {
        &self.hists
    }

    /// Exports the Trace Event Format JSON (`chrome://tracing`,
    /// Perfetto). `ts` is simulated microseconds.
    pub fn chrome_trace_json(&self) -> String {
        let mut events = Vec::with_capacity(self.records.len());
        for rec in &self.records {
            let (ph, name, args) = parts(&rec.event);
            let ph = match ph {
                Ph::Begin => "B",
                Ph::End => "E",
                Ph::Instant => "i",
            };
            let mut ev = format!(
                "{{\"name\":\"{}\",\"cat\":\"pvm\",\"ph\":\"{}\",\"ts\":{:.3},\"pid\":1,\"tid\":{}",
                name,
                ph,
                rec.sim_ns as f64 / 1000.0,
                rec.lane
            );
            if ph == "i" {
                ev.push_str(",\"s\":\"t\"");
            }
            let mut args = args;
            args.push(("seq", rec.seq.to_string()));
            if let Some(w) = rec.wall_ns {
                args.push(("wall_ns", w.to_string()));
            }
            let body: Vec<String> = args.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
            ev.push_str(&format!(",\"args\":{{{}}}}}", body.join(",")));
            events.push(ev);
        }
        // Counter tracks (`ph:"C"`): one multi-series event per gauge
        // group per sample, so Perfetto renders stacked area charts of
        // the live state next to the event timeline.
        for s in &self.series {
            let ts = s.sim_ns as f64 / 1000.0;
            let mut counter = |name: &str, args: String| {
                events.push(format!(
                    "{{\"name\":\"{name}\",\"cat\":\"pvm\",\"ph\":\"C\",\"ts\":{ts:.3},\"pid\":1,\"args\":{{{args}}}}}"
                ));
            };
            counter(
                "mem.free",
                format!(
                    "\"free_frames\":{},\"reserve_free\":{}",
                    s.free_frames, s.reserve_free
                ),
            );
            counter(
                "engine.queues",
                format!(
                    "\"inflight\":{},\"pending_pulls\":{}",
                    s.inflight_upcalls, s.pending_pulls
                ),
            );
            counter(
                "residency",
                format!(
                    "\"clock_ring\":{},\"gmap_slots\":{}",
                    s.clock_ring_pages, s.gmap_slots
                ),
            );
            let orders: Vec<String> = s
                .free_blocks_per_order
                .iter()
                .enumerate()
                .map(|(i, n)| format!("\"order{i}\":{n}"))
                .collect();
            counter("buddy.free", orders.join(","));
        }
        format!(
            "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"clock\":\"simulated\",\"dropped\":{}}}}}\n",
            events.join(",\n"),
            self.dropped
        )
    }

    /// Exports the `telemetry.json` artifact: the gauge series, the
    /// dimensional counter tables, and the per-phase latency summary.
    /// Hand-built JSON (the repo carries no serde), same as the chrome
    /// export.
    pub fn telemetry_json(&self, telemetry: &Telemetry) -> String {
        let series: Vec<String> = self
            .series
            .iter()
            .map(|s| {
                format!(
                    "{{\"sim_ns\":{},\"free_frames\":{},\"free_blocks_per_order\":[{}],\
                     \"inflight_upcalls\":{},\"pending_pulls\":{},\"clock_ring_pages\":{},\
                     \"gmap_slots\":{},\"reserve_free\":{}}}",
                    s.sim_ns,
                    s.free_frames,
                    s.free_blocks_per_order
                        .iter()
                        .map(|n| n.to_string())
                        .collect::<Vec<_>>()
                        .join(","),
                    s.inflight_upcalls,
                    s.pending_pulls,
                    s.clock_ring_pages,
                    s.gmap_slots,
                    s.reserve_free
                )
            })
            .collect();
        let dims: Vec<String> = Dim::ALL
            .iter()
            .map(|&d| {
                let rows: Vec<String> = telemetry
                    .table(d)
                    .iter()
                    .map(|(id, counts)| {
                        let cells: Vec<String> = DimCounter::ALL
                            .iter()
                            .map(|&c| format!("\"{}\":{}", c.label(), counts[c as usize]))
                            .collect();
                        format!("{{\"id\":{id},{}}}", cells.join(","))
                    })
                    .collect();
                format!("\"{}\":[{}]", d.label(), rows.join(","))
            })
            .collect();
        let phases: Vec<String> = self
            .hists
            .iter()
            .map(|(p, s)| {
                format!(
                    "{{\"phase\":\"{}\",\"samples\":{},\"p50_ns\":{},\"p99_ns\":{},\
                     \"p999_ns\":{},\"mean_ns\":{:.1},\"max_ns\":{}}}",
                    p.label(),
                    s.count(),
                    s.percentile(0.50),
                    s.percentile(0.99),
                    s.percentile(0.999),
                    s.mean(),
                    s.max
                )
            })
            .collect();
        format!(
            "{{\"series\":[{}],\"dims\":{{{}}},\"phases\":[{}]}}\n",
            series.join(",\n"),
            dims.join(","),
            phases.join(",\n")
        )
    }

    /// Renders the plain-text flame summary: per-stack inclusive
    /// simulated time, instant-event counts, and the latency
    /// histograms.
    pub fn flame_summary(&self) -> String {
        use std::collections::BTreeMap;
        // Per-lane stack walk over B/E pairs; inclusive ns per path.
        let mut stacks: BTreeMap<u32, Vec<(String, u64)>> = BTreeMap::new();
        let mut paths: BTreeMap<String, (u64, u64)> = BTreeMap::new(); // (count, ns)
        let mut instants: BTreeMap<String, u64> = BTreeMap::new();
        for rec in &self.records {
            let (ph, name, _) = parts(&rec.event);
            let stack = stacks.entry(rec.lane).or_default();
            match ph {
                Ph::Begin => stack.push((name, rec.sim_ns)),
                Ph::End => {
                    // Tolerate pairs broken by ring overflow: pop only a
                    // matching frame.
                    if let Some(pos) = stack.iter().rposition(|(n, _)| *n == name) {
                        let (_, start) = stack[pos];
                        let path: Vec<&str> =
                            stack[..=pos].iter().map(|(n, _)| n.as_str()).collect();
                        let e = paths.entry(path.join(";")).or_default();
                        e.0 += 1;
                        e.1 += rec.sim_ns.saturating_sub(start);
                        stack.truncate(pos);
                    }
                }
                Ph::Instant => *instants.entry(name).or_default() += 1,
            }
        }
        let mut out = String::new();
        out.push_str("PVM trace flame summary (simulated time)\n");
        out.push_str(&format!(
            "records={} dropped={}\n\n",
            self.records.len(),
            self.dropped
        ));
        out.push_str("inclusive time by stack (ns):\n");
        let mut rows: Vec<(&String, &(u64, u64))> = paths.iter().collect();
        rows.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then(a.0.cmp(b.0)));
        for (path, (count, ns)) in rows {
            out.push_str(&format!("  {ns:>14}  {count:>8}x  {path}\n"));
        }
        out.push_str("\ninstant events:\n");
        for (name, count) in &instants {
            out.push_str(&format!("  {count:>8}x  {name}\n"));
        }
        out.push_str("\nlatency histograms (simulated ns, log2 buckets):\n");
        for (phase, snap) in &self.hists {
            out.push_str(&format!("{}:\n{}", phase.label(), snap.render()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Resolution, TraceConfig, Tracer, UpcallKind, UpcallOutcome};
    use super::*;
    use crate::stats::StatsRegistry;
    use chorus_hal::{CostModel, CostParams, OpKind};
    use std::sync::Arc;

    fn capture_with_activity() -> TraceSink {
        let model = Arc::new(CostModel::new(CostParams::sun3()));
        let t = Tracer::new(
            TraceConfig {
                enabled: true,
                ..TraceConfig::default()
            },
            model.clone(),
            Arc::new(StatsRegistry::new()),
        );
        let f = t.fault_enter(1, 0x8000, Access::Write);
        t.event(|| TraceEvent::FastPathFallback { ctx: 1, va: 0x8000 });
        t.event(|| TraceEvent::UpcallStart {
            kind: UpcallKind::PullIn,
            segment: 4,
            offset: 0,
            size: 8192,
        });
        model.charge(OpKind::SegmentIoPage);
        t.event(|| TraceEvent::UpcallEnd {
            kind: UpcallKind::PullIn,
            outcome: UpcallOutcome::Ok,
            retries: 1,
        });
        t.fault_exit(f, 1, 0x8000, Resolution::CowCopy);
        TraceSink::capture(&t)
    }

    #[test]
    fn chrome_json_is_well_formed_and_balanced() {
        let sink = capture_with_activity();
        let json = sink.chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"upcall.pullIn\""));
        assert!(json.contains("\"resolution\":\"cow_copy\""));
        // Structural sanity without a JSON parser: balanced braces and
        // brackets, equal quote pairs.
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0, "unbalanced JSON");
        assert_eq!(json.matches('"').count() % 2, 0);
        // B and E counts match per capture.
        assert_eq!(
            json.matches("\"ph\":\"B\"").count(),
            json.matches("\"ph\":\"E\"").count()
        );
    }

    #[test]
    fn flame_summary_rolls_up_stacks() {
        let sink = capture_with_activity();
        let text = sink.flame_summary();
        assert!(text.contains("fault;upcall.pullIn"), "{text}");
        assert!(text.contains("fastpath.fallback"));
        assert!(text.contains("fault.total:"));
        assert!(text.contains("samples=1"));
    }

    #[test]
    fn empty_capture_exports_cleanly() {
        let t = Tracer::disabled();
        let sink = TraceSink::capture(&t);
        let json = sink.chrome_trace_json();
        assert!(json.contains("\"traceEvents\":[]"));
        assert!(sink.flame_summary().contains("records=0"));
    }

    fn sample(sim_ns: u64, free: u32) -> TelemetrySample {
        TelemetrySample {
            sim_ns,
            free_frames: free,
            free_blocks_per_order: vec![3, 1, 0],
            inflight_upcalls: 2,
            pending_pulls: 1,
            clock_ring_pages: 5,
            gmap_slots: 6,
            reserve_free: free.min(4),
        }
    }

    #[test]
    fn counter_tracks_ride_in_the_chrome_export() {
        let sink = capture_with_activity().with_telemetry(vec![sample(0, 10), sample(1_000, 8)]);
        let json = sink.chrome_trace_json();
        assert_eq!(json.matches("\"ph\":\"C\"").count(), 8, "4 tracks x 2");
        assert!(json.contains("\"name\":\"mem.free\""));
        assert!(json.contains("\"name\":\"buddy.free\""));
        assert!(json.contains("\"order2\":0"));
        // Still structurally sound with the counter events in place.
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0, "unbalanced JSON");
        assert_eq!(
            json.matches("\"ph\":\"B\"").count(),
            json.matches("\"ph\":\"E\"").count()
        );
    }

    #[test]
    fn telemetry_json_carries_series_dims_and_phases() {
        let telemetry = Telemetry::new(true);
        telemetry.bump(Dim::Cache, 3, DimCounter::Faults);
        telemetry.add(Dim::Mapper, 7, DimCounter::PushOuts, 2);
        let sink = capture_with_activity().with_telemetry(vec![sample(500, 9)]);
        let json = sink.telemetry_json(&telemetry);
        assert!(json.contains("\"series\":[{\"sim_ns\":500"));
        assert!(json.contains("\"cache\":[{\"id\":3,\"faults\":1"));
        assert!(json.contains("\"mapper\":[{\"id\":7,"));
        assert!(json.contains("\"push_outs\":2"));
        assert!(json.contains("\"phase\":\"fault.total\""));
        assert!(json.contains("\"context\":[]"));
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0, "unbalanced JSON");
    }
}
