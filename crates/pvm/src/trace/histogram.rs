//! Log2-bucket latency histograms over simulated time.
//!
//! Each [`Histogram`] is a fixed array of atomic buckets where bucket
//! `i` counts samples with `2^(i-1) <= v < 2^i` nanoseconds (bucket 0
//! counts zero-duration samples). Recording is wait-free (one
//! `fetch_add` per sample) so a histogram can sit on the fault hot path
//! without taking any lock; the cells only count, never touch the cost
//! model, preserving the tracer's determinism rule.

use core::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets: enough for durations up to `2^63` ns.
pub const BUCKETS: usize = 64;

macro_rules! phases {
    ($($(#[$doc:meta])* $variant:ident => $label:literal,)*) => {
        /// A pipeline phase whose latency distribution is tracked.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum Phase {
            $($(#[$doc])* $variant,)*
        }

        impl Phase {
            /// Every phase, in declaration order.
            pub const ALL: &'static [Phase] = &[$(Phase::$variant,)*];

            /// Stable report label.
            pub fn label(self) -> &'static str {
                match self {
                    $(Phase::$variant => $label,)*
                }
            }
        }
    };
}

phases! {
    /// Whole fault, entry to resolution (fast or slow path).
    FaultTotal => "fault.total",
    /// `pullIn` upcall including retries and backoff.
    PullIn => "upcall.pullIn",
    /// `pushOut` upcall including retries and backoff.
    PushOut => "upcall.pushOut",
    /// `getWriteAccess` upcall including retries and backoff.
    GetWriteAccess => "upcall.getWriteAccess",
    /// One sleep on a synchronization page stub.
    StubWait => "stub.wait",
    /// Demand-fault time spent blocked on a synchronous `pushOut`
    /// (dirty eviction in the faulting thread — what the writeback
    /// daemon exists to avoid).
    EvictStall => "fault.evictStall",
}

/// One wait-free log2 latency histogram (durations in simulated ns).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: core::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index of a duration: 0 for 0 ns, else
    /// `floor(log2(v)) + 1`.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Copies the cells into a plain snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: core::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every cell.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `buckets[i]` counts samples in `[2^(i-1), 2^i)` ns (bucket 0:
    /// exactly zero).
    pub buckets: [u64; BUCKETS],
    /// Sum of all samples (ns).
    pub sum: u64,
    /// Largest sample (ns).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean sample, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// An upper bound on the `p`-th percentile sample (`0.0..=1.0`):
    /// the exclusive upper bound of the bucket holding that sample, or
    /// 0 with no samples. Bucket granularity (log2) bounds the error.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bounds(i).1;
            }
        }
        self.max
    }

    /// Renders the non-empty buckets as fixed-width text rows,
    /// `[lo, hi) ns  count  bar`.
    pub fn render(&self) -> String {
        let total = self.count();
        if total == 0 {
            return "  (no samples)\n".to_string();
        }
        let peak = self.buckets.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let (lo, hi) = bucket_bounds(i);
            let bar = "#".repeat(((n * 40).div_ceil(peak)) as usize);
            out.push_str(&format!("  [{lo:>12} ns, {hi:>12} ns)  {n:>8}  {bar}\n"));
        }
        out.push_str(&format!(
            "  samples={} sum={} ns mean={:.0} ns max={} ns\n",
            total,
            self.sum,
            self.mean(),
            self.max
        ));
        out
    }
}

/// The `[lo, hi)` ns bounds of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 1),
        _ => (
            1u64 << (i - 1),
            1u64.checked_shl(i as u32).unwrap_or(u64::MAX),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        for v in [0u64, 1, 7, 1 << 20, u64::MAX] {
            let (lo, hi) = bucket_bounds(Histogram::bucket_of(v));
            assert!(lo <= v && (v < hi || hi == u64::MAX), "{v} in [{lo},{hi})");
        }
    }

    #[test]
    fn record_snapshot_reset_roundtrip() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 870_000, 1_400_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum, 2_270_002);
        assert_eq!(s.max, 1_400_000);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 2);
        assert!(s.render().contains("samples=5"));
        h.reset();
        assert_eq!(h.snapshot().count(), 0);
    }

    #[test]
    fn phase_labels_are_stable() {
        assert_eq!(Phase::ALL.len(), 6);
        assert_eq!(Phase::FaultTotal.label(), "fault.total");
        assert_eq!(Phase::PullIn.label(), "upcall.pullIn");
        assert_eq!(Phase::EvictStall.label(), "fault.evictStall");
    }

    #[test]
    fn percentile_is_bucket_upper_bound() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().percentile(0.99), 0);
        for _ in 0..99 {
            h.record(10); // bucket [8, 16)
        }
        h.record(1000); // bucket [512, 1024)
        let s = h.snapshot();
        assert_eq!(s.percentile(0.5), 16);
        assert_eq!(s.percentile(0.99), 16);
        assert_eq!(s.percentile(1.0), 1024);
    }
}
