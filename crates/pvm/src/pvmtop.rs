//! `pvmtop`: a point-in-time introspection snapshot of a live PVM.
//!
//! Where [`crate::PvmStats`] answers "how much work happened" and the
//! tracer answers "in what order", `pvmtop` answers the operator's
//! question: *which* cache is hot, *which* mapper is sick, and where
//! the latency went. It folds three sources into one [`PvmTop`] value:
//!
//! - the dimensional telemetry registry ([`crate::telemetry`]) for
//!   per-cache and per-mapper counters (requires `telemetry(true)`;
//!   with the knob off the counters read as zero and only the live
//!   gauges below carry signal);
//! - a walk of the live descriptor arenas for resident/dirty footprints
//!   and mapper health states (always available);
//! - the per-phase latency histograms for p50/p99/p999 (populated when
//!   tracing is on).
//!
//! Everything here is pure observation: no call charges the cost
//! model, so taking a snapshot never perturbs the simulated clock —
//! the same determinism rule the tracer enforces.

use crate::state::PvmState;
use crate::telemetry::{Dim, DimCounter, TelemetrySample};
use crate::trace::{HistogramSnapshot, Phase};
use chorus_gmi::{CacheId, SegmentId};
use std::collections::BTreeMap;

/// Per-cache heat row: dimensional counters plus the live footprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheHeat {
    /// Public id of the cache.
    pub cache: CacheId,
    /// Raw arena index (the id used in trace events and telemetry rows).
    pub index: u32,
    /// Slow-path faults attributed to this cache.
    pub faults: u64,
    /// `pullIn` requests completed for this cache.
    pub pull_ins: u64,
    /// Pages pushed out for this cache.
    pub push_outs: u64,
    /// Pages evicted from this cache by the clock.
    pub evictions: u64,
    /// Victims the replacement policy engine picked from this cache.
    pub policy_victims: u64,
    /// Sequential-stream readahead window hits.
    pub readahead_hits: u64,
    /// Fault-stripe acquisitions for this cache (`parallel_faults`).
    pub lock_acqs: u64,
    /// Fault-stripe acquisitions that had to block — the cache's
    /// "lock heat".
    pub lock_contended: u64,
    /// Resident pages right now.
    pub resident_pages: u64,
    /// Dirty resident pages right now.
    pub dirty_pages: u64,
    /// Quarantined after a permanent mapper failure.
    pub poisoned: bool,
}

/// Operator-facing health state of one mapper (segment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapperState {
    /// Serving upcalls normally.
    Healthy,
    /// Escalated by the deadline watchdog after repeated timeouts:
    /// in-flight cap shrunk, degraded to the synchronous path.
    Suspected,
    /// A cache backed by this segment was poisoned after a permanent
    /// failure.
    Quarantined,
}

impl MapperState {
    /// Stable label for exports.
    pub fn label(self) -> &'static str {
        match self {
            MapperState::Healthy => "Healthy",
            MapperState::Suspected => "Suspected",
            MapperState::Quarantined => "Quarantined",
        }
    }
}

/// Per-mapper health row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapperHealth {
    /// The segment this mapper backs.
    pub segment: SegmentId,
    /// Health state (worst applicable wins).
    pub state: MapperState,
    /// Asynchronous upcalls in flight right now.
    pub inflight: u64,
    /// Watchdog deadline misses observed so far (the escalation count).
    pub deadline_misses: u32,
    /// `pullIn` requests completed.
    pub pull_ins: u64,
    /// Pages pushed out.
    pub push_outs: u64,
    /// Transient retries performed against this mapper.
    pub retries: u64,
    /// Upcalls that concluded with a deadline timeout.
    pub timeouts: u64,
    /// In-flight upcalls cancelled by the watchdog.
    pub cancels: u64,
}

/// Per-phase latency row derived from the tracer's histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseLatency {
    /// Stable phase label (`fault.total`, `upcall.pullIn`, ...).
    pub phase: &'static str,
    /// Samples recorded.
    pub samples: u64,
    /// Median upper bound (ns, log2-bucket granularity).
    pub p50_ns: u64,
    /// 99th-percentile upper bound (ns).
    pub p99_ns: u64,
    /// 99.9th-percentile upper bound (ns).
    pub p999_ns: u64,
    /// Largest sample (ns).
    pub max_ns: u64,
}

impl PhaseLatency {
    fn from_snapshot(phase: Phase, s: &HistogramSnapshot) -> PhaseLatency {
        PhaseLatency {
            phase: phase.label(),
            samples: s.count(),
            p50_ns: s.percentile(0.50),
            p99_ns: s.percentile(0.99),
            p999_ns: s.percentile(0.999),
            max_ns: s.max,
        }
    }
}

/// One lock domain's global acquisition/contention totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainHeat {
    /// Stable domain label (`state`, `phys`, `trans`, `stripe`,
    /// `gmap`).
    pub domain: &'static str,
    /// Total acquisitions.
    pub acqs: u64,
    /// Acquisitions that missed the uncontended try-lock.
    pub contended: u64,
}

/// The replacement/readahead policy engine's identity and decision
/// counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyHeat {
    /// Label of the default replacement policy (`clock`, `lru`,
    /// `wsclock`, `arc`, `external`).
    pub replacement: &'static str,
    /// Label of the readahead policy (`doubling`, `fifo`).
    pub readahead: &'static str,
    /// Per-segment replacement overrides in effect.
    pub segment_overrides: u64,
    /// Victim-selection rounds requested.
    pub victim_requests: u64,
    /// Victims actually produced.
    pub victims: u64,
    /// `victimAdvice` batches shipped to the external policy's manager.
    pub external_batches: u64,
    /// Candidates approved when advice was applied.
    pub external_approvals: u64,
    /// Selections served from the internal fallback clock while advice
    /// was in flight.
    pub external_fallbacks: u64,
}

/// The full `pvmtop` snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PvmTop {
    /// Simulated time of the snapshot.
    pub sim_ns: u64,
    /// Caches hottest-first: faults desc, then dirty pages desc, then
    /// arena index asc (a deterministic total order).
    pub caches: Vec<CacheHeat>,
    /// Mappers in ascending segment order.
    pub mappers: Vec<MapperHealth>,
    /// Per-phase latency rows in [`Phase::ALL`] order.
    pub phases: Vec<PhaseLatency>,
    /// The live gauge sample taken with the snapshot.
    pub sample: TelemetrySample,
    /// Live slots per global-map stripe, ascending shard order (a
    /// skewed vector means one stripe convoys).
    pub gmap_shards: Vec<usize>,
    /// Per-domain lock heat (state, phys, trans, fault stripes, gmap
    /// shards), in a fixed order.
    pub lock_domains: Vec<DomainHeat>,
    /// The policy engine's identity and decision counters.
    pub policy: PolicyHeat,
}

impl PvmTop {
    /// The hottest cache, if any cache exists.
    pub fn hottest_cache(&self) -> Option<&CacheHeat> {
        self.caches.first()
    }

    /// The health row of `segment`, if known.
    pub fn mapper(&self, segment: SegmentId) -> Option<&MapperHealth> {
        self.mappers.iter().find(|m| m.segment == segment)
    }
}

/// Builds a snapshot from the locked state. Pure observation — charges
/// nothing to the cost model.
pub(crate) fn snapshot(state: &PvmState) -> PvmTop {
    // Footprints: one walk of the page arena, accumulated per cache.
    let mut resident: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
    for (_, page) in state.pages.iter() {
        let e = resident.entry(page.cache.index()).or_insert((0, 0));
        e.0 += 1;
        if page.dirty {
            e.1 += 1;
        }
    }

    let dim = |d: Dim, id: u64, c: DimCounter| state.telemetry.get(d, id, c);

    let mut caches: Vec<CacheHeat> = state
        .caches
        .iter()
        .map(|(key, desc)| {
            let idx = key.index();
            let id = u64::from(idx);
            let (res, dirty) = resident.get(&idx).copied().unwrap_or((0, 0));
            CacheHeat {
                cache: crate::keys::pub_cache(key),
                index: idx,
                faults: dim(Dim::Cache, id, DimCounter::Faults),
                pull_ins: dim(Dim::Cache, id, DimCounter::PullIns),
                push_outs: dim(Dim::Cache, id, DimCounter::PushOuts),
                evictions: dim(Dim::Cache, id, DimCounter::Evictions),
                policy_victims: dim(Dim::Cache, id, DimCounter::PolicyVictims),
                readahead_hits: dim(Dim::Cache, id, DimCounter::ReadaheadHits),
                lock_acqs: dim(Dim::Cache, id, DimCounter::LockAcqs),
                lock_contended: dim(Dim::Cache, id, DimCounter::LockContended),
                resident_pages: res,
                dirty_pages: dirty,
                poisoned: desc.poisoned,
            }
        })
        .collect();
    caches.sort_by(|a, b| {
        b.faults
            .cmp(&a.faults)
            .then(b.dirty_pages.cmp(&a.dirty_pages))
            .then(a.index.cmp(&b.index))
    });

    // The mapper universe: every segment a live cache names, plus every
    // segment the completion engine has ever dealt with, plus every
    // segment the telemetry registry recorded traffic for (a poisoned
    // cache may already be gone while its mapper's history remains).
    let mut segments: std::collections::BTreeSet<u64> = state
        .caches
        .iter()
        .filter_map(|(_, c)| c.segment.map(|s| s.0))
        .collect();
    segments.extend(state.engine.inflight_counts().iter().map(|&(s, _)| s));
    segments.extend(state.engine.timeout_counts().iter().map(|&(s, _)| s));
    segments.extend(state.engine.suspected_segments());
    segments.extend(state.telemetry.table(Dim::Mapper).iter().map(|&(s, _)| s));

    let inflight: BTreeMap<u64, u64> = state.engine.inflight_counts().into_iter().collect();
    let misses: BTreeMap<u64, u32> = state.engine.timeout_counts().into_iter().collect();
    let mappers = segments
        .into_iter()
        .map(|seg| {
            let segment = SegmentId(seg);
            let quarantined = state
                .caches
                .iter()
                .any(|(_, c)| c.poisoned && c.segment == Some(segment));
            let state_ = if quarantined {
                MapperState::Quarantined
            } else if state.engine.is_suspected(segment) {
                MapperState::Suspected
            } else {
                MapperState::Healthy
            };
            MapperHealth {
                segment,
                state: state_,
                inflight: inflight.get(&seg).copied().unwrap_or(0),
                deadline_misses: misses.get(&seg).copied().unwrap_or(0),
                pull_ins: dim(Dim::Mapper, seg, DimCounter::PullIns),
                push_outs: dim(Dim::Mapper, seg, DimCounter::PushOuts),
                retries: dim(Dim::Mapper, seg, DimCounter::Retries),
                timeouts: dim(Dim::Mapper, seg, DimCounter::Timeouts),
                cancels: dim(Dim::Mapper, seg, DimCounter::Cancels),
            }
        })
        .collect();

    let phases = Phase::ALL
        .iter()
        .map(|&p| PhaseLatency::from_snapshot(p, &state.trace.histogram(p)))
        .collect();

    let heat = |domain, acqs, contended| DomainHeat {
        domain,
        acqs: state.stats.get(acqs),
        contended: state.stats.get(contended),
    };
    use crate::stats::Counter as C;
    let lock_domains = vec![
        heat("state", C::StateLockAcqs, C::StateLockContended),
        heat("phys", C::PhysLockAcqs, C::PhysLockContended),
        heat("trans", C::TransLockAcqs, C::TransLockContended),
        heat("stripe", C::CacheStripeAcqs, C::CacheStripeContended),
        // The gmap stripes count contention only (no acq counter —
        // per-entry acquisitions are far too hot to meter twice).
        DomainHeat {
            domain: "gmap",
            acqs: 0,
            contended: state.stats.get(C::ShardContention),
        },
    ];

    let policy = PolicyHeat {
        replacement: state.policy.default_kind().label(),
        readahead: state.policy.readahead.kind().label(),
        segment_overrides: state.policy.override_count() as u64,
        victim_requests: state.stats.get(C::PolicyVictimRequests),
        victims: state.stats.get(C::PolicyVictims),
        external_batches: state.stats.get(C::PolicyExternalBatches),
        external_approvals: state.stats.get(C::PolicyExternalApprovals),
        external_fallbacks: state.stats.get(C::PolicyExternalFallbacks),
    };

    PvmTop {
        sim_ns: state.model.now().nanos(),
        caches,
        mappers,
        phases,
        sample: state.live_sample(),
        gmap_shards: state.gmap.shard_occupancy(),
        lock_domains,
        policy,
    }
}

/// Renders a snapshot as the classic three-section `top` text: top-N
/// caches by heat, mapper health, and per-phase latency.
pub fn render(top: &PvmTop, n: usize) -> String {
    let mut out = String::new();
    let s = &top.sample;
    out.push_str(&format!(
        "pvmtop  sim={} ns  free={} frames (reserve {})  inflight={}  \
         pending={}  ring={} pages  gmap={} slots\n",
        top.sim_ns,
        s.free_frames,
        s.reserve_free,
        s.inflight_upcalls,
        s.pending_pulls,
        s.clock_ring_pages,
        s.gmap_slots,
    ));
    if let (Some(&lo), Some(&hi)) = (top.gmap_shards.iter().min(), top.gmap_shards.iter().max()) {
        out.push_str(&format!(
            "        gmap stripes: {} shards, occupancy {lo}..{hi}\n",
            top.gmap_shards.len(),
        ));
    }
    if !top.lock_domains.is_empty() {
        out.push_str("        lock heat (contended/acqs):");
        for d in &top.lock_domains {
            out.push_str(&format!(" {} {}/{}", d.domain, d.contended, d.acqs));
        }
        out.push('\n');
    }
    let pol = &top.policy;
    out.push_str(&format!(
        "        policy: {} (+{} overrides)  readahead={}  victims {}/{} req  \
         external {}/{} appr  fallbacks {}\n",
        pol.replacement,
        pol.segment_overrides,
        pol.readahead,
        pol.victims,
        pol.victim_requests,
        pol.external_approvals,
        pol.external_batches,
        pol.external_fallbacks,
    ));

    out.push_str(&format!(
        "\n  {:>5} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>8} {:>8}  {}\n",
        "CACHE",
        "FAULTS",
        "PULLS",
        "PUSHES",
        "EVICT",
        "PVICT",
        "RAHIT",
        "LOCKHEAT",
        "RES",
        "DIRTY",
        "FLAGS"
    ));
    for c in top.caches.iter().take(n.max(1)) {
        out.push_str(&format!(
            "  {:>5} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>8} {:>8}  {}\n",
            c.index,
            c.faults,
            c.pull_ins,
            c.push_outs,
            c.evictions,
            c.policy_victims,
            c.readahead_hits,
            format!("{}/{}", c.lock_contended, c.lock_acqs),
            c.resident_pages,
            c.dirty_pages,
            if c.poisoned { "POISONED" } else { "-" },
        ));
    }
    if top.caches.len() > n {
        out.push_str(&format!("  ... {} more caches\n", top.caches.len() - n));
    }

    out.push_str(&format!(
        "\n  {:>7} {:<11} {:>8} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
        "MAPPER", "STATE", "INFLIGHT", "MISSES", "PULLS", "PUSHES", "RETRIES", "TIMEOUT", "CANCELS"
    ));
    for m in &top.mappers {
        out.push_str(&format!(
            "  {:>7} {:<11} {:>8} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
            m.segment.0,
            m.state.label(),
            m.inflight,
            m.deadline_misses,
            m.pull_ins,
            m.push_outs,
            m.retries,
            m.timeouts,
            m.cancels,
        ));
    }

    out.push_str(&format!(
        "\n  {:<22} {:>8} {:>12} {:>12} {:>12} {:>12}\n",
        "PHASE", "SAMPLES", "P50(ns)", "P99(ns)", "P999(ns)", "MAX(ns)"
    ));
    for p in &top.phases {
        if p.samples == 0 {
            continue;
        }
        out.push_str(&format!(
            "  {:<22} {:>8} {:>12} {:>12} {:>12} {:>12}\n",
            p.phase, p.samples, p.p50_ns, p.p99_ns, p.p999_ns, p.max_ns
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heat(index: u32, faults: u64, dirty: u64) -> CacheHeat {
        CacheHeat {
            cache: CacheId::pack(index, 0),
            index,
            faults,
            pull_ins: 0,
            push_outs: 0,
            evictions: 0,
            policy_victims: 0,
            readahead_hits: 0,
            lock_acqs: 0,
            lock_contended: 0,
            resident_pages: dirty,
            dirty_pages: dirty,
            poisoned: false,
        }
    }

    #[test]
    fn mapper_state_labels_are_stable() {
        assert_eq!(MapperState::Healthy.label(), "Healthy");
        assert_eq!(MapperState::Suspected.label(), "Suspected");
        assert_eq!(MapperState::Quarantined.label(), "Quarantined");
    }

    #[test]
    fn render_truncates_to_top_n() {
        let top = PvmTop {
            sim_ns: 42,
            caches: vec![heat(0, 9, 1), heat(1, 5, 0), heat(2, 1, 0)],
            mappers: Vec::new(),
            phases: Vec::new(),
            sample: TelemetrySample {
                sim_ns: 42,
                free_frames: 7,
                free_blocks_per_order: vec![1, 1],
                inflight_upcalls: 0,
                pending_pulls: 0,
                clock_ring_pages: 0,
                gmap_slots: 0,
                reserve_free: 4,
            },
            gmap_shards: vec![0, 0],
            lock_domains: vec![
                DomainHeat {
                    domain: "state",
                    acqs: 12,
                    contended: 3,
                },
                DomainHeat {
                    domain: "stripe",
                    acqs: 4,
                    contended: 1,
                },
            ],
            policy: PolicyHeat {
                replacement: "clock",
                readahead: "doubling",
                segment_overrides: 0,
                victim_requests: 3,
                victims: 2,
                external_batches: 0,
                external_approvals: 0,
                external_fallbacks: 0,
            },
        };
        let text = render(&top, 2);
        assert!(text.contains("pvmtop  sim=42 ns"));
        assert!(text.contains("policy: clock (+0 overrides)  readahead=doubling  victims 2/3 req"));
        assert!(text.contains("PVICT"));
        assert!(text.contains("... 1 more caches"));
        assert!(text.contains("lock heat (contended/acqs): state 3/12 stripe 1/4"));
        assert!(text.contains("LOCKHEAT"));
        // Render keeps the caller's hottest-first order: cache 0 (9
        // faults) appears before cache 1 (5 faults), cache 2 is cut.
        let row0 = text.find("      0        9").expect("cache 0 row");
        let row1 = text.find("      1        5").expect("cache 1 row");
        assert!(row0 < row1);
    }
}
