//! The soft-fault fast path: a generation-validated resident
//! translation cache.
//!
//! A soft fault — the page is resident, not COW, not a stub, and the
//! access is already allowed by the installed protection — needs no PVM
//! state change at all: the MMU mapping is (or was just) present and the
//! fault exists only because the simulated MMU had not yet been told, or
//! because a racing thread re-faulted after a benign TLB-style miss.
//! Serializing those faults behind the big state mutex is the
//! single-lock scalability wall this cache removes (cf. Mach's VM lock,
//! RadixVM): `handle_fault` consults it *before* taking the mutex and,
//! on a hit, returns without locking anything but one sharded read lock.
//!
//! **Invalidation protocol.** Correctness does not ride on per-entry
//! precision: a single global generation counter is bumped (and all
//! shards cleared) by every operation that revokes or narrows an
//! existing translation — unmap, reprotect, eviction/cleaning,
//! region/context destruction, cache quarantine. An entry is valid only
//! if its recorded generation equals the current one, so a reader that
//! raced a bump falls through to the slow path, which re-derives truth
//! under the mutex. Installs happen only while the state mutex is held
//! (from `map_page`), so an entry can never outlive the MMU mapping it
//! mirrors by more than one generation bump. The one deliberate
//! imprecision: fast hits do not set the page's `ref_bit` (the slow
//! path already set it at install), which at worst ages a hot page
//! slightly faster — a replacement-policy nuance, never a correctness
//! issue, because eviction itself bumps the generation.

use crate::keys::CtxKey;
use crate::stats::{Counter, StatsRegistry};
use crate::telemetry::{Dim, DimCounter, Telemetry};
use chorus_hal::{Access, FrameNo, FxHashMap, Prot, Vpn};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of read-mostly shards (fixed; keyed by (ctx, vpn) hash).
const SHARDS: usize = 16;

/// One cached translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct FastEntry {
    /// The physical frame the MMU maps (ctx, vpn) to.
    pub frame: FrameNo,
    /// The protection installed in the MMU for this mapping.
    pub prot: Prot,
    /// Generation at install time; stale when != current.
    pub gen: u64,
}

/// One read-mostly shard of the translation cache.
type FastShard = RwLock<FxHashMap<(CtxKey, Vpn), FastEntry>>;

/// The sharded, generation-validated translation cache.
pub(crate) struct TranslationCache {
    enabled: AtomicBool,
    shards: Box<[FastShard]>,
    /// Current generation; entries from older generations are dead.
    generation: AtomicU64,
    /// Shared counter registry: hit/fallback counts land in the same
    /// atomic cells every other PVM counter lives in, so the snapshot
    /// never has to fold divergent copies.
    stats: Arc<StatsRegistry>,
    /// Shared dimensional registry: fast hits are the one per-context
    /// event the slow path never sees, so the lock-free path must
    /// attribute them itself (a no-op when telemetry is off).
    telemetry: Arc<Telemetry>,
}

impl TranslationCache {
    pub fn new(
        enabled: bool,
        stats: Arc<StatsRegistry>,
        telemetry: Arc<Telemetry>,
    ) -> TranslationCache {
        TranslationCache {
            enabled: AtomicBool::new(enabled),
            shards: (0..SHARDS)
                .map(|_| RwLock::new(FxHashMap::default()))
                .collect(),
            generation: AtomicU64::new(0),
            stats,
            telemetry,
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    #[inline]
    fn shard(&self, key: &(CtxKey, Vpn)) -> &FastShard {
        &self.shards[(chorus_hal::fx_hash_one(key) as usize) & (SHARDS - 1)]
    }

    /// The lock-avoiding fault check. Returns true if a current-
    /// generation entry exists for (ctx, vpn) whose installed protection
    /// already allows `access` — in that case the MMU mapping is valid
    /// and the fault needs no state mutation at all.
    pub fn lookup(&self, ctx: CtxKey, vpn: Vpn, access: Access) -> bool {
        if !self.enabled() {
            return false;
        }
        // Acquire pairs with the Release bump: if we read generation G
        // here, every invalidation up to bump G is visible, so an entry
        // stamped G still mirrors a live MMU mapping.
        let gen = self.generation.load(Ordering::Acquire);
        let key = (ctx, vpn);
        let hit = self
            .shard(&key)
            .read()
            .get(&key)
            .is_some_and(|e| e.gen == gen && e.prot.allows(access, false));
        if hit {
            self.stats.bump(Counter::FastPathHits);
            self.telemetry.bump(
                Dim::Context,
                u64::from(ctx.index()),
                DimCounter::FastPathHits,
            );
        } else {
            self.stats.bump(Counter::FastPathFallbacks);
        }
        hit
    }

    /// Records a translation just installed in the MMU. Called only
    /// while the state mutex is held, so the entry matches the mapping.
    pub fn install(&self, ctx: CtxKey, vpn: Vpn, frame: FrameNo, prot: Prot) {
        if !self.enabled() {
            return;
        }
        let gen = self.generation.load(Ordering::Relaxed);
        let key = (ctx, vpn);
        self.shard(&key)
            .write()
            .insert(key, FastEntry { frame, prot, gen });
    }

    /// Drops one translation (precise removal; no generation bump
    /// needed when the caller removes every entry it invalidated).
    pub fn remove(&self, ctx: CtxKey, vpn: Vpn) {
        if !self.enabled() {
            return;
        }
        let key = (ctx, vpn);
        self.shard(&key).write().remove(&key);
    }

    /// Invalidates everything: bumps the generation (Release, pairing
    /// with the Acquire in `lookup`) and clears all shards in ascending
    /// order. Used by bulk revocations (context destroy, quarantine)
    /// where enumerating affected entries is not worth it.
    pub fn bump_generation(&self) {
        if !self.enabled() {
            return;
        }
        self.generation.fetch_add(1, Ordering::Release);
        for s in self.shards.iter() {
            s.write().clear();
        }
    }

    #[cfg(test)]
    pub fn hits(&self) -> u64 {
        self.stats.get(Counter::FastPathHits)
    }

    #[cfg(test)]
    pub fn fallbacks(&self) -> u64 {
        self.stats.get(Counter::FastPathFallbacks)
    }

    /// Copies out every *current-generation* entry (for the invariant
    /// checker). Ascending shard order.
    pub fn snapshot(&self) -> Vec<((CtxKey, Vpn), FastEntry)> {
        let gen = self.generation.load(Ordering::Acquire);
        let mut out = Vec::new();
        for s in self.shards.iter() {
            out.extend(
                s.read()
                    .iter()
                    .filter(|(_, e)| e.gen == gen)
                    .map(|(&k, &e)| (k, e)),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chorus_hal::Id;

    fn ctx(i: u32) -> CtxKey {
        Id::from_raw_parts(i, 1)
    }

    fn cache(enabled: bool) -> TranslationCache {
        TranslationCache::new(
            enabled,
            Arc::new(StatsRegistry::new()),
            Arc::new(Telemetry::new(false)),
        )
    }

    #[test]
    fn hit_requires_matching_generation_and_protection() {
        let c = cache(true);
        c.install(ctx(1), Vpn(4), FrameNo(9), Prot::READ);
        assert!(c.lookup(ctx(1), Vpn(4), Access::Read));
        assert!(
            !c.lookup(ctx(1), Vpn(4), Access::Write),
            "read-only entry must not satisfy a write fault"
        );
        c.bump_generation();
        assert!(
            !c.lookup(ctx(1), Vpn(4), Access::Read),
            "stale generation falls through to the slow path"
        );
        assert_eq!(c.hits(), 1);
        assert_eq!(c.fallbacks(), 2);
    }

    #[test]
    fn precise_remove_and_disabled_mode() {
        let c = cache(true);
        c.install(ctx(2), Vpn(7), FrameNo(1), Prot::RW);
        c.remove(ctx(2), Vpn(7));
        assert!(!c.lookup(ctx(2), Vpn(7), Access::Read));

        let off = cache(false);
        off.install(ctx(2), Vpn(7), FrameNo(1), Prot::RW);
        assert!(!off.lookup(ctx(2), Vpn(7), Access::Read));
        assert_eq!(off.fallbacks(), 0, "disabled mode counts nothing");
    }
}
