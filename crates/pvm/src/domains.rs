//! Independently lockable domains of the PVM (the `parallel_faults`
//! decomposition).
//!
//! Historically the whole PVM sat behind one `Mutex<PvmState>` — the
//! classic Mach VM-lock wall. This module splits that monolith into
//! *lock domains*, each a [`DomainLock`] that counts its acquisitions
//! and contended acquisitions in the shared [`StatsRegistry`] (the same
//! try-lock-then-lock idiom the global-map stripes use for
//! `ShardContention`):
//!
//! - the **state** domain: cache descriptors, regions, history trees,
//!   the clock ring — everything that used to be the big mutex;
//! - the **phys** domain: the buddy allocator and the frame-plane
//!   metadata ([`chorus_hal::PhysicalMemory`]); the frame *bytes*
//!   themselves live in the lock-free [`chorus_hal::FrameStore`] plane
//!   and are touched outside every domain lock;
//! - the **trans** domain: MMU contexts and hardware page tables.
//!
//! Per-cache *fault stripes* (plain mutexes on [`crate::Pvm`], hashed
//! by cache key like the global-map shards) form the outermost domain
//! ring when `parallel_faults` is on.
//!
//! # Lock order
//!
//! ```text
//! fault stripe (at most one per thread, by cache-key hash)
//!   → gmap shard (at most one, ascending by index inside gmap ops)
//!     → state
//!       → phys | trans   (leaf locks, never both wired into a cycle:
//!                         phys and trans are only taken while state
//!                         is held, and never one inside the other)
//! ```
//!
//! Cross-domain waits never hold a lock: the stub protocol
//! (`Blocked::WaitStub` + the condvar on the state domain) and mapper
//! upcalls both run with every domain released, exactly as the
//! blocked-action driver always did. A stripe holder may *wait* only
//! on the state lock, the 50 ms-bounded stub condvar, or a mapper
//! upcall — never on another stripe — so the hierarchy is acyclic.

use std::sync::Arc;

use crate::stats::{Counter, StatsRegistry};
use parking_lot::{Mutex, MutexGuard};

/// A mutex fronting one lock domain, bumping the domain's acquisition
/// and contention counters in the shared registry on every lock.
pub(crate) struct DomainLock<T: ?Sized> {
    stats: Arc<StatsRegistry>,
    acqs: Counter,
    contended: Counter,
    inner: Mutex<T>,
}

impl<T> DomainLock<T> {
    /// Wraps `value` as a lock domain counting into `acqs`/`contended`.
    pub(crate) fn new(
        value: T,
        stats: Arc<StatsRegistry>,
        acqs: Counter,
        contended: Counter,
    ) -> DomainLock<T> {
        DomainLock {
            stats,
            acqs,
            contended,
            inner: Mutex::new(value),
        }
    }

    /// Locks the domain, counting the acquisition and (when the
    /// uncontended try-lock misses) the contention.
    #[inline]
    pub(crate) fn lock(&self) -> MutexGuard<'_, T> {
        self.stats.bump(self.acqs);
        match self.inner.try_lock() {
            Some(g) => g,
            None => {
                self.stats.bump(self.contended);
                self.inner.lock()
            }
        }
    }
}

impl<T: core::fmt::Debug> core::fmt::Debug for DomainLock<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DomainLock")
            .field("acqs", &self.acqs)
            .field("inner", &self.inner)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_acquisitions_and_contention() {
        let stats = Arc::new(StatsRegistry::new());
        let l = Arc::new(DomainLock::new(
            0u64,
            stats.clone(),
            Counter::PhysLockAcqs,
            Counter::PhysLockContended,
        ));
        *l.lock() += 1;
        *l.lock() += 1;
        assert_eq!(stats.get(Counter::PhysLockAcqs), 2);
        assert_eq!(stats.get(Counter::PhysLockContended), 0, "uncontended");

        // Force one contended acquisition: hold the lock in a thread
        // until the main thread has registered its attempt.
        let held = l.lock();
        let l2 = l.clone();
        let t = std::thread::spawn(move || {
            *l2.lock() += 1;
        });
        // Give the spawned thread a moment to miss the try-lock. The
        // counter is monotone, so a lost race only weakens the assert
        // below into `>= 0`, never a failure.
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(held);
        t.join().unwrap();
        assert_eq!(stats.get(Counter::PhysLockAcqs), 4);
        assert_eq!(*l.lock(), 3);
    }
}
