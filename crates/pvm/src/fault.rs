//! Page-fault handling (§4.1.2) and the copy-on-write resolution paths.
//!
//! The flow follows the paper exactly: locate the region by searching the
//! faulting context's sorted region list; compute the fault offset in the
//! segment from the fault address, the region start address and the
//! region start offset; look the page up in the global map; then either
//! recover immediately (resident), sleep on a synchronization page stub
//! (in transit), resolve a copy-on-write stub (§4.3), or walk the history
//! tree / pull from the segment (§4.2).

use crate::descriptors::{CowSource, RegionDesc, Slot};
use crate::keys::{CtxKey, PageKey};
use crate::resolve::Version;
use crate::state::{blocked, done, Attempt, PvmState};
use crate::stats::Counter;
use crate::trace::{Resolution, TraceEvent};
use chorus_gmi::{GmiError, Result};
use chorus_hal::{Access, FrameNo, Prot, VirtAddr};

impl PvmState {
    /// One locked attempt at resolving a fault; the driver in `pvm.rs`
    /// retries after performing any blocked action. Returns how the
    /// fault was resolved (recorded by the tracer at fault exit).
    ///
    /// `note_dims` is true only on the first attempt of a client-visible
    /// fault: it attributes the fault to its context up front and to its
    /// cache once the region resolves, reusing the lookup this path does
    /// anyway (blocked retries and internal materialization calls pass
    /// false so a fault is attributed exactly once).
    pub fn fault_attempt(
        &mut self,
        ctx: CtxKey,
        va: VirtAddr,
        access: Access,
        note_dims: bool,
    ) -> Attempt<Resolution> {
        if note_dims {
            self.note_fault_ctx_dim(ctx);
        }
        // A context torn down by the OOM killer answers faults with
        // `ContextKilled`, not `NoSuchContext`, so MIX can reap it.
        self.check_context_alive(ctx)?;
        // Backpressure: when the pending asynchronous pull queue is at
        // its configured bound, stall this fault deterministically
        // rather than letting the queue grow without bound.
        if self.config.async_upcalls
            && self.config.max_pending_pulls > 0
            && self.engine.pending_pulls.len() as u64 >= self.config.max_pending_pulls
        {
            return blocked(crate::state::Blocked::Throttled);
        }
        if let Some(c) = self.contexts.get_mut(ctx) {
            c.recent_faults += 1;
        }
        // Region lookup ("the PVM searches in its list of region
        // descriptors for the region containing the fault address").
        let reg_key = self
            .find_region(ctx, va)
            .map_err(|_| GmiError::SegmentationFault {
                ctx: crate::keys::pub_ctx(ctx),
                va,
                access,
            })?;
        let region: RegionDesc = self.region(reg_key)?.clone();
        if note_dims {
            self.note_fault_cache_dim(region.cache);
        }
        if !region.prot.allows(access, false) {
            return Err(GmiError::ProtectionViolation {
                ctx: crate::keys::pub_ctx(ctx),
                va,
                access,
            });
        }
        // Fault offset in the segment.
        let off = self.geom.round_down(region.va_to_offset(va));
        let vpn = self.geom.vpn(va);
        let cache = region.cache;
        // A quarantined cache answers every fault with a clean error —
        // including faulters that were asleep on a sync stub when the
        // permanent failure cleared it.
        self.check_not_poisoned(cache)?;

        // Global map lookup.
        match self.slot(cache, off) {
            Some(Slot::Present(p)) => {
                if access == Access::Write && !self.page(p).write_allowed() {
                    match self.promote_page(cache, off, p)? {
                        crate::state::Outcome::Done(()) => {}
                        crate::state::Outcome::Blocked(b) => return blocked(b),
                    }
                }
                self.map_for_access(p, ctx, vpn, &region, access);
                done(Resolution::Resident)
            }
            Some(Slot::Sync) => {
                self.stats.bump(Counter::StubWaits);
                self.trace.event(|| TraceEvent::StubWait {
                    cache: cache.index(),
                    offset: off,
                });
                blocked(crate::state::Blocked::WaitStub)
            }
            Some(Slot::Cow(src)) => {
                self.resolve_cow_stub_fault(ctx, vpn, &region, off, src, access)
            }
            None => self.resolve_miss(ctx, vpn, &region, off, access),
        }
    }

    /// Fault on a per-virtual-page copy-on-write stub (§4.3).
    fn resolve_cow_stub_fault(
        &mut self,
        ctx: CtxKey,
        vpn: chorus_hal::Vpn,
        region: &RegionDesc,
        off: u64,
        src: CowSource,
        access: Access,
    ) -> Attempt<Resolution> {
        let cache = region.cache;
        // Locate the source value.
        let version = match src {
            CowSource::Page(p) => Version::Page(p),
            CowSource::Loc(c2, o2) => match self.resolve_version(c2, o2, Access::Read)? {
                crate::state::Outcome::Done(v) => v,
                crate::state::Outcome::Blocked(b) => return blocked(b),
            },
            CowSource::Zero => Version::Zero,
        };
        match access {
            Access::Read | Access::Execute => match version {
                Version::Page(p) => {
                    // "the source page is accessible, for reads, through
                    // any cache to which it was copied."
                    let prot = region.prot.remove(Prot::WRITE);
                    self.map_page(p, ctx, vpn, prot, cache);
                    done(Resolution::SharedRead)
                }
                Version::Zero => {
                    // Materialize the (zero) value as an own page.
                    self.materialize_own(ctx, vpn, region, off, Version::Zero, access, Some(src))
                }
            },
            Access::Write => {
                // "a new page frame is allocated with a copy of the
                // source page, and inserted in the global map in
                // replacement of the stub."
                self.materialize_own(ctx, vpn, region, off, version, access, Some(src))
            }
        }
    }

    /// Fault with no slot at all: cache miss — copy-on-write /
    /// copy-on-reference resolution through the history tree, or demand
    /// zero-fill.
    fn resolve_miss(
        &mut self,
        ctx: CtxKey,
        vpn: chorus_hal::Vpn,
        region: &RegionDesc,
        off: u64,
        access: Access,
    ) -> Attempt<Resolution> {
        let cache = region.cache;
        let version = match self.resolve_version(cache, off, access)? {
            crate::state::Outcome::Done(v) => v,
            crate::state::Outcome::Blocked(b) => return blocked(b),
        };
        let cor = self.is_cor_at(cache, off);
        match version {
            Version::Page(p) if access != Access::Write && !cor => {
                // Copy-on-write read: share the ancestor's page
                // read-only through this cache.
                let prot = region.prot.remove(Prot::WRITE);
                self.map_page(p, ctx, vpn, prot, cache);
                done(Resolution::SharedRead)
            }
            version => {
                // Write violation in the copy, or copy-on-reference, or
                // demand zero: allocate an own page.
                self.materialize_own(ctx, vpn, region, off, version, access, None)
            }
        }
    }

    /// Allocates an own page for (cache, off) holding the *original*
    /// value given by `version`, replaces any stub, applies the history
    /// write-violation algorithm if the access is a write, and maps the
    /// page. Resolves as [`Resolution::CowCopy`] or
    /// [`Resolution::ZeroFill`] depending on the source version.
    #[allow(clippy::too_many_arguments)]
    fn materialize_own(
        &mut self,
        ctx: CtxKey,
        vpn: chorus_hal::Vpn,
        region: &RegionDesc,
        off: u64,
        version: Version,
        access: Access,
        replaced_stub: Option<CowSource>,
    ) -> Attempt<Resolution> {
        let cache = region.cache;
        // Pin the resolved source page across the allocation so the
        // inline eviction cannot reclaim it.
        let alloc = match version {
            Version::Page(p) => self.alloc_frame_keeping(p)?,
            Version::Zero => self.alloc_frame()?,
        };
        let frame = match alloc {
            crate::state::Outcome::Done(f) => f,
            crate::state::Outcome::Blocked(b) => return blocked(b),
        };
        // After a blocked alloc the whole attempt reruns, so `version`
        // is re-resolved; here we hold the lock continuously.
        let (dirty, resolution) = match version {
            Version::Page(p) => {
                let src_frame = self.page(p).frame;
                self.fill_from(src_frame, frame);
                self.stats.bump(Counter::CowCopies);
                // Readers that mapped the old version *through this
                // cache* must re-fault onto the new own page.
                self.unmap_via(p, cache);
                (true, Resolution::CowCopy)
            }
            Version::Zero => {
                self.phys.lock().zero(frame);
                self.stats.bump(Counter::ZeroFills);
                // A demand-zero page is re-derivable; it only needs
                // writeback once actually written.
                (access == Access::Write, Resolution::ZeroFill)
            }
        };
        // Unthread the replaced per-page stub from its source.
        if let Some(src) = replaced_stub {
            self.unthread_cow_stub(cache, off, src);
        }
        let writable = !self.has_history_covering(cache, off);
        let page = self.create_page(cache, off, frame, writable, dirty);
        if access == Access::Write && !self.page(page).write_allowed() {
            // §4.2.3 complication: this cache has its own history, which
            // must receive the original value before the write.
            match self.promote_page(cache, off, page)? {
                crate::state::Outcome::Done(()) => {}
                crate::state::Outcome::Blocked(b) => return blocked(b),
            }
        }
        self.map_for_access(page, ctx, vpn, region, access);
        done(resolution)
    }

    fn fill_from(&mut self, src: FrameNo, dst: FrameNo) {
        self.phys.lock().copy_frame(src, dst);
    }

    /// Maps an own page with the protection appropriate for the access:
    /// write permission is granted only on write faults (or when the page
    /// is already dirty), because the simulated hardware has no dirty
    /// bits — a later first write must fault to set the dirty flag.
    fn map_for_access(
        &mut self,
        page: PageKey,
        ctx: CtxKey,
        vpn: chorus_hal::Vpn,
        region: &RegionDesc,
        access: Access,
    ) {
        let desc = self.page(page);
        let mut prot = desc.effective_prot(region.prot);
        if access == Access::Write {
            debug_assert!(
                prot.contains(Prot::WRITE),
                "write fault resolved without write access"
            );
            self.page_mut(page).dirty = true;
        } else if !desc.dirty {
            prot = prot.remove(Prot::WRITE);
        }
        let via = region.cache;
        self.map_page(page, ctx, vpn, prot, via);
        self.maybe_promote(ctx, vpn, region);
    }

    /// Fault entry used by `lockInMemory`: faults a page in (and, when
    /// the region is writable, materializes a private copy so the maps
    /// can stay fixed), then pins the resident page.
    pub fn lock_one_page(
        &mut self,
        ctx: CtxKey,
        va: VirtAddr,
        writable_region: bool,
    ) -> Attempt<()> {
        // Materialize with a write fault if the region allows writes so
        // no copy-on-write fault can occur later; otherwise materialize a
        // private read-only copy (copy-on-reference style) so promote in
        // an ancestor cannot shoot our mapping down.
        let reg_key = self.find_region(ctx, va)?;
        let region = self.region(reg_key)?.clone();
        let off = self.geom.round_down(region.va_to_offset(va));
        let cache = region.cache;
        let owns_it = {
            let c = self.cache(cache)?;
            matches!(self.gmap.get(cache, off), Some(Slot::Present(_))) || c.owns(off)
        };
        if writable_region {
            match self.fault_attempt(ctx, va, Access::Write, false)? {
                crate::state::Outcome::Done(_) => {}
                crate::state::Outcome::Blocked(b) => return blocked(b),
            }
        } else if owns_it {
            match self.fault_attempt(ctx, va, Access::Read, false)? {
                crate::state::Outcome::Done(_) => {}
                crate::state::Outcome::Blocked(b) => return blocked(b),
            }
        } else {
            // Force a private materialization even for reads.
            let version = match self.resolve_version(cache, off, Access::Read)? {
                crate::state::Outcome::Done(v) => v,
                crate::state::Outcome::Blocked(b) => return blocked(b),
            };
            let vpn = self.geom.vpn(va);
            match self.materialize_own(ctx, vpn, &region, off, version, Access::Read, None)? {
                crate::state::Outcome::Done(_) => {}
                crate::state::Outcome::Blocked(b) => return blocked(b),
            }
        }
        // Pin the now-resident own page.
        match self.slot(cache, off) {
            Some(Slot::Present(p)) => {
                self.page_mut(p).lock_count += 1;
                done(())
            }
            _ => Err(GmiError::InvalidArgument(
                "lockInMemory could not materialize page",
            )),
        }
    }

    /// Unpins one page of a region.
    pub fn unlock_one_page(&mut self, cache: crate::keys::CacheKey, off: u64) -> Result<()> {
        if let Some(Slot::Present(p)) = self.slot(cache, off) {
            let page = self.page_mut(p);
            if page.lock_count > 0 {
                page.lock_count -= 1;
            }
        }
        Ok(())
    }
}
