//! Dimensional-telemetry consistency: the gauges must equal the ground
//! truth the HAL and the completion engine report, the per-entity
//! counters must sum to the global cells they shadow, and the knob must
//! be free when off — same simulated clock, same stats, bit for bit.

mod common;

use chorus_gmi::{Gmi, Prot, VirtAddr};
use chorus_hal::CostParams;
use chorus_pvm::telemetry::Dim;
use chorus_pvm::{Pvm, PvmConfig};
use common::{pattern, read, setup_with, write, PS};
use std::sync::Arc;

/// A PVM with the telemetry knob and a real (Sun-3) cost model so the
/// sim-time sampler has a clock to ride.
fn telemetry_pvm(frames: u32, on: bool) -> Arc<Pvm> {
    let (pvm, _mgr) = setup_with(frames, |o| {
        o.cost = CostParams::sun3();
        o.config = PvmConfig::builder()
            .paging(|p| p.check_invariants(true))
            .telemetry(|t| t.telemetry(on).telemetry_sample_ns(100_000))
            .build()
            .expect("valid config");
    });
    pvm
}

/// Touch `pages` pages of a fresh anonymous region; returns the ids.
fn touch_region(pvm: &Pvm, base: u64, pages: u64) -> (chorus_gmi::CtxId, chorus_gmi::CacheId) {
    let ctx = pvm.context_create().unwrap();
    let cache = pvm.cache_create(None).unwrap();
    pvm.region_create(ctx, VirtAddr(base), pages * PS, Prot::RW, cache, 0)
        .unwrap();
    for p in 0..pages {
        write(pvm, ctx, base + p * PS, &pattern(p as u8, 16));
    }
    (ctx, cache)
}

#[test]
fn free_frame_gauge_matches_hal_mem_stats() {
    let frames = 16u32;
    let pvm = telemetry_pvm(frames, true);
    touch_region(&pvm, 0x1_0000, 6);
    let sample = pvm.sample_now();
    let mem = pvm.mem_stats();
    assert_eq!(
        u64::from(sample.free_frames),
        u64::from(frames) - mem.in_use,
        "free-frame gauge vs hal MemStats"
    );
    assert_eq!(sample.free_frames, pvm.free_frames());
    // The buddy occupancy vector is the same pool viewed by order.
    let from_orders: u32 = sample
        .free_blocks_per_order
        .iter()
        .enumerate()
        .map(|(k, &n)| n << k)
        .sum();
    assert_eq!(from_orders, sample.free_frames);
}

#[test]
fn per_entity_fault_counters_sum_to_global() {
    let pvm = telemetry_pvm(64, true);
    let (_ctx_a, _cache_a) = touch_region(&pvm, 0x1_0000, 12);
    let (_ctx_b, _cache_b) = touch_region(&pvm, 0x80_0000, 3);
    let stats = pvm.stats();
    let telemetry = pvm.telemetry();
    // `PvmStats::faults` folds fast-path hits in; the dimensional rows
    // attribute slow-path faults only.
    let slow = stats.faults - stats.fast_path_hits;
    let by_cache: u64 = telemetry
        .table(Dim::Cache)
        .iter()
        .map(|(_, c)| c[chorus_pvm::DimCounter::Faults as usize])
        .sum();
    let by_ctx: u64 = telemetry
        .table(Dim::Context)
        .iter()
        .map(|(_, c)| c[chorus_pvm::DimCounter::Faults as usize])
        .sum();
    assert_eq!(by_ctx, slow, "context-dimension faults vs global");
    assert_eq!(
        by_cache, slow,
        "cache-dimension faults vs global (all resolved)"
    );
    // Fast-path hits live in the context dimension only.
    let fast_by_ctx: u64 = telemetry
        .table(Dim::Context)
        .iter()
        .map(|(_, c)| c[chorus_pvm::DimCounter::FastPathHits as usize])
        .sum();
    assert_eq!(fast_by_ctx, stats.fast_path_hits);
}

#[test]
fn inflight_gauge_matches_completion_table() {
    use chorus_gmi::testing::{MemSegmentManager, MemSegmentManagerV2};
    use chorus_hal::PageGeometry;
    use chorus_pvm::{MmuChoice, PvmOptions};
    // Async upcalls ride the completion engine only on the native-async
    // (v2) path, so this fixture bypasses the shim-mode common helper.
    let mgr = Arc::new(MemSegmentManager::new());
    let options = PvmOptions {
        geometry: PageGeometry::new(PS),
        frames: 8,
        cost: CostParams::sun3(),
        mmu: MmuChoice::Soft,
        config: PvmConfig::builder()
            .paging(|p| p.check_invariants(true).pull_cluster_pages(4))
            .telemetry(|t| t.telemetry(true))
            .r#async(|a| a.async_upcalls(true).max_inflight_upcalls(2))
            .build()
            .expect("valid config"),
    };
    let pvm = Arc::new(Pvm::new(
        options,
        Arc::new(MemSegmentManagerV2::new(mgr.clone())),
    ));
    let pages = 24u64;
    let content = pattern(7, (pages * PS) as usize);
    let seg = mgr.create_segment(&content);
    let cache = pvm.cache_create(Some(seg)).unwrap();
    let ctx = pvm.context_create().unwrap();
    pvm.region_create(ctx, VirtAddr(0), pages * PS, Prot::RW, cache, 0)
        .unwrap();
    // Sweep under pressure: pulls and laundering pushes ride the
    // engine. With no watchdog cancels, the in-flight gauge must equal
    // submits minus deliveries at every client-visible instant.
    for p in 0..pages {
        let _ = read(&pvm, ctx, p * PS, 16);
        let s = pvm.stats();
        assert_eq!(
            pvm.sample_now().inflight_upcalls,
            s.async_submits - s.async_deliveries,
            "in-flight gauge vs completion-table population at page {p}"
        );
    }
    pvm.drain_upcalls();
    let s = pvm.stats();
    assert!(s.async_submits > 0, "engine never engaged");
    assert_eq!(s.async_submits, s.async_deliveries, "drained");
    assert_eq!(pvm.sample_now().inflight_upcalls, 0);
}

#[test]
fn sampler_rides_the_simulated_clock() {
    let pvm = telemetry_pvm(64, true);
    touch_region(&pvm, 0x1_0000, 24);
    let series = pvm.telemetry_series();
    assert!(!series.is_empty(), "sampler never fired");
    assert_eq!(series.len() as u64, pvm.stats().telemetry_samples);
    for w in series.windows(2) {
        assert!(
            w[0].sim_ns < w[1].sim_ns,
            "series must be strictly increasing"
        );
    }
}

#[test]
fn knob_off_is_free_and_bit_identical() {
    let run = |on: bool| {
        let pvm = telemetry_pvm(32, on);
        touch_region(&pvm, 0x1_0000, 16);
        let (_, cache_b) = touch_region(&pvm, 0x80_0000, 4);
        pvm.cache_destroy(cache_b).ok();
        (pvm.cost_model().now().nanos(), pvm.stats(), pvm.clone())
    };
    let (off_ns, off_stats, off_pvm) = run(false);
    let (on_ns, on_stats, _on_pvm) = run(true);
    assert_eq!(off_ns, on_ns, "telemetry must never advance the sim clock");
    assert_eq!(off_stats.faults, on_stats.faults);
    assert_eq!(off_stats.pull_ins, on_stats.pull_ins);
    assert_eq!(off_stats.push_outs, on_stats.push_outs);
    assert_eq!(off_stats.evictions, on_stats.evictions);
    assert_eq!(off_stats.zero_fills, on_stats.zero_fills);
    // Off: no rows, no samples.
    assert_eq!(off_stats.telemetry_samples, 0);
    assert!(off_pvm.telemetry_series().is_empty());
    for &d in Dim::ALL {
        assert!(
            off_pvm.telemetry().table(d).is_empty(),
            "{d:?} rows with knob off"
        );
    }
}

#[test]
fn pvmtop_ranks_the_hot_cache_first() {
    let pvm = telemetry_pvm(64, true);
    let (_, hot) = touch_region(&pvm, 0x1_0000, 14);
    let (_, cold) = touch_region(&pvm, 0x80_0000, 2);
    let top = pvm.top();
    let hottest = top.hottest_cache().expect("caches exist");
    assert_eq!(hottest.cache, hot, "hottest cache must rank first");
    assert!(hottest.faults > 0 && hottest.resident_pages > 0);
    let cold_row = top.caches.iter().find(|c| c.cache == cold).unwrap();
    assert!(hottest.faults > cold_row.faults);
    assert!(hottest.dirty_pages >= cold_row.dirty_pages);
    // Anonymous caches have no segment yet, so no mapper rows; the
    // phase table is present (empty without tracing) and the gauge
    // sample is coherent.
    assert_eq!(top.sample.sim_ns, top.sim_ns);
    assert!(!top.gmap_shards.is_empty());
    assert_eq!(
        top.gmap_shards.iter().sum::<usize>() as u64,
        top.sample.gmap_slots
    );
}

#[test]
fn reset_clears_dimensions_and_series() {
    let pvm = telemetry_pvm(32, true);
    touch_region(&pvm, 0x1_0000, 8);
    assert!(!pvm.telemetry().table(Dim::Cache).is_empty());
    pvm.reset_stats();
    assert_eq!(pvm.stats().faults, 0);
    assert_eq!(pvm.stats().telemetry_samples, 0);
    assert!(pvm.telemetry_series().is_empty());
    for &d in Dim::ALL {
        assert!(
            pvm.telemetry().table(d).is_empty(),
            "{d:?} rows after reset"
        );
    }
    // The sampler re-arms from zero: more work records fresh samples.
    touch_region(&pvm, 0x100_0000, 8);
    assert!(pvm.stats().telemetry_samples > 0);
}
