//! Regression: two contexts share one copy cache; one reads (mapping an
//! ancestor page read-only through the cache), the other materializes
//! the cache's own page. The reader's stale mapping must be shot down
//! so it re-faults onto the cache's own page and observes later writes.

mod common;

use chorus_gmi::{CopyMode, Gmi, Prot, VirtAddr};
use common::*;

#[test]
fn reader_mapping_follows_cow_materialization() {
    let (pvm, _) = setup(64);
    let src = pvm.cache_create(None).unwrap();
    pvm.write_logical(src, 0, &pattern(0x10, (2 * PS) as usize))
        .unwrap();
    let cpy = pvm.cache_create(None).unwrap();
    pvm.cache_copy_with(src, 0, cpy, 0, 2 * PS, CopyMode::HistoryCow)
        .unwrap();

    // Two contexts map the SAME copy cache.
    let reader = pvm.context_create().unwrap();
    let writer = pvm.context_create().unwrap();
    pvm.region_create(reader, VirtAddr(0x1000), 2 * PS, Prot::RW, cpy, 0)
        .unwrap();
    pvm.region_create(writer, VirtAddr(0x8000), 2 * PS, Prot::RW, cpy, 0)
        .unwrap();

    // Reader maps the ancestor's page read-only through cpy.
    assert_eq!(read(&pvm, reader, 0x1000, 8), pattern(0x10, 8));
    // Writer materializes cpy's own page and modifies it.
    write(&pvm, writer, 0x8000, b"NEWDATA!");
    // The reader shares the SAME cache: it must see the write.
    assert_eq!(read(&pvm, reader, 0x1000, 8), b"NEWDATA!");
    // And the source is untouched.
    assert_eq!(pvm.read_logical(src, 0, 8).unwrap(), pattern(0x10, 8));
}

#[test]
fn reader_mapping_follows_per_page_stub_materialization() {
    let (pvm, _) = setup(64);
    let src = pvm.cache_create(None).unwrap();
    pvm.write_logical(src, 0, &pattern(0x33, PS as usize))
        .unwrap();
    let cpy = pvm.cache_create(None).unwrap();
    pvm.cache_copy_with(src, 0, cpy, 0, PS, CopyMode::PerPage)
        .unwrap();

    let reader = pvm.context_create().unwrap();
    let writer = pvm.context_create().unwrap();
    pvm.region_create(reader, VirtAddr(0x1000), PS, Prot::RW, cpy, 0)
        .unwrap();
    pvm.region_create(writer, VirtAddr(0x8000), PS, Prot::RW, cpy, 0)
        .unwrap();

    // Reader maps the stub source read-only through cpy.
    assert_eq!(read(&pvm, reader, 0x1000, 4), pattern(0x33, 4));
    // Writer's fault replaces the stub with cpy's own page.
    write(&pvm, writer, 0x8000, b"COW!");
    assert_eq!(read(&pvm, reader, 0x1000, 4), b"COW!");
    assert_eq!(pvm.read_logical(src, 0, 4).unwrap(), pattern(0x33, 4));
}
