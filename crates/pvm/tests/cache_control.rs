//! Cache-management edge cases (Table 4): flush/sync over stubs and
//! locks, invalidate with history descendants, protection interplay.

mod common;

use chorus_gmi::testing::Upcall;
use chorus_gmi::{CopyMode, Gmi, GmiError, Prot, VirtAddr};
use common::*;

#[test]
fn sync_skips_clean_and_stubbed_ranges() {
    let (pvm, mgr) = setup(32);
    let seg = mgr.create_segment(&pattern(1, (4 * PS) as usize));
    let cache = pvm.cache_create(Some(seg)).unwrap();
    // Pull two pages, dirty one.
    assert_eq!(pvm.read_logical(cache, 0, 4).unwrap(), pattern(1, 4));
    pvm.write_logical(cache, PS, b"dirty").unwrap();
    mgr.take_log();
    pvm.cache_sync(cache, 0, 4 * PS).unwrap();
    let pushes = mgr
        .take_log()
        .iter()
        .filter(|u| matches!(u, Upcall::PushOut { .. }))
        .count();
    assert_eq!(pushes, 1, "only the dirty page is pushed");
    // Second sync: nothing dirty.
    pvm.cache_sync(cache, 0, 4 * PS).unwrap();
    assert!(mgr
        .take_log()
        .iter()
        .all(|u| !matches!(u, Upcall::PushOut { .. })));
}

#[test]
fn flush_refuses_locked_pages() {
    let (pvm, _) = setup(16);
    let cache = pvm.cache_create(None).unwrap();
    pvm.write_logical(cache, 0, b"pinned").unwrap();
    pvm.cache_lock_in_memory(cache, 0, PS).unwrap();
    assert!(matches!(
        pvm.cache_flush(cache, 0, PS),
        Err(GmiError::Locked)
    ));
    pvm.cache_unlock(cache, 0, PS).unwrap();
    pvm.cache_flush(cache, 0, PS).unwrap();
    // Data survives the flush through the lazily-bound swap segment.
    assert_eq!(pvm.read_logical(cache, 0, 6).unwrap(), b"pinned");
}

#[test]
fn invalidate_preserves_history_descendants() {
    let (pvm, mgr) = setup(32);
    let seg = mgr.create_segment(&pattern(0x42, (2 * PS) as usize));
    let file = pvm.cache_create(Some(seg)).unwrap();
    // Materialize + snapshot.
    assert_eq!(pvm.read_logical(file, 0, 4).unwrap(), pattern(0x42, 4));
    let snap = pvm.cache_create(None).unwrap();
    pvm.cache_copy_with(file, 0, snap, 0, 2 * PS, CopyMode::HistoryCow)
        .unwrap();
    // Someone else rewrites the segment and we invalidate our replica.
    let writer = pvm.cache_create(Some(seg)).unwrap();
    pvm.write_logical(writer, 0, &pattern(0x99, (2 * PS) as usize))
        .unwrap();
    pvm.cache_sync(writer, 0, 2 * PS).unwrap();
    pvm.cache_invalidate(file, 0, 2 * PS).unwrap();
    // The file now reads fresh data; the snapshot keeps its history.
    assert_eq!(pvm.read_logical(file, 0, 4).unwrap(), pattern(0x99, 4));
    assert_eq!(pvm.read_logical(snap, 0, 4).unwrap(), pattern(0x42, 4));
}

#[test]
fn set_protection_grant_restores_writes_without_upcall() {
    let (pvm, mgr) = setup(16);
    let seg = mgr.create_segment(&pattern(0, PS as usize));
    let cache = pvm.cache_create(Some(seg)).unwrap();
    let ctx = pvm.context_create().unwrap();
    pvm.region_create(ctx, VirtAddr(0), PS, Prot::RW, cache, 0)
        .unwrap();
    write(&pvm, ctx, 0, b"a");
    pvm.cache_set_protection(cache, 0, PS, Prot::READ).unwrap();
    // Re-grant locally: no getWriteAccess upcall needed.
    pvm.cache_set_protection(cache, 0, PS, Prot::RW).unwrap();
    mgr.take_log();
    write(&pvm, ctx, 0, b"b");
    assert!(
        mgr.take_log()
            .iter()
            .all(|u| !matches!(u, Upcall::GetWriteAccess { .. })),
        "grant must clear the coherence constraint"
    );
}

#[test]
fn region_lock_materializes_cow_copies_for_stability() {
    // lockInMemory on a region mapping a COW copy must materialize
    // private pages: later source writes cannot shoot down the pinned
    // mappings ("the underlying hardware MMU maps are guaranteed to
    // remain fixed").
    let (pvm, _) = setup(32);
    let src = pvm.cache_create(None).unwrap();
    pvm.write_logical(src, 0, &pattern(0x31, (2 * PS) as usize))
        .unwrap();
    let cpy = pvm.cache_create(None).unwrap();
    pvm.cache_copy_with(src, 0, cpy, 0, 2 * PS, CopyMode::HistoryCow)
        .unwrap();
    let ctx = pvm.context_create().unwrap();
    let r = pvm
        .region_create(ctx, VirtAddr(0x1000), 2 * PS, Prot::READ, cpy, 0)
        .unwrap();
    pvm.region_lock_in_memory(r).unwrap();
    assert_eq!(
        pvm.region_status(r).unwrap().resident_pages,
        2,
        "private pages pinned"
    );
    // Source writes do not disturb the locked region.
    pvm.write_logical(src, 0, &pattern(0xEE, (2 * PS) as usize))
        .unwrap();
    assert_eq!(read(&pvm, ctx, 0x1000, 8), pattern(0x31, 8));
    pvm.region_unlock(r).unwrap();
}

#[test]
fn context_destroy_force_unlocks() {
    let (pvm, _) = setup(16);
    let (ctx, region, cache) = anon_region(&pvm, 2);
    pvm.region_lock_in_memory(region).unwrap();
    // Context destruction must release the pins so the cache can die.
    pvm.context_destroy(ctx).unwrap();
    pvm.cache_destroy(cache).unwrap();
    assert_eq!(pvm.resident_page_count(), 0);
}

#[test]
fn flush_whole_cache_then_destroy_writes_back_once() {
    let (pvm, mgr) = setup(16);
    let seg = mgr.create_segment(&vec![0u8; (2 * PS) as usize]);
    let cache = pvm.cache_create(Some(seg)).unwrap();
    pvm.write_logical(cache, 0, b"AA").unwrap();
    pvm.write_logical(cache, PS, b"BB").unwrap();
    pvm.cache_destroy(cache).unwrap();
    let data = mgr.segment_data(seg);
    assert_eq!(&data[..2], b"AA");
    assert_eq!(&data[PS as usize..PS as usize + 2], b"BB");
}

#[test]
fn move_unaligned_falls_back_to_eager() {
    let (pvm, _) = setup(32);
    let src = pvm.cache_create(None).unwrap();
    let data = pattern(0x77, (2 * PS) as usize);
    pvm.write_logical(src, 0, &data).unwrap();
    let dst = pvm.cache_create(None).unwrap();
    pvm.cache_move(src, 3, dst, 9, PS + 11).unwrap();
    assert_eq!(
        pvm.read_logical(dst, 9, (PS + 11) as usize).unwrap(),
        data[3..3 + (PS + 11) as usize]
    );
    assert_eq!(
        pvm.stats().moved_frames,
        0,
        "unaligned move cannot steal frames"
    );
}

#[test]
fn vm_access_across_region_boundary_fails_cleanly() {
    let (pvm, _) = setup(16);
    let ctx = pvm.context_create().unwrap();
    let cache = pvm.cache_create(None).unwrap();
    pvm.region_create(ctx, VirtAddr(0), PS, Prot::RW, cache, 0)
        .unwrap();
    // A write crossing into unmapped space must fail...
    let err = pvm
        .vm_write(ctx, VirtAddr(PS - 4), &pattern(1, 16))
        .unwrap_err();
    assert!(matches!(err, GmiError::SegmentationFault { .. }));
    // ...and the in-region prefix was transferred before the fault
    // (faithful to a real partial access).
    assert_eq!(read(&pvm, ctx, PS - 4, 4), pattern(1, 4));
}

#[test]
fn adjacent_regions_of_one_cache_see_one_another() {
    let (pvm, _) = setup(16);
    let ctx = pvm.context_create().unwrap();
    let cache = pvm.cache_create(None).unwrap();
    // Two adjacent windows onto overlapping segment ranges.
    pvm.region_create(ctx, VirtAddr(0), 2 * PS, Prot::RW, cache, 0)
        .unwrap();
    pvm.region_create(ctx, VirtAddr(4 * PS), 2 * PS, Prot::RW, cache, PS)
        .unwrap();
    write(&pvm, ctx, PS + 7, b"overlap");
    // The second region maps segment offset PS at its base.
    assert_eq!(read(&pvm, ctx, 4 * PS + 7, 7), b"overlap");
}
