//! Copy/move semantics across all deferred-copy techniques (§3.3.1,
//! §4.3).

mod common;

use chorus_gmi::{CopyMode, Gmi, GmiError, Prot, VirtAddr};
use chorus_pvm::SlotDump;
use common::*;

#[test]
fn per_page_copy_defers_and_isolates() {
    let (pvm, _) = setup(64);
    let src = pvm.cache_create(None).unwrap();
    pvm.write_logical(src, 0, &pattern(0x10, (4 * PS) as usize))
        .unwrap();
    let dst = pvm.cache_create(None).unwrap();
    let copies_before = pvm.mem_stats().copied;
    pvm.cache_copy_with(src, 0, dst, 0, 4 * PS, CopyMode::PerPage)
        .unwrap();
    // Nothing copied yet; four stubs installed.
    assert_eq!(pvm.mem_stats().copied, copies_before);
    assert_eq!(pvm.stats().cow_stubs_created, 4);
    let dump = pvm.dump_caches();
    let stub_count = dump
        .cache(dst)
        .unwrap()
        .slots
        .iter()
        .filter(|(_, s)| matches!(s, SlotDump::CowStub))
        .count();
    assert_eq!(stub_count, 4);

    // Reads through the stub see the source value without copying.
    assert_eq!(
        pvm.read_logical(dst, PS, 8).unwrap(),
        pattern(0x10, (4 * PS) as usize)[PS as usize..PS as usize + 8]
    );
    assert_eq!(
        pvm.mem_stats().copied,
        copies_before,
        "reads do not materialize"
    );

    // "When a write violation occurs on a copy-on-write page stub, a new
    // page frame is allocated with a copy of the source page."
    pvm.write_logical(dst, 0, b"DIFF").unwrap();
    assert_eq!(pvm.read_logical(src, 0, 4).unwrap(), pattern(0x10, 4));
    let mut expect = pattern(0x10, PS as usize);
    expect[..4].copy_from_slice(b"DIFF");
    assert_eq!(pvm.read_logical(dst, 0, PS as usize).unwrap(), expect);
}

#[test]
fn per_page_source_write_preserves_stub_values() {
    let (pvm, _) = setup(64);
    let src = pvm.cache_create(None).unwrap();
    pvm.write_logical(src, 0, &pattern(0x40, PS as usize))
        .unwrap();
    let dst = pvm.cache_create(None).unwrap();
    pvm.cache_copy_with(src, 0, dst, 0, PS, CopyMode::PerPage)
        .unwrap();
    // Writing the *source* must not change what the stub destination
    // reads.
    pvm.write_logical(src, 0, &pattern(0x99, PS as usize))
        .unwrap();
    assert_eq!(
        pvm.read_logical(dst, 0, PS as usize).unwrap(),
        pattern(0x40, PS as usize)
    );
    assert_eq!(
        pvm.read_logical(src, 0, PS as usize).unwrap(),
        pattern(0x99, PS as usize)
    );
}

#[test]
fn per_page_multiple_destinations_thread_on_source() {
    let (pvm, _) = setup(64);
    let src = pvm.cache_create(None).unwrap();
    pvm.write_logical(src, 0, &pattern(0x40, PS as usize))
        .unwrap();
    // Copy the same source page to three destinations ("the source page
    // is accessible, for reads, through any cache to which it was
    // copied").
    let dsts: Vec<_> = (0..3)
        .map(|_| {
            let d = pvm.cache_create(None).unwrap();
            pvm.cache_copy_with(src, 0, d, 0, PS, CopyMode::PerPage)
                .unwrap();
            d
        })
        .collect();
    for &d in &dsts {
        assert_eq!(pvm.read_logical(d, 0, 8).unwrap(), pattern(0x40, 8));
    }
    // Source write: one original materialization serves all stubs.
    pvm.write_logical(src, 0, &pattern(0x99, PS as usize))
        .unwrap();
    for &d in &dsts {
        assert_eq!(
            pvm.read_logical(d, 0, PS as usize).unwrap(),
            pattern(0x40, PS as usize),
            "{d:?}"
        );
    }
    // Each destination can still diverge independently.
    pvm.write_logical(dsts[1], 0, b"mine").unwrap();
    assert_eq!(pvm.read_logical(dsts[0], 0, 4).unwrap(), pattern(0x40, 4));
    assert_eq!(pvm.read_logical(dsts[1], 0, 4).unwrap(), b"mine");
    assert_eq!(pvm.read_logical(dsts[2], 0, 4).unwrap(), pattern(0x40, 4));
}

#[test]
fn move_transfers_frames_without_copying() {
    let (pvm, _) = setup(64);
    let src = pvm.cache_create(None).unwrap();
    pvm.write_logical(src, 0, &pattern(0x33, (4 * PS) as usize))
        .unwrap();
    let dst = pvm.cache_create(None).unwrap();
    let copies_before = pvm.mem_stats().copied;
    pvm.cache_move(src, 0, dst, 0, 4 * PS).unwrap();
    assert_eq!(pvm.mem_stats().copied, copies_before, "move must not bcopy");
    assert_eq!(pvm.stats().moved_frames, 4);
    assert_eq!(
        pvm.read_logical(dst, 0, (4 * PS) as usize).unwrap(),
        pattern(0x33, (4 * PS) as usize)
    );
    // Source content is undefined; its pages are gone.
    assert_eq!(pvm.cache_resident_pages(src).unwrap(), 0);
}

#[test]
fn move_with_offset_shift() {
    let (pvm, _) = setup(64);
    let src = pvm.cache_create(None).unwrap();
    pvm.write_logical(src, 2 * PS, &pattern(0x44, (2 * PS) as usize))
        .unwrap();
    let dst = pvm.cache_create(None).unwrap();
    pvm.cache_move(src, 2 * PS, dst, 6 * PS, 2 * PS).unwrap();
    assert_eq!(
        pvm.read_logical(dst, 6 * PS, (2 * PS) as usize).unwrap(),
        pattern(0x44, (2 * PS) as usize)
    );
}

#[test]
fn move_of_cow_protected_pages_falls_back_to_stubs() {
    let (pvm, _) = setup(64);
    let src = pvm.cache_create(None).unwrap();
    pvm.write_logical(src, 0, &pattern(0x55, (2 * PS) as usize))
        .unwrap();
    // src now has a history child: its frames cannot be stolen.
    let child = pvm.cache_create(None).unwrap();
    pvm.cache_copy_with(src, 0, child, 0, 2 * PS, CopyMode::HistoryCow)
        .unwrap();
    let dst = pvm.cache_create(None).unwrap();
    pvm.cache_move(src, 0, dst, 0, 2 * PS).unwrap();
    assert_eq!(
        pvm.stats().moved_frames,
        0,
        "protected frames must not be stolen"
    );
    // Both the history child and the move destination read the data.
    assert_eq!(pvm.read_logical(child, 0, 8).unwrap(), pattern(0x55, 8));
    assert_eq!(pvm.read_logical(dst, 0, 8).unwrap(), pattern(0x55, 8));
}

#[test]
fn eager_copy_handles_unaligned_ranges() {
    let (pvm, _) = setup(64);
    let src = pvm.cache_create(None).unwrap();
    let data = pattern(0x21, (3 * PS) as usize);
    pvm.write_logical(src, 0, &data).unwrap();
    let dst = pvm.cache_create(None).unwrap();
    // Unaligned offsets and size: byte-exact copy.
    pvm.cache_copy_with(src, 13, dst, 7, 2 * PS + 11, CopyMode::Eager)
        .unwrap();
    assert_eq!(
        pvm.read_logical(dst, 7, (2 * PS + 11) as usize).unwrap(),
        data[13..13 + (2 * PS + 11) as usize]
    );
    // Immediately isolated (eager = real copy).
    pvm.write_logical(src, 13, b"XX").unwrap();
    assert_eq!(pvm.read_logical(dst, 7, 2).unwrap(), data[13..15]);
}

#[test]
fn auto_mode_picks_technique_by_size() {
    let (pvm, _) = setup(200);
    let src = pvm.cache_create(None).unwrap();
    pvm.write_logical(src, 0, &pattern(1, (20 * PS) as usize))
        .unwrap();
    // Small aligned copy (<= 8 pages): per-page stubs.
    let d1 = pvm.cache_create(None).unwrap();
    pvm.cache_copy(src, 0, d1, 0, 4 * PS).unwrap();
    assert_eq!(pvm.stats().cow_stubs_created, 4);
    assert_eq!(pvm.stats().working_objects, 0);
    let h_before = pvm.dump_caches().cache(src).unwrap().history;
    assert_eq!(h_before, None, "per-page copies do not build history trees");
    // Large aligned copy: history objects.
    let d2 = pvm.cache_create(None).unwrap();
    pvm.cache_copy(src, 0, d2, 0, 20 * PS).unwrap();
    assert_eq!(pvm.dump_caches().cache(src).unwrap().history, Some(d2));
    // Unaligned copy: eager (no new stubs or history links; real byte
    // copies are charged).
    let d3 = pvm.cache_create(None).unwrap();
    let stubs_before = pvm.stats().cow_stubs_created;
    let bcopy_before = pvm.cost_model().count(chorus_hal::OpKind::BcopyPage);
    pvm.cache_copy(src, 1, d3, 0, PS).unwrap();
    assert_eq!(pvm.stats().cow_stubs_created, stubs_before);
    assert!(pvm.cost_model().count(chorus_hal::OpKind::BcopyPage) > bcopy_before);
    assert_eq!(
        pvm.read_logical(d3, 0, PS as usize).unwrap(),
        pattern(1, (20 * PS) as usize)[1..1 + PS as usize]
    );
}

#[test]
fn deferred_copy_rejects_unaligned_and_self() {
    let (pvm, _) = setup(16);
    let a = pvm.cache_create(None).unwrap();
    let b = pvm.cache_create(None).unwrap();
    assert!(matches!(
        pvm.cache_copy_with(a, 1, b, 0, PS, CopyMode::HistoryCow),
        Err(GmiError::Unaligned { .. })
    ));
    assert!(matches!(
        pvm.cache_copy_with(a, 0, b, 0, PS - 1, CopyMode::PerPage),
        Err(GmiError::Unaligned { .. })
    ));
    assert!(matches!(
        pvm.cache_copy_with(a, 0, a, PS, PS, CopyMode::HistoryCow),
        Err(GmiError::InvalidArgument(_))
    ));
    // Overlapping eager self-copy is rejected; disjoint is fine.
    pvm.write_logical(a, 0, &pattern(5, PS as usize)).unwrap();
    assert!(matches!(
        pvm.cache_copy_with(a, 0, a, 4, PS, CopyMode::Eager),
        Err(GmiError::InvalidArgument(_))
    ));
    pvm.cache_copy_with(a, 0, a, 4 * PS, PS, CopyMode::Eager)
        .unwrap();
    assert_eq!(pvm.read_logical(a, 4 * PS, 8).unwrap(), pattern(5, 8));
}

#[test]
fn copy_zero_size_is_noop() {
    let (pvm, _) = setup(8);
    let a = pvm.cache_create(None).unwrap();
    let b = pvm.cache_create(None).unwrap();
    for mode in [
        CopyMode::Auto,
        CopyMode::HistoryCow,
        CopyMode::PerPage,
        CopyMode::Eager,
    ] {
        pvm.cache_copy_with(a, 0, b, 0, 0, mode).unwrap();
    }
    assert_eq!(pvm.cache_count(), 2);
}

#[test]
fn per_page_copy_through_mapped_regions() {
    // The IPC scenario: copy a message between two mapped segments and
    // access both sides through their mappings.
    let (pvm, _) = setup(64);
    let sender = pvm.cache_create(None).unwrap();
    let receiver = pvm.cache_create(None).unwrap();
    let ctx = pvm.context_create().unwrap();
    pvm.region_create(ctx, VirtAddr(0x1000), 2 * PS, Prot::RW, sender, 0)
        .unwrap();
    pvm.region_create(ctx, VirtAddr(0x8000), 2 * PS, Prot::RW, receiver, 0)
        .unwrap();
    write(&pvm, ctx, 0x1000, &pattern(0xAB, (2 * PS) as usize));
    pvm.cache_copy_with(sender, 0, receiver, 0, 2 * PS, CopyMode::PerPage)
        .unwrap();
    // The receiver's mapping reads the message...
    assert_eq!(
        read(&pvm, ctx, 0x8000, (2 * PS) as usize),
        pattern(0xAB, (2 * PS) as usize)
    );
    // ...the sender reuses its buffer...
    write(&pvm, ctx, 0x1000, &pattern(0xCD, (2 * PS) as usize));
    // ...and the receiver still sees the original message.
    assert_eq!(
        read(&pvm, ctx, 0x8000, (2 * PS) as usize),
        pattern(0xAB, (2 * PS) as usize)
    );
}

#[test]
fn copy_from_segment_backed_cache_pulls_through() {
    let (pvm, mgr) = setup(64);
    let content = pattern(0x60, (4 * PS) as usize);
    let seg = mgr.create_segment(&content);
    let file = pvm.cache_create(Some(seg)).unwrap();
    let anon = pvm.cache_create(None).unwrap();
    // Deferred copy from a file cache with nothing resident.
    pvm.cache_copy_with(file, 0, anon, 0, 4 * PS, CopyMode::HistoryCow)
        .unwrap();
    assert_eq!(
        pvm.read_logical(anon, PS, 16).unwrap(),
        content[PS as usize..PS as usize + 16]
    );
    assert!(
        pvm.stats().pull_ins >= 1,
        "data pulled through the copy chain"
    );
    // Writes in the copy do not touch the file.
    pvm.write_logical(anon, PS, b"local").unwrap();
    assert_eq!(mgr.segment_data(seg), content);
    assert_eq!(
        pvm.read_logical(file, PS, 5).unwrap(),
        content[PS as usize..PS as usize + 5]
    );
}

#[test]
fn move_into_larger_message_slot_then_back() {
    // Round-trip through a "transit slot" as IPC does (§5.1.6):
    // sender -> transit (copy), transit -> receiver (move).
    let (pvm, _) = setup(64);
    let sender = pvm.cache_create(None).unwrap();
    let transit = pvm.cache_create(None).unwrap();
    let receiver = pvm.cache_create(None).unwrap();
    let msg = pattern(0x7E, (2 * PS) as usize);
    pvm.write_logical(sender, 0, &msg).unwrap();
    pvm.cache_copy_with(sender, 0, transit, 4 * PS, 2 * PS, CopyMode::PerPage)
        .unwrap();
    pvm.cache_move(transit, 4 * PS, receiver, 0, 2 * PS)
        .unwrap();
    assert_eq!(pvm.read_logical(receiver, 0, msg.len()).unwrap(), msg);
    // Transit slot is empty again and reusable.
    assert_eq!(pvm.cache_resident_pages(transit).unwrap(), 0);
    pvm.write_logical(sender, 0, &pattern(0x11, (2 * PS) as usize))
        .unwrap();
    assert_eq!(
        pvm.read_logical(receiver, 0, msg.len()).unwrap(),
        msg,
        "receiver isolated"
    );
}
