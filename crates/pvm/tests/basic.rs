//! Basic address-space and demand-paging behaviour (Table 2 + §4.1).

mod common;

use chorus_gmi::{Gmi, GmiError, Prot, VirtAddr};
use common::*;

#[test]
fn zero_fill_read_write_roundtrip() {
    let (pvm, _) = setup(32);
    let (ctx, _r, _c) = anon_region(&pvm, 4);
    // Fresh anonymous memory reads as zeroes.
    assert_eq!(read(&pvm, ctx, 0x1_0000, 16), vec![0u8; 16]);
    // Round-trip a pattern crossing page boundaries.
    let data = pattern(7, (2 * PS + 32) as usize);
    write(&pvm, ctx, 0x1_0000 + PS / 2, &data);
    assert_eq!(read(&pvm, ctx, 0x1_0000 + PS / 2, data.len()), data);
    let stats = pvm.stats();
    assert!(
        stats.zero_fills >= 3,
        "demand-zero fills expected, got {stats:?}"
    );
}

#[test]
fn unmapped_access_is_segmentation_fault() {
    let (pvm, _) = setup(8);
    let ctx = pvm.context_create().unwrap();
    let mut buf = [0u8; 4];
    let err = pvm.vm_read(ctx, VirtAddr(0xDEAD000), &mut buf).unwrap_err();
    assert!(matches!(err, GmiError::SegmentationFault { .. }), "{err}");
}

#[test]
fn write_to_read_only_region_is_protection_violation() {
    let (pvm, _) = setup(8);
    let ctx = pvm.context_create().unwrap();
    let cache = pvm.cache_create(None).unwrap();
    let _r = pvm
        .region_create(ctx, VirtAddr(0x2000), PS, Prot::READ, cache, 0)
        .unwrap();
    assert_eq!(read(&pvm, ctx, 0x2000, 4), vec![0; 4]);
    let err = pvm.vm_write(ctx, VirtAddr(0x2000), b"x").unwrap_err();
    assert!(matches!(err, GmiError::ProtectionViolation { .. }), "{err}");
}

#[test]
fn region_overlap_rejected() {
    let (pvm, _) = setup(8);
    let ctx = pvm.context_create().unwrap();
    let cache = pvm.cache_create(None).unwrap();
    pvm.region_create(ctx, VirtAddr(0x1000), 4 * PS, Prot::RW, cache, 0)
        .unwrap();
    for addr in [0x1000u64, 0x1000 + PS, 0x1000 + 3 * PS, 0x1000 - PS] {
        let err = pvm
            .region_create(ctx, VirtAddr(addr), 2 * PS, Prot::RW, cache, 0)
            .unwrap_err();
        assert!(
            matches!(err, GmiError::RegionOverlap { .. }),
            "addr {addr:#x}: {err}"
        );
    }
    // Adjacent regions are fine.
    pvm.region_create(ctx, VirtAddr(0x1000 + 4 * PS), PS, Prot::RW, cache, 4 * PS)
        .unwrap();
    pvm.region_create(
        ctx,
        VirtAddr(0x1000 - 2 * PS),
        2 * PS,
        Prot::RW,
        cache,
        8 * PS,
    )
    .unwrap();
}

#[test]
fn unaligned_region_arguments_rejected() {
    let (pvm, _) = setup(8);
    let ctx = pvm.context_create().unwrap();
    let cache = pvm.cache_create(None).unwrap();
    assert!(matches!(
        pvm.region_create(ctx, VirtAddr(12), PS, Prot::RW, cache, 0),
        Err(GmiError::Unaligned { .. })
    ));
    assert!(matches!(
        pvm.region_create(ctx, VirtAddr(0), PS + 1, Prot::RW, cache, 0),
        Err(GmiError::Unaligned { .. })
    ));
    assert!(matches!(
        pvm.region_create(ctx, VirtAddr(0), PS, Prot::RW, cache, 3),
        Err(GmiError::Unaligned { .. })
    ));
    assert!(matches!(
        pvm.region_create(ctx, VirtAddr(0), 0, Prot::RW, cache, 0),
        Err(GmiError::InvalidArgument(_))
    ));
}

#[test]
fn region_list_sorted_and_status_accurate() {
    let (pvm, _) = setup(16);
    let ctx = pvm.context_create().unwrap();
    let cache = pvm.cache_create(None).unwrap();
    // Create out of order.
    pvm.region_create(ctx, VirtAddr(8 * PS), PS, Prot::READ, cache, 0)
        .unwrap();
    pvm.region_create(ctx, VirtAddr(2 * PS), 2 * PS, Prot::RW, cache, PS)
        .unwrap();
    pvm.region_create(ctx, VirtAddr(5 * PS), PS, Prot::RX, cache, 4 * PS)
        .unwrap();
    let list = pvm.region_list(ctx).unwrap();
    let addrs: Vec<u64> = list.iter().map(|(_, s)| s.addr.0).collect();
    assert_eq!(addrs, vec![2 * PS, 5 * PS, 8 * PS]);
    let (_, s) = &list[0];
    assert_eq!(s.size, 2 * PS);
    assert_eq!(s.prot, Prot::RW);
    assert_eq!(s.offset, PS);
    assert_eq!(s.resident_pages, 0);
}

#[test]
fn find_region_resolves_addresses() {
    let (pvm, _) = setup(8);
    let ctx = pvm.context_create().unwrap();
    let cache = pvm.cache_create(None).unwrap();
    let r = pvm
        .region_create(ctx, VirtAddr(4 * PS), 2 * PS, Prot::RW, cache, 0)
        .unwrap();
    assert_eq!(pvm.find_region(ctx, VirtAddr(4 * PS)).unwrap(), r);
    assert_eq!(pvm.find_region(ctx, VirtAddr(6 * PS - 1)).unwrap(), r);
    assert!(pvm.find_region(ctx, VirtAddr(6 * PS)).is_err());
    assert!(pvm.find_region(ctx, VirtAddr(0)).is_err());
}

#[test]
fn region_split_preserves_contents_and_windows() {
    let (pvm, _) = setup(16);
    let (ctx, region, _cache) = anon_region(&pvm, 4);
    let data = pattern(3, (4 * PS) as usize);
    write(&pvm, ctx, 0x1_0000, &data);
    let upper = pvm.region_split(region, 2 * PS).unwrap();
    let su = pvm.region_status(upper).unwrap();
    assert_eq!(su.addr, VirtAddr(0x1_0000 + 2 * PS));
    assert_eq!(su.size, 2 * PS);
    assert_eq!(su.offset, 2 * PS);
    let sl = pvm.region_status(region).unwrap();
    assert_eq!(sl.size, 2 * PS);
    // Contents unchanged after the split.
    assert_eq!(read(&pvm, ctx, 0x1_0000, data.len()), data);
    // Split at 0 or at/past the end is invalid.
    assert!(pvm.region_split(region, 0).is_err());
    assert!(pvm.region_split(region, 2 * PS).is_err());
}

#[test]
fn split_then_set_protection_on_half() {
    let (pvm, _) = setup(16);
    let (ctx, region, _cache) = anon_region(&pvm, 4);
    write(&pvm, ctx, 0x1_0000, &pattern(9, (4 * PS) as usize));
    let upper = pvm.region_split(region, 2 * PS).unwrap();
    pvm.region_set_protection(upper, Prot::READ).unwrap();
    // Lower half still writable.
    write(&pvm, ctx, 0x1_0000, b"ok");
    // Upper half now read-only.
    let err = pvm
        .vm_write(ctx, VirtAddr(0x1_0000 + 2 * PS), b"no")
        .unwrap_err();
    assert!(matches!(err, GmiError::ProtectionViolation { .. }));
    // Reads still fine.
    let _ = read(&pvm, ctx, 0x1_0000 + 2 * PS, 8);
    // Re-enable writes.
    pvm.region_set_protection(upper, Prot::RW).unwrap();
    write(&pvm, ctx, 0x1_0000 + 2 * PS, b"yes");
}

#[test]
fn region_destroy_unmaps_and_rejects_further_access() {
    let (pvm, _) = setup(16);
    let (ctx, region, cache) = anon_region(&pvm, 2);
    write(&pvm, ctx, 0x1_0000, b"hello");
    pvm.region_destroy(region).unwrap();
    let mut buf = [0u8; 4];
    assert!(pvm.vm_read(ctx, VirtAddr(0x1_0000), &mut buf).is_err());
    // Cache data survives region destruction (caches outlive mappings).
    assert_eq!(pvm.read_logical(cache, 0, 5).unwrap(), b"hello");
    // Remapping sees the same data.
    let r2 = pvm
        .region_create(ctx, VirtAddr(0x9_0000), 2 * PS, Prot::RW, cache, 0)
        .unwrap();
    assert_eq!(read(&pvm, ctx, 0x9_0000, 5), b"hello");
    pvm.region_destroy(r2).unwrap();
}

#[test]
fn context_destroy_releases_everything() {
    let (pvm, _) = setup(16);
    let (ctx, _r, cache) = anon_region(&pvm, 4);
    write(&pvm, ctx, 0x1_0000, &pattern(1, (3 * PS) as usize));
    pvm.context_destroy(ctx).unwrap();
    assert!(
        pvm.context_destroy(ctx).is_err(),
        "double destroy must fail"
    );
    // The cache itself still holds the pages until destroyed.
    assert!(pvm.cache_resident_pages(cache).unwrap() >= 3);
    pvm.cache_destroy(cache).unwrap();
    assert_eq!(pvm.resident_page_count(), 0);
    assert_eq!(pvm.free_frames(), 16);
}

#[test]
fn shared_mapping_between_contexts_sees_writes() {
    let (pvm, _) = setup(16);
    let cache = pvm.cache_create(None).unwrap();
    let a = pvm.context_create().unwrap();
    let b = pvm.context_create().unwrap();
    pvm.region_create(a, VirtAddr(0x1000), 2 * PS, Prot::RW, cache, 0)
        .unwrap();
    pvm.region_create(b, VirtAddr(0x8000), 2 * PS, Prot::RW, cache, 0)
        .unwrap();
    write(&pvm, a, 0x1000 + 5, b"shared");
    assert_eq!(read(&pvm, b, 0x8000 + 5, 6), b"shared");
    // And the reverse direction.
    write(&pvm, b, 0x8000 + 100, b"back");
    assert_eq!(read(&pvm, a, 0x1000 + 100, 4), b"back");
}

#[test]
fn window_region_maps_segment_offset() {
    let (pvm, mgr) = setup(16);
    let seg = mgr.create_segment(&pattern(0x40, (4 * PS) as usize));
    let cache = pvm.cache_create(Some(seg)).unwrap();
    let ctx = pvm.context_create().unwrap();
    // Map only pages 2..4 of the segment.
    pvm.region_create(ctx, VirtAddr(0x4000), 2 * PS, Prot::RW, cache, 2 * PS)
        .unwrap();
    let expected =
        pattern(0x40, (4 * PS) as usize)[(2 * PS) as usize..(2 * PS) as usize + 8].to_vec();
    assert_eq!(read(&pvm, ctx, 0x4000, 8), expected);
}

#[test]
fn mapped_file_pull_in_on_demand() {
    let (pvm, mgr) = setup(16);
    let content = pattern(0xA0, (3 * PS) as usize);
    let seg = mgr.create_segment(&content);
    let cache = pvm.cache_create(Some(seg)).unwrap();
    let ctx = pvm.context_create().unwrap();
    pvm.region_create(ctx, VirtAddr(0), 3 * PS, Prot::RW, cache, 0)
        .unwrap();
    mgr.take_log();
    // Touch only the middle page: exactly one pull.
    let got = read(&pvm, ctx, PS + 3, 10);
    assert_eq!(got, content[(PS + 3) as usize..(PS + 13) as usize]);
    let log = mgr.take_log();
    assert_eq!(log.len(), 1, "only the touched page is pulled: {log:?}");
    assert_eq!(pvm.stats().pull_ins, 1);
}

#[test]
fn dirty_data_synced_back_to_segment() {
    let (pvm, mgr) = setup(16);
    let seg = mgr.create_segment(&vec![0u8; (2 * PS) as usize]);
    let cache = pvm.cache_create(Some(seg)).unwrap();
    let ctx = pvm.context_create().unwrap();
    pvm.region_create(ctx, VirtAddr(0), 2 * PS, Prot::RW, cache, 0)
        .unwrap();
    write(&pvm, ctx, 10, b"persist-me");
    pvm.cache_sync(cache, 0, 2 * PS).unwrap();
    let data = mgr.segment_data(seg);
    assert_eq!(&data[10..20], b"persist-me");
    // Sync keeps the page resident; flush drops it.
    assert_eq!(pvm.cache_resident_pages(cache).unwrap(), 1);
    pvm.cache_flush(cache, 0, 2 * PS).unwrap();
    assert_eq!(pvm.cache_resident_pages(cache).unwrap(), 0);
    // Data still readable (pulled back in).
    assert_eq!(read(&pvm, ctx, 10, 10), b"persist-me");
}

#[test]
fn context_switch_tracks_current() {
    let (pvm, _) = setup(8);
    let a = pvm.context_create().unwrap();
    let b = pvm.context_create().unwrap();
    pvm.context_switch(a).unwrap();
    pvm.context_switch(b).unwrap();
    pvm.context_destroy(a).unwrap();
    assert!(pvm.context_switch(a).is_err());
    pvm.context_switch(b).unwrap();
}

#[test]
fn dead_handles_error_cleanly() {
    let (pvm, _) = setup(8);
    let (ctx, region, cache) = anon_region(&pvm, 1);
    pvm.region_destroy(region).unwrap();
    assert!(matches!(
        pvm.region_status(region),
        Err(GmiError::NoSuchRegion(_))
    ));
    assert!(matches!(
        pvm.region_destroy(region),
        Err(GmiError::NoSuchRegion(_))
    ));
    pvm.cache_destroy(cache).unwrap();
    assert!(matches!(
        pvm.cache_resident_pages(cache),
        Err(GmiError::NoSuchCache(_))
    ));
    pvm.context_destroy(ctx).unwrap();
    assert!(matches!(
        pvm.region_list(ctx),
        Err(GmiError::NoSuchContext(_))
    ));
}

#[test]
fn destroying_mapped_cache_is_rejected() {
    let (pvm, _) = setup(8);
    let (_ctx, _region, cache) = anon_region(&pvm, 1);
    assert!(matches!(
        pvm.cache_destroy(cache),
        Err(GmiError::InvalidArgument(_))
    ));
}

#[test]
fn lock_in_memory_pins_pages() {
    let (pvm, _) = setup(8);
    let (ctx, region, _cache) = anon_region(&pvm, 2);
    pvm.region_lock_in_memory(region).unwrap();
    // All pages materialized.
    assert_eq!(pvm.region_status(region).unwrap().resident_pages, 2);
    assert!(pvm.region_status(region).unwrap().locked);
    // Locked regions refuse destruction until unlocked.
    assert!(matches!(pvm.region_destroy(region), Err(GmiError::Locked)));
    pvm.region_unlock(region).unwrap();
    pvm.region_destroy(region).unwrap();
    let _ = ctx;
}

#[test]
fn both_mmu_backends_agree() {
    for mmu in [chorus_pvm::MmuChoice::Soft, chorus_pvm::MmuChoice::TwoLevel] {
        let (pvm, _) = setup_with(16, |o| o.mmu = mmu);
        let (ctx, _r, _c) = anon_region(&pvm, 4);
        let data = pattern(0x11, (3 * PS) as usize);
        write(&pvm, ctx, 0x1_0000 + 17, &data);
        assert_eq!(
            read(&pvm, ctx, 0x1_0000 + 17, data.len()),
            data,
            "mmu {mmu:?}"
        );
    }
}
