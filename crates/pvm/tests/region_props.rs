//! Property tests of the PVM's address-space management: the region
//! list against a naive interval model, and mapped access against a
//! flat-memory oracle.

mod common;

use chorus_gmi::{Gmi, GmiError, Prot, RegionId, VirtAddr};
use proptest::prelude::*;

const PS: u64 = common::PS;
const SLOTS: u64 = 32; // Virtual window of 32 pages for the fuzz.

#[derive(Clone, Debug)]
enum RegionOp {
    Create { page: u8, pages: u8 },
    Destroy { idx: usize },
    Split { idx: usize, at_page: u8 },
    Find { page: u8 },
}

fn region_op() -> impl Strategy<Value = RegionOp> {
    prop_oneof![
        3 => (0..SLOTS as u8, 1..8u8).prop_map(|(page, pages)| RegionOp::Create { page, pages }),
        2 => (0..16usize).prop_map(|idx| RegionOp::Destroy { idx }),
        2 => (0..16usize, 1..8u8).prop_map(|(idx, at_page)| RegionOp::Split { idx, at_page }),
        2 => (0..SLOTS as u8).prop_map(|page| RegionOp::Find { page }),
    ]
}

/// Reference model: a list of (start_page, pages) intervals.
#[derive(Default)]
struct IntervalModel {
    spans: Vec<(u64, u64, RegionId)>,
}

impl IntervalModel {
    fn overlaps(&self, start: u64, pages: u64) -> bool {
        self.spans
            .iter()
            .any(|&(s, n, _)| s < start + pages && start < s + n)
    }

    fn find(&self, page: u64) -> Option<RegionId> {
        self.spans
            .iter()
            .find(|&&(s, n, _)| page >= s && page < s + n)
            .map(|&(_, _, r)| r)
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96 })]

    /// Region create/destroy/split/find agrees with a naive interval
    /// model: overlaps rejected exactly when the model says so, lookups
    /// land in the right region, splits preserve coverage.
    #[test]
    fn region_list_matches_interval_model(ops in proptest::collection::vec(region_op(), 1..80)) {
        let (pvm, _) = common::setup(64);
        let ctx = pvm.context_create().unwrap();
        let cache = pvm.cache_create(None).unwrap();
        let mut model = IntervalModel::default();

        for op in ops {
            match op {
                RegionOp::Create { page, pages } => {
                    let start = page as u64 % SLOTS;
                    let pages = (pages as u64).min(SLOTS - start).max(1);
                    let addr = VirtAddr(start * PS);
                    let res = pvm.region_create(ctx, addr, pages * PS, Prot::RW, cache, start * PS);
                    if model.overlaps(start, pages) {
                        prop_assert!(matches!(res, Err(GmiError::RegionOverlap { .. })), "{res:?}");
                    } else {
                        let id = res.unwrap();
                        model.spans.push((start, pages, id));
                    }
                }
                RegionOp::Destroy { idx } => {
                    if model.spans.is_empty() { continue; }
                    let (_, _, id) = model.spans.swap_remove(idx % model.spans.len());
                    pvm.region_destroy(id).unwrap();
                    prop_assert!(pvm.region_status(id).is_err());
                }
                RegionOp::Split { idx, at_page } => {
                    if model.spans.is_empty() { continue; }
                    let i = idx % model.spans.len();
                    let (start, pages, id) = model.spans[i];
                    let at = at_page as u64;
                    let res = pvm.region_split(id, at * PS);
                    if at == 0 || at >= pages {
                        prop_assert!(res.is_err());
                    } else {
                        let upper = res.unwrap();
                        model.spans[i] = (start, at, id);
                        model.spans.push((start + at, pages - at, upper));
                    }
                }
                RegionOp::Find { page } => {
                    let va = VirtAddr((page as u64 % SLOTS) * PS + 3);
                    let got = pvm.find_region(ctx, va).ok();
                    prop_assert_eq!(got, model.find(page as u64 % SLOTS));
                }
            }
            // Cross-check the full listing.
            let listing = pvm.region_list(ctx).unwrap();
            prop_assert_eq!(listing.len(), model.spans.len());
            let mut addrs: Vec<u64> = listing.iter().map(|(_, s)| s.addr.0).collect();
            prop_assert!(addrs.windows(2).all(|w| w[0] < w[1]), "sorted: {addrs:?}");
            addrs.sort_unstable();
            let mut expect: Vec<u64> = model.spans.iter().map(|&(s, _, _)| s * PS).collect();
            expect.sort_unstable();
            prop_assert_eq!(addrs, expect);
        }
    }

    /// Mapped access through regions (windows at arbitrary page-aligned
    /// segment offsets) agrees with a flat-memory oracle, including
    /// across region splits and re-creations.
    #[test]
    fn mapped_access_matches_flat_oracle(
        writes in proptest::collection::vec(
            (0..SLOTS as u32 * 64, 1..48u8, any::<u8>()),
            1..40,
        ),
        window_page in 0..8u8,
    ) {
        let (pvm, _) = common::setup(64);
        let ctx = pvm.context_create().unwrap();
        let cache = pvm.cache_create(None).unwrap();
        // A region whose window starts at an arbitrary page offset.
        let win_off = window_page as u64 * PS;
        let base = VirtAddr(0x4_0000);
        let size = 16 * PS;
        pvm.region_create(ctx, base, size, Prot::RW, cache, win_off).unwrap();
        let mut oracle = vec![0u8; size as usize];

        for (off, len, seed) in writes {
            let off = off as u64 % (size - 64);
            let len = len as usize;
            let data: Vec<u8> = (0..len).map(|k| seed.wrapping_add(k as u8)).collect();
            pvm.vm_write(ctx, VirtAddr(base.0 + off), &data).unwrap();
            oracle[off as usize..off as usize + len].copy_from_slice(&data);
        }
        // Mapped reads agree with the oracle...
        let mut got = vec![0u8; size as usize];
        pvm.vm_read(ctx, base, &mut got).unwrap();
        prop_assert_eq!(&got, &oracle);
        // ...and the unified cache sees the same bytes at the window
        // offset (explicit access path, §3.2).
        let mut through_cache = vec![0u8; size as usize];
        pvm.cache_read(cache, win_off, &mut through_cache).unwrap();
        prop_assert_eq!(&through_cache, &oracle);
    }
}
