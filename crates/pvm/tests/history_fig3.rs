//! History-object scenarios from Figure 3 of the paper (§4.2).
//!
//! Each test scripts the exact sequence of copies and writes from one
//! sub-figure and asserts both the data semantics (copies see snapshot
//! values; sources keep their own) and the tree structure (history links,
//! working objects, page ownership).

mod common;

use chorus_gmi::{CopyMode, Gmi};
use chorus_pvm::SlotDump;
use common::*;

/// Four pages of distinct content, like the paper's pages 1..4.
fn filled_source(pvm: &std::sync::Arc<chorus_pvm::Pvm>) -> chorus_gmi::CacheId {
    let src = pvm.cache_create(None).unwrap();
    for page in 0..4u8 {
        pvm.write_logical(
            src,
            page as u64 * PS,
            &pattern(0x10 * (page + 1), PS as usize),
        )
        .unwrap();
    }
    src
}

#[test]
fn fig3a_simple_copy_on_write() {
    let (pvm, _) = setup(64);
    let src = filled_source(&pvm);
    let cpy1 = pvm.cache_create(None).unwrap();
    // Copy pages 1-3 (offsets 0..3*PS) of src into cpy1.
    pvm.cache_copy_with(src, 0, cpy1, 0, 3 * PS, CopyMode::HistoryCow)
        .unwrap();

    // Tree: src.history == cpy1; cpy1's parent fragment covers 0..3PS.
    let dump = pvm.dump_caches();
    assert_eq!(dump.cache(src).unwrap().history, Some(cpy1));
    let frag = &dump.cache(cpy1).unwrap().parents[0];
    assert_eq!((frag.0, frag.1, frag.2, frag.3), (0, 3 * PS, src, 0));

    // Source pages are now read-only (grey frames in the figure).
    for (off, slot) in &dump.cache(src).unwrap().slots {
        if *off < 3 * PS {
            assert_eq!(
                *slot,
                SlotDump::Page {
                    writable: false,
                    dirty: true
                },
                "src@{off:#x}"
            );
        }
    }

    // "Page 2 has been updated in src": the original lands in cpy1.
    let orig_p2 = pvm.read_logical(src, PS, PS as usize).unwrap();
    pvm.write_logical(src, PS, &pattern(0xE0, PS as usize))
        .unwrap();
    assert_eq!(
        pvm.read_logical(cpy1, PS, PS as usize).unwrap(),
        orig_p2,
        "copy sees snapshot"
    );
    assert_eq!(
        pvm.read_logical(src, PS, PS as usize).unwrap(),
        pattern(0xE0, PS as usize)
    );

    // "Page 3 has been updated in cpy1": src keeps its value.
    let src_p3 = pvm.read_logical(src, 2 * PS, PS as usize).unwrap();
    pvm.write_logical(cpy1, 2 * PS, &pattern(0xD0, PS as usize))
        .unwrap();
    assert_eq!(pvm.read_logical(src, 2 * PS, PS as usize).unwrap(), src_p3);
    assert_eq!(
        pvm.read_logical(cpy1, 2 * PS, PS as usize).unwrap(),
        pattern(0xD0, PS as usize)
    );

    // "A cache miss on page 1 in cpy1 is resolved by looking it up in
    // src": no private page materialized for reads.
    let p1 = pvm.read_logical(cpy1, 0, PS as usize).unwrap();
    assert_eq!(p1, pattern(0x10, PS as usize));
    let dump = pvm.dump_caches();
    let cpy1_pages: Vec<u64> = dump
        .cache(cpy1)
        .unwrap()
        .slots
        .iter()
        .filter(|(_, s)| matches!(s, SlotDump::Page { .. }))
        .map(|(o, _)| *o)
        .collect();
    assert_eq!(
        cpy1_pages,
        vec![PS, 2 * PS],
        "cpy1 owns exactly pages 2 (original) and 3 (own)"
    );
    assert_eq!(pvm.stats().history_pushes, 1);
    assert_eq!(pvm.stats().working_objects, 0);
}

#[test]
fn fig3a_copy_deleted_first_discards_cleanly() {
    let (pvm, _) = setup(64);
    let src = filled_source(&pvm);
    let cpy1 = pvm.cache_create(None).unwrap();
    pvm.cache_copy_with(src, 0, cpy1, 0, 3 * PS, CopyMode::HistoryCow)
        .unwrap();
    pvm.write_logical(cpy1, 0, b"child data").unwrap();
    let before = pvm.cache_count();
    // "When the copy segment is deleted, its cache may simply be
    // discarded. This is the normal case in Unix."
    pvm.cache_destroy(cpy1).unwrap();
    assert_eq!(pvm.cache_count(), before - 1);
    // Source is fully intact and writable again after the next write.
    pvm.write_logical(src, 0, &pattern(0x99, PS as usize))
        .unwrap();
    assert_eq!(
        pvm.read_logical(src, 0, PS as usize).unwrap(),
        pattern(0x99, PS as usize)
    );
    // No history push happened for that write (no descendant remains).
    assert_eq!(pvm.stats().history_pushes, 0);
}

#[test]
fn fig3a_source_deleted_first_keeps_data_for_copy() {
    let (pvm, _) = setup(64);
    let src = filled_source(&pvm);
    let cpy1 = pvm.cache_create(None).unwrap();
    pvm.cache_copy_with(src, 0, cpy1, 0, 3 * PS, CopyMode::HistoryCow)
        .unwrap();
    let p1 = pvm.read_logical(src, 0, PS as usize).unwrap();
    // "In the case where the source is deleted first..., remaining
    // unmodified source data must be kept until the copy is deleted."
    pvm.cache_destroy(src).unwrap();
    assert_eq!(pvm.read_logical(cpy1, 0, PS as usize).unwrap(), p1);
    // Destroying the copy finally releases everything.
    pvm.cache_destroy(cpy1).unwrap();
    assert_eq!(pvm.cache_count(), 0);
    assert_eq!(pvm.resident_page_count(), 0);
}

#[test]
fn fig3b_copy_of_copy() {
    let (pvm, _) = setup(64);
    let src = filled_source(&pvm);
    let cpy1 = pvm.cache_create(None).unwrap();
    pvm.cache_copy_with(src, 0, cpy1, 0, 3 * PS, CopyMode::HistoryCow)
        .unwrap();

    // "Page 2 of src is modified" before the second copy.
    pvm.write_logical(src, PS, &pattern(0xE0, PS as usize))
        .unwrap();

    // "Then cpy1 is copied-on-write to copyOfCpy1."
    let copy_of_cpy1 = pvm.cache_create(None).unwrap();
    pvm.cache_copy_with(cpy1, 0, copy_of_cpy1, 0, 3 * PS, CopyMode::HistoryCow)
        .unwrap();
    let dump = pvm.dump_caches();
    assert_eq!(dump.cache(cpy1).unwrap().history, Some(copy_of_cpy1));
    assert_eq!(dump.cache(src).unwrap().history, Some(cpy1));

    // "Page 3 of cpy1 is modified: both src and copyOfCpy1 get a page
    // frame with the original value" — src already has it; copyOfCpy1
    // receives a private copy of the original.
    let orig_p3 = pvm.read_logical(src, 2 * PS, PS as usize).unwrap();
    pvm.write_logical(cpy1, 2 * PS, &pattern(0xD0, PS as usize))
        .unwrap();
    assert_eq!(
        pvm.read_logical(copy_of_cpy1, 2 * PS, PS as usize).unwrap(),
        orig_p3
    );
    assert_eq!(pvm.read_logical(src, 2 * PS, PS as usize).unwrap(), orig_p3);
    let dump = pvm.dump_caches();
    assert!(
        dump.cache(copy_of_cpy1)
            .unwrap()
            .slots
            .iter()
            .any(|&(o, s)| o == 2 * PS && matches!(s, SlotDump::Page { .. })),
        "copyOfCpy1 got its own frame with the original of page 3"
    );

    // "Page 1 of both copies is read from src."
    assert_eq!(
        pvm.read_logical(cpy1, 0, PS as usize).unwrap(),
        pattern(0x10, PS as usize)
    );
    assert_eq!(
        pvm.read_logical(copy_of_cpy1, 0, PS as usize).unwrap(),
        pattern(0x10, PS as usize)
    );
    // "Page 2 of copyOfCpy1 is read from cpy1" — i.e. the snapshot cpy1
    // saw (the pre-modification original).
    assert_eq!(
        pvm.read_logical(copy_of_cpy1, PS, PS as usize).unwrap(),
        pvm.read_logical(cpy1, PS, PS as usize).unwrap()
    );
    assert_eq!(
        pvm.read_logical(cpy1, PS, PS as usize).unwrap(),
        pattern(0x20, PS as usize)
    );
}

#[test]
fn fig3c_second_copy_inserts_working_object() {
    let (pvm, _) = setup(64);
    let src = filled_source(&pvm);
    let cpy1 = pvm.cache_create(None).unwrap();
    pvm.cache_copy_with(src, 0, cpy1, 0, 4 * PS, CopyMode::HistoryCow)
        .unwrap();
    let cpy2 = pvm.cache_create(None).unwrap();
    pvm.cache_copy_with(src, 0, cpy2, 0, 4 * PS, CopyMode::HistoryCow)
        .unwrap();

    // "An intermediate working cache w1 must be created... w1 is the
    // history object of src and the parent of both cpy1 and cpy2."
    assert_eq!(pvm.stats().working_objects, 1);
    let dump = pvm.dump_caches();
    let w1 = dump.cache(src).unwrap().history.unwrap();
    assert_ne!(w1, cpy1);
    assert_ne!(w1, cpy2);
    let wdump = dump.cache(w1).unwrap();
    assert!(wdump.internal, "w1 is an internal working object");
    assert_eq!(dump.cache(cpy1).unwrap().parents[0].2, w1);
    assert_eq!(dump.cache(cpy2).unwrap().parents[0].2, w1);
    assert_eq!(wdump.parents[0].2, src);

    // Modify page 3 of src, page 3 of cpy1, page 4 of cpy2 (figure).
    let orig_p3 = pvm.read_logical(src, 2 * PS, PS as usize).unwrap();
    let orig_p4 = pvm.read_logical(src, 3 * PS, PS as usize).unwrap();
    pvm.write_logical(src, 2 * PS, &pattern(0xE0, PS as usize))
        .unwrap();
    pvm.write_logical(cpy1, 2 * PS, &pattern(0xD0, PS as usize))
        .unwrap();
    pvm.write_logical(cpy2, 3 * PS, &pattern(0xC0, PS as usize))
        .unwrap();

    // The original of src page 3 went into w1, where BOTH copies find it.
    let dump = pvm.dump_caches();
    assert!(
        dump.cache(w1)
            .unwrap()
            .slots
            .iter()
            .any(|&(o, s)| o == 2 * PS && matches!(s, SlotDump::Page { .. })),
        "w1 holds the original of page 3"
    );
    // cpy2 reads the original page 3 through w1.
    assert_eq!(
        pvm.read_logical(cpy2, 2 * PS, PS as usize).unwrap(),
        orig_p3
    );
    // cpy1 has its own page 3.
    assert_eq!(
        pvm.read_logical(cpy1, 2 * PS, PS as usize).unwrap(),
        pattern(0xD0, PS as usize)
    );
    // cpy1's page 4 resolves through w1 to src's (unmodified) page 4.
    assert_eq!(
        pvm.read_logical(cpy1, 3 * PS, PS as usize).unwrap(),
        orig_p4
    );
    // src sees only its own modification.
    assert_eq!(pvm.read_logical(src, 3 * PS, PS as usize).unwrap(), orig_p4);
}

#[test]
fn fig3d_third_copy_chains_working_objects() {
    let (pvm, _) = setup(96);
    let src = filled_source(&pvm);
    let copies: Vec<_> = (0..3)
        .map(|_| {
            let c = pvm.cache_create(None).unwrap();
            pvm.cache_copy_with(src, 0, c, 0, 4 * PS, CopyMode::HistoryCow)
                .unwrap();
            c
        })
        .collect();
    // "Two working history objects are created."
    assert_eq!(pvm.stats().working_objects, 2);
    let dump = pvm.dump_caches();
    let w2 = dump.cache(src).unwrap().history.unwrap();
    let w2d = dump.cache(w2).unwrap();
    assert!(w2d.internal);
    // The newest copy hangs off w2; the older pair hangs off w1 below w2.
    assert_eq!(dump.cache(copies[2]).unwrap().parents[0].2, w2);
    let w1 = dump.cache(copies[0]).unwrap().parents[0].2;
    assert_eq!(dump.cache(copies[1]).unwrap().parents[0].2, w1);
    assert_eq!(dump.cache(w1).unwrap().parents[0].2, w2);
    assert_eq!(w2d.parents[0].2, src);

    // Writes in src propagate originals into w2, visible to all copies.
    let orig = pvm.read_logical(src, 0, PS as usize).unwrap();
    pvm.write_logical(src, 0, &pattern(0xF0, PS as usize))
        .unwrap();
    for &c in &copies {
        assert_eq!(pvm.read_logical(c, 0, PS as usize).unwrap(), orig);
    }

    // Each copy can diverge independently.
    for (i, &c) in copies.iter().enumerate() {
        pvm.write_logical(c, PS, &pattern(0x30 + i as u8, PS as usize))
            .unwrap();
    }
    for (i, &c) in copies.iter().enumerate() {
        assert_eq!(
            pvm.read_logical(c, PS, PS as usize).unwrap(),
            pattern(0x30 + i as u8, PS as usize)
        );
    }
    assert_eq!(
        pvm.read_logical(src, PS, PS as usize).unwrap(),
        pattern(0x20, PS as usize)
    );
}

#[test]
fn copy_on_reference_materializes_on_first_read() {
    let (pvm, _) = setup(64);
    let src = filled_source(&pvm);
    let cpy = pvm.cache_create(None).unwrap();
    pvm.cache_copy_with(src, 0, cpy, 0, 2 * PS, CopyMode::HistoryCor)
        .unwrap();
    // A mapped *read* materializes a private page under
    // copy-on-reference ("access to any of its pages will fault; at that
    // point a copy is allocated in cpy1").
    let ctx = pvm.context_create().unwrap();
    pvm.region_create(
        ctx,
        chorus_gmi::VirtAddr(0x1000),
        2 * PS,
        chorus_gmi::Prot::RW,
        cpy,
        0,
    )
    .unwrap();
    let before = pvm.stats().cow_copies;
    assert_eq!(
        read(&pvm, ctx, 0x1000, PS as usize),
        pattern(0x10, PS as usize)
    );
    assert_eq!(
        pvm.stats().cow_copies,
        before + 1,
        "COR read allocates a private copy"
    );
    let dump = pvm.dump_caches();
    assert!(dump
        .cache(cpy)
        .unwrap()
        .slots
        .iter()
        .any(|&(o, s)| o == 0 && matches!(s, SlotDump::Page { .. })));
    // Under plain COW, the same read shares the source frame instead.
    let cow = pvm.cache_create(None).unwrap();
    pvm.cache_copy_with(src, 0, cow, 0, 2 * PS, CopyMode::HistoryCow)
        .unwrap();
    let ctx2 = pvm.context_create().unwrap();
    pvm.region_create(
        ctx2,
        chorus_gmi::VirtAddr(0x1000),
        2 * PS,
        chorus_gmi::Prot::RW,
        cow,
        0,
    )
    .unwrap();
    let before = pvm.stats().cow_copies;
    assert_eq!(
        read(&pvm, ctx2, 0x1000, PS as usize),
        pattern(0x10, PS as usize)
    );
    assert_eq!(
        pvm.stats().cow_copies,
        before,
        "COW read shares the ancestor frame"
    );
}

#[test]
fn copy_into_existing_segment_fragment_parents() {
    let (pvm, _) = setup(64);
    // dst is itself a copy of a (§4.2.4: destination already has a
    // parent), then receives a second copy of a different fragment from
    // another source.
    let a = pvm.cache_create(None).unwrap();
    pvm.write_logical(a, 0, &pattern(0xAA, (4 * PS) as usize))
        .unwrap();
    let b = pvm.cache_create(None).unwrap();
    pvm.write_logical(b, 0, &pattern(0xBB, (2 * PS) as usize))
        .unwrap();

    let dst = pvm.cache_create(None).unwrap();
    pvm.cache_copy_with(a, 0, dst, 0, 4 * PS, CopyMode::HistoryCow)
        .unwrap();
    // Overwrite the middle two pages from b.
    pvm.cache_copy_with(b, 0, dst, PS, 2 * PS, CopyMode::HistoryCow)
        .unwrap();

    let dump = pvm.dump_caches();
    let parents = &dump.cache(dst).unwrap().parents;
    assert_eq!(
        parents.len(),
        3,
        "fragment list split into three: {parents:?}"
    );
    assert_eq!(parents[0].2, a);
    assert_eq!(parents[1].2, b);
    assert_eq!(parents[2].2, a);
    assert_eq!(parents[1].0, PS);
    assert_eq!(parents[2].0, 3 * PS);
    assert_eq!(
        parents[2].3,
        3 * PS,
        "clipped fragment keeps parent offset alignment"
    );

    // Logical contents: a-page, b-page, b-page, a-page.
    assert_eq!(
        pvm.read_logical(dst, 0, PS as usize).unwrap(),
        pattern(0xAA, PS as usize)
    );
    assert_eq!(
        pvm.read_logical(dst, PS, PS as usize).unwrap(),
        pattern(0xBB, PS as usize)
    );
    let a_page3: Vec<u8> = pattern(0xAA, (4 * PS) as usize)[(3 * PS) as usize..].to_vec();
    assert_eq!(pvm.read_logical(dst, 3 * PS, PS as usize).unwrap(), a_page3);

    // COW isolation still holds for every fragment.
    pvm.write_logical(dst, PS, &pattern(1, PS as usize))
        .unwrap();
    assert_eq!(
        pvm.read_logical(b, 0, PS as usize).unwrap(),
        pattern(0xBB, PS as usize)
    );
    pvm.write_logical(a, 0, &pattern(2, PS as usize)).unwrap();
    assert_eq!(
        pvm.read_logical(dst, 0, PS as usize).unwrap(),
        pattern(0xAA, PS as usize)
    );
}

#[test]
fn overwriting_copied_range_preserves_history_for_descendants() {
    let (pvm, _) = setup(64);
    let src = filled_source(&pvm);
    let mid = pvm.cache_create(None).unwrap();
    pvm.cache_copy_with(src, 0, mid, 0, 2 * PS, CopyMode::HistoryCow)
        .unwrap();
    pvm.write_logical(mid, 0, &pattern(0x55, PS as usize))
        .unwrap();
    // mid is then copied to leaf...
    let leaf = pvm.cache_create(None).unwrap();
    pvm.cache_copy_with(mid, 0, leaf, 0, 2 * PS, CopyMode::HistoryCow)
        .unwrap();
    // ...and mid's range is overwritten by a fresh copy from elsewhere.
    let other = pvm.cache_create(None).unwrap();
    pvm.write_logical(other, 0, &pattern(0x77, (2 * PS) as usize))
        .unwrap();
    pvm.cache_copy_with(other, 0, mid, 0, 2 * PS, CopyMode::HistoryCow)
        .unwrap();
    // leaf still sees mid's value from copy time.
    assert_eq!(
        pvm.read_logical(leaf, 0, PS as usize).unwrap(),
        pattern(0x55, PS as usize)
    );
    assert_eq!(
        pvm.read_logical(leaf, PS, PS as usize).unwrap(),
        pattern(0x20, PS as usize),
        "leaf page 2 resolves through mid's old parent (src)"
    );
    // mid now reads the new content.
    assert_eq!(
        pvm.read_logical(mid, 0, PS as usize).unwrap(),
        pattern(0x77, PS as usize)
    );
}

#[test]
fn zombie_chain_merges_on_child_exit() {
    // The §4.2.5 "exceptional" case: a process forks, exits, its child
    // forks and exits, etc. History chains must not grow without bound.
    let (pvm, _) = setup(200);
    let mut cur = pvm.cache_create(None).unwrap();
    pvm.write_logical(cur, 0, &pattern(0x42, (2 * PS) as usize))
        .unwrap();
    for i in 0..10 {
        let child = pvm.cache_create(None).unwrap();
        pvm.cache_copy_with(cur, 0, child, 0, 2 * PS, CopyMode::HistoryCow)
            .unwrap();
        // Child modifies one page (so merges have real work).
        pvm.write_logical(child, 0, &pattern(i as u8, 8)).unwrap();
        // Parent exits; child lives on.
        pvm.cache_destroy(cur).unwrap();
        cur = child;
    }
    assert!(
        pvm.stats().zombie_merges >= 9,
        "chain merged: {:?}",
        pvm.stats()
    );
    assert!(
        pvm.cache_count() <= 3,
        "zombie chain should collapse, have {} caches",
        pvm.cache_count()
    );
    // Final content: the last child's own write over the oldest data.
    let mut expect = pattern(0x42, (2 * PS) as usize);
    expect[..8].copy_from_slice(&pattern(9, 8));
    assert_eq!(pvm.read_logical(cur, 0, (2 * PS) as usize).unwrap(), expect);
}

fn setup(
    frames: u32,
) -> (
    std::sync::Arc<chorus_pvm::Pvm>,
    std::sync::Arc<chorus_gmi::testing::MemSegmentManager>,
) {
    common::setup(frames)
}
