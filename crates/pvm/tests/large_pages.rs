//! Large-page promotion and demotion: a fully-resident aligned run gets
//! one large mapping; any slot change, reprotect, cleaning pass or unmap
//! inside the run demotes it; everything stays off (and bit-identical)
//! with the knobs off.

mod common;

use chorus_gmi::{Gmi, Prot, VirtAddr};
use chorus_pvm::Counter;
use common::*;
use std::sync::Arc;

/// Base pages per large page in these tests (kept tiny so a run is
/// cheap to fill).
const FACTOR: u64 = 4;
const LARGE: u64 = FACTOR * PS;

fn setup_large(
    frames: u32,
) -> (
    Arc<chorus_pvm::Pvm>,
    Arc<chorus_gmi::testing::MemSegmentManager>,
) {
    setup_with(frames, |o| {
        o.config.buddy_runs = true;
        o.config.large_pages = true;
        o.config.promote_threshold_pages = FACTOR;
    })
}

#[test]
fn dense_writes_promote_an_aligned_run() {
    let (pvm, _mgr) = setup_large(64);
    let (ctx, _region, _cache) = anon_region(&pvm, 2 * FACTOR);
    for p in 0..2 * FACTOR {
        write(&pvm, ctx, 0x1_0000 + p * PS, &pattern(p as u8, PS as usize));
    }
    let stats = pvm.stats();
    assert!(
        stats.get(Counter::LargePromotions) >= 2,
        "two aligned fully-written runs should both promote, got {}",
        stats.get(Counter::LargePromotions)
    );
    assert!(pvm.large_mapping_count() >= 2);
    // Data still reads back correctly through the promoted mappings.
    for p in 0..2 * FACTOR {
        assert_eq!(
            read(&pvm, ctx, 0x1_0000 + p * PS, PS as usize),
            pattern(p as u8, PS as usize)
        );
    }
    pvm.check_invariants();
}

#[test]
fn cache_sync_demotes_via_cleaning() {
    let (pvm, _mgr) = setup_large(64);
    let ctx = pvm.context_create().unwrap();
    let cache = pvm.cache_create(None).unwrap();
    pvm.region_create(ctx, VirtAddr(0x1_0000), LARGE, Prot::RW, cache, 0)
        .unwrap();
    for p in 0..FACTOR {
        write(&pvm, ctx, 0x1_0000 + p * PS, &pattern(7, PS as usize));
    }
    assert_eq!(pvm.large_mapping_count(), 1);
    // Cleaning write-protects the run's pages, which must drop the
    // (writable) large mapping first.
    pvm.cache_sync(cache, 0, LARGE).unwrap();
    assert_eq!(pvm.large_mapping_count(), 0);
    assert!(pvm.stats().get(Counter::LargeDemotions) >= 1);
    // The run re-promotes on the next dense write pass.
    for p in 0..FACTOR {
        write(&pvm, ctx, 0x1_0000 + p * PS, &pattern(9, PS as usize));
    }
    assert_eq!(pvm.large_mapping_count(), 1);
    pvm.check_invariants();
}

#[test]
fn region_destroy_demotes_and_context_destroy_drops_records() {
    let (pvm, _mgr) = setup_large(64);
    let ctx = pvm.context_create().unwrap();
    let cache = pvm.cache_create(None).unwrap();
    let region = pvm
        .region_create(ctx, VirtAddr(0x1_0000), LARGE, Prot::RW, cache, 0)
        .unwrap();
    for p in 0..FACTOR {
        write(&pvm, ctx, 0x1_0000 + p * PS, &pattern(3, PS as usize));
    }
    assert_eq!(pvm.large_mapping_count(), 1);
    pvm.region_destroy(region).unwrap();
    assert_eq!(pvm.large_mapping_count(), 0);

    // Promote again in a second region, then kill the whole context.
    pvm.region_create(ctx, VirtAddr(0x4_0000), LARGE, Prot::RW, cache, 0)
        .unwrap();
    for p in 0..FACTOR {
        write(&pvm, ctx, 0x4_0000 + p * PS, &pattern(4, PS as usize));
    }
    assert_eq!(pvm.large_mapping_count(), 1);
    pvm.context_destroy(ctx).unwrap();
    assert_eq!(pvm.large_mapping_count(), 0);
    pvm.check_invariants();
}

#[test]
fn set_protection_demotes_promoted_run() {
    let (pvm, _mgr) = setup_large(64);
    let ctx = pvm.context_create().unwrap();
    let cache = pvm.cache_create(None).unwrap();
    pvm.region_create(ctx, VirtAddr(0x1_0000), LARGE, Prot::RW, cache, 0)
        .unwrap();
    for p in 0..FACTOR {
        write(&pvm, ctx, 0x1_0000 + p * PS, &pattern(5, PS as usize));
    }
    assert_eq!(pvm.large_mapping_count(), 1);
    pvm.cache_set_protection(cache, 0, LARGE, Prot::READ)
        .unwrap();
    assert_eq!(
        pvm.large_mapping_count(),
        0,
        "protection revocation must demote the covering large mapping"
    );
    // Reads still work; the write right is really gone.
    let _ = read(&pvm, ctx, 0x1_0000, PS as usize);
    assert!(pvm
        .vm_write(ctx, VirtAddr(0x1_0000), &pattern(6, PS as usize))
        .is_err());
    pvm.check_invariants();
}

#[test]
fn eviction_under_pressure_demotes_cleanly() {
    // Pool far smaller than the working set: promoted runs are torn
    // apart by the clock as new faults arrive.
    let (pvm, _mgr) = setup_large(12);
    let (ctx, _region, _cache) = anon_region(&pvm, 8 * FACTOR);
    for p in 0..8 * FACTOR {
        write(&pvm, ctx, 0x1_0000 + p * PS, &pattern(p as u8, PS as usize));
    }
    for p in 0..8 * FACTOR {
        assert_eq!(
            read(&pvm, ctx, 0x1_0000 + p * PS, PS as usize),
            pattern(p as u8, PS as usize),
            "page {p} lost bytes across eviction of promoted runs"
        );
    }
    pvm.check_invariants();
}

#[test]
fn knobs_off_never_promotes() {
    let (pvm, _mgr) = setup(64);
    let (ctx, _region, _cache) = anon_region(&pvm, 2 * FACTOR);
    for p in 0..2 * FACTOR {
        write(&pvm, ctx, 0x1_0000 + p * PS, &pattern(p as u8, PS as usize));
    }
    assert_eq!(pvm.large_mapping_count(), 0);
    assert_eq!(pvm.stats().get(Counter::LargePromotions), 0);
    assert_eq!(pvm.stats().get(Counter::LargeRunReserves), 0);
    pvm.check_invariants();
}

#[test]
fn misaligned_region_never_promotes() {
    let (pvm, _mgr) = setup_large(64);
    let ctx = pvm.context_create().unwrap();
    let cache = pvm.cache_create(None).unwrap();
    // Region starts mid-large-page in the cache's offset space.
    pvm.region_create(ctx, VirtAddr(0x1_0000), 2 * LARGE, Prot::RW, cache, PS)
        .unwrap();
    for p in 0..2 * FACTOR {
        write(&pvm, ctx, 0x1_0000 + p * PS, &pattern(p as u8, PS as usize));
    }
    assert_eq!(
        pvm.stats().get(Counter::LargePromotions),
        0,
        "offset-misaligned backing must never promote"
    );
    pvm.check_invariants();
}

#[test]
fn pull_from_segment_reserves_contiguous_run_and_promotes() {
    let (pvm, mgr) = setup_with(64, |o| {
        o.config.buddy_runs = true;
        o.config.large_pages = true;
        o.config.promote_threshold_pages = FACTOR;
        // Pull windows sized exactly to the large factor so the
        // reservation path (not just lucky contiguity) is exercised.
        o.config.pull_cluster_pages = FACTOR;
    });
    let mut data = Vec::with_capacity((2 * LARGE) as usize);
    for p in 0..2 * FACTOR {
        data.extend_from_slice(&pattern(p as u8, PS as usize));
    }
    let seg = mgr.create_segment(&data);
    let ctx = pvm.context_create().unwrap();
    let cache = pvm.cache_create(Some(seg)).unwrap();
    pvm.region_create(ctx, VirtAddr(0x1_0000), 2 * LARGE, Prot::RW, cache, 0)
        .unwrap();
    for p in 0..2 * FACTOR {
        assert_eq!(
            read(&pvm, ctx, 0x1_0000 + p * PS, PS as usize),
            pattern(p as u8, PS as usize)
        );
    }
    let stats = pvm.stats();
    assert!(
        stats.get(Counter::LargeRunReserves) >= 1,
        "aligned full-window pulls should reserve contiguous runs"
    );
    assert!(
        stats.get(Counter::LargePromotions) >= 1,
        "pulled runs should promote (read-only large mapping)"
    );
    pvm.check_invariants();
}
