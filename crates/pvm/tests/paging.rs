//! Paging behaviour: pull-in/push-out upcalls, page replacement under
//! memory pressure, synchronization page stubs under concurrency, fault
//! injection, and memory pinning (§4.1.2, §3.3.3, §5.1.2).

mod common;

use chorus_gmi::testing::Upcall;
use chorus_gmi::{Gmi, GmiError, Prot, VirtAddr};
use common::*;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn eviction_under_pressure_round_trips_through_swap() {
    // 8 frames, a working set of 24 pages: the clock algorithm must
    // evict, temporary caches must get swap segments lazily, and all
    // data must survive.
    let (pvm, mgr) = setup(8);
    let (ctx, _r, _c) = anon_region(&pvm, 24);
    let data = pattern(0x5A, (24 * PS) as usize);
    for page in 0..24u64 {
        write(
            &pvm,
            ctx,
            0x1_0000 + page * PS,
            &data[(page * PS) as usize..((page + 1) * PS) as usize],
        );
    }
    assert!(
        pvm.stats().evictions > 0,
        "pressure must evict: {:?}",
        pvm.stats()
    );
    // The temporary cache received a swap segment on first push-out.
    assert!(
        mgr.take_log()
            .iter()
            .any(|u| matches!(u, Upcall::SegmentCreate { .. })),
        "lazy swap binding expected"
    );
    // Everything reads back correctly (pulling evicted pages back in).
    for page in (0..24u64).rev() {
        let got = read(&pvm, ctx, 0x1_0000 + page * PS, PS as usize);
        assert_eq!(
            got,
            data[(page * PS) as usize..((page + 1) * PS) as usize],
            "page {page}"
        );
    }
}

#[test]
fn clean_pages_evict_without_pushout() {
    let (pvm, mgr) = setup(4);
    let content = pattern(0x30, (8 * PS) as usize);
    let seg = mgr.create_segment(&content);
    let cache = pvm.cache_create(Some(seg)).unwrap();
    let ctx = pvm.context_create().unwrap();
    pvm.region_create(ctx, VirtAddr(0), 8 * PS, Prot::READ, cache, 0)
        .unwrap();
    // Read all pages: only 4 frames, so clean eviction must occur.
    for page in 0..8u64 {
        let _ = read(&pvm, ctx, page * PS, 4);
    }
    let log = mgr.take_log();
    assert!(
        !log.iter().any(|u| matches!(u, Upcall::PushOut { .. })),
        "clean pages must not be pushed out: {log:?}"
    );
    assert!(pvm.stats().evictions >= 4);
    // Re-reads are still correct.
    for page in 0..8u64 {
        assert_eq!(
            read(&pvm, ctx, page * PS, 4),
            content[(page * PS) as usize..(page * PS) as usize + 4]
        );
    }
}

#[test]
fn out_of_memory_when_pageout_disabled() {
    let (pvm, _) = setup_with(2, |o| o.config.enable_pageout = false);
    let (ctx, _r, _c) = anon_region(&pvm, 4);
    write(&pvm, ctx, 0x1_0000, b"1");
    write(&pvm, ctx, 0x1_0000 + PS, b"2");
    let err = pvm
        .vm_write(ctx, VirtAddr(0x1_0000 + 2 * PS), b"3")
        .unwrap_err();
    assert_eq!(err, GmiError::OutOfMemory);
}

#[test]
fn locked_pages_are_never_evicted() {
    let (pvm, _) = setup(4);
    let ctx = pvm.context_create().unwrap();
    let pinned = pvm.cache_create(None).unwrap();
    let r = pvm
        .region_create(ctx, VirtAddr(0), 2 * PS, Prot::RW, pinned, 0)
        .unwrap();
    write(&pvm, ctx, 0, &pattern(0xEE, (2 * PS) as usize));
    pvm.region_lock_in_memory(r).unwrap();
    // Now thrash with another region; only 2 frames remain.
    let other = pvm.cache_create(None).unwrap();
    pvm.region_create(ctx, VirtAddr(0x10_0000), 8 * PS, Prot::RW, other, 0)
        .unwrap();
    for page in 0..8u64 {
        write(&pvm, ctx, 0x10_0000 + page * PS, &[page as u8]);
    }
    // The pinned pages never left memory.
    assert_eq!(pvm.region_status(r).unwrap().resident_pages, 2);
    assert_eq!(read(&pvm, ctx, 0, 4), pattern(0xEE, 4));
    // After unlocking, they become evictable again.
    pvm.region_unlock(r).unwrap();
    for page in 0..8u64 {
        write(&pvm, ctx, 0x10_0000 + page * PS, &[page as u8]);
    }
    assert!(pvm.stats().evictions > 0);
}

#[test]
fn transient_pull_failure_is_healed_by_retry() {
    // With the default retry policy a single injected transient mapper
    // failure is invisible to the faulter: the PVM retries the pullIn
    // and delivers the correct bytes.
    let (pvm, mgr) = setup(8);
    let seg = mgr.create_segment(&pattern(0x10, PS as usize));
    let cache = pvm.cache_create(Some(seg)).unwrap();
    let ctx = pvm.context_create().unwrap();
    pvm.region_create(ctx, VirtAddr(0), PS, Prot::RW, cache, 0)
        .unwrap();
    mgr.fail_next_pull();
    assert_eq!(read(&pvm, ctx, 0, 4), pattern(0x10, 4));
    assert!(pvm.stats().mapper_retries >= 1, "{:?}", pvm.stats());
}

#[test]
fn pull_failure_propagates_and_recovers() {
    // Without retries the transient failure propagates to the faulter,
    // and the cleaned-up stub lets the next access recover.
    let (pvm, mgr) = setup_with(8, |o| {
        o.config.retry = chorus_gmi::RetryPolicy::no_retry();
    });
    let seg = mgr.create_segment(&pattern(0x10, PS as usize));
    let cache = pvm.cache_create(Some(seg)).unwrap();
    let ctx = pvm.context_create().unwrap();
    pvm.region_create(ctx, VirtAddr(0), PS, Prot::RW, cache, 0)
        .unwrap();
    mgr.fail_next_pull();
    let mut buf = [0u8; 4];
    let err = pvm.vm_read(ctx, VirtAddr(0), &mut buf).unwrap_err();
    assert!(matches!(err, GmiError::SegmentIo { .. }), "{err}");
    // The stub must have been cleaned up: the next access succeeds.
    assert_eq!(read(&pvm, ctx, 0, 4), pattern(0x10, 4));
    assert_eq!(pvm.stats().mapper_retries, 0);
}

#[test]
fn concurrent_faulters_block_on_sync_stub_and_pull_once() {
    // Two threads fault the same non-resident page of a slow mapper;
    // the synchronization page stub must make the second thread wait and
    // only ONE pullIn may reach the mapper.
    let (pvm, mgr) = setup(16);
    let seg = mgr.create_segment(&pattern(0x77, PS as usize));
    let cache = pvm.cache_create(Some(seg)).unwrap();
    let ctx = pvm.context_create().unwrap();
    pvm.region_create(ctx, VirtAddr(0), PS, Prot::RW, cache, 0)
        .unwrap();
    mgr.set_latency(Some(Duration::from_millis(100)));
    mgr.take_log();

    let threads: Vec<_> = (0..4)
        .map(|_| {
            let pvm = Arc::clone(&pvm);
            std::thread::spawn(move || {
                let mut buf = [0u8; 8];
                pvm.vm_read(ctx, VirtAddr(16), &mut buf).unwrap();
                buf
            })
        })
        .collect();
    for t in threads {
        assert_eq!(
            t.join().unwrap().to_vec(),
            pattern(0x77, PS as usize)[16..24]
        );
    }
    let pulls = mgr
        .take_log()
        .iter()
        .filter(|u| matches!(u, Upcall::PullIn { .. }))
        .count();
    assert_eq!(
        pulls, 1,
        "the sync stub must coalesce concurrent faults into one pull"
    );
    // Under `parallel_faults` the losers serialize on the cache's fault
    // stripe instead of the sync stub; either witness proves they waited.
    let stats = pvm.stats();
    assert!(
        stats.stub_waits > 0 || stats.cache_stripe_contended > 0,
        "someone must have waited on the stub or the fault stripe"
    );
}

#[test]
fn concurrent_writers_to_distinct_pages_proceed_in_parallel() {
    let (pvm, _) = setup(64);
    let (ctx, _r, _c) = anon_region(&pvm, 16);
    let threads: Vec<_> = (0..8u64)
        .map(|i| {
            let pvm = Arc::clone(&pvm);
            std::thread::spawn(move || {
                for rep in 0..20u8 {
                    let data = pattern(i as u8 ^ rep, 64);
                    pvm.vm_write(ctx, VirtAddr(0x1_0000 + i * 2 * PS), &data)
                        .unwrap();
                    let mut buf = vec![0u8; 64];
                    pvm.vm_read(ctx, VirtAddr(0x1_0000 + i * 2 * PS), &mut buf)
                        .unwrap();
                    assert_eq!(buf, data);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    pvm.check_invariants();
}

#[test]
fn write_access_upcall_on_coherence_revocation() {
    // A segment manager revokes write access (setProtection read-only);
    // the next write must raise a getWriteAccess upcall (Table 3) and
    // proceed once granted.
    let (pvm, mgr) = setup(16);
    let seg = mgr.create_segment(&pattern(0, PS as usize));
    let cache = pvm.cache_create(Some(seg)).unwrap();
    let ctx = pvm.context_create().unwrap();
    pvm.region_create(ctx, VirtAddr(0), PS, Prot::RW, cache, 0)
        .unwrap();
    write(&pvm, ctx, 0, b"first");
    // Revoke.
    pvm.cache_set_protection(cache, 0, PS, Prot::READ).unwrap();
    mgr.take_log();
    // Reads stay local.
    assert_eq!(read(&pvm, ctx, 0, 5), b"first");
    assert!(mgr.take_log().is_empty());
    // Write triggers the upcall.
    write(&pvm, ctx, 0, b"again");
    let log = mgr.take_log();
    assert!(
        log.iter()
            .any(|u| matches!(u, Upcall::GetWriteAccess { .. })),
        "expected getWriteAccess: {log:?}"
    );
    assert_eq!(pvm.stats().write_access_upcalls, 1);
    assert_eq!(read(&pvm, ctx, 0, 5), b"again");
    // Denied write access surfaces as an error.
    pvm.cache_set_protection(cache, 0, PS, Prot::READ).unwrap();
    mgr.set_deny_write_access(true);
    let err = pvm.vm_write(ctx, VirtAddr(0), b"no").unwrap_err();
    assert!(matches!(err, GmiError::SegmentIo { .. }));
}

#[test]
fn invalidate_discards_local_replica() {
    let (pvm, mgr) = setup(16);
    let seg = mgr.create_segment(&pattern(0x42, PS as usize));
    let cache = pvm.cache_create(Some(seg)).unwrap();
    let ctx = pvm.context_create().unwrap();
    pvm.region_create(ctx, VirtAddr(0), PS, Prot::RW, cache, 0)
        .unwrap();
    assert_eq!(read(&pvm, ctx, 0, 4), pattern(0x42, 4));
    // Someone else updates the segment behind our back...
    let new_seg_data = pattern(0x99, PS as usize);
    {
        // Simulate a remote writer by replacing the segment contents.
        let s2 = mgr.create_segment(&new_seg_data);
        let _ = s2; // (The MemSegmentManager has no in-place replace;
                    // write through a second cache instead.)
    }
    let writer = pvm.cache_create(Some(seg)).unwrap();
    pvm.write_logical(writer, 0, &new_seg_data).unwrap();
    pvm.cache_sync(writer, 0, PS).unwrap();
    // Without invalidation we would still read the stale replica.
    assert_eq!(read(&pvm, ctx, 0, 4), pattern(0x42, 4));
    pvm.cache_invalidate(cache, 0, PS).unwrap();
    assert_eq!(
        read(&pvm, ctx, 0, 4),
        pattern(0x99, 4),
        "fresh data pulled after invalidate"
    );
}

#[test]
fn cache_level_lock_pulls_and_pins() {
    let (pvm, mgr) = setup(4);
    let seg = mgr.create_segment(&pattern(0x13, (2 * PS) as usize));
    let cache = pvm.cache_create(Some(seg)).unwrap();
    pvm.cache_lock_in_memory(cache, 0, 2 * PS).unwrap();
    assert_eq!(pvm.cache_resident_pages(cache).unwrap(), 2);
    // Thrash the remaining 2 frames.
    let other = pvm.cache_create(None).unwrap();
    pvm.write_logical(other, 0, &pattern(1, (6 * PS) as usize))
        .unwrap();
    assert_eq!(
        pvm.cache_resident_pages(cache).unwrap(),
        2,
        "pinned pages stayed"
    );
    pvm.cache_unlock(cache, 0, 2 * PS).unwrap();
    pvm.write_logical(other, 6 * PS, &pattern(2, (2 * PS) as usize))
        .unwrap();
}

#[test]
fn nested_region_locks_unlock_independently() {
    // Regression (DESIGN.md §6, fixed): two regions over the same cache
    // pages each hold their own pin; unlocking one must not release the
    // other's.
    let (pvm, _) = setup(4);
    let ctx = pvm.context_create().unwrap();
    let cache = pvm.cache_create(None).unwrap();
    let a = pvm
        .region_create(ctx, VirtAddr(0), 2 * PS, Prot::RW, cache, 0)
        .unwrap();
    let b = pvm
        .region_create(ctx, VirtAddr(0x8_0000), 2 * PS, Prot::RW, cache, 0)
        .unwrap();
    write(&pvm, ctx, 0, &pattern(0xC4, (2 * PS) as usize));
    pvm.region_lock_in_memory(a).unwrap();
    pvm.region_lock_in_memory(b).unwrap();
    // First unlock: region b's pins must keep the pages resident.
    pvm.region_unlock(a).unwrap();
    let noise = pvm.cache_create(None).unwrap();
    pvm.write_logical(noise, 0, &pattern(1, (6 * PS) as usize))
        .unwrap();
    assert_eq!(
        pvm.cache_resident_pages(cache).unwrap(),
        2,
        "unlocking region a released region b's pins"
    );
    assert_eq!(read(&pvm, ctx, 0x8_0000, 4), pattern(0xC4, 4));
    // Second unlock: now the pages are evictable.
    pvm.region_unlock(b).unwrap();
    pvm.write_logical(noise, 0, &pattern(2, (6 * PS) as usize))
        .unwrap();
    assert!(pvm.cache_resident_pages(cache).unwrap() < 2);
    pvm.check_invariants();
}

#[test]
fn region_split_partitions_the_pins() {
    // Splitting a locked region must hand each half exactly its own
    // pins, so the halves unlock independently.
    let (pvm, _) = setup(6);
    let ctx = pvm.context_create().unwrap();
    let cache = pvm.cache_create(None).unwrap();
    let r = pvm
        .region_create(ctx, VirtAddr(0), 4 * PS, Prot::RW, cache, 0)
        .unwrap();
    write(&pvm, ctx, 0, &pattern(0xD8, (4 * PS) as usize));
    pvm.region_lock_in_memory(r).unwrap();
    let upper = pvm.region_split(r, 2 * PS).unwrap();
    // Unlock the lower half; the upper half's pages stay pinned.
    pvm.region_unlock(r).unwrap();
    let noise = pvm.cache_create(None).unwrap();
    pvm.write_logical(noise, 0, &pattern(1, (8 * PS) as usize))
        .unwrap();
    assert_eq!(pvm.region_status(upper).unwrap().resident_pages, 2);
    assert_eq!(
        read(&pvm, ctx, 2 * PS, 4),
        pattern(0xD8, (2 * PS) as usize + 4)[(2 * PS) as usize..].to_vec()
    );
    pvm.region_unlock(upper).unwrap();
    pvm.write_logical(noise, 0, &pattern(2, (8 * PS) as usize))
        .unwrap();
    assert!(pvm.region_status(upper).unwrap().resident_pages < 2);
    pvm.check_invariants();
}

#[test]
fn cache_and_region_locks_are_independent() {
    // A cache-level pin and a region-level pin on the same pages are
    // separate references; dropping the region lock leaves the cache
    // lock in force.
    let (pvm, _) = setup(4);
    let ctx = pvm.context_create().unwrap();
    let cache = pvm.cache_create(None).unwrap();
    let r = pvm
        .region_create(ctx, VirtAddr(0), 2 * PS, Prot::RW, cache, 0)
        .unwrap();
    write(&pvm, ctx, 0, &pattern(0xA7, (2 * PS) as usize));
    pvm.region_lock_in_memory(r).unwrap();
    pvm.cache_lock_in_memory(cache, 0, 2 * PS).unwrap();
    pvm.region_unlock(r).unwrap();
    let noise = pvm.cache_create(None).unwrap();
    pvm.write_logical(noise, 0, &pattern(1, (6 * PS) as usize))
        .unwrap();
    assert_eq!(
        pvm.cache_resident_pages(cache).unwrap(),
        2,
        "region unlock released the cache-level pins"
    );
    pvm.cache_unlock(cache, 0, 2 * PS).unwrap();
    pvm.write_logical(noise, 0, &pattern(2, (6 * PS) as usize))
        .unwrap();
    assert!(pvm.cache_resident_pages(cache).unwrap() < 2);
    pvm.check_invariants();
}

#[test]
fn history_pages_survive_eviction_through_swap() {
    // Originals pushed into a history object must survive even when the
    // history pages themselves get evicted (they go to a lazily-created
    // swap segment via segmentCreate).
    let (pvm, mgr) = setup(6);
    let src = pvm.cache_create(None).unwrap();
    pvm.write_logical(src, 0, &pattern(0x21, (2 * PS) as usize))
        .unwrap();
    let cpy = pvm.cache_create(None).unwrap();
    pvm.cache_copy_with(src, 0, cpy, 0, 2 * PS, chorus_gmi::CopyMode::HistoryCow)
        .unwrap();
    // Force originals into the history (cpy).
    pvm.write_logical(src, 0, &pattern(0xF1, (2 * PS) as usize))
        .unwrap();
    // Thrash to evict the history pages.
    let noise = pvm.cache_create(None).unwrap();
    pvm.write_logical(noise, 0, &pattern(9, (5 * PS) as usize))
        .unwrap();
    assert!(pvm.stats().evictions > 0);
    assert!(
        mgr.take_log()
            .iter()
            .any(|u| matches!(u, Upcall::SegmentCreate { .. })),
        "history cache needed a swap segment"
    );
    // The copy still reads its snapshot.
    assert_eq!(
        pvm.read_logical(cpy, 0, (2 * PS) as usize).unwrap(),
        pattern(0x21, (2 * PS) as usize)
    );
    assert_eq!(pvm.read_logical(src, 0, 4).unwrap(), pattern(0xF1, 4));
}

#[test]
fn evicted_stub_source_repoints_to_location() {
    // §4.3: "if the latter is in real memory, the stub contains a pointer
    // to the source page descriptor; otherwise, it contains a pointer to
    // the source local-cache descriptor and its offset".
    let (pvm, mgr) = setup(6);
    let seg = mgr.create_segment(&pattern(0x31, PS as usize));
    let src = pvm.cache_create(Some(seg)).unwrap();
    // Make the source page resident and stub it to a destination.
    assert_eq!(pvm.read_logical(src, 0, 2).unwrap(), pattern(0x31, 2));
    let dst = pvm.cache_create(None).unwrap();
    pvm.cache_copy_with(src, 0, dst, 0, PS, chorus_gmi::CopyMode::PerPage)
        .unwrap();
    // Evict the source page by thrashing.
    let noise = pvm.cache_create(None).unwrap();
    pvm.write_logical(noise, 0, &pattern(9, (6 * PS) as usize))
        .unwrap();
    // The stub must still resolve (back through the segment).
    assert_eq!(
        pvm.read_logical(dst, 0, PS as usize).unwrap(),
        pattern(0x31, PS as usize)
    );
}

#[test]
fn pull_clustering_reads_ahead() {
    // §3.3.3: "The MM may unilaterally decide to cache a fragment of
    // data." With clustering, a sequential scan of a swapped-out file
    // needs far fewer pullIn upcalls.
    for (cluster, max_pulls) in [(1u64, 8usize), (4, 2), (8, 1)] {
        let (pvm, mgr) = setup_with(16, |o| o.config.pull_cluster_pages = cluster);
        let content = pattern(0x64, (8 * PS) as usize);
        let seg = mgr.create_segment(&content);
        let cache = pvm.cache_create(Some(seg)).unwrap();
        let ctx = pvm.context_create().unwrap();
        pvm.region_create(ctx, VirtAddr(0), 8 * PS, Prot::READ, cache, 0)
            .unwrap();
        mgr.take_log();
        for page in 0..8u64 {
            let got = read(&pvm, ctx, page * PS, 4);
            assert_eq!(got, content[(page * PS) as usize..(page * PS) as usize + 4]);
        }
        let pulls = mgr
            .take_log()
            .iter()
            .filter(|u| matches!(u, Upcall::PullIn { .. }))
            .count();
        assert!(
            pulls <= max_pulls,
            "cluster={cluster}: {pulls} pulls, expected <= {max_pulls}"
        );
    }
}

#[test]
fn clustering_does_not_overshoot_unowned_pages() {
    // Read-ahead must stop at the first offset the cache does not own:
    // pages past a hole resolve through parents/zero, not the segment.
    let (pvm, mgr) = setup_with(32, |o| o.config.pull_cluster_pages = 8);
    let seg = mgr.create_segment(&pattern(0x11, (2 * PS) as usize));
    let cache = pvm.cache_create(Some(seg)).unwrap();
    // A fully-backed cache owns everything; sparse reads cluster across
    // the whole requested run but never fault.
    let ctx = pvm.context_create().unwrap();
    pvm.region_create(ctx, VirtAddr(0), 4 * PS, Prot::RW, cache, 0)
        .unwrap();
    assert_eq!(read(&pvm, ctx, 0, 4), pattern(0x11, 4));
    // The cluster pulled data for pages 0..4 in one upcall; page 3 is
    // beyond the segment's written extent and reads as zeros (sparse).
    assert_eq!(read(&pvm, ctx, 3 * PS, 4), vec![0u8; 4]);
    let pulls = mgr
        .take_log()
        .iter()
        .filter(|u| matches!(u, Upcall::PullIn { .. }))
        .count();
    assert_eq!(pulls, 1, "one clustered pull serves the whole region");
}
