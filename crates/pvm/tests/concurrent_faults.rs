//! Multi-threaded fault stress: concurrent faulting, eviction, unmap
//! and cache control against one PVM instance, under a frame pool small
//! enough that page replacement runs continuously. Invariants are
//! checked after quiescing (they take the state lock, so checking every
//! op would serialize the very races under test), and a byte oracle
//! verifies that no write was lost and no read saw foreign data.

mod common;

use chorus_gmi::{Access, Gmi, GmiError, Prot, VirtAddr};
use common::*;
use std::sync::{Arc, Barrier};

const THREADS: usize = 4;
const PAGES_PER_THREAD: u64 = 8;
const ROUNDS: u8 = 30;

/// Each thread owns a disjoint page range of one shared cache, mapped
/// through its own context, and rewrites/rereads it while a chaos
/// thread syncs and flushes the cache and churns scratch regions. The
/// 24-frame pool is smaller than the 32-page working set, so faults,
/// evictions and pull-ins interleave constantly.
#[test]
fn threads_hammer_shared_cache_under_tiny_pool() {
    let (pvm, _mgr) = setup_with(24, |o| o.config.check_invariants = false);
    let cache = pvm.cache_create(None).unwrap();
    let total = THREADS as u64 * PAGES_PER_THREAD;
    let base = 0x1_0000u64;

    let ctxs: Vec<_> = (0..THREADS)
        .map(|_| {
            let ctx = pvm.context_create().unwrap();
            pvm.region_create(ctx, VirtAddr(base), total * PS, Prot::RW, cache, 0)
                .unwrap();
            ctx
        })
        .collect();

    let barrier = Arc::new(Barrier::new(THREADS + 1));
    let mut handles = Vec::new();
    for (t, &ctx) in ctxs.iter().enumerate() {
        let pvm = Arc::clone(&pvm);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let lo = base + t as u64 * PAGES_PER_THREAD * PS;
            for round in 0..ROUNDS {
                let tag = (t as u8) << 5 | round;
                for p in 0..PAGES_PER_THREAD {
                    write(&pvm, ctx, lo + p * PS, &pattern(tag, PS as usize));
                }
                for p in 0..PAGES_PER_THREAD {
                    assert_eq!(
                        read(&pvm, ctx, lo + p * PS, PS as usize),
                        pattern(tag, PS as usize),
                        "thread {t} page {p} round {round}: lost or foreign bytes"
                    );
                }
            }
        }));
    }

    // Chaos: cache sync/flush plus scratch region create/write/destroy,
    // all racing the faulting threads. Control operations may refuse
    // transiently (pages pinned mid-fault); only the workers' byte
    // oracle and the final invariant sweep define correctness.
    let chaos = {
        let pvm = Arc::clone(&pvm);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            barrier.wait();
            for i in 0..u64::from(ROUNDS) * 4 {
                let _ = pvm.cache_sync(cache, 0, total * PS);
                if i % 3 == 0 {
                    let _ = pvm.cache_flush(cache, (i % total) * PS, PS);
                }
                let (ctx, region, scratch) = anon_region(&pvm, 2);
                write(&pvm, ctx, 0x1_0000, &pattern(0xEE, PS as usize));
                pvm.region_destroy(region).unwrap();
                pvm.cache_destroy(scratch).unwrap();
                pvm.context_destroy(ctx).unwrap();
            }
        })
    };

    for h in handles {
        h.join().expect("worker thread");
    }
    chaos.join().expect("chaos thread");

    pvm.check_invariants();

    // Final oracle: every partition still holds its last-round pattern,
    // readable through any context.
    for (t, &ctx) in ctxs.iter().enumerate() {
        let tag = (t as u8) << 5 | (ROUNDS - 1);
        let lo = base + t as u64 * PAGES_PER_THREAD * PS;
        for p in 0..PAGES_PER_THREAD {
            assert_eq!(
                read(&pvm, ctx, lo + p * PS, PS as usize),
                pattern(tag, PS as usize),
                "thread {t} page {p}: final bytes diverged"
            );
        }
    }
}

/// The writeback-vs-eviction race: the watermark daemon launders dirty
/// runs in clustered batches while worker threads rewrite those same
/// pages and a chaos thread flushes them mid-batch. A page can be
/// invalidated between the batched pushOut upcall and its copyBack
/// (the short-run protocol then retries the tail page by page), and a
/// page rewritten while its batch is in flight must come out of
/// `finish_clean` still dirty. The byte oracle is the referee: no
/// rewrite may be lost to a stale batch landing after it.
#[test]
fn clustered_writeback_races_flushes_without_losing_writes() {
    let (pvm, _mgr) = setup_with(24, |o| {
        o.config.check_invariants = false;
        o.config.push_cluster_pages = 4;
        o.config.writeback_daemon = true;
        o.config.writeback_low_frames = 8;
        o.config.writeback_high_frames = 12;
    });
    let cache = pvm.cache_create(None).unwrap();
    let total = THREADS as u64 * PAGES_PER_THREAD;
    let base = 0x1_0000u64;

    let ctxs: Vec<_> = (0..THREADS)
        .map(|_| {
            let ctx = pvm.context_create().unwrap();
            pvm.region_create(ctx, VirtAddr(base), total * PS, Prot::RW, cache, 0)
                .unwrap();
            ctx
        })
        .collect();

    let barrier = Arc::new(Barrier::new(THREADS + 1));
    let mut handles = Vec::new();
    for (t, &ctx) in ctxs.iter().enumerate() {
        let pvm = Arc::clone(&pvm);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let lo = base + t as u64 * PAGES_PER_THREAD * PS;
            for round in 0..ROUNDS {
                let tag = (t as u8) << 5 | round;
                for p in 0..PAGES_PER_THREAD {
                    write(&pvm, ctx, lo + p * PS, &pattern(tag, PS as usize));
                }
                for p in 0..PAGES_PER_THREAD {
                    assert_eq!(
                        read(&pvm, ctx, lo + p * PS, PS as usize),
                        pattern(tag, PS as usize),
                        "thread {t} page {p} round {round}: lost or foreign bytes"
                    );
                }
            }
        }));
    }

    // Chaos: flush pages out from under in-flight laundering batches.
    let chaos = {
        let pvm = Arc::clone(&pvm);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            barrier.wait();
            for i in 0..u64::from(ROUNDS) * 8 {
                let _ = pvm.cache_flush(cache, (i % total) * PS, 2 * PS);
                if i % 5 == 0 {
                    let _ = pvm.cache_sync(cache, 0, total * PS);
                }
            }
        })
    };

    for h in handles {
        h.join().expect("worker thread");
    }
    chaos.join().expect("chaos thread");
    pvm.check_invariants();

    let stats = pvm.stats();
    assert!(
        stats.push_out_batches > 0,
        "clustered writeback never completed a batch"
    );
    assert!(
        stats.launder_passes > 0,
        "the watermark daemon never woke despite sustained pressure"
    );

    // Final oracle: every partition holds its last-round pattern.
    for (t, &ctx) in ctxs.iter().enumerate() {
        let tag = (t as u8) << 5 | (ROUNDS - 1);
        let lo = base + t as u64 * PAGES_PER_THREAD * PS;
        for p in 0..PAGES_PER_THREAD {
            assert_eq!(
                read(&pvm, ctx, lo + p * PS, PS as usize),
                pattern(tag, PS as usize),
                "thread {t} page {p}: final bytes diverged"
            );
        }
    }
}

/// The fast-path-vs-eviction race: one thread satisfies soft faults
/// lock-free on mapped pages while another keeps flushing the cache out
/// from under it. A hit may only happen while the MMU mapping is live
/// (flush removes the fast entries under the state mutex before the
/// mapping dies), so every lock-free answer is correct, and the faulter
/// must transparently re-pull flushed pages via the slow path.
#[test]
fn fast_path_survives_eviction_races() {
    let (pvm, mgr) = setup_with(12, |o| o.config.check_invariants = false);
    const PAGES: u64 = 4;
    let seg = mgr.create_segment(&pattern(7, (PAGES * PS) as usize));
    let cache = pvm.cache_create(Some(seg)).unwrap();
    let ctx = pvm.context_create().unwrap();
    let base = 0x2_0000u64;
    pvm.region_create(ctx, VirtAddr(base), PAGES * PS, Prot::READ, cache, 0)
        .unwrap();

    let barrier = Arc::new(Barrier::new(2));
    let faulter = {
        let pvm = Arc::clone(&pvm);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            barrier.wait();
            for i in 0..4_000u64 {
                let va = VirtAddr(base + (i % PAGES) * PS);
                // vm_read maps the page if needed; the direct
                // handle_fault then exercises the lock-free check on a
                // (usually) mapped page.
                let mut b = [0u8; 2];
                pvm.vm_read(ctx, va, &mut b).unwrap();
                assert_eq!(
                    b[0],
                    7u8.wrapping_add((((i % PAGES) * PS) % 256) as u8),
                    "flushed page came back with wrong bytes"
                );
                pvm.handle_fault(ctx, va, Access::Read).unwrap();
            }
        })
    };
    let evictor = {
        let pvm = Arc::clone(&pvm);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            barrier.wait();
            for i in 0..1_000u64 {
                // Flush may refuse while a pull pins the page; keep going.
                let _ = pvm.cache_flush(cache, (i % PAGES) * PS, PS);
            }
        })
    };
    faulter.join().expect("faulter");
    evictor.join().expect("evictor");

    let stats = pvm.stats();
    assert!(
        stats.fast_path_hits > 0,
        "the lock-free path never hit despite mapped re-faults"
    );
    assert!(
        stats.fast_path_fallbacks > 0,
        "flushes should force some slow-path faults"
    );
    pvm.check_invariants();
}

/// The promotion-vs-demotion race: worker threads densely rewrite
/// large-aligned runs (driving promotions) under a pool too small for
/// the combined working set (driving eviction-side demotions), while a
/// chaos thread syncs the cache (cleaning-side demotions) and re-reads
/// through the fast path. A stale large mapping would either satisfy a
/// write after its page moved (lost update) or translate to a recycled
/// frame (foreign bytes) — the byte oracle catches both, and the final
/// invariant sweep cross-checks every surviving promotion record
/// against the global map and the MMU.
#[test]
fn promotion_races_eviction_and_cleaning() {
    const FACTOR: u64 = 4;
    const RUNS_PER_THREAD: u64 = 2;
    let (pvm, _mgr) = setup_with(24, |o| {
        o.config.check_invariants = false;
        o.config.buddy_runs = true;
        o.config.large_pages = true;
        o.config.promote_threshold_pages = FACTOR;
    });
    let cache = pvm.cache_create(None).unwrap();
    let pages_per_thread = RUNS_PER_THREAD * FACTOR;
    let total = THREADS as u64 * pages_per_thread;
    let base = 0x1_0000u64;

    let ctxs: Vec<_> = (0..THREADS)
        .map(|_| {
            let ctx = pvm.context_create().unwrap();
            pvm.region_create(ctx, VirtAddr(base), total * PS, Prot::RW, cache, 0)
                .unwrap();
            ctx
        })
        .collect();

    let barrier = Arc::new(Barrier::new(THREADS + 1));
    let mut handles = Vec::new();
    for (t, &ctx) in ctxs.iter().enumerate() {
        let pvm = Arc::clone(&pvm);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let lo = base + t as u64 * pages_per_thread * PS;
            for round in 0..ROUNDS {
                let tag = (t as u8) << 5 | round;
                // Dense sequential pass over whole aligned runs: each
                // completed run is a promotion candidate.
                for p in 0..pages_per_thread {
                    write(&pvm, ctx, lo + p * PS, &pattern(tag, PS as usize));
                }
                for p in 0..pages_per_thread {
                    assert_eq!(
                        read(&pvm, ctx, lo + p * PS, PS as usize),
                        pattern(tag, PS as usize),
                        "thread {t} page {p} round {round}: stale large mapping leaked bytes"
                    );
                }
            }
        }));
    }

    // Chaos: cleaning passes demote promoted runs mid-write, flushes
    // tear whole runs out, forcing re-pull + re-promotion.
    let chaos = {
        let pvm = Arc::clone(&pvm);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            barrier.wait();
            for i in 0..u64::from(ROUNDS) * 6 {
                let _ = pvm.cache_sync(cache, 0, total * PS);
                if i % 4 == 0 {
                    let _ = pvm.cache_flush(cache, (i % total) * PS, FACTOR * PS);
                }
            }
        })
    };

    for h in handles {
        h.join().expect("worker thread");
    }
    chaos.join().expect("chaos thread");
    pvm.check_invariants();

    let stats = pvm.stats();
    assert!(
        stats.large_promotions > 0,
        "dense aligned rewrites never promoted a run"
    );
    assert!(
        stats.large_demotions > 0,
        "sustained sync/flush/eviction pressure never demoted a run"
    );

    // Final oracle: every partition holds its last-round pattern.
    for (t, &ctx) in ctxs.iter().enumerate() {
        let tag = (t as u8) << 5 | (ROUNDS - 1);
        let lo = base + t as u64 * pages_per_thread * PS;
        for p in 0..pages_per_thread {
            assert_eq!(
                read(&pvm, ctx, lo + p * PS, PS as usize),
                pattern(tag, PS as usize),
                "thread {t} page {p}: final bytes diverged"
            );
        }
    }
}

// ---------------------------------------------------------------------
// `parallel_faults` knob-on: the striped driver under cross-domain races.
// Each test builds its PVM with the knob on, so hard faults on disjoint
// caches take per-cache fault stripes and the parallel landing protocol
// fills frames off the state lock. The byte oracles are unchanged from
// the knob-off tests above: the decomposition must be invisible except
// in the lock counters.
// ---------------------------------------------------------------------

/// Concurrent hard faults on disjoint caches through the striped
/// driver: every thread owns its own file-backed cache and pulls a cold
/// working set while the others do the same. The stripes must engage
/// (one acquisition per striped hard fault), the pulls must land, and
/// every byte must come from the faulting thread's own segment.
#[test]
fn parallel_hard_faults_on_disjoint_caches() {
    const PAGES: u64 = 16;
    let (pvm, mgr) = setup_with(PAGES as u32 * THREADS as u32 + 8, |o| {
        o.config.check_invariants = false;
        o.config.parallel_faults = true;
    });
    let base = 0x4_0000u64;
    let mut ctxs = Vec::new();
    for t in 0..THREADS {
        let seg = mgr.create_segment(&pattern(0x40 | t as u8, (PAGES * PS) as usize));
        let cache = pvm.cache_create(Some(seg)).unwrap();
        let ctx = pvm.context_create().unwrap();
        pvm.region_create(ctx, VirtAddr(base), PAGES * PS, Prot::READ, cache, 0)
            .unwrap();
        ctxs.push(ctx);
    }

    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = ctxs
        .iter()
        .enumerate()
        .map(|(t, &ctx)| {
            let pvm = Arc::clone(&pvm);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let want = pattern(0x40 | t as u8, (PAGES * PS) as usize);
                for p in 0..PAGES {
                    assert_eq!(
                        read(&pvm, ctx, base + p * PS, PS as usize),
                        want[(p * PS) as usize..((p + 1) * PS) as usize],
                        "thread {t} page {p}: foreign bytes through the striped driver"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("faulting thread");
    }

    let stats = pvm.stats();
    assert!(
        stats.cache_stripe_acqs >= THREADS as u64 * PAGES,
        "striped driver never engaged: {} stripe acquisitions",
        stats.cache_stripe_acqs
    );
    assert!(stats.pull_ins > 0, "cold reads must pull from the mappers");
    pvm.check_invariants();
}

/// Striped hard faults vs eviction: two caches' working sets overcommit
/// a tiny pool, so every round's re-faults race page replacement
/// stealing frames from the *other* cache (stripe held on one cache,
/// victim pages on another — the cross-domain case the lock order must
/// survive). A chaos thread flushes pages out from under both.
#[test]
fn parallel_faults_race_eviction_across_caches() {
    const WORKERS: usize = 2;
    const PAGES: u64 = 8;
    const SPINS: u8 = 20;
    let (pvm, mgr) = setup_with(12, |o| {
        o.config.check_invariants = false;
        o.config.parallel_faults = true;
    });
    let base = 0x1_0000u64;
    // Segment-backed caches: eviction pushes dirty pages to the mapper
    // and the re-fault pulls them back, so `pull_ins` witnesses the
    // evict/re-pull cycle (anonymous caches never pull).
    let setups: Vec<_> = (0..WORKERS)
        .map(|_| {
            let seg = mgr.create_segment(&vec![0u8; (PAGES * PS) as usize]);
            let cache = pvm.cache_create(Some(seg)).unwrap();
            let ctx = pvm.context_create().unwrap();
            pvm.region_create(ctx, VirtAddr(base), PAGES * PS, Prot::RW, cache, 0)
                .unwrap();
            (ctx, cache)
        })
        .collect();

    let barrier = Arc::new(Barrier::new(WORKERS + 1));
    let mut handles = Vec::new();
    for (t, &(ctx, _)) in setups.iter().enumerate() {
        let pvm = Arc::clone(&pvm);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            for round in 0..SPINS {
                let tag = (t as u8) << 5 | round;
                for p in 0..PAGES {
                    write(&pvm, ctx, base + p * PS, &pattern(tag, PS as usize));
                }
                for p in 0..PAGES {
                    assert_eq!(
                        read(&pvm, ctx, base + p * PS, PS as usize),
                        pattern(tag, PS as usize),
                        "thread {t} page {p} round {round}: eviction lost a write"
                    );
                }
            }
        }));
    }
    let chaos = {
        let pvm = Arc::clone(&pvm);
        let barrier = Arc::clone(&barrier);
        let caches: Vec<_> = setups.iter().map(|&(_, c)| c).collect();
        std::thread::spawn(move || {
            barrier.wait();
            for i in 0..u64::from(SPINS) * 6 {
                let cache = caches[(i % caches.len() as u64) as usize];
                let _ = pvm.cache_flush(cache, (i % PAGES) * PS, PS);
                if i % 5 == 0 {
                    let _ = pvm.cache_sync(cache, 0, PAGES * PS);
                }
            }
        })
    };
    for h in handles {
        h.join().expect("worker thread");
    }
    chaos.join().expect("chaos thread");

    let stats = pvm.stats();
    assert!(stats.cache_stripe_acqs > 0, "striped driver never engaged");
    assert!(
        stats.pull_ins > 0,
        "an overcommitted pool must evict and re-pull"
    );
    pvm.check_invariants();

    // Final oracle: each cache holds its thread's last-round pattern.
    for (t, &(ctx, _)) in setups.iter().enumerate() {
        let tag = (t as u8) << 5 | (SPINS - 1);
        for p in 0..PAGES {
            assert_eq!(
                read(&pvm, ctx, base + p * PS, PS as usize),
                pattern(tag, PS as usize),
                "thread {t} page {p}: final bytes diverged"
            );
        }
    }
}

/// Striped hard faults vs the OOM killer: two locked contexts pin the
/// whole pool, then two threads hard-fault concurrently on disjoint
/// file-backed caches. Reclaim cannot progress, so the killer must
/// reclaim the largest locked footprint mid-fault — while both faulting
/// threads hold their cache stripes — and both faults must then
/// complete with correct bytes.
#[test]
fn parallel_faults_race_oom_kill() {
    let (pvm, mgr) = setup_with(8, |o| {
        o.config.check_invariants = false;
        o.config.parallel_faults = true;
        o.config.oom_killer = true;
    });

    // Victim: six locked dirty pages. Survivor: two locked pages whose
    // bytes must come through the kill untouched.
    let victim = pvm.context_create().unwrap();
    let vcache = pvm.cache_create(None).unwrap();
    let vr = pvm
        .region_create(victim, VirtAddr(0x10_0000), 6 * PS, Prot::RW, vcache, 0)
        .unwrap();
    write(&pvm, victim, 0x10_0000, &pattern(0xA1, 6 * PS as usize));
    pvm.region_lock_in_memory(vr).unwrap();

    let survivor = pvm.context_create().unwrap();
    let scache = pvm.cache_create(None).unwrap();
    let sr = pvm
        .region_create(survivor, VirtAddr(0x20_0000), 2 * PS, Prot::RW, scache, 0)
        .unwrap();
    let keep = pattern(0xB2, 2 * PS as usize);
    write(&pvm, survivor, 0x20_0000, &keep);
    pvm.region_lock_in_memory(sr).unwrap();
    assert_eq!(pvm.free_frames(), 0, "setup must exhaust the pool");

    // Two concurrent hard faults on disjoint caches, each needing a
    // frame only a kill can free.
    let barrier = Arc::new(Barrier::new(2));
    let handles: Vec<_> = (0..2u8)
        .map(|t| {
            let seg = mgr.create_segment(&pattern(0xC0 | t, PS as usize));
            let cache = pvm.cache_create(Some(seg)).unwrap();
            let ctx = pvm.context_create().unwrap();
            pvm.region_create(ctx, VirtAddr(0x30_0000), PS, Prot::READ, cache, 0)
                .unwrap();
            let pvm = Arc::clone(&pvm);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                assert_eq!(
                    read(&pvm, ctx, 0x30_0000, PS as usize),
                    pattern(0xC0 | t, PS as usize),
                    "the fault that triggered the kill must complete correctly"
                );
            })
        })
        .collect();
    for h in handles {
        h.join().expect("faulting thread");
    }

    let stats = pvm.stats();
    assert!(stats.oom_kills >= 1, "{stats:?}");
    assert!(stats.cache_stripe_acqs > 0, "striped driver never engaged");
    let err = pvm
        .vm_read(victim, VirtAddr(0x10_0000), &mut [0u8; 1])
        .unwrap_err();
    assert!(
        matches!(err, GmiError::ContextKilled(id) if id == victim),
        "{err}"
    );
    let mut back = vec![0u8; keep.len()];
    pvm.vm_read(survivor, VirtAddr(0x20_0000), &mut back)
        .unwrap();
    assert_eq!(back, keep, "survivor's locked pages corrupted by the kill");
    pvm.check_invariants();
}

/// Striped hard faults vs large-page promotion and demotion: two
/// threads on disjoint caches densely rewrite aligned runs (driving
/// promotions through the buddy allocator's reserved-run path of the
/// parallel fill) under a pool too small for both working sets
/// (eviction-side demotions), while a chaos thread syncs and flushes
/// (cleaning-side demotions). A stale large mapping surviving a
/// demotion would leak foreign bytes across caches.
#[test]
fn parallel_faults_race_promotion_and_demotion() {
    const WORKERS: usize = 2;
    const FACTOR: u64 = 4;
    const RUNS_PER_WORKER: u64 = 2;
    const SPINS: u8 = 20;
    let pages = RUNS_PER_WORKER * FACTOR;
    let (pvm, _mgr) = setup_with(12, |o| {
        o.config.check_invariants = false;
        o.config.parallel_faults = true;
        o.config.buddy_runs = true;
        o.config.large_pages = true;
        o.config.promote_threshold_pages = FACTOR;
    });
    let base = 0x1_0000u64;
    let setups: Vec<_> = (0..WORKERS)
        .map(|_| {
            let cache = pvm.cache_create(None).unwrap();
            let ctx = pvm.context_create().unwrap();
            pvm.region_create(ctx, VirtAddr(base), pages * PS, Prot::RW, cache, 0)
                .unwrap();
            (ctx, cache)
        })
        .collect();

    let barrier = Arc::new(Barrier::new(WORKERS + 1));
    let mut handles = Vec::new();
    for (t, &(ctx, _)) in setups.iter().enumerate() {
        let pvm = Arc::clone(&pvm);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            for round in 0..SPINS {
                let tag = (t as u8) << 5 | round;
                for p in 0..pages {
                    write(&pvm, ctx, base + p * PS, &pattern(tag, PS as usize));
                }
                for p in 0..pages {
                    assert_eq!(
                        read(&pvm, ctx, base + p * PS, PS as usize),
                        pattern(tag, PS as usize),
                        "thread {t} page {p} round {round}: stale large mapping leaked bytes"
                    );
                }
            }
        }));
    }
    let chaos = {
        let pvm = Arc::clone(&pvm);
        let barrier = Arc::clone(&barrier);
        let caches: Vec<_> = setups.iter().map(|&(_, c)| c).collect();
        std::thread::spawn(move || {
            barrier.wait();
            for i in 0..u64::from(SPINS) * 4 {
                let cache = caches[(i % caches.len() as u64) as usize];
                let _ = pvm.cache_sync(cache, 0, pages * PS);
                if i % 4 == 0 {
                    let _ = pvm.cache_flush(cache, (i % pages) * PS, FACTOR * PS);
                }
            }
        })
    };
    for h in handles {
        h.join().expect("worker thread");
    }
    chaos.join().expect("chaos thread");

    let stats = pvm.stats();
    assert!(stats.cache_stripe_acqs > 0, "striped driver never engaged");
    assert!(
        stats.large_promotions > 0,
        "dense aligned rewrites never promoted a run"
    );
    assert!(
        stats.large_demotions > 0,
        "sync/flush/eviction pressure never demoted a run"
    );
    pvm.check_invariants();

    // Final oracle: each cache holds its thread's last-round pattern.
    for (t, &(ctx, _)) in setups.iter().enumerate() {
        let tag = (t as u8) << 5 | (SPINS - 1);
        for p in 0..pages {
            assert_eq!(
                read(&pvm, ctx, base + p * PS, PS as usize),
                pattern(tag, PS as usize),
                "thread {t} page {p}: final bytes diverged"
            );
        }
    }
}
