//! The PVM must pass the generic GMI conformance suite.

use chorus_gmi::conformance::{self, Fixture};
use chorus_gmi::testing::MemSegmentManager;
use chorus_gmi::SyncShim;
use chorus_hal::{CostParams, PageGeometry};
use chorus_pvm::{Pvm, PvmConfig, PvmOptions};
use std::sync::Arc;

#[test]
fn pvm_passes_gmi_conformance() {
    conformance::run(|| {
        let mgr = Arc::new(MemSegmentManager::new());
        let gmi = Arc::new(Pvm::new(
            PvmOptions {
                geometry: PageGeometry::new(256),
                frames: 128,
                cost: CostParams::zero(),
                config: PvmConfig::builder()
                    .paging(|p| p.check_invariants(true))
                    .build()
                    .expect("valid config"),
                ..PvmOptions::default()
            },
            SyncShim::wrap(mgr.clone()),
        ));
        Fixture { gmi, mgr }
    });
}

#[test]
fn pvm_passes_gmi_conformance_under_pressure() {
    // A small pool: the same contract must hold with constant pageout.
    conformance::run(|| {
        let mgr = Arc::new(MemSegmentManager::new());
        let gmi = Arc::new(Pvm::new(
            PvmOptions {
                geometry: PageGeometry::new(256),
                frames: 6,
                cost: CostParams::zero(),
                config: PvmConfig::builder()
                    .paging(|p| p.check_invariants(true))
                    .build()
                    .expect("valid config"),
                ..PvmOptions::default()
            },
            SyncShim::wrap(mgr.clone()),
        ));
        Fixture { gmi, mgr }
    });
}

#[test]
fn pvm_passes_gmi_conformance_through_v2() {
    use chorus_gmi::conformance::V2Mode;
    use chorus_gmi::testing::MemSegmentManagerV2;

    conformance::run_v2(|mode| {
        let mgr = Arc::new(MemSegmentManager::new());
        // Knobs that actually put traffic through the completion
        // engine in the native mode: clustered pulls split their tail
        // into asynchronous submissions and the laundering daemon
        // issues fire-and-collect pushes.
        let config = PvmConfig::builder()
            .paging(|p| {
                p.check_invariants(true)
                    .pull_cluster_pages(4)
                    .readahead_max_pages(8)
                    .push_cluster_pages(4)
            })
            .pressure(|p| {
                p.writeback_daemon(true)
                    .writeback_low_frames(4)
                    .writeback_high_frames(8)
            })
            .r#async(|a| {
                a.async_upcalls(mode == V2Mode::NativeAsync)
                    .max_inflight_upcalls(2)
            })
            .build()
            .expect("valid config");
        let options = PvmOptions {
            geometry: PageGeometry::new(256),
            frames: 16,
            cost: CostParams::zero(),
            config,
            ..PvmOptions::default()
        };
        let gmi = Arc::new(match mode {
            V2Mode::Shim => Pvm::new(options, SyncShim::wrap(mgr.clone())),
            V2Mode::NativeAsync => {
                Pvm::new(options, Arc::new(MemSegmentManagerV2::new(mgr.clone())))
            }
        });
        Fixture { gmi, mgr }
    });
}
