//! The PVM must pass the generic GMI conformance suite.

use chorus_gmi::conformance::{self, Fixture};
use chorus_gmi::testing::MemSegmentManager;
use chorus_hal::{CostParams, PageGeometry};
use chorus_pvm::{Pvm, PvmConfig, PvmOptions};
use std::sync::Arc;

#[test]
fn pvm_passes_gmi_conformance() {
    conformance::run(|| {
        let mgr = Arc::new(MemSegmentManager::new());
        let gmi = Arc::new(Pvm::new(
            PvmOptions {
                geometry: PageGeometry::new(256),
                frames: 128,
                cost: CostParams::zero(),
                config: PvmConfig {
                    check_invariants: true,
                    ..PvmConfig::default()
                },
                ..PvmOptions::default()
            },
            mgr.clone(),
        ));
        Fixture { gmi, mgr }
    });
}

#[test]
fn pvm_passes_gmi_conformance_under_pressure() {
    // A small pool: the same contract must hold with constant pageout.
    conformance::run(|| {
        let mgr = Arc::new(MemSegmentManager::new());
        let gmi = Arc::new(Pvm::new(
            PvmOptions {
                geometry: PageGeometry::new(256),
                frames: 6,
                cost: CostParams::zero(),
                config: PvmConfig {
                    check_invariants: true,
                    ..PvmConfig::default()
                },
                ..PvmOptions::default()
            },
            mgr.clone(),
        ));
        Fixture { gmi, mgr }
    });
}
