//! Shared helpers for the PVM integration tests.
#![allow(dead_code)] // Not every test binary uses every helper.

use chorus_gmi::testing::MemSegmentManager;
use chorus_gmi::{CacheId, CtxId, Gmi, Prot, RegionId, SyncShim, VirtAddr};
use chorus_hal::{CostParams, PageGeometry};
use chorus_pvm::{MmuChoice, Pvm, PvmConfig, PvmOptions};
use std::sync::Arc;

/// Small page size so tests exercise multi-page behaviour cheaply.
pub const PS: u64 = 256;

/// Builds a PVM with `frames` frames of 256-byte pages over an in-memory
/// segment manager.
pub fn setup(frames: u32) -> (Arc<Pvm>, Arc<MemSegmentManager>) {
    setup_with(frames, |_o| {})
}

/// Builds a PVM, letting the caller tweak options.
pub fn setup_with(
    frames: u32,
    tweak: impl FnOnce(&mut PvmOptions),
) -> (Arc<Pvm>, Arc<MemSegmentManager>) {
    let mgr = Arc::new(MemSegmentManager::new());
    let mut options = PvmOptions {
        geometry: PageGeometry::new(PS),
        frames,
        cost: CostParams::zero(),
        mmu: MmuChoice::Soft,
        config: PvmConfig::builder()
            .paging(|p| p.check_invariants(true))
            .build()
            .expect("valid config"),
    };
    tweak(&mut options);
    (
        Arc::new(Pvm::new(options, SyncShim::wrap(mgr.clone()))),
        mgr,
    )
}

/// Creates a context with one anonymous (temporary-cache) region.
pub fn anon_region(pvm: &Pvm, pages: u64) -> (CtxId, RegionId, CacheId) {
    let ctx = pvm.context_create().unwrap();
    let cache = pvm.cache_create(None).unwrap();
    let region = pvm
        .region_create(ctx, VirtAddr(0x1_0000), pages * PS, Prot::RW, cache, 0)
        .unwrap();
    (ctx, region, cache)
}

/// Byte pattern helper.
pub fn pattern(tag: u8, len: usize) -> Vec<u8> {
    (0..len).map(|i| tag.wrapping_add(i as u8)).collect()
}

/// Reads `len` bytes at `va`.
pub fn read(pvm: &Pvm, ctx: CtxId, va: u64, len: usize) -> Vec<u8> {
    let mut buf = vec![0u8; len];
    pvm.vm_read(ctx, VirtAddr(va), &mut buf).unwrap();
    buf
}

/// Writes bytes at `va`.
pub fn write(pvm: &Pvm, ctx: CtxId, va: u64, data: &[u8]) {
    pvm.vm_write(ctx, VirtAddr(va), data).unwrap();
}
