//! Nucleus-level behaviour: rgn* operations, segment caching, IPC
//! through the transit segment (§5.1).

use chorus_gmi::{Gmi, Prot, SyncShim, VirtAddr};
use chorus_hal::{CostParams, PageGeometry};
use chorus_nucleus::{
    Actor, IpcError, MemMapper, Nucleus, NucleusSegmentManager, PortName, SwapMapper,
};
use chorus_pvm::{Pvm, PvmConfig, PvmOptions};
use std::sync::Arc;
use std::time::Duration;

const PS: u64 = 256;

struct World {
    nucleus: Nucleus<Pvm>,
    files: Arc<MemMapper>,
    swap: Arc<SwapMapper>,
}

fn world(frames: u32) -> World {
    let seg_mgr = Arc::new(NucleusSegmentManager::new());
    let files = Arc::new(MemMapper::new(PortName(100)));
    let swap = Arc::new(SwapMapper::new(PortName(101)));
    seg_mgr.register_mapper(PortName(100), files.clone());
    seg_mgr.register_mapper(PortName(101), swap.clone());
    seg_mgr.set_default_mapper(PortName(101));
    let pvm = Arc::new(Pvm::new(
        PvmOptions {
            geometry: PageGeometry::new(PS),
            frames,
            cost: CostParams::zero(),
            config: PvmConfig::builder()
                .paging(|p| p.check_invariants(true))
                .build()
                .expect("valid config"),
            ..PvmOptions::default()
        },
        SyncShim::wrap(seg_mgr.clone()),
    ));
    World {
        nucleus: Nucleus::new(pvm, seg_mgr, 4),
        files,
        swap,
    }
}

fn pattern(tag: u8, len: usize) -> Vec<u8> {
    (0..len).map(|i| tag.wrapping_add(i as u8)).collect()
}

#[test]
fn rgn_allocate_gives_zero_filled_memory() {
    let w = world(32);
    let a = w.nucleus.actor_create().unwrap();
    w.nucleus
        .rgn_allocate(a, VirtAddr(0x1000), 4 * PS, Prot::RW)
        .unwrap();
    let mut buf = vec![1u8; 16];
    w.nucleus.read_mem(a, VirtAddr(0x1000), &mut buf).unwrap();
    assert_eq!(buf, vec![0u8; 16]);
    w.nucleus
        .write_mem(a, VirtAddr(0x1000), b"stack data")
        .unwrap();
    let mut buf = vec![0u8; 10];
    w.nucleus.read_mem(a, VirtAddr(0x1000), &mut buf).unwrap();
    assert_eq!(buf, b"stack data");
}

#[test]
fn rgn_map_reads_the_file_through_the_mapper() {
    let w = world(32);
    let content = pattern(0x20, (4 * PS) as usize);
    let cap = w.files.create_segment(&content);
    let a = w.nucleus.actor_create().unwrap();
    w.nucleus
        .rgn_map(a, VirtAddr(0x4000), 2 * PS, Prot::RX, cap, PS)
        .unwrap();
    let mut buf = vec![0u8; 12];
    w.nucleus.read_mem(a, VirtAddr(0x4000), &mut buf).unwrap();
    assert_eq!(buf, content[PS as usize..PS as usize + 12]);
}

#[test]
fn rgn_map_shares_one_cache_across_actors() {
    let w = world(32);
    let cap = w.files.create_segment(&pattern(1, (2 * PS) as usize));
    let a = w.nucleus.actor_create().unwrap();
    let b = w.nucleus.actor_create().unwrap();
    w.nucleus
        .rgn_map(a, VirtAddr(0), 2 * PS, Prot::RW, cap, 0)
        .unwrap();
    w.nucleus
        .rgn_map(b, VirtAddr(0x8000), 2 * PS, Prot::RW, cap, 0)
        .unwrap();
    // One miss, one hit: the second map found the bound cache.
    let stats = w.nucleus.segment_caching_stats();
    assert_eq!((stats.misses, stats.hits), (1, 1));
    // Shared semantics: writes are visible through both mappings.
    w.nucleus.write_mem(a, VirtAddr(3), b"shared!").unwrap();
    let mut buf = vec![0u8; 7];
    w.nucleus
        .read_mem(b, VirtAddr(0x8000 + 3), &mut buf)
        .unwrap();
    assert_eq!(buf, b"shared!");
}

#[test]
fn rgn_init_is_a_snapshot_copy() {
    let w = world(64);
    let content = pattern(0x60, (3 * PS) as usize);
    let cap = w.files.create_segment(&content);
    let a = w.nucleus.actor_create().unwrap();
    w.nucleus
        .rgn_init(a, VirtAddr(0x10000), 3 * PS, Prot::RW, cap, 0)
        .unwrap();
    let mut buf = vec![0u8; 8];
    w.nucleus.read_mem(a, VirtAddr(0x10000), &mut buf).unwrap();
    assert_eq!(buf, content[..8]);
    // Writing the region must not touch the file.
    w.nucleus
        .write_mem(a, VirtAddr(0x10000), b"PRIVATE!")
        .unwrap();
    assert_eq!(w.files.segment_data(cap), content);
}

#[test]
fn fork_pattern_with_map_and_init_from_actor() {
    let w = world(64);
    // "A Unix fork uses rgnMapFromActor to share the text segment...
    // It invokes rgnInitFromActor to create the child's data and stack
    // areas as copies of the parent's."
    let text_cap = w.files.create_segment(&pattern(0x7F, (2 * PS) as usize));
    let parent = w.nucleus.actor_create().unwrap();
    w.nucleus
        .rgn_map(parent, VirtAddr(0x1000), 2 * PS, Prot::RX, text_cap, 0)
        .unwrap();
    w.nucleus
        .rgn_allocate(parent, VirtAddr(0x10000), 4 * PS, Prot::RW)
        .unwrap();
    w.nucleus
        .write_mem(parent, VirtAddr(0x10000), &pattern(5, (2 * PS) as usize))
        .unwrap();

    let child = w.nucleus.actor_create().unwrap();
    w.nucleus
        .rgn_map_from_actor(
            child,
            VirtAddr(0x1000),
            2 * PS,
            Prot::RX,
            parent,
            VirtAddr(0x1000),
        )
        .unwrap();
    w.nucleus
        .rgn_init_from_actor(
            child,
            VirtAddr(0x10000),
            4 * PS,
            Prot::RW,
            parent,
            VirtAddr(0x10000),
        )
        .unwrap();

    // Text is shared (same cache), data is a snapshot.
    let p_text = w
        .nucleus
        .gmi()
        .region_status(
            w.nucleus
                .gmi()
                .find_region(w.nucleus.ctx(parent).unwrap(), VirtAddr(0x1000))
                .unwrap(),
        )
        .unwrap();
    let c_text = w
        .nucleus
        .gmi()
        .region_status(
            w.nucleus
                .gmi()
                .find_region(w.nucleus.ctx(child).unwrap(), VirtAddr(0x1000))
                .unwrap(),
        )
        .unwrap();
    assert_eq!(p_text.cache, c_text.cache, "text shares one local cache");

    // Parent mutates its data; child keeps the snapshot.
    w.nucleus
        .write_mem(parent, VirtAddr(0x10000), b"parent-only")
        .unwrap();
    let mut buf = vec![0u8; 11];
    w.nucleus
        .read_mem(child, VirtAddr(0x10000), &mut buf)
        .unwrap();
    assert_eq!(buf, pattern(5, 11));
    // Child mutates; parent unaffected.
    w.nucleus
        .write_mem(child, VirtAddr(0x10000 + PS), b"child-only")
        .unwrap();
    let mut buf = vec![0u8; 10];
    w.nucleus
        .read_mem(parent, VirtAddr(0x10000 + PS), &mut buf)
        .unwrap();
    assert_eq!(
        buf,
        pattern(5, (2 * PS) as usize)[PS as usize..PS as usize + 10]
    );
}

#[test]
fn segment_caching_keeps_unreferenced_caches() {
    let w = world(64);
    let cap = w.files.create_segment(&pattern(3, (2 * PS) as usize));
    let a = w.nucleus.actor_create().unwrap();
    // Map, touch, free — three times: only the first should miss.
    for round in 0..3 {
        let r = w
            .nucleus
            .rgn_map(a, VirtAddr(0x1000), 2 * PS, Prot::RX, cap, 0)
            .unwrap();
        let mut buf = vec![0u8; 4];
        w.nucleus.read_mem(a, VirtAddr(0x1000), &mut buf).unwrap();
        w.nucleus.rgn_free(r).unwrap();
        let _ = round;
    }
    let stats = w.nucleus.segment_caching_stats();
    assert_eq!((stats.misses, stats.hits), (1, 2), "{stats:?}");
    // The cached pages stayed resident: only one pull ever happened.
    assert_eq!(w.nucleus.gmi().stats().pull_ins, 1);
}

#[test]
fn segment_caching_disabled_recreates_caches() {
    let w = world(64);
    w.nucleus.set_segment_caching(false, 0);
    let cap = w.files.create_segment(&pattern(3, PS as usize));
    let a = w.nucleus.actor_create().unwrap();
    for _ in 0..3 {
        let r = w
            .nucleus
            .rgn_map(a, VirtAddr(0x1000), PS, Prot::RX, cap, 0)
            .unwrap();
        let mut buf = vec![0u8; 4];
        w.nucleus.read_mem(a, VirtAddr(0x1000), &mut buf).unwrap();
        w.nucleus.rgn_free(r).unwrap();
    }
    let stats = w.nucleus.segment_caching_stats();
    assert_eq!(stats.misses, 3, "{stats:?}");
    assert_eq!(w.nucleus.gmi().stats().pull_ins, 3, "each miss re-pulls");
}

#[test]
fn segment_cache_table_limit_evicts_lru() {
    let w = world(128);
    w.nucleus.set_segment_caching(true, 2);
    let caps: Vec<_> = (0..4)
        .map(|i| w.files.create_segment(&pattern(i, PS as usize)))
        .collect();
    let a = w.nucleus.actor_create().unwrap();
    for cap in &caps {
        let r = w
            .nucleus
            .rgn_map(a, VirtAddr(0x1000), PS, Prot::RX, *cap, 0)
            .unwrap();
        w.nucleus.rgn_free(r).unwrap();
    }
    let stats = w.nucleus.segment_caching_stats();
    assert!(stats.evictions >= 1, "{stats:?}");
    // The most recent two should still hit.
    let r = w
        .nucleus
        .rgn_map(a, VirtAddr(0x1000), PS, Prot::RX, caps[3], 0)
        .unwrap();
    w.nucleus.rgn_free(r).unwrap();
    assert!(w.nucleus.segment_caching_stats().hits >= 1);
}

#[test]
fn temp_regions_swap_under_pressure() {
    let w = world(8);
    let a = w.nucleus.actor_create().unwrap();
    w.nucleus
        .rgn_allocate(a, VirtAddr(0), 16 * PS, Prot::RW)
        .unwrap();
    for page in 0..16u64 {
        w.nucleus
            .write_mem(a, VirtAddr(page * PS), &[page as u8; 8])
            .unwrap();
    }
    assert!(
        w.swap.swapped_out_bytes() > 0,
        "pressure must reach the swap mapper"
    );
    for page in 0..16u64 {
        let mut buf = [0u8; 8];
        w.nucleus
            .read_mem(a, VirtAddr(page * PS), &mut buf)
            .unwrap();
        assert_eq!(buf, [page as u8; 8]);
    }
}

#[test]
fn actor_destroy_releases_memory() {
    let w = world(32);
    let a = w.nucleus.actor_create().unwrap();
    w.nucleus
        .rgn_allocate(a, VirtAddr(0), 4 * PS, Prot::RW)
        .unwrap();
    w.nucleus
        .write_mem(a, VirtAddr(0), &pattern(1, (4 * PS) as usize))
        .unwrap();
    let used_before = w.nucleus.gmi().resident_page_count();
    assert!(used_before >= 4);
    w.nucleus.actor_destroy(a).unwrap();
    assert_eq!(w.nucleus.gmi().resident_page_count(), 0);
    assert!(w.nucleus.read_mem(a, VirtAddr(0), &mut [0u8; 1]).is_err());
}

// ----- IPC --------------------------------------------------------------------

fn ipc_pair(w: &World) -> (Actor, Actor) {
    let s = w.nucleus.actor_create().unwrap();
    let r = w.nucleus.actor_create().unwrap();
    w.nucleus
        .rgn_allocate(s, VirtAddr(0x1000 * PS), 16 * PS, Prot::RW)
        .unwrap();
    w.nucleus
        .rgn_allocate(r, VirtAddr(0x2000 * PS), 16 * PS, Prot::RW)
        .unwrap();
    (s, r)
}

#[test]
fn ipc_small_message_roundtrip() {
    let w = world(128);
    let (s, r) = ipc_pair(&w);
    let port = w.nucleus.port_create();
    w.nucleus
        .write_mem(s, VirtAddr(0x1000 * PS + 5), b"ping")
        .unwrap();
    w.nucleus
        .ipc_send(s, port, VirtAddr(0x1000 * PS + 5), 4)
        .unwrap();
    let n = w
        .nucleus
        .ipc_receive(
            r,
            port,
            VirtAddr(0x2000 * PS + 9),
            64,
            Duration::from_secs(1),
        )
        .unwrap();
    assert_eq!(n, 4);
    let mut buf = [0u8; 4];
    w.nucleus
        .read_mem(r, VirtAddr(0x2000 * PS + 9), &mut buf)
        .unwrap();
    assert_eq!(&buf, b"ping");
}

#[test]
fn ipc_large_message_uses_transit_slot_deferred() {
    let w = world(128);
    let (s, r) = ipc_pair(&w);
    let port = w.nucleus.port_create();
    let msg = pattern(0x42, (4 * PS) as usize);
    w.nucleus.write_mem(s, VirtAddr(0x1000 * PS), &msg).unwrap();
    let copies_before = w.nucleus.gmi().mem_stats().copied;
    w.nucleus
        .ipc_send(s, port, VirtAddr(0x1000 * PS), 4 * PS)
        .unwrap();
    // The send is deferred (per-page stubs), not a physical copy.
    assert_eq!(
        w.nucleus.gmi().mem_stats().copied,
        copies_before,
        "send must defer"
    );
    assert!(w.nucleus.gmi().stats().cow_stubs_created >= 4);
    let n = w
        .nucleus
        .ipc_receive(
            r,
            port,
            VirtAddr(0x2000 * PS),
            8 * PS,
            Duration::from_secs(1),
        )
        .unwrap();
    assert_eq!(n, 4 * PS);
    let mut got = vec![0u8; msg.len()];
    w.nucleus
        .read_mem(r, VirtAddr(0x2000 * PS), &mut got)
        .unwrap();
    assert_eq!(got, msg);
    // Sender reuses its buffer without corrupting the delivered message.
    w.nucleus
        .write_mem(s, VirtAddr(0x1000 * PS), &pattern(0x99, (4 * PS) as usize))
        .unwrap();
    w.nucleus
        .read_mem(r, VirtAddr(0x2000 * PS), &mut got)
        .unwrap();
    assert_eq!(got, msg);
}

#[test]
fn ipc_slots_are_recycled() {
    let w = world(128);
    let (s, r) = ipc_pair(&w);
    let port = w.nucleus.port_create();
    // More messages than slots (4), sequentially.
    for i in 0..10u8 {
        let msg = pattern(i, (2 * PS) as usize);
        w.nucleus.write_mem(s, VirtAddr(0x1000 * PS), &msg).unwrap();
        w.nucleus
            .ipc_send(s, port, VirtAddr(0x1000 * PS), 2 * PS)
            .unwrap();
        let n = w
            .nucleus
            .ipc_receive(
                r,
                port,
                VirtAddr(0x2000 * PS),
                8 * PS,
                Duration::from_secs(1),
            )
            .unwrap();
        assert_eq!(n, 2 * PS);
        let mut got = vec![0u8; msg.len()];
        w.nucleus
            .read_mem(r, VirtAddr(0x2000 * PS), &mut got)
            .unwrap();
        assert_eq!(got, msg, "message {i}");
    }
}

#[test]
fn ipc_transit_exhaustion_reported() {
    let w = world(256);
    let (s, _r) = ipc_pair(&w);
    let port = w.nucleus.port_create();
    w.nucleus
        .write_mem(s, VirtAddr(0x1000 * PS), &pattern(0, (2 * PS) as usize))
        .unwrap();
    // 4 slots configured; the 5th in-flight slotted message must fail.
    for _ in 0..4 {
        w.nucleus
            .ipc_send(s, port, VirtAddr(0x1000 * PS), 2 * PS)
            .unwrap();
    }
    let err = w
        .nucleus
        .ipc_send(s, port, VirtAddr(0x1000 * PS), 2 * PS)
        .unwrap_err();
    assert_eq!(err, IpcError::TransitFull);
}

#[test]
fn ipc_oversized_message_rejected() {
    let w = world(128);
    let (s, _r) = ipc_pair(&w);
    let port = w.nucleus.port_create();
    let limit = w.nucleus.message_limit();
    let err = w
        .nucleus
        .ipc_send(s, port, VirtAddr(0x1000 * PS), limit + 1)
        .unwrap_err();
    assert!(matches!(err, IpcError::MessageTooLarge { .. }));
}

#[test]
fn ipc_receive_timeout() {
    let w = world(32);
    let (_s, r) = ipc_pair(&w);
    let port = w.nucleus.port_create();
    let err = w
        .nucleus
        .ipc_receive(
            r,
            port,
            VirtAddr(0x2000 * PS),
            PS,
            Duration::from_millis(10),
        )
        .unwrap_err();
    assert_eq!(err, IpcError::Timeout);
}

#[test]
fn ipc_cross_thread_blocking_receive() {
    let w = Arc::new(world(128));
    let (s, r) = ipc_pair(&w);
    let port = w.nucleus.port_create();
    let w2 = Arc::clone(&w);
    let t = std::thread::spawn(move || {
        w2.nucleus
            .ipc_receive(
                r,
                port,
                VirtAddr(0x2000 * PS),
                8 * PS,
                Duration::from_secs(5),
            )
            .unwrap()
    });
    std::thread::sleep(Duration::from_millis(30));
    w.nucleus
        .write_mem(s, VirtAddr(0x1000 * PS), &pattern(0x55, (2 * PS) as usize))
        .unwrap();
    w.nucleus
        .ipc_send(s, port, VirtAddr(0x1000 * PS), 2 * PS)
        .unwrap();
    assert_eq!(t.join().unwrap(), 2 * PS);
    let mut got = vec![0u8; (2 * PS) as usize];
    w.nucleus
        .read_mem(r, VirtAddr(0x2000 * PS), &mut got)
        .unwrap();
    assert_eq!(got, pattern(0x55, (2 * PS) as usize));
}

#[test]
fn port_destroy_reclaims_transit_slots() {
    let w = world(128);
    let (s, _r) = ipc_pair(&w);
    // Fill all 4 slots on a port, then destroy it: the slots must come
    // back for the next port.
    let port = w.nucleus.port_create();
    w.nucleus
        .write_mem(s, VirtAddr(0x1000 * PS), &pattern(1, (2 * PS) as usize))
        .unwrap();
    for _ in 0..4 {
        w.nucleus
            .ipc_send(s, port, VirtAddr(0x1000 * PS), 2 * PS)
            .unwrap();
    }
    assert_eq!(
        w.nucleus
            .ipc_send(s, port, VirtAddr(0x1000 * PS), 2 * PS)
            .unwrap_err(),
        IpcError::TransitFull
    );
    w.nucleus.port_destroy(port);
    let port2 = w.nucleus.port_create();
    for _ in 0..4 {
        w.nucleus
            .ipc_send(s, port2, VirtAddr(0x1000 * PS), 2 * PS)
            .unwrap();
    }
}

#[test]
fn concurrent_producers_and_consumers() {
    use std::sync::atomic::{AtomicU64, Ordering};
    let w = Arc::new(world(512));
    let port = w.nucleus.port_create();
    const MSGS: usize = 12;

    // Two producers with their own buffers.
    let producers: Vec<_> = (0..2u64)
        .map(|p| {
            let w = Arc::clone(&w);
            std::thread::spawn(move || {
                let a = w.nucleus.actor_create().unwrap();
                let base = VirtAddr(0x100_0000 + p * 0x10_0000);
                w.nucleus.rgn_allocate(a, base, 8 * PS, Prot::RW).unwrap();
                for i in 0..MSGS {
                    let tag = (p as u8) << 4 | i as u8;
                    w.nucleus
                        .write_mem(a, base, &pattern(tag, (2 * PS) as usize))
                        .unwrap();
                    // Retry when the 4-slot transit segment is full.
                    loop {
                        match w.nucleus.ipc_send(a, port, base, 2 * PS) {
                            Ok(()) => break,
                            Err(IpcError::TransitFull) => std::thread::yield_now(),
                            Err(e) => panic!("send failed: {e}"),
                        }
                    }
                }
            })
        })
        .collect();

    // Two consumers sharing a received-message counter.
    let received = Arc::new(AtomicU64::new(0));
    let consumers: Vec<_> = (0..2u64)
        .map(|c| {
            let w = Arc::clone(&w);
            let received = Arc::clone(&received);
            std::thread::spawn(move || {
                let a = w.nucleus.actor_create().unwrap();
                let base = VirtAddr(0x400_0000 + c * 0x10_0000);
                w.nucleus.rgn_allocate(a, base, 8 * PS, Prot::RW).unwrap();
                loop {
                    if received.load(Ordering::SeqCst) >= (2 * MSGS) as u64 {
                        return;
                    }
                    match w
                        .nucleus
                        .ipc_receive(a, port, base, 8 * PS, Duration::from_millis(50))
                    {
                        Ok(n) => {
                            assert_eq!(n, 2 * PS);
                            // Message integrity: constant tag + ramp.
                            let mut buf = vec![0u8; (2 * PS) as usize];
                            w.nucleus.read_mem(a, base, &mut buf).unwrap();
                            let tag = buf[0];
                            assert_eq!(buf, pattern(tag, (2 * PS) as usize));
                            received.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(IpcError::Timeout) => {}
                        Err(e) => panic!("receive failed: {e}"),
                    }
                }
            })
        })
        .collect();

    for t in producers {
        t.join().unwrap();
    }
    for t in consumers {
        t.join().unwrap();
    }
    assert_eq!(
        received.load(std::sync::atomic::Ordering::SeqCst),
        (2 * MSGS) as u64
    );
    w.nucleus.gmi().check_invariants();
}
