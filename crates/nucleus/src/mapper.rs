//! Mappers: the independent actors implementing segments (§5.1.1).
//!
//! "A segment is implemented by an independent actor, its mapper,
//! generally on secondary storage... A mapper exports a standard
//! read/write interface, invoked using the IPC mechanisms. Some mappers
//! are known to the Nucleus as defaults; these export an additional
//! interface for the allocation of temporary segments."
//!
//! Substitution note (see DESIGN.md): mappers here are in-process
//! objects invoked through a registry keyed by their port name; the
//! request/reply message shapes match the paper's IPC protocol, and the
//! optional per-request latency simulates the secondary-storage round
//! trip (making synchronization-page-stub blocking observable).

use crate::capability::{Capability, PortName};
use chorus_gmi::{GmiError, Result, SegmentId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// The standard mapper interface (read/write of segment fragments).
pub trait Mapper: Send + Sync {
    /// Reads `size` bytes at `offset` of the segment named by `cap`.
    ///
    /// # Errors
    ///
    /// Fails when the capability is invalid or I/O fails.
    fn read(&self, cap: Capability, offset: u64, size: u64) -> Result<Vec<u8>>;

    /// Writes bytes at `offset` of the segment named by `cap`.
    ///
    /// # Errors
    ///
    /// Fails when the capability is invalid or I/O fails.
    fn write(&self, cap: Capability, offset: u64, data: &[u8]) -> Result<()>;

    /// Grants or denies write access (coherence protocols override).
    ///
    /// # Errors
    ///
    /// Denial is an error carrying the reason.
    fn get_write_access(&self, _cap: Capability, _offset: u64, _size: u64) -> Result<()> {
        Ok(())
    }

    /// The current length of the segment named by `cap`, if known. A
    /// metadata query, not I/O: implementations should answer from
    /// bookkeeping (no latency, no fault injection) so the memory
    /// manager's readahead clamp stays deterministic.
    fn size(&self, _cap: Capability) -> Option<u64> {
        None
    }

    /// Allocates a temporary segment (default mappers only, §5.1.1).
    ///
    /// # Errors
    ///
    /// Fails when this mapper does not offer temporary segments.
    fn allocate_temporary(&self) -> Result<Capability> {
        Err(GmiError::Unsupported(
            "mapper does not allocate temporary segments",
        ))
    }
}

/// A mapper holding segments in memory, with optional simulated I/O
/// latency. Serves both as a "file server" for tests/examples and as
/// the swap default mapper.
pub struct MemMapper {
    port: PortName,
    segments: Mutex<HashMap<u64, Vec<u8>>>,
    next_key: Mutex<u64>,
    latency: Mutex<Option<Duration>>,
}

impl MemMapper {
    /// Creates a mapper answering on `port`.
    pub fn new(port: PortName) -> MemMapper {
        MemMapper {
            port,
            segments: Mutex::new(HashMap::new()),
            next_key: Mutex::new(1),
            latency: Mutex::new(None),
        }
    }

    /// The mapper's port name.
    pub fn port(&self) -> PortName {
        self.port
    }

    /// Registers a new segment with initial contents, returning its
    /// capability.
    pub fn create_segment(&self, data: &[u8]) -> Capability {
        let mut next = self.next_key.lock();
        // Sparse keys: spread through the key space so they are not
        // guessable from small integers.
        let key = (*next).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        *next += 1;
        self.segments.lock().insert(key, data.to_vec());
        Capability::new(self.port, key)
    }

    /// Current contents of a segment (for assertions).
    ///
    /// # Panics
    ///
    /// Panics on an unknown capability.
    pub fn segment_data(&self, cap: Capability) -> Vec<u8> {
        self.segments
            .lock()
            .get(&cap.key)
            .expect("unknown capability")
            .clone()
    }

    /// Sets the simulated per-request latency.
    pub fn set_latency(&self, latency: Option<Duration>) {
        *self.latency.lock() = latency;
    }

    fn delay(&self) {
        let latency = *self.latency.lock();
        if let Some(d) = latency {
            std::thread::sleep(d);
        }
    }

    fn check(&self, cap: Capability) -> Result<()> {
        if cap.port != self.port || !self.segments.lock().contains_key(&cap.key) {
            return Err(GmiError::permanent_io(
                SegmentId(cap.key),
                "invalid capability",
            ));
        }
        Ok(())
    }
}

impl Mapper for MemMapper {
    fn read(&self, cap: Capability, offset: u64, size: u64) -> Result<Vec<u8>> {
        self.check(cap)?;
        self.delay();
        let segments = self.segments.lock();
        let data = segments.get(&cap.key).expect("checked above");
        let mut out = vec![0u8; size as usize];
        let len = data.len() as u64;
        if offset < len {
            let n = (len - offset).min(size) as usize;
            out[..n].copy_from_slice(&data[offset as usize..offset as usize + n]);
        }
        Ok(out)
    }

    fn write(&self, cap: Capability, offset: u64, bytes: &[u8]) -> Result<()> {
        self.check(cap)?;
        self.delay();
        let mut segments = self.segments.lock();
        let data = segments.get_mut(&cap.key).expect("checked above");
        let end = offset as usize + bytes.len();
        if data.len() < end {
            data.resize(end, 0);
        }
        data[offset as usize..end].copy_from_slice(bytes);
        Ok(())
    }

    fn size(&self, cap: Capability) -> Option<u64> {
        if cap.port != self.port {
            return None;
        }
        self.segments.lock().get(&cap.key).map(|d| d.len() as u64)
    }

    fn allocate_temporary(&self) -> Result<Capability> {
        Ok(self.create_segment(&[]))
    }
}

/// The default swap mapper: a [`MemMapper`] wrapper that counts swap
/// traffic for the benches.
pub struct SwapMapper {
    inner: MemMapper,
    swapped_out_bytes: Mutex<u64>,
}

impl SwapMapper {
    /// Creates a swap mapper on `port`.
    pub fn new(port: PortName) -> SwapMapper {
        SwapMapper {
            inner: MemMapper::new(port),
            swapped_out_bytes: Mutex::new(0),
        }
    }

    /// Total bytes ever pushed to swap.
    pub fn swapped_out_bytes(&self) -> u64 {
        *self.swapped_out_bytes.lock()
    }

    /// The mapper's port name.
    pub fn port(&self) -> PortName {
        self.inner.port()
    }
}

impl Mapper for SwapMapper {
    fn read(&self, cap: Capability, offset: u64, size: u64) -> Result<Vec<u8>> {
        self.inner.read(cap, offset, size)
    }

    fn write(&self, cap: Capability, offset: u64, data: &[u8]) -> Result<()> {
        *self.swapped_out_bytes.lock() += data.len() as u64;
        self.inner.write(cap, offset, data)
    }

    fn size(&self, cap: Capability) -> Option<u64> {
        self.inner.size(cap)
    }

    fn allocate_temporary(&self) -> Result<Capability> {
        self.inner.allocate_temporary()
    }
}

/// The routing table from port names to mapper implementations: the
/// in-process stand-in for sending IPC to the mapper's port.
#[derive(Default)]
pub struct MapperRegistry {
    mappers: Mutex<HashMap<PortName, Arc<dyn Mapper>>>,
}

impl MapperRegistry {
    /// Creates an empty registry.
    pub fn new() -> MapperRegistry {
        MapperRegistry::default()
    }

    /// Registers a mapper under its port name.
    pub fn register(&self, port: PortName, mapper: Arc<dyn Mapper>) {
        self.mappers.lock().insert(port, mapper);
    }

    /// Routes to the mapper answering `port`.
    ///
    /// # Errors
    ///
    /// Fails if no mapper is registered on the port.
    pub fn route(&self, port: PortName) -> Result<Arc<dyn Mapper>> {
        self.mappers
            .lock()
            .get(&port)
            .cloned()
            .ok_or(GmiError::MapperUnavailable {
                segment: SegmentId(0),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_mapper_roundtrip_and_sparse_reads() {
        let m = MemMapper::new(PortName(1));
        let cap = m.create_segment(b"hello");
        assert_eq!(m.read(cap, 0, 5).unwrap(), b"hello");
        // Sparse: beyond-end reads return zeroes.
        assert_eq!(m.read(cap, 3, 4).unwrap(), vec![b'l', b'o', 0, 0]);
        m.write(cap, 7, b"xy").unwrap();
        assert_eq!(m.read(cap, 5, 4).unwrap(), vec![0, 0, b'x', b'y']);
    }

    #[test]
    fn invalid_capability_rejected() {
        let m = MemMapper::new(PortName(1));
        let cap = m.create_segment(b"data");
        let forged = Capability::new(PortName(1), cap.key ^ 1);
        assert!(m.read(forged, 0, 1).is_err());
        let wrong_port = Capability::new(PortName(2), cap.key);
        assert!(m.read(wrong_port, 0, 1).is_err());
    }

    #[test]
    fn capability_keys_are_sparse() {
        let m = MemMapper::new(PortName(1));
        let a = m.create_segment(b"");
        let b = m.create_segment(b"");
        assert_ne!(a.key, b.key);
        assert!(
            a.key > 1_000_000,
            "keys must not be small integers: {:#x}",
            a.key
        );
    }

    #[test]
    fn size_reports_current_length() {
        let m = MemMapper::new(PortName(1));
        let cap = m.create_segment(b"hello");
        assert_eq!(m.size(cap), Some(5));
        m.write(cap, 7, b"xy").unwrap();
        assert_eq!(m.size(cap), Some(9));
        let forged = Capability::new(PortName(2), cap.key);
        assert_eq!(m.size(forged), None);
        let s = SwapMapper::new(PortName(9));
        let tmp = s.allocate_temporary().unwrap();
        assert_eq!(s.size(tmp), Some(0));
    }

    #[test]
    fn swap_mapper_counts_traffic() {
        let s = SwapMapper::new(PortName(9));
        let cap = s.allocate_temporary().unwrap();
        s.write(cap, 0, &[0u8; 128]).unwrap();
        s.write(cap, 128, &[1u8; 64]).unwrap();
        assert_eq!(s.swapped_out_bytes(), 192);
        assert_eq!(s.read(cap, 128, 2).unwrap(), vec![1, 1]);
    }

    #[test]
    fn registry_routes_by_port() {
        let reg = MapperRegistry::new();
        let m = Arc::new(MemMapper::new(PortName(3)));
        reg.register(PortName(3), m.clone());
        assert!(reg.route(PortName(3)).is_ok());
        assert!(reg.route(PortName(4)).is_err());
    }
}
