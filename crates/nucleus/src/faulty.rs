//! Fault-injecting mapper decorator.
//!
//! Mappers are independent actors reached over IPC (§5.1.1), so the
//! kernel must survive every way their replies can go wrong: transient
//! I/O errors, permanent death, slow replies, truncated replies, and a
//! crash-restart in the middle of a run. [`FaultyMapper`] wraps any
//! [`Mapper`] and injects exactly those failures, driven by a seeded
//! deterministic RNG so every test run is reproducible from its seed
//! alone.
//!
//! Delays are charged to the *simulated* clock (the PVM's
//! [`CostModel`]) rather than to wall time, which makes per-upcall
//! deadlines observable without slow tests.

use crate::capability::Capability;
use crate::mapper::Mapper;
use chorus_gmi::{GmiError, Result, SegmentId};
use chorus_hal::CostModel;
use chorus_pvm::trace::{InjectedKind, TraceEvent};
use chorus_pvm::Tracer;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// What failures to inject, and how often. All probabilities are
/// per-mille (0..=1000) so plans stay integer-only and deterministic.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// RNG seed; two mappers with the same plan inject the same faults.
    pub seed: u64,
    /// Probability of a transient I/O error per operation.
    pub transient_per_mille: u32,
    /// Probability of permanent mapper death per operation. Permanent
    /// death is sticky: every later operation fails with
    /// [`GmiError::MapperUnavailable`].
    pub permanent_per_mille: u32,
    /// Probability of a slow reply per operation.
    pub delay_per_mille: u32,
    /// Simulated nanoseconds a slow reply takes.
    pub delay_ns: u64,
    /// Probability that a read reply is truncated (short data).
    pub truncate_per_mille: u32,
    /// Crash-once window: the operation with this index (0-based)
    /// fails transiently, simulating a mapper restart; operations
    /// after it succeed again.
    pub crash_at_op: Option<u64>,
    /// Hang window: from the operation with this index (0-based)
    /// onward the mapper is wedged — every request times out
    /// ([`GmiError::MapperTimeout`]) without touching the inner mapper
    /// or consuming RNG draws, so a run's fault schedule up to the hang
    /// is unchanged. Unlike permanent death the error is *transient*:
    /// the mapper looks alive but never answers, which is exactly the
    /// failure the upcall watchdog exists for. `set_plan` un-wedges.
    pub hang_at_op: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a baseline).
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            transient_per_mille: 0,
            permanent_per_mille: 0,
            delay_per_mille: 0,
            delay_ns: 0,
            truncate_per_mille: 0,
            crash_at_op: None,
            hang_at_op: None,
        }
    }

    /// A plan injecting only transient errors at `per_mille`.
    pub fn transient(seed: u64, per_mille: u32) -> FaultPlan {
        FaultPlan {
            transient_per_mille: per_mille,
            ..FaultPlan::quiet(seed)
        }
    }
}

/// One injected fault, for assertions in tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedFault {
    /// A transient I/O error was returned.
    Transient,
    /// The mapper died permanently.
    Permanent,
    /// The reply was delayed by the given simulated nanoseconds.
    Delay(u64),
    /// A read reply was cut short to the given length.
    Truncated(usize),
    /// The crash-once window fired.
    Crash,
    /// The hang window opened: the mapper is wedged and every request
    /// from here on times out. Logged once, at the transition.
    Hang,
}

/// splitmix64: a tiny, high-quality deterministic PRNG. Good enough
/// for fault scheduling and has no dependencies.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// True with probability `per_mille`/1000.
    fn hit(&mut self, per_mille: u32) -> bool {
        per_mille > 0 && (self.next() % 1000) < u64::from(per_mille)
    }
}

/// A decorator injecting faults into an inner mapper according to a
/// [`FaultPlan`].
pub struct FaultyMapper {
    inner: Arc<dyn Mapper>,
    plan: Mutex<FaultPlan>,
    rng: Mutex<SplitMix64>,
    ops: Mutex<u64>,
    dead: AtomicBool,
    /// Wedged by the hang window: alive but never answering.
    wedged: AtomicBool,
    log: Mutex<Vec<InjectedFault>>,
    /// When set, delays advance this simulated clock.
    clock: Mutex<Option<Arc<CostModel>>>,
    /// When set, every injected fault is also recorded as a
    /// [`TraceEvent::MapperFaultInjected`] so trace timelines correlate
    /// injected failures with the retries/timeouts they cause.
    tracer: Mutex<Option<Arc<Tracer>>>,
}

impl FaultyMapper {
    /// Wraps `inner`, injecting faults per `plan`.
    pub fn new(inner: Arc<dyn Mapper>, plan: FaultPlan) -> FaultyMapper {
        FaultyMapper {
            inner,
            plan: Mutex::new(plan),
            rng: Mutex::new(SplitMix64(plan.seed)),
            ops: Mutex::new(0),
            dead: AtomicBool::new(false),
            wedged: AtomicBool::new(false),
            log: Mutex::new(Vec::new()),
            clock: Mutex::new(None),
            tracer: Mutex::new(None),
        }
    }

    /// Attaches the simulated clock that injected delays advance.
    pub fn attach_clock(&self, clock: Arc<CostModel>) {
        *self.clock.lock() = Some(clock);
    }

    /// Attaches the PVM tracer so injected faults appear on the trace
    /// timeline (as `mapper.inject` instants).
    pub fn attach_tracer(&self, tracer: Arc<Tracer>) {
        *self.tracer.lock() = Some(tracer);
    }

    /// Replaces the fault plan at runtime and revives a dead mapper —
    /// the "mapper restarted" transition recovery tests need. The RNG
    /// keeps its position so the overall schedule stays deterministic.
    pub fn set_plan(&self, plan: FaultPlan) {
        // plan.seed is deliberately not re-applied to the running RNG.
        *self.plan.lock() = plan;
        self.dead.store(false, Ordering::SeqCst);
        self.wedged.store(false, Ordering::SeqCst);
    }

    /// Drains the log of injected faults.
    pub fn take_log(&self) -> Vec<InjectedFault> {
        std::mem::take(&mut self.log.lock())
    }

    /// True once a permanent fault has fired.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// True once the hang window has opened (cleared by `set_plan`).
    pub fn is_wedged(&self) -> bool {
        self.wedged.load(Ordering::SeqCst)
    }

    fn record(&self, fault: InjectedFault) {
        if let Some(t) = self.tracer.lock().clone() {
            let kind = match fault {
                InjectedFault::Transient => InjectedKind::Transient,
                InjectedFault::Permanent => InjectedKind::Permanent,
                InjectedFault::Delay(_) => InjectedKind::Delay,
                InjectedFault::Truncated(_) => InjectedKind::Truncated,
                InjectedFault::Crash => InjectedKind::Crash,
                InjectedFault::Hang => InjectedKind::Hang,
            };
            t.event(|| TraceEvent::MapperFaultInjected { kind });
        }
        self.log.lock().push(fault);
    }

    /// Runs the common pre-operation fault schedule. Returns
    /// `Ok(truncate)` where `truncate` says whether a read reply should
    /// be cut short.
    fn inject(&self, segment: SegmentId) -> Result<bool> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(GmiError::MapperUnavailable { segment });
        }
        if self.wedged.load(Ordering::SeqCst) {
            // Already wedged: time out without logging again or
            // consuming RNG draws.
            return Err(GmiError::MapperTimeout { segment });
        }
        let plan = *self.plan.lock();
        let op = {
            let mut ops = self.ops.lock();
            let op = *ops;
            *ops += 1;
            op
        };
        if plan.hang_at_op.is_some_and(|h| op >= h) {
            self.wedged.store(true, Ordering::SeqCst);
            self.record(InjectedFault::Hang);
            return Err(GmiError::MapperTimeout { segment });
        }
        if plan.crash_at_op == Some(op) {
            self.record(InjectedFault::Crash);
            return Err(GmiError::transient_io(
                segment,
                "mapper crashed (restarting)",
            ));
        }
        let mut rng = self.rng.lock();
        if rng.hit(plan.permanent_per_mille) {
            drop(rng);
            self.dead.store(true, Ordering::SeqCst);
            self.record(InjectedFault::Permanent);
            return Err(GmiError::MapperUnavailable { segment });
        }
        if rng.hit(plan.delay_per_mille) {
            let ns = plan.delay_ns;
            drop(rng);
            if let Some(clock) = self.clock.lock().clone() {
                clock.advance_ns(ns);
            }
            self.record(InjectedFault::Delay(ns));
            rng = self.rng.lock();
        }
        if rng.hit(plan.transient_per_mille) {
            drop(rng);
            self.record(InjectedFault::Transient);
            return Err(GmiError::transient_io(
                segment,
                "injected transient I/O error",
            ));
        }
        let truncate = rng.hit(plan.truncate_per_mille);
        drop(rng);
        Ok(truncate)
    }
}

impl Mapper for FaultyMapper {
    fn read(&self, cap: Capability, offset: u64, size: u64) -> Result<Vec<u8>> {
        let truncate = self.inject(SegmentId(cap.key))?;
        let mut data = self.inner.read(cap, offset, size)?;
        if truncate && !data.is_empty() {
            let cut = data.len() / 2;
            data.truncate(cut);
            self.record(InjectedFault::Truncated(cut));
        }
        Ok(data)
    }

    fn write(&self, cap: Capability, offset: u64, data: &[u8]) -> Result<()> {
        let truncate = self.inject(SegmentId(cap.key))?;
        if truncate && !data.is_empty() {
            // A truncated write: part of the data reaches stable storage
            // before the transfer dies. Writes are idempotent, so the
            // caller's retry simply rewrites the whole run.
            let cut = data.len() / 2;
            self.inner.write(cap, offset, &data[..cut])?;
            self.record(InjectedFault::Truncated(cut));
            return Err(GmiError::transient_io(
                SegmentId(cap.key),
                "injected truncated write",
            ));
        }
        self.inner.write(cap, offset, data)
    }

    fn get_write_access(&self, cap: Capability, offset: u64, size: u64) -> Result<()> {
        self.inject(SegmentId(cap.key))?;
        self.inner.get_write_access(cap, offset, size)
    }

    fn size(&self, cap: Capability) -> Option<u64> {
        // A metadata query answered from bookkeeping, not I/O; keep it
        // fault-free so the readahead clamp stays deterministic.
        self.inner.size(cap)
    }

    fn allocate_temporary(&self) -> Result<Capability> {
        // Allocation happens inside segmentCreate, which the GMI driver
        // cannot retry; keep it fault-free so plans only exercise the
        // retryable read/write protocol.
        self.inner.allocate_temporary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::PortName;
    use crate::mapper::MemMapper;

    fn wrapped(plan: FaultPlan) -> (Arc<FaultyMapper>, Capability) {
        let mem = Arc::new(MemMapper::new(PortName(1)));
        let cap = mem.create_segment(&[7u8; 64]);
        (Arc::new(FaultyMapper::new(mem, plan)), cap)
    }

    #[test]
    fn quiet_plan_is_transparent() {
        let (m, cap) = wrapped(FaultPlan::quiet(1));
        assert_eq!(m.read(cap, 0, 4).unwrap(), vec![7; 4]);
        m.write(cap, 0, &[1, 2]).unwrap();
        assert_eq!(m.read(cap, 0, 2).unwrap(), vec![1, 2]);
        assert!(m.take_log().is_empty());
    }

    #[test]
    fn same_seed_injects_same_faults() {
        let plan = FaultPlan::transient(42, 300);
        let (a, cap_a) = wrapped(plan);
        let (b, cap_b) = wrapped(plan);
        let ra: Vec<bool> = (0..50).map(|i| a.read(cap_a, i, 1).is_ok()).collect();
        let rb: Vec<bool> = (0..50).map(|i| b.read(cap_b, i, 1).is_ok()).collect();
        assert_eq!(ra, rb);
        assert!(ra.iter().any(|ok| !ok), "plan injected nothing");
        assert!(ra.iter().any(|ok| *ok), "plan failed everything");
    }

    #[test]
    fn transient_errors_are_transient() {
        let plan = FaultPlan::transient(7, 1000);
        let (m, cap) = wrapped(plan);
        let err = m.read(cap, 0, 1).unwrap_err();
        assert!(err.is_transient(), "{err}");
        assert_eq!(m.take_log(), vec![InjectedFault::Transient]);
    }

    #[test]
    fn permanent_death_is_sticky() {
        let plan = FaultPlan {
            permanent_per_mille: 1000,
            ..FaultPlan::quiet(3)
        };
        let (m, cap) = wrapped(plan);
        let err = m.read(cap, 0, 1).unwrap_err();
        assert!(matches!(err, GmiError::MapperUnavailable { .. }), "{err}");
        assert!(m.is_dead());
        // Sticky: still dead, and only one Permanent entry is logged.
        assert!(m.write(cap, 0, &[0]).is_err());
        assert_eq!(m.take_log(), vec![InjectedFault::Permanent]);
    }

    #[test]
    fn crash_once_fires_exactly_once() {
        let plan = FaultPlan {
            crash_at_op: Some(2),
            ..FaultPlan::quiet(5)
        };
        let (m, cap) = wrapped(plan);
        assert!(m.read(cap, 0, 1).is_ok()); // op 0
        assert!(m.read(cap, 0, 1).is_ok()); // op 1
        let err = m.read(cap, 0, 1).unwrap_err(); // op 2: crash
        assert!(err.is_transient(), "{err}");
        assert!(m.read(cap, 0, 1).is_ok()); // restarted
        assert_eq!(m.take_log(), vec![InjectedFault::Crash]);
    }

    #[test]
    fn truncation_cuts_read_replies() {
        let plan = FaultPlan {
            truncate_per_mille: 1000,
            ..FaultPlan::quiet(9)
        };
        let (m, cap) = wrapped(plan);
        let data = m.read(cap, 0, 8).unwrap();
        assert_eq!(data.len(), 4);
        assert_eq!(m.take_log(), vec![InjectedFault::Truncated(4)]);
    }

    #[test]
    fn truncation_cuts_writes_short_with_transient_error() {
        let plan = FaultPlan {
            truncate_per_mille: 1000,
            ..FaultPlan::quiet(9)
        };
        let mem = Arc::new(MemMapper::new(PortName(1)));
        let cap = mem.create_segment(&[0u8; 8]);
        let m = FaultyMapper::new(mem.clone(), plan);
        let err = m.write(cap, 0, &[1u8; 8]).unwrap_err();
        assert!(err.is_transient(), "{err}");
        // Half the data landed before the transfer died.
        assert_eq!(mem.segment_data(cap), [1, 1, 1, 1, 0, 0, 0, 0]);
        assert_eq!(m.take_log(), vec![InjectedFault::Truncated(4)]);
    }

    #[test]
    fn hang_window_wedges_stickily_and_logs_once() {
        let plan = FaultPlan {
            hang_at_op: Some(2),
            ..FaultPlan::quiet(13)
        };
        let (m, cap) = wrapped(plan);
        assert!(m.read(cap, 0, 1).is_ok()); // op 0
        assert!(m.read(cap, 0, 1).is_ok()); // op 1
        for _ in 0..3 {
            let err = m.read(cap, 0, 1).unwrap_err();
            assert!(matches!(err, GmiError::MapperTimeout { .. }), "{err}");
            assert!(err.is_transient(), "a hang must look transient: {err}");
        }
        assert!(m.is_wedged());
        assert!(!m.is_dead());
        // One Hang entry for the whole wedged episode.
        assert_eq!(m.take_log(), vec![InjectedFault::Hang]);
    }

    #[test]
    fn set_plan_unwedges_a_hung_mapper() {
        let plan = FaultPlan {
            hang_at_op: Some(0),
            ..FaultPlan::quiet(17)
        };
        let (m, cap) = wrapped(plan);
        assert!(m.read(cap, 0, 1).is_err());
        assert!(m.is_wedged());
        m.set_plan(FaultPlan::quiet(17));
        assert!(!m.is_wedged());
        assert_eq!(m.read(cap, 0, 4).unwrap(), vec![7; 4]);
    }

    #[test]
    fn delays_advance_the_simulated_clock() {
        let plan = FaultPlan {
            delay_per_mille: 1000,
            delay_ns: 5_000,
            ..FaultPlan::quiet(11)
        };
        let (m, cap) = wrapped(plan);
        let clock = Arc::new(CostModel::new(chorus_hal::CostParams::zero()));
        m.attach_clock(clock.clone());
        let before = clock.now().nanos();
        m.read(cap, 0, 1).unwrap();
        assert_eq!(clock.now().nanos() - before, 5_000);
        assert_eq!(m.take_log(), vec![InjectedFault::Delay(5_000)]);
    }
}
