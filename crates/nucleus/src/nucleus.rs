//! Actors, Nucleus region operations (§5.1.4), segment caching (§5.1.3)
//! and the IPC data path (§5.1.6).

use crate::capability::Capability;
use crate::capability::PortName;
use crate::ipc::{IpcError, Message, Ports};
use crate::segment_manager::{NucleusSegmentManager, SegmentCachingStats};
use chorus_gmi::{CacheId, CtxId, Gmi, GmiError, Prot, RegionId, Result, VirtAddr};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// An actor identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Actor(pub u64);

/// The 64 KB IPC message limit, in pages of the configured geometry.
pub const TRANSIT_SLOT_PAGES: u64 = 8;

/// What a region is backed by, for teardown accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Backing {
    /// A temporary cache created by `rgnAllocate`/`rgnInit`; destroyed
    /// with its last region.
    Temp(CacheId),
    /// A capability-bound cache; released to the segment cache.
    Cap(Capability),
    /// Another region's cache shared via `rgnMapFromActor`; the owner
    /// accounts for it.
    Shared,
}

struct Bound {
    cache: CacheId,
    refs: u32,
    last_use: u64,
}

struct NucInner {
    actors: HashMap<Actor, CtxId>,
    next_actor: u64,
    region_backing: HashMap<RegionId, Backing>,
    temp_refs: HashMap<CacheId, u32>,
    bound: HashMap<Capability, Bound>,
    lru_tick: u64,
    caching_enabled: bool,
    cache_limit: usize,
    caching_stats: SegmentCachingStats,
    transit_slots: Vec<bool>,
}

/// The Chorus Nucleus: the kernel-dependent layer above the GMI.
///
/// Generic over the memory manager, reproducing §5.2: "The MM
/// implementation is the only difference between these Nucleus
/// versions."
pub struct Nucleus<G: Gmi> {
    gmi: Arc<G>,
    seg_mgr: Arc<NucleusSegmentManager>,
    ports: Ports,
    transit_cache: CacheId,
    slot_size: u64,
    inner: Mutex<NucInner>,
}

impl<G: Gmi> Nucleus<G> {
    /// Creates a Nucleus over a memory manager and segment manager,
    /// allocating the fixed transit segment (`slots` slots of 8 pages).
    pub fn new(gmi: Arc<G>, seg_mgr: Arc<NucleusSegmentManager>, slots: usize) -> Nucleus<G> {
        let transit_cache = gmi.cache_create(None).expect("transit cache");
        let slot_size = gmi.geometry().page_size() * TRANSIT_SLOT_PAGES;
        Nucleus {
            gmi,
            seg_mgr,
            ports: Ports::new(),
            transit_cache,
            slot_size,
            inner: Mutex::new(NucInner {
                actors: HashMap::new(),
                next_actor: 1,
                region_backing: HashMap::new(),
                temp_refs: HashMap::new(),
                bound: HashMap::new(),
                lru_tick: 0,
                caching_enabled: true,
                cache_limit: 64,
                caching_stats: SegmentCachingStats::default(),
                transit_slots: vec![false; slots],
            }),
        }
    }

    /// The underlying memory manager.
    pub fn gmi(&self) -> &Arc<G> {
        &self.gmi
    }

    /// The segment manager.
    pub fn segment_manager(&self) -> &Arc<NucleusSegmentManager> {
        &self.seg_mgr
    }

    /// The maximum IPC message size in bytes.
    pub fn message_limit(&self) -> u64 {
        self.slot_size
    }

    // ----- actors -------------------------------------------------------------

    /// Creates an actor (an address space hosting threads).
    ///
    /// # Errors
    ///
    /// Propagates memory-manager failures.
    pub fn actor_create(&self) -> Result<Actor> {
        let ctx = self.gmi.context_create()?;
        let mut inner = self.inner.lock();
        let id = Actor(inner.next_actor);
        inner.next_actor += 1;
        inner.actors.insert(id, ctx);
        Ok(id)
    }

    /// Destroys an actor and all its regions.
    ///
    /// # Errors
    ///
    /// Fails on unknown actors.
    pub fn actor_destroy(&self, actor: Actor) -> Result<()> {
        let ctx = self.ctx(actor)?;
        // Release backings of every region first.
        let regions = self.gmi.region_list(ctx)?;
        for (region, _status) in regions {
            self.rgn_free_inner(region, false)?;
        }
        self.gmi.context_destroy(ctx)?;
        self.inner.lock().actors.remove(&actor);
        Ok(())
    }

    /// The context of an actor.
    ///
    /// # Errors
    ///
    /// Fails on unknown actors.
    pub fn ctx(&self, actor: Actor) -> Result<CtxId> {
        self.inner
            .lock()
            .actors
            .get(&actor)
            .copied()
            .ok_or(GmiError::InvalidArgument("unknown actor"))
    }

    /// Reads actor memory (user-access simulation).
    ///
    /// # Errors
    ///
    /// Propagates faults.
    pub fn read_mem(&self, actor: Actor, va: VirtAddr, buf: &mut [u8]) -> Result<()> {
        self.gmi.vm_read(self.ctx(actor)?, va, buf)
    }

    /// Writes actor memory (user-access simulation).
    ///
    /// # Errors
    ///
    /// Propagates faults.
    pub fn write_mem(&self, actor: Actor, va: VirtAddr, data: &[u8]) -> Result<()> {
        self.gmi.vm_write(self.ctx(actor)?, va, data)
    }

    // ----- segment caching (§5.1.3) --------------------------------------------

    /// Enables/disables segment caching and sets the kept-cache limit.
    pub fn set_segment_caching(&self, enabled: bool, limit: usize) {
        let mut inner = self.inner.lock();
        inner.caching_enabled = enabled;
        inner.cache_limit = limit;
    }

    /// Segment-caching statistics.
    pub fn segment_caching_stats(&self) -> SegmentCachingStats {
        self.inner.lock().caching_stats
    }

    /// Finds or creates the local cache bound to a capability,
    /// incrementing its reference count.
    fn acquire_cache(&self, cap: Capability) -> Result<CacheId> {
        let mut inner = self.inner.lock();
        inner.lru_tick += 1;
        let tick = inner.lru_tick;
        if let Some(b) = inner.bound.get_mut(&cap) {
            // "the manager first checks if there is a cache already kept
            // for it" — the hit that makes repeated execs fast.
            b.refs += 1;
            b.last_use = tick;
            let cache = b.cache;
            inner.caching_stats.hits += 1;
            return Ok(cache);
        }
        inner.caching_stats.misses += 1;
        drop(inner);
        let segment = self.seg_mgr.segment_for(cap);
        let cache = self.gmi.cache_create(Some(segment))?;
        let mut inner = self.inner.lock();
        inner.bound.insert(
            cap,
            Bound {
                cache,
                refs: 1,
                last_use: tick,
            },
        );
        Ok(cache)
    }

    /// Drops one reference to a bound cache; unreferenced caches are
    /// kept "as long as there is enough free physical memory, and enough
    /// space in the segment manager tables".
    fn release_cache(&self, cap: Capability) -> Result<()> {
        let mut inner = self.inner.lock();
        let Some(b) = inner.bound.get_mut(&cap) else {
            return Ok(());
        };
        b.refs = b.refs.saturating_sub(1);
        let keep = inner.caching_enabled;
        // Evict beyond the table limit, oldest unreferenced first.
        let mut to_destroy: Vec<(Capability, CacheId)> = Vec::new();
        if !keep {
            if let Some(b) = inner.bound.get(&cap) {
                if b.refs == 0 {
                    to_destroy.push((cap, b.cache));
                }
            }
        } else {
            let unreferenced: usize = inner.bound.values().filter(|b| b.refs == 0).count();
            if unreferenced > inner.cache_limit {
                let mut idle: Vec<(Capability, u64, CacheId)> = inner
                    .bound
                    .iter()
                    .filter(|(_, b)| b.refs == 0)
                    .map(|(&c, b)| (c, b.last_use, b.cache))
                    .collect();
                idle.sort_by_key(|&(_, t, _)| t);
                for &(c, _, cache) in idle.iter().take(unreferenced - inner.cache_limit) {
                    to_destroy.push((c, cache));
                }
            }
        }
        for (c, _) in &to_destroy {
            inner.bound.remove(c);
            inner.caching_stats.evictions += 1;
        }
        drop(inner);
        for (_, cache) in to_destroy {
            // A cache may refuse destruction if still mapped elsewhere
            // (shared via rgnMapFromActor); that's fine — it stays alive
            // through the mapping.
            let _ = self.gmi.cache_destroy(cache);
        }
        Ok(())
    }

    // ----- Nucleus region operations (§5.1.4) -------------------------------------

    /// `rgnAllocate`: a new zero-filled memory region (temporary cache).
    ///
    /// # Errors
    ///
    /// Propagates memory-manager failures.
    pub fn rgn_allocate(
        &self,
        actor: Actor,
        addr: VirtAddr,
        size: u64,
        prot: Prot,
    ) -> Result<RegionId> {
        let ctx = self.ctx(actor)?;
        let cache = self.gmi.cache_create(None)?;
        let region = match self.gmi.region_create(ctx, addr, size, prot, cache, 0) {
            Ok(r) => r,
            Err(e) => {
                let _ = self.gmi.cache_destroy(cache);
                return Err(e);
            }
        };
        let mut inner = self.inner.lock();
        inner.region_backing.insert(region, Backing::Temp(cache));
        *inner.temp_refs.entry(cache).or_insert(0) += 1;
        Ok(region)
    }

    /// `rgnMap`: maps an existing segment into an actor.
    ///
    /// # Errors
    ///
    /// Propagates memory-manager failures.
    pub fn rgn_map(
        &self,
        actor: Actor,
        addr: VirtAddr,
        size: u64,
        prot: Prot,
        cap: Capability,
        offset: u64,
    ) -> Result<RegionId> {
        let ctx = self.ctx(actor)?;
        let cache = self.acquire_cache(cap)?;
        let region = match self.gmi.region_create(ctx, addr, size, prot, cache, offset) {
            Ok(r) => r,
            Err(e) => {
                self.release_cache(cap)?;
                return Err(e);
            }
        };
        self.inner
            .lock()
            .region_backing
            .insert(region, Backing::Cap(cap));
        Ok(region)
    }

    /// `rgnInit`: a new region initialized as a (deferred) copy of an
    /// existing segment.
    ///
    /// # Errors
    ///
    /// Propagates memory-manager failures.
    pub fn rgn_init(
        &self,
        actor: Actor,
        addr: VirtAddr,
        size: u64,
        prot: Prot,
        cap: Capability,
        offset: u64,
    ) -> Result<RegionId> {
        let ctx = self.ctx(actor)?;
        let src = self.acquire_cache(cap)?;
        let cache = self.gmi.cache_create(None)?;
        let res = self
            .gmi
            .cache_copy(src, offset, cache, 0, size)
            .and_then(|()| self.gmi.region_create(ctx, addr, size, prot, cache, 0));
        // The deferred copy keeps its own link to the source; the
        // capability reference can be released immediately.
        self.release_cache(cap)?;
        match res {
            Ok(region) => {
                let mut inner = self.inner.lock();
                inner.region_backing.insert(region, Backing::Temp(cache));
                *inner.temp_refs.entry(cache).or_insert(0) += 1;
                Ok(region)
            }
            Err(e) => {
                let _ = self.gmi.cache_destroy(cache);
                Err(e)
            }
        }
    }

    /// `rgnMapFromActor`: maps the segment behind a source actor's
    /// region (found by address) into another actor — sharing, not
    /// copying (Unix `fork` text segments).
    ///
    /// # Errors
    ///
    /// Propagates memory-manager failures.
    pub fn rgn_map_from_actor(
        &self,
        actor: Actor,
        addr: VirtAddr,
        size: u64,
        prot: Prot,
        src_actor: Actor,
        src_va: VirtAddr,
    ) -> Result<RegionId> {
        let ctx = self.ctx(actor)?;
        let src_ctx = self.ctx(src_actor)?;
        let src_region = self.gmi.find_region(src_ctx, src_va)?;
        let status = self.gmi.region_status(src_region)?;
        let offset = status.va_to_offset(src_va);
        let region = self
            .gmi
            .region_create(ctx, addr, size, prot, status.cache, offset)?;
        let mut inner = self.inner.lock();
        // Share accounting: if the source is a temp cache, bump its ref.
        let backing = match inner.region_backing.get(&src_region) {
            Some(Backing::Temp(c)) => {
                let c = *c;
                *inner.temp_refs.entry(c).or_insert(0) += 1;
                Backing::Temp(c)
            }
            Some(Backing::Cap(cap)) => {
                let cap = *cap;
                if let Some(b) = inner.bound.get_mut(&cap) {
                    b.refs += 1;
                }
                Backing::Cap(cap)
            }
            _ => Backing::Shared,
        };
        inner.region_backing.insert(region, backing);
        Ok(region)
    }

    /// `rgnInitFromActor`: a new region initialized as a deferred copy
    /// of a source actor's region (Unix `fork` data/stack).
    ///
    /// # Errors
    ///
    /// Propagates memory-manager failures.
    pub fn rgn_init_from_actor(
        &self,
        actor: Actor,
        addr: VirtAddr,
        size: u64,
        prot: Prot,
        src_actor: Actor,
        src_va: VirtAddr,
    ) -> Result<RegionId> {
        let ctx = self.ctx(actor)?;
        let src_ctx = self.ctx(src_actor)?;
        let src_region = self.gmi.find_region(src_ctx, src_va)?;
        let status = self.gmi.region_status(src_region)?;
        let offset = status.va_to_offset(src_va);
        let cache = self.gmi.cache_create(None)?;
        let res = self
            .gmi
            .cache_copy(status.cache, offset, cache, 0, size)
            .and_then(|()| self.gmi.region_create(ctx, addr, size, prot, cache, 0));
        match res {
            Ok(region) => {
                let mut inner = self.inner.lock();
                inner.region_backing.insert(region, Backing::Temp(cache));
                *inner.temp_refs.entry(cache).or_insert(0) += 1;
                Ok(region)
            }
            Err(e) => {
                let _ = self.gmi.cache_destroy(cache);
                Err(e)
            }
        }
    }

    /// `rgnFree`: destroys a region and releases its backing.
    ///
    /// # Errors
    ///
    /// Propagates memory-manager failures.
    pub fn rgn_free(&self, region: RegionId) -> Result<()> {
        self.rgn_free_inner(region, true)
    }

    fn rgn_free_inner(&self, region: RegionId, destroy_region: bool) -> Result<()> {
        let backing = self.inner.lock().region_backing.remove(&region);
        if destroy_region {
            self.gmi.region_destroy(region)?;
        } else {
            // Caller (actor_destroy) lets context_destroy do it.
            self.gmi.region_destroy(region)?;
        }
        match backing {
            Some(Backing::Temp(cache)) => {
                let mut inner = self.inner.lock();
                let refs = inner.temp_refs.entry(cache).or_insert(1);
                *refs -= 1;
                let dead = *refs == 0;
                if dead {
                    inner.temp_refs.remove(&cache);
                }
                drop(inner);
                if dead {
                    self.gmi.cache_destroy(cache)?;
                }
            }
            Some(Backing::Cap(cap)) => self.release_cache(cap)?,
            Some(Backing::Shared) | None => {}
        }
        Ok(())
    }

    // ----- IPC data path (§5.1.6) ---------------------------------------------------

    /// Creates a port.
    pub fn port_create(&self) -> PortName {
        self.ports.create()
    }

    /// Destroys a port, reclaiming transit slots of undelivered
    /// messages.
    pub fn port_destroy(&self, port: PortName) {
        for msg in self.ports.destroy(port) {
            if let Message::Slot { slot, .. } = msg {
                self.inner.lock().transit_slots[slot] = false;
            }
        }
    }

    fn alloc_slot(&self) -> Option<usize> {
        let mut inner = self.inner.lock();
        let idx = inner.transit_slots.iter().position(|&used| !used)?;
        inner.transit_slots[idx] = true;
        Some(idx)
    }

    /// Sends `len` bytes at `va` of `actor` to a port.
    ///
    /// "An IPC send is implemented as a cache.copy between the
    /// user-space segment and a transit slot, if the segment is large
    /// enough, otherwise as a bcopy."
    ///
    /// # Errors
    ///
    /// Fails on oversized messages, dead ports, or faults.
    pub fn ipc_send(
        &self,
        actor: Actor,
        port: PortName,
        va: VirtAddr,
        len: u64,
    ) -> core::result::Result<(), IpcError> {
        if len > self.slot_size {
            return Err(IpcError::MessageTooLarge {
                size: len,
                limit: self.slot_size,
            });
        }
        let ctx = self.ctx(actor)?;
        let ps = self.gmi.geometry().page_size();
        // The deferred path needs page alignment on both sides.
        let region = self.gmi.find_region(ctx, va)?;
        let status = self.gmi.region_status(region)?;
        let src_off = status.va_to_offset(va);
        let aligned = src_off % ps == 0 && len >= ps && va.0 + len <= status.end().0;
        if aligned {
            let Some(slot) = self.alloc_slot() else {
                return Err(IpcError::TransitFull);
            };
            let slot_off = slot as u64 * self.slot_size;
            let main = len - (len % ps);
            self.gmi
                .cache_copy(status.cache, src_off, self.transit_cache, slot_off, main)?;
            if main < len {
                // Unaligned tail goes byte-wise.
                let mut tail = vec![0u8; (len - main) as usize];
                self.gmi.vm_read(ctx, VirtAddr(va.0 + main), &mut tail)?;
                self.gmi
                    .cache_write(self.transit_cache, slot_off + main, &tail)?;
            }
            self.ports
                .enqueue(port, Message::Slot { slot, len })
                .inspect_err(|_| {
                    self.inner.lock().transit_slots[slot] = false;
                })?;
        } else {
            let mut buf = vec![0u8; len as usize];
            self.gmi.vm_read(ctx, va, &mut buf)?;
            self.ports.enqueue(port, Message::Inline(buf))?;
        }
        Ok(())
    }

    /// Receives the next message on `port` into `va` of `actor`,
    /// blocking up to `timeout`. Returns the message length.
    ///
    /// "A receive is implemented by cache.move or bcopy."
    ///
    /// # Errors
    ///
    /// Fails on timeout, dead ports, undersized buffers, or faults.
    pub fn ipc_receive(
        &self,
        actor: Actor,
        port: PortName,
        va: VirtAddr,
        max_len: u64,
        timeout: Duration,
    ) -> core::result::Result<u64, IpcError> {
        let msg = self.ports.dequeue(port, timeout)?;
        if msg.len() > max_len {
            return Err(IpcError::MessageTooLarge {
                size: msg.len(),
                limit: max_len,
            });
        }
        let ctx = self.ctx(actor)?;
        let ps = self.gmi.geometry().page_size();
        match msg {
            Message::Inline(bytes) => {
                self.gmi.vm_write(ctx, va, &bytes)?;
                Ok(bytes.len() as u64)
            }
            Message::Slot { slot, len } => {
                let slot_off = slot as u64 * self.slot_size;
                let region = self.gmi.find_region(ctx, va)?;
                let status = self.gmi.region_status(region)?;
                let dst_off = status.va_to_offset(va);
                let aligned = dst_off % ps == 0 && va.0 + len <= status.end().0;
                if aligned {
                    let main = len - (len % ps);
                    if main > 0 {
                        self.gmi.cache_move(
                            self.transit_cache,
                            slot_off,
                            status.cache,
                            dst_off,
                            main,
                        )?;
                    }
                    if main < len {
                        let mut tail = vec![0u8; (len - main) as usize];
                        self.gmi
                            .cache_read(self.transit_cache, slot_off + main, &mut tail)?;
                        self.gmi.vm_write(ctx, VirtAddr(va.0 + main), &tail)?;
                    }
                } else {
                    let mut buf = vec![0u8; len as usize];
                    self.gmi
                        .cache_read(self.transit_cache, slot_off, &mut buf)?;
                    self.gmi.vm_write(ctx, va, &buf)?;
                }
                // Scrub and release the slot: "The kernel has a single
                // fixed-sized transit segment... made of 64 Kbyte slots."
                self.gmi
                    .cache_invalidate(self.transit_cache, slot_off, self.slot_size)?;
                self.inner.lock().transit_slots[slot] = false;
                Ok(len)
            }
        }
    }
}
