//! The Chorus Nucleus layer above the GMI (paper §5.1).
//!
//! An operating-system kernel integrating a GMI implementation "must
//! provide a *segment manager* and a set of basic synchronization
//! mechanisms" (§5). This crate provides the Nucleus side:
//!
//! - [`capability`]: sparse capabilities naming segments (mapper port +
//!   opaque key, Amoeba-style — §5.1.1);
//! - [`mapper`]: the mapper interface — independent actors implementing
//!   segments on secondary storage with a read/write interface — plus
//!   in-memory and swap mappers;
//! - [`faulty`]: a seed-deterministic fault-injecting mapper decorator
//!   (transient/permanent errors, delays, truncated replies,
//!   crash-once) for exercising the recovery protocol;
//! - [`segment_manager`]: maps capabilities to GMI local caches,
//!   translates GMI upcalls into mapper requests, lazily binds temporary
//!   caches to swap segments, and implements *segment caching*: keeping
//!   unreferenced caches alive so re-`exec`ing a recent program is cheap
//!   (§5.1.3);
//! - [`ipc`]: ports and message passing, decoupled from memory
//!   management but using the per-page deferred copy and move semantics
//!   through a fixed transit segment of 64 KB slots (§5.1.6);
//! - [`nucleus`]: actors and the region operations `rgnAllocate`,
//!   `rgnMap`, `rgnInit`, `rgnMapFromActor`, `rgnInitFromActor`
//!   (§5.1.4).
//!
//! Everything is generic over [`chorus_gmi::Gmi`], reproducing the
//! paper's claim that "the MM implementation is the only difference
//! between these Nucleus versions".

pub mod capability;
pub mod dsm;
pub mod faulty;
pub mod ipc;
pub mod mapper;
pub mod nucleus;
pub mod segment_manager;

pub use capability::{Capability, PortName};
pub use dsm::{DsmDirectory, DsmSiteManager, DsmStats};
pub use faulty::{FaultPlan, FaultyMapper, InjectedFault};
pub use ipc::{CompletionPort, IpcError, Message, PortId, Ports};
pub use mapper::{Mapper, MapperRegistry, MemMapper, SwapMapper};
pub use nucleus::{Actor, Nucleus};
pub use segment_manager::{NucleusSegmentManager, SegmentCachingStats};
