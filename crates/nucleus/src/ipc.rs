//! Ports and message queues (§5.1.1, §5.1.6).
//!
//! "Messages are not addressed directly to threads, but to intermediate
//! entities called ports. A port is an address to which messages can be
//! sent, and a queue holding the messages received but not yet
//! consumed."
//!
//! This module holds the pure queueing machinery; the memory-management
//! side of message transfer (the transit segment, `cache.copy` /
//! `cache.move`) lives in [`crate::nucleus`], keeping IPC decoupled from
//! memory management as §5.1.6 requires: IPC never creates, destroys or
//! resizes regions.

use crate::capability::PortName;
use core::fmt;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::time::Duration;

/// IPC failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IpcError {
    /// The port does not exist (or was destroyed).
    NoSuchPort(PortName),
    /// The message exceeds the 64 KB limit (§5.1.6: "to transfer large
    /// or sparse data, users should call the memory management
    /// operations, and not IPC").
    MessageTooLarge {
        /// Requested size.
        size: u64,
        /// The limit.
        limit: u64,
    },
    /// No message arrived within the timeout.
    Timeout,
    /// No free transit slot (too many in-flight messages).
    TransitFull,
    /// An underlying memory-management error.
    Vm(chorus_gmi::GmiError),
}

impl fmt::Display for IpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpcError::NoSuchPort(p) => write!(f, "no such port {p:?}"),
            IpcError::MessageTooLarge { size, limit } => {
                write!(f, "message of {size} bytes exceeds the {limit}-byte limit")
            }
            IpcError::Timeout => write!(f, "receive timed out"),
            IpcError::TransitFull => write!(f, "no free transit slot"),
            IpcError::Vm(e) => write!(f, "memory management error: {e}"),
        }
    }
}

impl std::error::Error for IpcError {}

impl From<chorus_gmi::GmiError> for IpcError {
    fn from(e: chorus_gmi::GmiError) -> IpcError {
        IpcError::Vm(e)
    }
}

impl IpcError {
    /// Folds an IPC failure into the unified [`GmiError`](chorus_gmi::GmiError) taxonomy, in
    /// the context of an upcall against `segment`.
    ///
    /// This is the single conversion point for the mapper protocol —
    /// the ad-hoc per-call-site transient/permanent matches it replaces
    /// all keyed off the same classification:
    ///
    /// * a dead port means the mapper is permanently gone
    ///   ([`GmiError::MapperUnavailable`](chorus_gmi::GmiError::MapperUnavailable), quarantines the cache);
    /// * a receive timeout is the mapper missing its deadline
    ///   ([`GmiError::MapperTimeout`](chorus_gmi::GmiError::MapperTimeout), transient);
    /// * transit exhaustion heals once in-flight messages drain
    ///   (transient I/O);
    /// * an oversized message is a protocol violation the retry policy
    ///   can never fix (permanent I/O);
    /// * an embedded VM error passes through unchanged.
    pub fn into_gmi(self, segment: chorus_gmi::SegmentId) -> chorus_gmi::GmiError {
        use chorus_gmi::GmiError;
        match self {
            IpcError::NoSuchPort(_) => GmiError::MapperUnavailable { segment },
            IpcError::Timeout => GmiError::MapperTimeout { segment },
            IpcError::TransitFull => GmiError::transient_io(segment, "no free transit slot"),
            IpcError::MessageTooLarge { size, limit } => GmiError::permanent_io(
                segment,
                format!("message of {size} bytes exceeds the {limit}-byte limit"),
            ),
            IpcError::Vm(e) => e,
        }
    }

    /// True if retrying could plausibly succeed — the same
    /// classification [`IpcError::into_gmi`] encodes, usable before
    /// conversion.
    pub fn is_transient(&self) -> bool {
        match self {
            IpcError::Timeout | IpcError::TransitFull => true,
            IpcError::NoSuchPort(_) | IpcError::MessageTooLarge { .. } => false,
            IpcError::Vm(e) => e.is_transient(),
        }
    }
}

/// How a queued message's body is carried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Small body copied inline (`bcopy` path).
    Inline(Vec<u8>),
    /// Body parked in a transit-segment slot (deferred-copy path).
    Slot {
        /// Slot index within the transit segment.
        slot: usize,
        /// Body length in bytes.
        len: u64,
    },
}

impl Message {
    /// Body length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            Message::Inline(v) => v.len() as u64,
            Message::Slot { len, .. } => *len,
        }
    }

    /// True for empty messages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Identifier of a port within a [`Ports`] registry (equals its name).
pub type PortId = PortName;

#[derive(Default)]
struct PortQueue {
    queue: VecDeque<Message>,
}

/// The port registry: creation, send (enqueue) and blocking receive.
pub struct Ports {
    inner: Mutex<HashMap<PortName, PortQueue>>,
    cv: Condvar,
    next: Mutex<u64>,
}

impl Default for Ports {
    fn default() -> Ports {
        Ports::new()
    }
}

impl Ports {
    /// Creates an empty registry.
    pub fn new() -> Ports {
        Ports {
            inner: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
            next: Mutex::new(1),
        }
    }

    /// Creates a port and returns its name.
    pub fn create(&self) -> PortName {
        let mut next = self.next.lock();
        let name = PortName(*next);
        *next += 1;
        self.inner.lock().insert(name, PortQueue::default());
        name
    }

    /// Destroys a port, returning any undelivered messages (so their
    /// transit slots can be reclaimed).
    pub fn destroy(&self, port: PortName) -> Vec<Message> {
        let removed = self.inner.lock().remove(&port);
        self.cv.notify_all();
        removed.map(|q| q.queue.into()).unwrap_or_default()
    }

    /// Enqueues a message.
    ///
    /// # Errors
    ///
    /// Fails if the port does not exist.
    pub fn enqueue(&self, port: PortName, msg: Message) -> Result<(), IpcError> {
        let mut inner = self.inner.lock();
        let q = inner.get_mut(&port).ok_or(IpcError::NoSuchPort(port))?;
        q.queue.push_back(msg);
        drop(inner);
        self.cv.notify_all();
        Ok(())
    }

    /// Dequeues the next message, blocking up to `timeout`.
    ///
    /// # Errors
    ///
    /// `Timeout` when nothing arrives; `NoSuchPort` if the port dies.
    pub fn dequeue(&self, port: PortName, timeout: Duration) -> Result<Message, IpcError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            match inner.get_mut(&port) {
                None => return Err(IpcError::NoSuchPort(port)),
                Some(q) => {
                    if let Some(m) = q.queue.pop_front() {
                        return Ok(m);
                    }
                }
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(IpcError::Timeout);
            }
            self.cv.wait_for(&mut inner, deadline - now);
        }
    }

    /// Number of queued messages (0 for dead ports).
    pub fn queue_len(&self, port: PortName) -> usize {
        self.inner
            .lock()
            .get(&port)
            .map(|q| q.queue.len())
            .unwrap_or(0)
    }
}

/// A completion port: queue semantics for asynchronous upcall replies.
///
/// Unlike a FIFO [`Ports`] queue, every message posted here carries a
/// *due time* on the simulated clock and is ranked by `(due, id)` — the
/// order the completion engine delivers replies in, independent of host
/// thread scheduling. Posting assigns a monotonically increasing id, so
/// ties on the due time resolve by submission order and two identical
/// runs drain the port identically.
pub struct CompletionPort {
    queue: Mutex<chorus_gmi::CompletionQueue<Message>>,
    next_id: Mutex<u64>,
}

impl Default for CompletionPort {
    fn default() -> CompletionPort {
        CompletionPort::new()
    }
}

impl CompletionPort {
    /// An empty completion port.
    pub fn new() -> CompletionPort {
        CompletionPort {
            queue: Mutex::new(chorus_gmi::CompletionQueue::new()),
            next_id: Mutex::new(1),
        }
    }

    /// Posts a reply due at `due_ns` (simulated), returning the id
    /// assigned to it.
    pub fn post(&self, due_ns: u64, msg: Message) -> u64 {
        let id = {
            let mut next = self.next_id.lock();
            let id = *next;
            *next += 1;
            id
        };
        self.queue.lock().insert(due_ns, id, msg);
        id
    }

    /// The `(due_ns, id)` of the earliest pending reply, if any.
    pub fn peek(&self) -> Option<(u64, u64)> {
        self.queue.lock().peek()
    }

    /// Removes and returns the earliest reply already due at `now_ns`.
    pub fn poll(&self, now_ns: u64) -> Option<(u64, Message)> {
        self.queue
            .lock()
            .pop_due(now_ns)
            .map(|(_due, id, m)| (id, m))
    }

    /// Removes and returns the earliest pending reply regardless of due
    /// time, with the due time a caller must advance the simulated
    /// clock to. Used when the engine *must* make progress (a forced
    /// drain or a stub wait with nothing else runnable).
    pub fn pop_earliest(&self) -> Option<(u64, u64, Message)> {
        self.queue.lock().pop_earliest()
    }

    /// Number of pending replies.
    pub fn pending(&self) -> usize {
        self.queue.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let ports = Ports::new();
        let p = ports.create();
        ports.enqueue(p, Message::Inline(vec![1])).unwrap();
        ports.enqueue(p, Message::Inline(vec![2])).unwrap();
        assert_eq!(
            ports.dequeue(p, Duration::ZERO).unwrap(),
            Message::Inline(vec![1])
        );
        assert_eq!(
            ports.dequeue(p, Duration::ZERO).unwrap(),
            Message::Inline(vec![2])
        );
        assert_eq!(
            ports.dequeue(p, Duration::ZERO).unwrap_err(),
            IpcError::Timeout
        );
    }

    #[test]
    fn send_to_dead_port_fails() {
        let ports = Ports::new();
        let p = ports.create();
        ports.destroy(p);
        assert_eq!(
            ports.enqueue(p, Message::Inline(vec![])).unwrap_err(),
            IpcError::NoSuchPort(p)
        );
    }

    #[test]
    fn destroy_returns_undelivered() {
        let ports = Ports::new();
        let p = ports.create();
        ports
            .enqueue(p, Message::Slot { slot: 3, len: 100 })
            .unwrap();
        let undelivered = ports.destroy(p);
        assert_eq!(undelivered, vec![Message::Slot { slot: 3, len: 100 }]);
    }

    #[test]
    fn blocking_receive_wakes_on_send() {
        let ports = Arc::new(Ports::new());
        let p = ports.create();
        let ports2 = ports.clone();
        let t = std::thread::spawn(move || ports2.dequeue(p, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        ports.enqueue(p, Message::Inline(vec![9])).unwrap();
        assert_eq!(t.join().unwrap().unwrap(), Message::Inline(vec![9]));
    }

    #[test]
    fn ports_are_unique() {
        let ports = Ports::new();
        let a = ports.create();
        let b = ports.create();
        assert_ne!(a, b);
        assert_eq!(ports.queue_len(a), 0);
    }

    #[test]
    fn completion_port_ranks_by_due_time_not_arrival() {
        let cp = CompletionPort::new();
        cp.post(300, Message::Inline(vec![3]));
        cp.post(100, Message::Inline(vec![1]));
        cp.post(200, Message::Inline(vec![2]));
        assert_eq!(cp.pending(), 3);
        assert_eq!(cp.poll(50), None, "nothing is due yet");
        let (_, m) = cp.poll(150).unwrap();
        assert_eq!(m, Message::Inline(vec![1]));
        let (due, _, m) = cp.pop_earliest().unwrap();
        assert_eq!((due, m), (200, Message::Inline(vec![2])));
        let (due, _, m) = cp.pop_earliest().unwrap();
        assert_eq!((due, m), (300, Message::Inline(vec![3])));
        assert_eq!(cp.pending(), 0);
    }

    #[test]
    fn completion_port_breaks_due_ties_by_post_order() {
        let cp = CompletionPort::new();
        let first = cp.post(500, Message::Inline(vec![0xA]));
        let second = cp.post(500, Message::Inline(vec![0xB]));
        assert!(first < second, "ids are monotonic");
        let (id, m) = cp.poll(500).unwrap();
        assert_eq!((id, m), (first, Message::Inline(vec![0xA])));
        let (id, m) = cp.poll(500).unwrap();
        assert_eq!((id, m), (second, Message::Inline(vec![0xB])));
    }

    #[test]
    fn ipc_errors_fold_into_the_unified_taxonomy() {
        use chorus_gmi::{GmiError, SegmentId};
        let seg = SegmentId(7);
        assert!(matches!(
            IpcError::NoSuchPort(PortName(1)).into_gmi(seg),
            GmiError::MapperUnavailable { segment } if segment == seg
        ));
        assert!(matches!(
            IpcError::Timeout.into_gmi(seg),
            GmiError::MapperTimeout { segment } if segment == seg
        ));
        assert!(IpcError::TransitFull.into_gmi(seg).is_transient());
        assert!(!IpcError::MessageTooLarge { size: 1, limit: 0 }
            .into_gmi(seg)
            .is_transient());
        let inner = GmiError::OutOfMemory;
        assert_eq!(IpcError::Vm(inner.clone()).into_gmi(seg), inner);
        // is_transient agrees with the converted classification.
        for (e, transient) in [
            (IpcError::NoSuchPort(PortName(1)), false),
            (IpcError::Timeout, true),
            (IpcError::TransitFull, true),
            (IpcError::MessageTooLarge { size: 1, limit: 0 }, false),
        ] {
            assert_eq!(e.is_transient(), transient, "{e}");
            assert_eq!(e.clone().into_gmi(seg).is_transient(), transient, "{e}");
        }
    }
}
